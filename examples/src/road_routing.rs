//! Road-network routing: weighted single-source shortest paths on a grid
//! (a planar, low-degree graph — the opposite regime from social graphs:
//! no hubs, so ghost nodes buy nothing, while edge partitioning still
//! balances the load).
//!
//! ```text
//! cargo run -p pgxd-examples --release --bin road_routing
//! ```

use pgxd::Engine;
use pgxd_algorithms::{try_hopdist, try_sssp};
use pgxd_graph::generate::grid;

const ROWS: usize = 96;
const COLS: usize = 96;

fn main() {
    // A city grid with congestion-weighted street segments.
    let graph = grid(ROWS, COLS).with_uniform_weights(1.0, 5.0, 0x60AD);
    println!(
        "road network: {} intersections, {} directed segments",
        graph.num_nodes(),
        graph.num_edges()
    );

    let mut engine = Engine::builder()
        .machines(4)
        .workers(1)
        .copiers(1)
        .ghost_threshold(Some(64)) // no hubs in a grid: selects nothing
        .build(&graph)
        .expect("engine");
    assert_eq!(
        engine.cluster().ghosts().len(),
        0,
        "planar grids have no high-degree vertices to ghost"
    );

    // Travel times from the depot at the north-west corner.
    let depot = 0u32;
    let times = try_sssp(&mut engine, depot).unwrap();
    println!(
        "Bellman-Ford settled after {} relaxation rounds",
        times.iterations
    );

    // Hop distance (number of intersections) for comparison.
    let hops = try_hopdist(&mut engine, depot).unwrap();
    println!("BFS frontier swept {} levels", hops.iterations);

    // The far corner: compare shortest travel time vs fewest turns.
    let far = ROWS * COLS - 1;
    println!(
        "depot -> far corner: travel time {:.1}, hops {} (minimum possible {})",
        times.dist[far],
        hops.hops[far],
        ROWS + COLS - 2
    );
    assert_eq!(hops.hops[far] as usize, ROWS + COLS - 2);

    // Reachability audit: everything downhill of the depot is reachable.
    let unreachable = times.dist.iter().filter(|d| d.is_infinite()).count();
    println!("{unreachable} intersections unreachable from the depot");

    // Average detour factor of weighted routes over hop-optimal routes.
    let mut detour = 0.0f64;
    let mut counted = 0usize;
    for v in 0..graph.num_nodes() {
        if times.dist[v].is_finite() && hops.hops[v] > 0 {
            detour += times.dist[v] / hops.hops[v] as f64;
            counted += 1;
        }
    }
    println!(
        "average per-hop travel time: {:.2} (weights were 1..5)",
        detour / counted as f64
    );
}
