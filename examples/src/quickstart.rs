//! Quickstart: load a graph into a simulated PGX.D cluster and run
//! PageRank with the *data pulling* pattern.
//!
//! ```text
//! cargo run -p pgxd-examples --release --bin quickstart
//! ```

use pgxd::Engine;
use pgxd_algorithms::try_pagerank_pull;
use pgxd_graph::generate::{rmat, RmatParams};

fn main() {
    // 1. A graph. Any edge list works (see pgxd_graph::io for files);
    //    here: a skewed RMAT graph, 4096 nodes / ~48k edges.
    let graph = rmat(12, 12, RmatParams::skewed(), 42);
    println!(
        "graph: {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    // 2. An engine: 4 simulated machines, edge partitioning, ghost nodes
    //    for vertices with degree > 256 — all defaults of the paper's
    //    design, tunable through the builder.
    let mut engine = Engine::builder()
        .machines(4)
        .workers(2)
        .copiers(1)
        .ghost_threshold(Some(256))
        .build(&graph)
        .expect("engine construction");
    println!(
        "cluster: {} machines, {} ghost nodes selected",
        engine.num_machines(),
        engine.cluster().ghosts().len()
    );

    // 3. Run an algorithm from the suite.
    let result = try_pagerank_pull(&mut engine, 0.85, 100, 1e-10).unwrap();
    println!("pagerank converged after {} iterations", result.iterations);

    // 4. Inspect the result (driver-side sequential region).
    let mut order: Vec<usize> = (0..graph.num_nodes()).collect();
    order.sort_by(|&a, &b| result.scores[b].total_cmp(&result.scores[a]));
    println!("top 10 vertices by PageRank:");
    for &v in order.iter().take(10) {
        println!(
            "  v{v:<6} score {:.6}  (in-degree {})",
            result.scores[v],
            graph.in_degree(v as u32)
        );
    }

    // 5. Traffic accounting comes for free.
    let stats = engine.cluster().total_stats();
    println!(
        "traffic: {} messages, {:.2} MB payload, {} remote reads, {} local reads",
        stats.msgs_sent,
        stats.bytes_sent as f64 / 1e6,
        stats.read_entries,
        stats.local_reads
    );
}
