//! Non-graph workload on the engine — the §6.2 future-work abstraction in
//! action ("provide abstractions for one dimensional data representations,
//! which would suffice various non-graph workloads as in many existing
//! Hadoop or Spark applications").
//!
//! A fleet of sensors produces one reading per index; the distributed
//! vectors live partitioned across the cluster's machines, and the
//! statistics pipeline (calibration → z-scores → anomaly count →
//! correlation) runs as PGX.D node jobs with driver-side reductions.
//!
//! ```text
//! cargo run -p pgxd-examples --release --bin sensor_analytics
//! ```

use pgxd::vector::DistVec;
use pgxd::{Engine, ReduceOp};
use pgxd_graph::generate;

const SENSORS: usize = 200_000;

fn main() {
    // The "graph" only supplies the index space 0..n (a ring keeps every
    // machine non-empty under edge partitioning).
    let domain = generate::ring(SENSORS);
    let mut engine = Engine::builder()
        .machines(4)
        .workers(2)
        .build(&domain)
        .expect("engine");
    println!("distributed domain: {SENSORS} sensors over 4 machines");

    // Synthetic raw readings: a daily cycle plus sensor-specific noise and
    // a handful of faulty sensors stuck at extreme values.
    let raw = DistVec::<f64>::from_fn(&mut engine, "raw", |i| {
        let phase = (i % 1440) as f64 / 1440.0 * std::f64::consts::TAU;
        let noise = {
            let mut x = (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
            x ^= x >> 33;
            (x % 1000) as f64 / 1000.0 - 0.5
        };
        let faulty = i % 10_007 == 0;
        if faulty {
            85.0
        } else {
            20.0 + 5.0 * phase.sin() + noise
        }
    });

    // Calibration: convert to Kelvin (map in place).
    raw.map_inplace(&mut engine, |_, celsius| celsius + 273.15);

    // Mean and variance via global reductions (driver sequential regions).
    let n = SENSORS as f64;
    let sum = raw.reduce(&engine, ReduceOp::Sum);
    let mean = sum / n;
    let centered = raw.zip_map(&mut engine, &raw, "sq", move |x, _| (x - mean) * (x - mean));
    let var = centered.reduce(&engine, ReduceOp::Sum) / n;
    let std = var.sqrt();
    println!("mean {:.2} K, std {:.2} K", mean, std);

    // Z-scores and anomaly count.
    let z = raw.zip_map(&mut engine, &raw, "z", move |x, _| (x - mean) / std);
    let anomalies = z.zip_map(&mut engine, &z, "anom", |zi, _| i64::from(zi.abs() > 4.0));
    let count = anomalies.reduce(&engine, ReduceOp::Sum);
    println!("{count} sensors flagged at |z| > 4");
    let expected = SENSORS.div_ceil(10_007) as i64;
    assert_eq!(count, expected, "exactly the stuck sensors are flagged");

    // Correlation of neighboring sensors (dot products on the cluster).
    let shifted = DistVec::<f64>::from_fn(&mut engine, "shift", move |i| {
        let phase = ((i + 1) % 1440) as f64 / 1440.0 * std::f64::consts::TAU;
        20.0 + 5.0 * phase.sin() + 273.15
    });
    let sm = shifted.reduce(&engine, ReduceOp::Sum) / n;
    let shifted_centered = shifted.zip_map(&mut engine, &shifted, "zs", move |x, _| x - sm);
    let dot = z.dot(&mut engine, &shifted_centered);
    println!(
        "covariance-style inner product with shifted signal: {:.1}",
        dot
    );

    println!(
        "cluster traffic for the whole pipeline: {} messages",
        engine.cluster().total_stats().msgs_sent
    );
}
