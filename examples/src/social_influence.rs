//! Social-network influence analysis — the workload class the paper's
//! introduction motivates (Twitter follower graph analysis).
//!
//! Pipeline on one engine: weakly connected components → approximate
//! PageRank (delta propagation, the fast variant GraphLab/GraphX ship) →
//! per-community top influencers.
//!
//! ```text
//! cargo run -p pgxd-examples --release --bin social_influence
//! ```

use pgxd::Engine;
use pgxd_algorithms::{try_pagerank_approx, try_wcc};
use pgxd_graph::generate::{rmat, RmatParams};
use std::collections::HashMap;

fn main() {
    // A follower-style graph: heavy-tailed degree distribution.
    let graph = rmat(13, 14, RmatParams::skewed(), 0x50C1A1);
    let stats = pgxd_graph::stats::degree_stats(&graph);
    println!(
        "social graph: {} users, {} follow edges, max in-degree {}, top-1% holds {:.0}% of degree",
        graph.num_nodes(),
        graph.num_edges(),
        stats.max_in,
        stats.top1pct_share * 100.0
    );

    let mut engine = Engine::builder()
        .machines(4)
        .workers(2)
        .copiers(1)
        .ghost_threshold(Some(512)) // replicate celebrity accounts
        .build(&graph)
        .expect("engine");
    println!(
        "{} celebrity accounts ghosted across machines",
        engine.cluster().ghosts().len()
    );

    // Communities.
    let communities = try_wcc(&mut engine).unwrap();
    println!(
        "{} weakly connected communities found in {} iterations",
        communities.num_components, communities.iterations
    );

    // Influence scores (approximate PageRank: decreasing work per
    // iteration as accounts converge and deactivate).
    let influence = try_pagerank_approx(&mut engine, 0.85, 1e-8, 500).unwrap();
    println!(
        "approximate pagerank deactivated everyone after {} iterations",
        influence.iterations
    );

    // Per-community top influencer (driver-side post-processing).
    let mut best: HashMap<u32, (usize, f64)> = HashMap::new();
    for (v, (&comp, &score)) in communities
        .component
        .iter()
        .zip(&influence.scores)
        .enumerate()
    {
        let entry = best.entry(comp).or_insert((v, score));
        if score > entry.1 {
            *entry = (v, score);
        }
    }
    let mut ranked: Vec<(&u32, &(usize, f64))> = best.iter().collect();
    ranked.sort_by(|a, b| b.1 .1.total_cmp(&a.1 .1));
    println!("top influencers of the 5 most influential communities:");
    for (comp, (v, score)) in ranked.into_iter().take(5) {
        println!(
            "  community {comp:<8} user v{v:<7} influence {score:.6} ({} followers)",
            graph.in_degree(*v as u32)
        );
    }
}
