//! Web-graph structure analysis, including a *custom* PGX.D task — the
//! general task framework of §4.1, not just the packaged algorithms.
//!
//! Pipeline: eigenvector centrality → k-core decomposition → a custom
//! pull-pattern kernel that counts, per page, how many of its in-links
//! come from pages more authoritative than itself.
//!
//! ```text
//! cargo run -p pgxd-examples --release --bin web_structure
//! ```

use pgxd::{Dir, EdgeCtx, EdgeTask, Engine, JobSpec, Prop, ReadDoneCtx};
use pgxd_algorithms::{try_eigenvector, try_kcore};
use pgxd_graph::generate::{rmat, RmatParams};

/// Custom kernel: for each page, pull each in-neighbor's authority score
/// and count the in-links whose source outranks the page itself. A pure
/// *data pulling* pattern — each callback compares against local state,
/// no atomics, impossible to express on push-only frameworks without
/// flipping the edge direction by hand.
struct CountStrongerInlinks {
    authority: Prop<f64>,
    stronger: Prop<i64>,
}

impl EdgeTask for CountStrongerInlinks {
    fn run(&self, ctx: &mut EdgeCtx<'_, '_>) {
        ctx.read_nbr(self.authority);
    }
    fn read_done(&self, ctx: &mut ReadDoneCtx<'_, '_>) {
        let nbr_score: f64 = ctx.value();
        let own: f64 = ctx.get(self.authority);
        if nbr_score > own {
            let c: i64 = ctx.get(self.stronger);
            ctx.set(self.stronger, c + 1);
        }
    }
}

fn main() {
    // A web-crawl-like graph: mild skew, larger than the social example.
    let graph = rmat(13, 10, RmatParams::mild(), 0x3EB);
    println!(
        "web graph: {} pages, {} links",
        graph.num_nodes(),
        graph.num_edges()
    );

    let mut engine = Engine::builder()
        .machines(4)
        .workers(2)
        .copiers(1)
        .ghost_threshold(Some(256))
        .build(&graph)
        .expect("engine");

    // 1. Authority: eigenvector centrality (pull-based power iteration).
    let ev = try_eigenvector(&mut engine, 50, 1e-9).unwrap();
    println!("eigenvector centrality: {} iterations", ev.iterations);

    // 2. Cohesion: k-core decomposition.
    let cores = try_kcore(&mut engine, i64::MAX).unwrap();
    println!(
        "densest core: k = {} (peeling took {} parallel steps)",
        cores.max_core, cores.iterations
    );

    // 3. Custom kernel on the same engine: load authority into a property,
    //    then run the pull task.
    let authority = engine.add_prop("authority", 0.0f64);
    for (v, &score) in ev.centrality.iter().enumerate() {
        engine.set(authority, v as u32, score);
    }
    let stronger = engine.add_prop("stronger_inlinks", 0i64);
    engine.run_edge_job(
        Dir::In,
        &JobSpec::new().read(authority),
        CountStrongerInlinks {
            authority,
            stronger,
        },
    );
    let stronger_counts = engine.gather(stronger);

    // Report: the most "supported" pages — high-authority pages that are
    // nevertheless endorsed by even stronger ones.
    let mut order: Vec<usize> = (0..graph.num_nodes()).collect();
    order.sort_by(|&a, &b| {
        (
            stronger_counts[b],
            ev.centrality[b].total_cmp(&ev.centrality[a]),
        )
            .cmp(&(stronger_counts[a], std::cmp::Ordering::Equal))
    });
    println!("pages with the most endorsements from stronger pages:");
    for &v in order.iter().take(8) {
        println!(
            "  page v{v:<7} {} stronger in-links, authority {:.5}, core {}",
            stronger_counts[v], ev.centrality[v], cores.core[v]
        );
    }

    // Sanity: a page cannot have more stronger in-links than in-links.
    for (v, &count) in stronger_counts.iter().enumerate() {
        assert!(count as usize <= graph.in_degree(v as u32));
    }
    println!("invariant verified: stronger-inlinks <= in-degree for all pages");
}
