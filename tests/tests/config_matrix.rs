//! Configuration-matrix integration tests: every combination of the
//! engine's load-balancing and ghosting features must produce identical
//! results — the features are performance knobs, never semantic ones.

use pgxd::{ChunkingMode, Engine, PartitioningMode};
use pgxd_algorithms as algos;
use pgxd_baselines::seq;
use pgxd_graph::generate::{self, RmatParams};
use pgxd_graph::Graph;

fn build(
    g: &Graph,
    machines: usize,
    workers: usize,
    part: PartitioningMode,
    chunk: ChunkingMode,
    ghosts: Option<usize>,
    privatize: bool,
) -> Engine {
    Engine::builder()
        .machines(machines)
        .workers(workers)
        .copiers(1)
        .partitioning(part)
        .chunking(chunk)
        .ghost_threshold(ghosts)
        .ghost_privatization(privatize)
        .chunk_edges(512) // small chunks exercise the queue
        .buffer_bytes(1 << 10) // tiny buffers exercise sealing
        .build(g)
        .unwrap()
}

#[test]
fn pagerank_identical_across_all_configurations() {
    let g = generate::rmat(8, 6, RmatParams::skewed(), 2001);
    let reference = seq::pagerank(&g, 0.85, 6);
    for machines in [1usize, 3] {
        for workers in [1usize, 2] {
            for part in [PartitioningMode::Vertex, PartitioningMode::Edge] {
                for chunk in [ChunkingMode::Node, ChunkingMode::Edge] {
                    for ghosts in [None, Some(32)] {
                        for privatize in [false, true] {
                            let mut e =
                                build(&g, machines, workers, part, chunk, ghosts, privatize);
                            let got = algos::try_pagerank_push(&mut e, 0.85, 6, 0.0).unwrap();
                            for (r, x) in reference.iter().zip(&got.scores) {
                                assert!(
                                    (r - x).abs() < 1e-9,
                                    "m={machines} w={workers} {part:?} {chunk:?} \
                                     ghosts={ghosts:?} priv={privatize}: {r} vs {x}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn wcc_identical_across_key_configurations() {
    let g = generate::rmat(8, 4, RmatParams::skewed(), 2002);
    let reference = seq::wcc(&g);
    for (machines, part, ghosts) in [
        (1, PartitioningMode::Edge, None),
        (2, PartitioningMode::Vertex, None),
        (3, PartitioningMode::Edge, Some(16)),
        (4, PartitioningMode::Edge, Some(0)),
    ] {
        let mut e = build(&g, machines, 2, part, ChunkingMode::Edge, ghosts, true);
        let got = algos::try_wcc(&mut e).unwrap();
        assert_eq!(got.component, reference, "m={machines} {part:?} {ghosts:?}");
    }
}

#[test]
fn more_machines_than_meaningful_partitions() {
    // 8 machines for a 30-node graph: several partitions own almost
    // nothing; everything must still work.
    let g = generate::rmat(5, 3, RmatParams::mild(), 2003);
    let reference = seq::wcc(&g);
    let mut e = build(
        &g,
        8,
        1,
        PartitioningMode::Edge,
        ChunkingMode::Edge,
        Some(4),
        true,
    );
    let got = algos::try_wcc(&mut e).unwrap();
    assert_eq!(got.component, reference);
}

#[test]
fn ghost_everything_extreme() {
    // Threshold 0 ghosts every vertex with any edge: the entire graph is
    // replicated, edges never cross machines, results unchanged.
    let g = generate::rmat(7, 4, RmatParams::skewed(), 2004);
    let reference = seq::pagerank(&g, 0.85, 4);
    let mut e = build(
        &g,
        3,
        1,
        PartitioningMode::Edge,
        ChunkingMode::Edge,
        Some(0),
        true,
    );
    assert!(e.cluster().ghosts().len() > g.num_nodes() / 2);
    let got = algos::try_pagerank_push(&mut e, 0.85, 4, 0.0).unwrap();
    for (r, x) in reference.iter().zip(&got.scores) {
        assert!((r - x).abs() < 1e-9);
    }
    // With every edge local, remote write traffic must be zero.
    let stats = e.cluster().total_stats();
    assert_eq!(
        stats.write_entries, 0,
        "ghosting all nodes kills remote writes"
    );
}

#[test]
fn tiny_buffers_force_many_messages_same_result() {
    let g = generate::rmat(7, 6, RmatParams::skewed(), 2005);
    let reference = seq::pagerank(&g, 0.85, 4);
    // 64-byte buffers: every handful of entries seals a message.
    let mut e = Engine::builder()
        .machines(4)
        .workers(1)
        .copiers(2)
        .buffer_bytes(64)
        .ghost_threshold(None)
        .build(&g)
        .unwrap();
    let got = algos::try_pagerank_pull(&mut e, 0.85, 4, 0.0).unwrap();
    for (r, x) in reference.iter().zip(&got.scores) {
        assert!((r - x).abs() < 1e-9);
    }
    let stats = e.cluster().total_stats();
    assert!(
        stats.msgs_sent > 300,
        "tiny buffers should generate many messages, got {}",
        stats.msgs_sent
    );
}

#[test]
fn back_pressure_pool_exhaustion_is_survivable() {
    let g = generate::rmat(7, 6, RmatParams::skewed(), 2006);
    let reference = seq::pagerank(&g, 0.85, 3);
    let mut config = pgxd::Config::test(3);
    config.buffer_bytes = 128;
    config.send_buffers_per_machine = 2; // absurdly small quota
    let mut e = pgxd::EngineBuilder::from_config(config).build(&g).unwrap();
    let got = algos::try_pagerank_pull(&mut e, 0.85, 3, 0.0).unwrap();
    for (r, x) in reference.iter().zip(&got.scores) {
        assert!((r - x).abs() < 1e-9);
    }
    let stats = e.cluster().total_stats();
    assert!(
        stats.pool_exhausted > 0 || stats.msgs_sent < 100,
        "expected back-pressure events with a 2-buffer quota"
    );
}

#[test]
fn strict_distributed_mode_gives_same_results() {
    // With strict_distributed, every phase boundary is fenced by the
    // message-based barrier instead of only the shared-memory fast path.
    let g = generate::rmat(7, 5, RmatParams::skewed(), 2007);
    let reference = seq::pagerank(&g, 0.85, 4);
    let mut config = pgxd::Config::test(3);
    config.strict_distributed = true;
    let mut e = pgxd::EngineBuilder::from_config(config).build(&g).unwrap();
    let got = algos::try_pagerank_pull(&mut e, 0.85, 4, 0.0).unwrap();
    for (r, x) in reference.iter().zip(&got.scores) {
        assert!((r - x).abs() < 1e-9);
    }
    let wcc = algos::try_wcc(&mut e).unwrap();
    assert_eq!(wcc.component, seq::wcc(&g));
}
