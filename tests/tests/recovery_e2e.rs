//! Recovery acceptance tests: checkpoint/restore plus automatic retry
//! survive a machine crash instead of reporting it.
//!
//! * Property: a crash at an arbitrary seeded point of the job never
//!   changes the answer. Hop-distance is the probe kernel — its `i64`
//!   `Min`-reductions make equality exact, so "recovered == fault-free"
//!   is bit-for-bit, whether the crash lands before the first checkpoint
//!   (clean restart on survivors), mid-stream (restore + resume), or not
//!   at all (single attempt).
//! * Integration: a PageRank run that loses one machine of four restores
//!   from the last checkpoint onto the three survivors and converges to
//!   the fault-free fixpoint within f64 summation-order noise.
//! * With recovery disabled the PR-3 contract is unchanged: a clean
//!   `Err(MachineDown)`, no retry.

use pgxd::{Config, Engine, FaultPlan, JobError, TelemetryConfig};
use pgxd_algorithms::{
    recoverable_hopdist, recoverable_pagerank_pull, try_hopdist, try_pagerank_pull,
};
use pgxd_graph::generate;
use proptest::prelude::*;

const MACHINES: usize = 4;

fn recovery_config(crash_machine: u16, crash_after_sends: u64) -> Config {
    Config::builder()
        .machines(MACHINES)
        .workers(2)
        .copiers(1)
        .fault(FaultPlan::crash(crash_machine, crash_after_sends))
        .telemetry(TelemetryConfig::on())
        .checkpoint_every(2)
        .max_retries(3)
        .build()
        .expect("config")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Crash at a seeded random point (any machine, any send count):
    /// the recovered BFS equals the fault-free run bit-for-bit.
    #[test]
    fn crash_at_seeded_phase_recovers_exactly(
        machine in 0u16..MACHINES as u16,
        crash_after in 200u64..4_000,
    ) {
        let g = generate::rmat(7, 6, generate::RmatParams::skewed(), 87);
        let mut clean = Engine::builder()
            .machines(MACHINES)
            .workers(2)
            .build(&g)
            .expect("engine");
        let baseline = try_hopdist(&mut clean, 0).unwrap();
        drop(clean);

        let rec = recoverable_hopdist(&g, recovery_config(machine, crash_after), 0)
            .expect("recovery must succeed within the retry budget");
        prop_assert_eq!(&rec.output.hops, &baseline.hops);
        prop_assert_eq!(rec.output.iterations, baseline.iterations);
        if rec.attempts > 1 {
            // The retry ran on the P−1 survivors after a real crash.
            prop_assert!(rec.recoveries >= 1);
            prop_assert!(rec.stats.restores_applied > 0 || rec.recoveries >= 1);
        }
    }
}

/// One machine of four dies mid-PageRank: the job restores from the last
/// checkpoint onto the three survivors and converges to the fault-free
/// fixpoint (difference is f64 summation-order noise only).
#[test]
fn pagerank_recovers_to_fault_free_fixpoint() {
    let g = generate::rmat(8, 6, generate::RmatParams::skewed(), 88);
    let mut clean = Engine::builder()
        .machines(MACHINES)
        .workers(2)
        .build(&g)
        .expect("engine");
    let baseline = try_pagerank_pull(&mut clean, 0.85, 30, 0.0).unwrap();
    drop(clean);

    let rec = recoverable_pagerank_pull(&g, recovery_config(1, 1_000), 0.85, 30, 0.0)
        .expect("recovery must succeed within the retry budget");
    assert!(rec.attempts > 1, "crash plan never fired — job too small");
    assert!(rec.recoveries >= 1);
    assert!(
        rec.recovery_done_events >= 1,
        "RecoveryDone must be traced on the surviving cluster"
    );
    assert!(rec.stats.checkpoints_taken > 0, "no checkpoints were taken");
    assert!(rec.stats.checkpoint_bytes > 0);
    assert!(rec.stats.restores_applied > 0, "restore never ran");
    assert_eq!(rec.output.iterations, baseline.iterations);
    for (a, b) in rec.output.scores.iter().zip(&baseline.scores) {
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
    }
}

/// With recovery off, behavior is unchanged from PR 3: the crash surfaces
/// as a structured `MachineDown` after one attempt, no retry, no
/// checkpoints.
#[test]
fn recovery_disabled_fails_cleanly() {
    let g = generate::rmat(8, 6, generate::RmatParams::skewed(), 88);
    let config = Config::builder()
        .machines(MACHINES)
        .workers(2)
        .copiers(1)
        .fault(FaultPlan::crash(2, 2_000))
        .build()
        .expect("config");
    let err = recoverable_pagerank_pull(&g, config, 0.85, 50, 0.0)
        .expect_err("crash with recovery off must abort");
    assert!(
        matches!(err, JobError::MachineDown { machine: 2 }),
        "expected MachineDown, got {err:?}"
    );
}
