//! Cross-crate telemetry integration: the exported Chrome trace and
//! metrics report must be well-formed and complete, and enabling the
//! instruments must not change what the engine puts on the wire.

use pgxd::{ChunkingMode, Engine, PartitioningMode};
use pgxd_algorithms as algos;
use pgxd_graph::generate::{self, RmatParams};
use pgxd_runtime::stats::StatsSnapshot;
use pgxd_runtime::telemetry::export::json::Value;
use std::collections::BTreeSet;

fn engine(machines: usize, workers: usize, telemetry: bool, g: &pgxd_graph::Graph) -> Engine {
    Engine::builder()
        .machines(machines)
        .workers(workers)
        .copiers(1)
        .ghost_threshold(Some(64))
        .partitioning(PartitioningMode::Edge)
        .chunking(ChunkingMode::Edge)
        .telemetry(telemetry)
        .build(g)
        .unwrap()
}

/// The shape signature of a trace: every distinct (pid, tid, name, ph)
/// combination. Timestamps vary run to run; the shape must not.
fn trace_shape(trace: &Value) -> BTreeSet<(u64, u64, String, String)> {
    trace
        .get("traceEvents")
        .and_then(Value::as_arr)
        .expect("traceEvents")
        .iter()
        // Pool stalls are genuine back-pressure events: whether one occurs
        // depends on thread timing, so they are not part of the golden
        // shape.
        .filter(|e| e.get("name").and_then(Value::as_str) != Some("pool_stall"))
        .map(|e| {
            (
                e.get("pid").and_then(Value::as_u64).unwrap_or(u64::MAX),
                e.get("tid").and_then(Value::as_u64).unwrap_or(u64::MAX),
                e.get("name")
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_string(),
                e.get("ph")
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_string(),
            )
        })
        .collect()
}

fn run_pagerank_trace() -> Value {
    let g = generate::rmat(8, 6, RmatParams::skewed(), 2024);
    let mut e = engine(2, 1, true, &g);
    algos::try_pagerank_pull(&mut e, 0.85, 3, 0.0).unwrap();
    Value::parse(&e.cluster().trace_json()).expect("trace parses")
}

/// Golden trace export: a deterministic 2-machine PageRank produces the
/// same set of (pid, tid, name, ph) events on every run, and that set
/// covers phase begin/end pairs plus metadata for both machines.
#[test]
fn golden_trace_shape_is_deterministic() {
    let a = trace_shape(&run_pagerank_trace());
    let b = trace_shape(&run_pagerank_trace());
    assert_eq!(a, b, "trace shape must be reproducible");

    for pid in 0..2u64 {
        assert!(a.contains(&(pid, u64::MAX, "process_name".into(), "M".into())));
        assert!(a.contains(&(pid, 0, "thread_name".into(), "M".into())));
        assert!(a.contains(&(pid, 0, "main".into(), "B".into())));
        assert!(a.contains(&(pid, 0, "main".into(), "E".into())));
        assert!(a.contains(&(pid, 0, "barrier".into(), "B".into())));
        assert!(a.contains(&(pid, 0, "barrier".into(), "E".into())));
        assert!(a.contains(&(pid, 0, "flush".into(), "i".into())));
        assert!(a.contains(&(pid, 0, "ghost_push".into(), "i".into())));
    }
}

/// The metrics report must carry one machine entry per machine, the phase
/// label list, and per-phase wall times consistent with the trace.
#[test]
fn report_covers_every_machine_and_phase() {
    let g = generate::rmat(8, 6, RmatParams::skewed(), 2025);
    let mut e = engine(3, 2, true, &g);
    algos::try_pagerank_pull(&mut e, 0.85, 2, 0.0).unwrap();
    let dir = std::env::temp_dir().join("pgxd-telemetry-e2e");
    let (trace_path, report_path) = e.export_telemetry(&dir).unwrap();
    let trace = Value::parse(&std::fs::read_to_string(trace_path).unwrap()).unwrap();
    let report = Value::parse(&std::fs::read_to_string(report_path).unwrap()).unwrap();

    let phases = report.get("phases").and_then(Value::as_arr).unwrap();
    assert!(
        phases.iter().any(|p| p.as_str() == Some("main")),
        "labeled main phase present"
    );
    let machines = report.get("machines").and_then(Value::as_arr).unwrap();
    assert_eq!(machines.len(), 3);
    for m in machines {
        let walls = m.get("phase_wall_s").and_then(Value::as_arr).unwrap();
        assert_eq!(walls.len(), phases.len());
        // The most recent phases are guaranteed to still be in the ring.
        assert!(walls.last().unwrap().as_f64().is_some());
        let hist = m.get("histograms").unwrap();
        assert!(hist.get("read_rtt_ns").unwrap().get("count").is_some());
    }
    let shape = trace_shape(&trace);
    assert!(shape.iter().any(|(_, _, name, _)| name == "main"));
}

/// Zero-envelope regression: with tracing off, the instruments must not
/// perturb communication — the traffic counters of an identical run match
/// a telemetry-enabled run exactly, and the disabled run records nothing.
#[test]
fn telemetry_does_not_change_traffic() {
    let g = generate::rmat(8, 5, RmatParams::skewed(), 2026);
    let traffic = |telemetry: bool| -> (StatsSnapshot, Engine) {
        let mut e = engine(2, 1, telemetry, &g);
        let before = e.cluster().total_stats();
        algos::try_pagerank_pull(&mut e, 0.85, 3, 0.0).unwrap();
        let after = e.cluster().total_stats();
        (after - before, e)
    };
    let (off, e_off) = traffic(false);
    let (on, _e_on) = traffic(true);
    assert_eq!(off, on, "telemetry must be observation-only");
    assert!(off.msgs_sent > 0, "the workload actually communicates");

    // And the disabled registry captured no events or samples.
    for t in e_off.cluster().telemetries() {
        let (recorded, dropped) = t.trace_volume();
        assert_eq!((recorded, dropped), (0, 0));
        assert_eq!(t.read_rtt_snapshot().count(), 0);
        assert_eq!(t.flush_fill_snapshot().count(), 0);
    }
}
