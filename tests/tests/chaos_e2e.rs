//! Chaos acceptance tests: the reliability protocol under deterministic
//! fault injection.
//!
//! * Property: any plan of drops/duplicates/reorders (crash disabled)
//!   yields **bit-identical** results to a fault-free run. Hop-distance is
//!   the probe kernel — its `i64` `Min`-reductions are order-independent,
//!   so exactly-once delivery implies exact equality (no f64 slack).
//! * Integration: crashing one machine of four mid-job surfaces
//!   `Err(JobError::MachineDown)` in bounded time, every thread joins at
//!   teardown, and the cluster stays cleanly dead afterwards.

use pgxd::{Engine, FaultPlan, JobError};
use pgxd_algorithms::{try_hopdist, try_pagerank_pull};
use pgxd_graph::generate;
use proptest::prelude::*;
use std::time::{Duration, Instant};

const MACHINES: usize = 4;

fn engine_with(plan: FaultPlan, g: &pgxd_graph::Graph) -> Engine {
    Engine::builder()
        .machines(MACHINES)
        .workers(2)
        .fault(plan)
        .reliability(true)
        .build(g)
        .expect("engine")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Exactly-once delivery: results never depend on the fault schedule.
    #[test]
    fn lossy_plans_preserve_results_bit_for_bit(
        seed in any::<u64>(),
        drop in 0u16..80,
        dup in 0u16..80,
        reorder in 0u16..80,
    ) {
        let g = generate::rmat(7, 6, generate::RmatParams::skewed(), 77);

        let mut clean = engine_with(FaultPlan::none(), &g);
        let baseline = try_hopdist(&mut clean, 0).unwrap();

        let plan = FaultPlan::lossy(seed, drop, dup, reorder);
        let mut chaotic = engine_with(plan, &g);
        let r = try_hopdist(&mut chaotic, 0).unwrap();

        // i64 Min-reduction: equality is exact, not approximate.
        prop_assert_eq!(&baseline.hops, &r.hops);
        prop_assert_eq!(baseline.iterations, r.iterations);

        // Every dropped *reliable* envelope must have been repaired by a
        // retransmit (dropped heartbeats/acks don't oblige one).
        let injected = chaotic.cluster().fabric().fault_counters().unwrap_or_default();
        let stats = chaotic.cluster().total_stats();
        if injected.dropped_reliable > 0 {
            prop_assert!(
                stats.retransmits > 0,
                "{} reliable drops injected but nothing was retransmitted",
                injected.dropped_reliable
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The worst non-lossy schedule the fabric can produce: EVERY reliable
    /// envelope duplicated and EVERY envelope reordered (both rates at
    /// 1000‰), simultaneously. The dedup/ack windows must map the flood
    /// onto exactly-once delivery — bit-identical results — for any seed.
    #[test]
    fn max_rate_dup_reorder_is_exactly_once(seed in any::<u64>()) {
        let g = generate::rmat(7, 6, generate::RmatParams::skewed(), 77);

        let mut clean = engine_with(FaultPlan::none(), &g);
        let baseline = try_hopdist(&mut clean, 0).unwrap();

        let mut chaotic = engine_with(FaultPlan::lossy(seed, 0, 1000, 1000), &g);
        let r = try_hopdist(&mut chaotic, 0).unwrap();
        prop_assert_eq!(&baseline.hops, &r.hops);
        prop_assert_eq!(baseline.iterations, r.iterations);

        let injected = chaotic.cluster().fabric().fault_counters().unwrap_or_default();
        prop_assert!(
            injected.duplicated_reliable > 0,
            "a 1000‰ dup rate injected no duplicates"
        );
        let stats = chaotic.cluster().total_stats();
        prop_assert!(
            stats.dup_suppressed >= injected.duplicated_reliable,
            "every injected duplicate must hit a dedup window \
             ({} injected, {} suppressed)",
            injected.duplicated_reliable,
            stats.dup_suppressed
        );
    }
}

/// Kill one machine of four mid-iteration: the run must fail — not hang —
/// with a structured `MachineDown`, within the watchdog deadline, and the
/// engine must still tear down (joining all threads) afterwards.
#[test]
fn machine_crash_fails_cleanly_without_hanging() {
    // The scenario runs on a helper thread so a protocol bug that hangs
    // the cluster fails this test instead of wedging the whole suite.
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let g = generate::rmat(8, 6, generate::RmatParams::skewed(), 78);
        let mut engine = engine_with(FaultPlan::crash(2, 1_000), &g);

        let t0 = Instant::now();
        let first = try_pagerank_pull(&mut engine, 0.85, 50, 0.0);
        let elapsed = t0.elapsed();

        // A second job on the dead cluster must fail fast with the same
        // error, not attempt to run.
        let t1 = Instant::now();
        let second = try_pagerank_pull(&mut engine, 0.85, 50, 0.0);
        let fast = t1.elapsed();

        drop(engine); // joins every worker/copier/poller thread
        let _ = tx.send((first, elapsed, second, fast));
    });

    let (first, elapsed, second, fast) = rx
        .recv_timeout(Duration::from_secs(120))
        .expect("crash scenario hung: threads never joined");

    match first {
        Err(JobError::MachineDown { machine }) => {
            assert_eq!(machine, 2, "blame must land on the crashed machine")
        }
        other => panic!("expected MachineDown, got {other:?}"),
    }
    // Watchdog deadline is 500ms; allow generous slack for a loaded CI
    // host, but far below "hung".
    assert!(
        elapsed < Duration::from_secs(60),
        "abort took {elapsed:?} — watchdog missed"
    );
    assert!(
        matches!(second, Err(JobError::MachineDown { .. })),
        "aborted cluster must stay dead, got {second:?}"
    );
    assert!(
        fast < Duration::from_secs(5),
        "post-abort job should fail immediately, took {fast:?}"
    );
}

/// The lossy sweep at a fixed, aggressive rate — an anchor alongside the
/// randomized property. 15% drop / 10% dup over the job's hundreds of
/// reliable envelopes makes zero injected faults astronomically unlikely,
/// so the telemetry assertions can be unconditional.
#[test]
fn aggressive_fixed_plan_is_exactly_once() {
    let g = generate::rmat(7, 6, generate::RmatParams::skewed(), 79);
    let mut clean = engine_with(FaultPlan::none(), &g);
    let baseline = try_hopdist(&mut clean, 0).unwrap();

    let mut chaotic = engine_with(FaultPlan::lossy(0xDEAD_BEEF, 150, 100, 50), &g);
    let r = try_hopdist(&mut chaotic, 0).unwrap();
    assert_eq!(baseline.hops, r.hops);

    let injected = chaotic
        .cluster()
        .fabric()
        .fault_counters()
        .unwrap_or_default();
    assert!(injected.dropped_reliable > 0, "plan injected no data drops");
    assert!(
        injected.duplicated_reliable > 0,
        "plan injected no data dups"
    );
    let stats = chaotic.cluster().total_stats();
    assert!(stats.retransmits > 0, "15% drops must force retransmits");
    assert!(
        stats.dup_suppressed > 0,
        "10% dups must trip the dedup windows"
    );
}
