//! Property-based integration tests: the distributed engine must agree
//! with the sequential references on *arbitrary* graphs and
//! configurations, and core invariants must hold under random workloads.

use pgxd::{Dir, EdgeCtx, EdgeTask, Engine, JobSpec, NodeCtx, Prop, ReduceOp};
use pgxd_algorithms as algos;
use pgxd_baselines::seq;
use pgxd_graph::builder::graph_from_edges;
use pgxd_graph::{Graph, NodeId};
use proptest::prelude::*;

/// An arbitrary small digraph: up to `n` nodes, up to `m` edges.
fn arb_graph(n: usize, m: usize) -> impl Strategy<Value = Graph> {
    (
        2..n,
        prop::collection::vec((0..n as u32, 0..n as u32), 0..m),
    )
        .prop_map(|(nodes, edges)| {
            let edges: Vec<(NodeId, NodeId)> = edges
                .into_iter()
                .map(|(a, b)| (a % nodes as u32, b % nodes as u32))
                .collect();
            graph_from_edges(nodes, edges)
        })
}

fn engine(machines: usize, ghosts: Option<usize>, g: &Graph) -> Engine {
    Engine::builder()
        .machines(machines)
        .workers(1)
        .copiers(1)
        .buffer_bytes(256)
        .chunk_edges(64)
        .ghost_threshold(ghosts)
        .build(g)
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn wcc_agrees_with_reference(g in arb_graph(40, 120), machines in 1usize..5) {
        let reference = seq::wcc(&g);
        let mut e = engine(machines, Some(4), &g);
        let got = algos::try_wcc(&mut e).unwrap();
        prop_assert_eq!(got.component, reference);
    }

    #[test]
    fn bfs_agrees_with_reference(g in arb_graph(40, 120), machines in 1usize..5, root in 0u32..10) {
        let root = root % g.num_nodes() as u32;
        let reference = seq::bfs(&g, root);
        let mut e = engine(machines, None, &g);
        let got = algos::try_hopdist(&mut e, root).unwrap();
        prop_assert_eq!(got.hops, reference);
    }

    #[test]
    fn pagerank_pull_push_and_reference_agree(g in arb_graph(32, 100), machines in 1usize..4) {
        let reference = seq::pagerank(&g, 0.85, 4);
        let mut e1 = engine(machines, Some(2), &g);
        let pull = algos::try_pagerank_pull(&mut e1, 0.85, 4, 0.0).unwrap();
        let mut e2 = engine(machines, None, &g);
        let push = algos::try_pagerank_push(&mut e2, 0.85, 4, 0.0).unwrap();
        for ((r, a), b) in reference.iter().zip(&pull.scores).zip(&push.scores) {
            prop_assert!((r - a).abs() < 1e-9, "pull {} vs {}", a, r);
            prop_assert!((r - b).abs() < 1e-9, "push {} vs {}", b, r);
        }
    }

    #[test]
    fn kcore_agrees_with_reference(g in arb_graph(24, 80), machines in 1usize..4) {
        let (rk, rc) = seq::kcore(&g);
        let mut e = engine(machines, Some(3), &g);
        let got = algos::try_kcore(&mut e, i64::MAX).unwrap();
        prop_assert_eq!(got.max_core, rk);
        prop_assert_eq!(got.core, rc);
    }

    /// Conservation law: pushing `Sum(1)` along every edge must total the
    /// edge count, no matter how edges cross machines or ghosts.
    #[test]
    fn edge_count_conservation(g in arb_graph(40, 150), machines in 1usize..5,
                               ghosts in prop::option::of(0usize..6)) {
        struct CountOne { acc: Prop<i64>, active: Prop<bool> }
        impl EdgeTask for CountOne {
            fn filter(&self, ctx: &mut NodeCtx<'_, '_>) -> bool { ctx.get(self.active) }
            fn run(&self, ctx: &mut EdgeCtx<'_, '_>) {
                ctx.write_nbr(self.acc, ReduceOp::Sum, 1i64);
            }
        }
        let mut e = engine(machines, ghosts, &g);
        let acc = e.add_prop("acc", 0i64);
        let active = e.add_prop("active", true);
        e.run_edge_job(
            Dir::Out,
            &JobSpec::new().reduce(acc, ReduceOp::Sum),
            CountOne { acc, active },
        );
        let total: i64 = e.reduce(acc, ReduceOp::Sum);
        prop_assert_eq!(total as usize, g.num_edges());
        // Per-node: the accumulated value must equal the in-degree.
        let per_node = e.gather::<i64>(acc);
        for (v, &x) in per_node.iter().enumerate() {
            prop_assert_eq!(x as usize, g.in_degree(v as u32));
        }
    }

    /// Pull-side mirror of the conservation law: reading a constant from
    /// every out-neighbor and summing locally counts each node's
    /// out-degree.
    #[test]
    fn pull_reads_count_out_degree(g in arb_graph(32, 100), machines in 1usize..4) {
        struct PullOne { one: Prop<i64>, acc: Prop<i64> }
        impl EdgeTask for PullOne {
            fn run(&self, ctx: &mut EdgeCtx<'_, '_>) {
                ctx.read_nbr(self.one);
            }
            fn read_done(&self, ctx: &mut pgxd::ReadDoneCtx<'_, '_>) {
                let v: i64 = ctx.value();
                let cur: i64 = ctx.get(self.acc);
                ctx.set(self.acc, cur + v);
            }
        }
        let mut e = engine(machines, Some(2), &g);
        let one = e.add_prop("one", 1i64);
        let acc = e.add_prop("acc2", 0i64);
        e.run_edge_job(Dir::Out, &JobSpec::new().read(one), PullOne { one, acc });
        let per_node = e.gather::<i64>(acc);
        for (v, &x) in per_node.iter().enumerate() {
            prop_assert_eq!(x as usize, g.out_degree(v as u32));
        }
    }

    /// Min-reductions are order-independent: pushing random values with
    /// `Min` must yield the per-node minimum regardless of machine count.
    #[test]
    fn min_reduction_is_deterministic(g in arb_graph(24, 80),
                                      seed in 0u64..1000,
                                      machines in 1usize..4) {
        struct PushVal { val: Prop<i64>, dst: Prop<i64> }
        impl EdgeTask for PushVal {
            fn run(&self, ctx: &mut EdgeCtx<'_, '_>) {
                let v = ctx.get(self.val);
                ctx.write_nbr(self.dst, ReduceOp::Min, v);
            }
        }
        // Deterministic pseudo-random node values.
        let vals: Vec<i64> = (0..g.num_nodes())
            .map(|v| ((v as u64).wrapping_mul(0x9E3779B9).wrapping_add(seed) % 1000) as i64)
            .collect();
        let mut e = engine(machines, Some(3), &g);
        let val = e.add_prop("val", 0i64);
        let dst = e.add_prop("dst", i64::MAX);
        for (v, &x) in vals.iter().enumerate() {
            e.set(val, v as u32, x);
        }
        e.run_edge_job(
            Dir::Out,
            &JobSpec::new().read(val).reduce(dst, ReduceOp::Min),
            PushVal { val, dst },
        );
        let got = e.gather::<i64>(dst);
        for v in 0..g.num_nodes() as u32 {
            let expect = g
                .in_neighbors(v)
                .iter()
                .map(|&t| vals[t as usize])
                .min()
                .unwrap_or(i64::MAX);
            prop_assert_eq!(got[v as usize], expect, "node {}", v);
        }
    }
}
