//! Property-based tests of the substrate layers: graph construction,
//! partitioning, ghost tables, chunking, and the wire format — invariants
//! that must hold for arbitrary inputs.

use pgxd_graph::builder::graph_from_edges;
use pgxd_graph::{Graph, NodeId};
use pgxd_runtime::chunk::make_chunks;
use pgxd_runtime::config::ChunkingMode;
use pgxd_runtime::ghost::GhostTable;
use pgxd_runtime::localgraph::LocalGraph;
use pgxd_runtime::partition::Partitioning;
use pgxd_runtime::props::{bottom_bits, reduce_bits, ReduceOp, TypeTag};
use proptest::prelude::*;

fn arb_graph(n: usize, m: usize) -> impl Strategy<Value = Graph> {
    (
        2..n,
        prop::collection::vec((0..n as u32, 0..n as u32), 0..m),
    )
        .prop_map(|(nodes, edges)| {
            let edges: Vec<(NodeId, NodeId)> = edges
                .into_iter()
                .map(|(a, b)| (a % nodes as u32, b % nodes as u32))
                .collect();
            graph_from_edges(nodes, edges)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn built_graphs_are_structurally_valid(g in arb_graph(64, 256)) {
        prop_assert!(g.validate().is_ok());
    }

    #[test]
    fn transpose_preserves_edge_multiset(g in arb_graph(48, 160)) {
        // (src,dst) multiset of the forward view == (dst,src) of reverse.
        let mut fwd: Vec<(u32, u32)> =
            g.out_csr().iter_edges().map(|(s, _, d)| (s, d)).collect();
        let mut rev: Vec<(u32, u32)> =
            g.in_csr().iter_edges().map(|(d, _, s)| (s, d)).collect();
        fwd.sort_unstable();
        rev.sort_unstable();
        prop_assert_eq!(fwd, rev);
    }

    #[test]
    fn partitions_tile_the_vertex_space(g in arb_graph(64, 200), p in 1usize..9) {
        for mode in [
            pgxd_runtime::config::PartitioningMode::Vertex,
            pgxd_runtime::config::PartitioningMode::Edge,
        ] {
            let part = Partitioning::build(&g, p, mode);
            prop_assert!(part.validate().is_ok());
            prop_assert_eq!(part.num_partitions(), p);
            // Every vertex has exactly one owner and a consistent offset.
            for v in 0..g.num_nodes() as u32 {
                let m = part.owner(v);
                prop_assert!(part.start(m) <= v && v < part.end(m));
                prop_assert_eq!(part.start(m) + part.local_offset(v), v);
            }
        }
    }

    #[test]
    fn fragments_cover_every_edge_exactly_once(g in arb_graph(40, 150), p in 1usize..6,
                                               threshold in prop::option::of(0usize..8)) {
        let part = Partitioning::build(&g, p, pgxd_runtime::config::PartitioningMode::Edge);
        let part = std::sync::Arc::new(part);
        let ghosts = GhostTable::build(&g, threshold);
        let mut out_edges = 0usize;
        let mut in_edges = 0usize;
        for m in 0..p as u16 {
            let f = LocalGraph::build(&g, &part, &ghosts, m);
            out_edges += f.out.num_edges();
            in_edges += f.inn.num_edges();
            // Degrees of owned vertices match the global graph.
            for v in 0..f.num_local() {
                let global = f.to_global(v);
                prop_assert_eq!(f.out.degree(v), g.out_degree(global));
                prop_assert_eq!(f.inn.degree(v), g.in_degree(global));
            }
            // Encoded targets must be resolvable.
            for &t in &f.out.targets {
                if t.is_remote() {
                    let gid = t.global_id();
                    prop_assert!((gid.machine() as usize) < p);
                    prop_assert!(gid.machine() != m, "remote target on own machine");
                } else {
                    prop_assert!(t.local_index() < f.num_local() + f.num_ghosts());
                }
            }
        }
        prop_assert_eq!(out_edges, g.num_edges());
        prop_assert_eq!(in_edges, g.num_edges());
    }

    #[test]
    fn ghosted_targets_never_remote(g in arb_graph(40, 150), p in 2usize..5) {
        // With threshold 0, every vertex with any degree is ghosted, so no
        // encoded target may be remote.
        let part = std::sync::Arc::new(
            Partitioning::build(&g, p, pgxd_runtime::config::PartitioningMode::Edge));
        let ghosts = GhostTable::build(&g, Some(0));
        for m in 0..p as u16 {
            let f = LocalGraph::build(&g, &part, &ghosts, m);
            for &t in f.out.targets.iter().chain(&f.inn.targets) {
                prop_assert!(!t.is_remote());
            }
        }
    }

    #[test]
    fn chunks_partition_the_node_range(row in prop::collection::vec(0usize..40, 1..80),
                                       target in 1usize..64) {
        // Build a monotone row_ptr from arbitrary degrees.
        let mut row_ptr = vec![0usize];
        for d in &row {
            row_ptr.push(row_ptr.last().unwrap() + d);
        }
        let n = row.len();
        for mode in [ChunkingMode::Node, ChunkingMode::Edge] {
            let chunks = make_chunks(&row_ptr, n, mode, target);
            let mut covered = 0usize;
            let mut prev_end = 0usize;
            for c in &chunks {
                prop_assert_eq!(c.start, prev_end, "chunks must be contiguous");
                prop_assert!(c.end > c.start, "chunks must be non-empty");
                covered += c.len();
                prev_end = c.end;
            }
            prop_assert_eq!(covered, n);
        }
    }

    #[test]
    fn reduce_ops_are_idempotent_where_expected(bits in any::<u64>()) {
        // Min/Max/Or/And are idempotent: reduce(x, x) == x.
        for tag in [TypeTag::I64, TypeTag::U64, TypeTag::U32] {
            let mask = match tag {
                TypeTag::U32 => u32::MAX as u64,
                _ => u64::MAX,
            };
            let x = bits & mask;
            for op in [ReduceOp::Min, ReduceOp::Max, ReduceOp::Or, ReduceOp::And] {
                prop_assert_eq!(reduce_bits(tag, op, x, x), x, "{:?} {:?}", tag, op);
            }
        }
    }

    #[test]
    fn bottom_is_identity(bits in any::<u64>()) {
        for tag in [TypeTag::I64, TypeTag::U64, TypeTag::U32] {
            let mask = match tag {
                TypeTag::U32 => u32::MAX as u64,
                _ => u64::MAX,
            };
            let x = bits & mask;
            for op in [ReduceOp::Sum, ReduceOp::Min, ReduceOp::Max, ReduceOp::Or] {
                let b = bottom_bits(tag, op);
                prop_assert_eq!(reduce_bits(tag, op, b, x), x, "{:?} {:?}", tag, op);
            }
        }
    }

    #[test]
    fn wire_entries_roundtrip(prop_id in any::<u16>(), offset in any::<u32>(),
                              bits in any::<u64>(), op_raw in 0u8..6) {
        use pgxd_runtime::message::*;
        let op = pgxd_runtime::props::ReduceOp::from_u8(op_raw).unwrap();
        let mut buf = Vec::new();
        push_read_entry(&mut buf, prop_id, offset);
        prop_assert_eq!(read_entry(&buf, 0), (prop_id, offset));
        let mut buf = Vec::new();
        push_mut_entry(&mut buf, prop_id, op, offset, bits);
        prop_assert_eq!(mut_entry(&buf, 0), (prop_id, op, offset, bits));
        let mut buf = Vec::new();
        push_resp_entry(&mut buf, bits);
        prop_assert_eq!(resp_entry(&buf, 0), bits);
    }

    #[test]
    fn binary_io_roundtrips(g in arb_graph(32, 100)) {
        let mut buf = Vec::new();
        pgxd_graph::io::write_binary(&g, &mut buf).unwrap();
        let g2 = pgxd_graph::io::read_binary(&buf[..]).unwrap();
        prop_assert_eq!(g.out_csr(), g2.out_csr());
    }

    #[test]
    fn text_io_roundtrips(g in arb_graph(32, 100)) {
        let mut buf = Vec::new();
        pgxd_graph::io::write_text_edge_list(&g, &mut buf).unwrap();
        let g2 = pgxd_graph::io::read_text_edge_list(&buf[..]).unwrap();
        prop_assert_eq!(g.out_csr().col_idx(), g2.out_csr().col_idx());
        // Node count may differ if trailing vertices are isolated; edge
        // structure must match for the covered prefix.
        prop_assert_eq!(g.num_edges(), g2.num_edges());
    }
}
