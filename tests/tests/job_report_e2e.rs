//! End-to-end per-job cost attribution: three concurrent sessions run
//! jobs through the serve layer and every completion's [`JobReport`]
//! must carry a per-job execution record whose wire and time attribution
//! reconciles with the machine-level totals — jobs are serialized on the
//! dispatcher, so summing the per-job windows has to recover (almost)
//! everything the machines did, with only inter-job background traffic
//! (heartbeats, stray acks) left over. The Chrome trace export must grow
//! a per-job span lane for each served job.
//!
//! [`JobReport`]: pgxd::serve::JobReport

use pgxd::serve::{JobOutcome, JobReport, Lane};
use pgxd::Engine;
use pgxd_algorithms as algos;
use pgxd_graph::generate::{self, RmatParams};
use pgxd_runtime::stats::StatsSnapshot;
use pgxd_runtime::telemetry::export::json::Value;
use std::time::Duration;

const MACHINES: usize = 4;

fn engine(g: &pgxd_graph::Graph) -> Engine {
    Engine::builder()
        .machines(MACHINES)
        .workers(2)
        .copiers(1)
        .telemetry(true)
        .build(g)
        .unwrap()
}

#[test]
fn job_reports_reconcile_with_machine_totals() {
    let g = generate::rmat(8, 6, RmatParams::skewed(), 4107);
    let engine = engine(&g);
    // Machine-level counters survive `into_server` via their Arcs, so the
    // ground truth is read outside the serve layer entirely.
    let machine_stats: Vec<_> = engine
        .cluster()
        .machines()
        .iter()
        .map(|m| m.stats.clone())
        .collect();
    let totals = |stats: &[std::sync::Arc<pgxd_runtime::stats::MachineStats>]| {
        stats
            .iter()
            .map(|s| s.snapshot())
            .fold(StatsSnapshot::default(), |a, b| a + b)
    };
    let before = totals(&machine_stats);

    let server = engine.into_server();
    let reports: Vec<JobReport> = std::thread::scope(|scope| {
        let pr = scope.spawn(|| {
            let session = server.session("ranker");
            let (res, report) = session
                .submit(Lane::Interactive, 4, |e: &mut Engine, cancel| {
                    Ok(algos::try_pagerank_pull_with(e, 0.85, 8, 0.0, cancel)?.scores)
                })
                .unwrap()
                .join_with_report();
            res.unwrap();
            report.unwrap()
        });
        let wcc = scope.spawn(|| {
            let session = server.session("components");
            let (res, report) = session
                .submit(Lane::Batch, 4, |e: &mut Engine, cancel| {
                    Ok(algos::try_wcc_with(e, cancel)?.component)
                })
                .unwrap()
                .join_with_report();
            res.unwrap();
            report.unwrap()
        });
        let hops = scope.spawn(|| {
            let session = server.session("bfs");
            let (res, report) = session
                .submit(Lane::Interactive, 3, |e: &mut Engine, _| {
                    Ok(algos::try_hopdist(e, 0)?.hops)
                })
                .unwrap()
                .join_with_report();
            res.unwrap();
            report.unwrap()
        });
        vec![
            pr.join().unwrap(),
            wcc.join().unwrap(),
            hops.join().unwrap(),
        ]
    });
    let engine = server.shutdown();
    let after = totals(&machine_stats);

    // --- per-job execution records -------------------------------------
    let mut sessions = std::collections::HashSet::new();
    for r in &reports {
        assert_eq!(r.outcome, JobOutcome::Done);
        sessions.insert(r.session);
        let exec = r.exec.as_ref().expect("cluster engine tracks JobExec");
        assert_eq!(exec.ctx.job, r.job);
        assert!(r.run > Duration::ZERO);
        // Time attribution: each lane of the breakdown ran, and their sum
        // cannot meaningfully exceed the time the job held the cluster
        // (slack covers timer skew around phase edges).
        let attributed = r.compute() + r.comm() + r.drain() + r.checkpoint();
        assert!(r.compute() > Duration::ZERO, "job {} compute", r.job);
        assert!(r.comm() > Duration::ZERO, "job {} comm", r.job);
        assert!(r.drain() > Duration::ZERO, "job {} drain", r.job);
        assert!(
            attributed <= r.run.mul_f64(1.25) + Duration::from_millis(50),
            "job {}: attributed {attributed:?} vs run {:?}",
            r.job,
            r.run
        );
        // Worker-recorded wire attribution is live and consistent with
        // the job's own machine-counter window.
        assert!(r.wire_bytes() > 0, "job {} sealed payload bytes", r.job);
        assert!(r.wire_msgs() > 0);
        assert!(r.wire_bytes() <= exec.traffic.bytes_sent);
        assert!(r.wire_msgs() <= exec.traffic.msgs_sent);
        // Causal span skeleton: phases were reconstructed from the tracer.
        assert!(!r.phases().is_empty(), "job {} has phase spans", r.job);
    }
    assert_eq!(sessions.len(), 3, "three distinct sessions reported");

    // --- attribution sums to machine-level totals ----------------------
    // Jobs are serialized on the dispatcher, so their stat windows are
    // disjoint: the sum can never exceed the machine delta, and all that
    // may be missing is inter-job background traffic (heartbeats carry
    // empty payloads, so the byte ledger should be nearly exact).
    let job_bytes: u64 = reports
        .iter()
        .map(|r| r.exec.as_ref().unwrap().traffic.bytes_sent)
        .sum();
    let job_msgs: u64 = reports
        .iter()
        .map(|r| r.exec.as_ref().unwrap().traffic.msgs_sent)
        .sum();
    let machine_bytes = after.bytes_sent - before.bytes_sent;
    let machine_msgs = after.msgs_sent - before.msgs_sent;
    assert!(machine_bytes > 0 && machine_msgs > 0);
    assert!(
        job_bytes <= machine_bytes,
        "job windows are disjoint: {job_bytes} vs {machine_bytes}"
    );
    assert!(
        job_bytes * 10 >= machine_bytes * 9,
        "per-job byte attribution covers >= 90% of machine totals \
         ({job_bytes} of {machine_bytes})"
    );
    assert!(job_msgs <= machine_msgs);
    assert!(
        job_msgs * 2 >= machine_msgs,
        "per-job message attribution covers >= 50% of machine totals \
         ({job_msgs} of {machine_msgs}; the rest is heartbeats/acks)"
    );

    // --- Chrome trace grows per-job span lanes -------------------------
    let trace = Value::parse(&engine.cluster().trace_json()).expect("trace parses");
    let events = trace
        .get("traceEvents")
        .and_then(Value::as_arr)
        .expect("traceEvents");
    let jobs_pid = MACHINES as u64;
    let job_lane_named = events.iter().any(|e| {
        e.get("ph").and_then(Value::as_str) == Some("M")
            && e.get("pid").and_then(Value::as_u64) == Some(jobs_pid)
            && e.get("name").and_then(Value::as_str) == Some("process_name")
    });
    assert!(job_lane_named, "synthetic 'jobs' process is labeled");
    for r in &reports {
        let has_run_span = events.iter().any(|e| {
            e.get("ph").and_then(Value::as_str) == Some("B")
                && e.get("pid").and_then(Value::as_u64) == Some(jobs_pid)
                && e.get("tid").and_then(Value::as_u64) == Some(r.job)
                && e.get("name")
                    .and_then(Value::as_str)
                    .is_some_and(|n| n.starts_with("run job"))
        });
        assert!(has_run_span, "job {} has a run span in its lane", r.job);
    }
}

/// A cancelled-in-queue job produces no report; a dispatched job that
/// fails still reports, with the `Failed` outcome and its queue/run
/// split.
#[test]
fn failed_jobs_still_report() {
    let g = generate::ring(64);
    let server = engine(&g).into_server();
    let session = server.session("t");
    let (res, report) = session
        .submit(Lane::Interactive, 1, |_: &mut Engine, _| {
            Err::<(), _>(pgxd::JobError::Protocol("synthetic failure".into()))
        })
        .unwrap()
        .join_with_report();
    assert!(res.is_err());
    let r = report.expect("dispatched jobs always report");
    assert_eq!(r.outcome, JobOutcome::Failed);
    assert!(r.exec.is_some(), "window closed even on failure");
    drop(session);
    server.shutdown();
}
