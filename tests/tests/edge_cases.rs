//! Adversarial and degenerate inputs across the whole stack.

use pgxd::Engine;
use pgxd_algorithms as algos;
use pgxd_baselines::seq;
use pgxd_graph::builder::graph_from_edges;
use pgxd_graph::generate;

fn engine(machines: usize, g: &pgxd_graph::Graph) -> Engine {
    Engine::builder()
        .machines(machines)
        .workers(1)
        .copiers(1)
        .ghost_threshold(Some(8))
        .build(g)
        .unwrap()
}

#[test]
fn edgeless_graph() {
    let g = graph_from_edges(10, vec![]);
    let mut e = engine(3, &g);
    let w = algos::try_wcc(&mut e).unwrap();
    assert_eq!(w.num_components, 10);
    let pr = algos::try_pagerank_push(&mut e, 0.85, 3, 0.0).unwrap();
    for &s in &pr.scores {
        assert!((s - 0.15 / 10.0).abs() < 1e-12);
    }
    let kc = algos::try_kcore(&mut e, 8).unwrap();
    assert_eq!(kc.max_core, 0);
}

#[test]
fn two_node_graph_many_machines() {
    let g = graph_from_edges(2, vec![(0, 1)]);
    let mut e = engine(4, &g); // more machines than meaningful partitions
    let h = algos::try_hopdist(&mut e, 0).unwrap();
    assert_eq!(h.hops, vec![0, 1]);
}

#[test]
fn self_loops_survive_the_stack() {
    let g = graph_from_edges(4, vec![(0, 0), (0, 1), (1, 1), (1, 2), (3, 3)]);
    let mut e = engine(2, &g);
    let w = algos::try_wcc(&mut e).unwrap();
    assert_eq!(w.component, seq::wcc(&g));
    let h = algos::try_hopdist(&mut e, 0).unwrap();
    assert_eq!(h.hops, seq::bfs(&g, 0));
}

#[test]
fn parallel_edges_count_twice() {
    let g = graph_from_edges(3, vec![(0, 1), (0, 1), (1, 2)]);
    let mut e = engine(2, &g);
    let pr = algos::try_pagerank_push(&mut e, 0.85, 5, 0.0).unwrap();
    let reference = seq::pagerank(&g, 0.85, 5);
    for (a, b) in pr.scores.iter().zip(&reference) {
        assert!((a - b).abs() < 1e-12);
    }
}

#[test]
fn single_giant_hub() {
    // One vertex with edges to everyone: the worst case for vertex
    // partitioning, the best case for ghosting.
    let n = 500usize;
    let mut edges = Vec::new();
    for v in 1..n as u32 {
        edges.push((0u32, v));
        edges.push((v, 0u32));
    }
    let g = graph_from_edges(n, edges);
    let mut e = engine(4, &g);
    assert!(!e.cluster().ghosts().is_empty(), "the hub must be ghosted");
    let w = algos::try_wcc(&mut e).unwrap();
    assert_eq!(w.num_components, 1);
    let (rk, rc) = seq::kcore(&g);
    let kc = algos::try_kcore(&mut e, i64::MAX).unwrap();
    assert_eq!(kc.max_core, rk);
    assert_eq!(kc.core, rc);
}

#[test]
fn star_traffic_with_and_without_ghosts() {
    // Quantitative Figure-6a style check at test scale: ghosting the hub
    // must reduce remote write entries to (almost) nothing on a star.
    let n = 400usize;
    let mut edges = Vec::new();
    for v in 1..n as u32 {
        edges.push((v, 0u32)); // everyone pushes into the hub
    }
    let g = graph_from_edges(n, edges);

    let mut no_ghost = Engine::builder()
        .machines(4)
        .ghost_threshold(None)
        .build(&g)
        .unwrap();
    let _ = algos::try_pagerank_push(&mut no_ghost, 0.85, 2, 0.0).unwrap();
    let without = no_ghost.cluster().total_stats().write_entries;

    let mut ghosted = Engine::builder()
        .machines(4)
        .ghost_threshold(Some(10))
        .build(&g)
        .unwrap();
    let _ = algos::try_pagerank_push(&mut ghosted, 0.85, 2, 0.0).unwrap();
    let with = ghosted.cluster().total_stats().write_entries;

    assert!(
        with * 10 < without,
        "ghosting the hub should kill ~all remote writes: {with} vs {without}"
    );
}

#[test]
fn long_chain_needs_many_iterations() {
    // A path forces WCC/BFS through hundreds of supersteps — the
    // overhead-bound regime (like KCore in the paper).
    let n = 300usize;
    let g = generate::path(n);
    let mut e = engine(3, &g);
    let h = algos::try_hopdist(&mut e, 0).unwrap();
    assert_eq!(h.iterations, n, "one frontier level per path vertex");
    assert_eq!(h.hops[n - 1], (n - 1) as i64);
}

#[test]
fn disconnected_islands_across_machines() {
    // Many tiny components, each crossing partition boundaries only
    // sometimes.
    let mut edges = Vec::new();
    let islands = 40u32;
    for i in 0..islands {
        let base = i * 3;
        edges.push((base, base + 1));
        edges.push((base + 1, base + 2));
    }
    let g = graph_from_edges((islands * 3) as usize, edges);
    let mut e = engine(4, &g);
    let w = algos::try_wcc(&mut e).unwrap();
    assert_eq!(w.num_components, islands as usize);
}

#[test]
fn zero_weight_edges() {
    let mut b = pgxd_graph::GraphBuilder::new();
    b.add_weighted_edge(0, 1, 0.0)
        .add_weighted_edge(1, 2, 0.0)
        .add_weighted_edge(0, 2, 5.0);
    let g = b.build();
    let mut e = engine(2, &g);
    let d = algos::try_sssp(&mut e, 0).unwrap();
    assert_eq!(d.dist, vec![0.0, 0.0, 0.0]);
}

#[test]
fn engine_survives_many_tiny_jobs() {
    // KCore on a path: hundreds of near-empty parallel steps (the
    // framework-overhead stress of §5.3.1).
    let g = generate::path(64);
    let mut e = engine(3, &g);
    let kc = algos::try_kcore(&mut e, i64::MAX).unwrap();
    let (rk, rc) = seq::kcore(&g);
    assert_eq!(kc.max_core, rk);
    assert_eq!(kc.core, rc);
    assert!(kc.iterations > 10);
}

#[test]
fn dist_barrier_stress() {
    let g = generate::ring(32);
    let mut e = engine(4, &g);
    for _ in 0..100 {
        e.dist_barrier_roundtrip();
    }
}

#[test]
fn rmi_from_algorithm_context() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    // A remote method that counts invocations per machine.
    let g = generate::ring(16);
    let mut e = engine(2, &g);
    let hits = Arc::new(AtomicU64::new(0));
    let hits2 = hits.clone();
    let id = e.register_rmi(Arc::new(move |_m, args: &[u8]| {
        hits2.fetch_add(1, Ordering::SeqCst);
        args.to_vec() // echo
    }));
    assert_eq!(id, 0);

    struct Caller {
        id: u16,
        echoed: pgxd::Prop<i64>,
    }
    impl pgxd::NodeTask for Caller {
        fn run(&self, ctx: &mut pgxd::NodeCtx<'_, '_>) {
            if ctx.node() == 0 {
                ctx.rmi(1, self.id, &7i64.to_le_bytes(), 0);
            }
        }
        fn read_done(&self, ctx: &mut pgxd::ReadDoneCtx<'_, '_>) {
            let v: i64 = ctx.value();
            ctx.set(self.echoed, v);
        }
    }
    let echoed = e.add_prop("echoed", 0i64);
    e.run_node_job(&pgxd::JobSpec::new(), Caller { id, echoed });
    assert_eq!(hits.load(Ordering::SeqCst), 1);
    assert_eq!(e.get::<i64>(echoed, 0), 7);
}

#[test]
fn modeled_network_gives_same_results() {
    // Enabling the InfiniBand-like cost model slows the fabric down but
    // must never change results.
    let g = generate::rmat(7, 4, generate::RmatParams::skewed(), 3010);
    let reference = seq::pagerank(&g, 0.85, 3);
    let mut config = pgxd::Config::test(2);
    config.net = pgxd::NetConfig::infiniband_like();
    let mut e = pgxd::EngineBuilder::from_config(config).build(&g).unwrap();
    let got = algos::try_pagerank_pull(&mut e, 0.85, 3, 0.0).unwrap();
    for (r, x) in reference.iter().zip(&got.scores) {
        assert!((r - x).abs() < 1e-9);
    }
    // The model must have charged virtual wire time.
    let charged: u64 = (0..2)
        .map(|m| e.cluster().fabric().virtual_busy_ns(m))
        .sum();
    assert!(charged > 0, "cost model should have been exercised");
}

#[test]
#[ignore = "soak test: run manually with --ignored (several minutes)"]
fn soak_large_graph_all_algorithms() {
    let g = generate::rmat(14, 16, generate::RmatParams::skewed(), 3011)
        .with_uniform_weights(1.0, 10.0, 3);
    let mut e = Engine::builder()
        .machines(4)
        .workers(2)
        .copiers(2)
        .ghost_threshold(Some(512))
        .build(&g)
        .unwrap();
    let pr = algos::try_pagerank_pull(&mut e, 0.85, 10, 0.0).unwrap();
    assert!(pr.scores.iter().all(|s| s.is_finite()));
    let w = algos::try_wcc(&mut e).unwrap();
    assert_eq!(w.component, seq::wcc(&g));
    let d = algos::try_sssp(&mut e, 0).unwrap();
    let rd = seq::sssp(&g, 0);
    for (a, b) in d.dist.iter().zip(&rd) {
        assert!((a - b).abs() < 1e-9 || (a.is_infinite() && b.is_infinite()));
    }
    let kc = algos::try_kcore(&mut e, i64::MAX).unwrap();
    assert_eq!(kc.max_core, seq::kcore(&g).0);
}
