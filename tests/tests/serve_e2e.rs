//! End-to-end job-server tests: concurrent sessions over one shared
//! graph produce bit-identical results to solo runs, cancellation frees
//! a job's columns, deadlines surface as structured errors, and the
//! serving telemetry is populated.

use pgxd::serve::{JobHandle, Lane, ServeEngine};
use pgxd::{Engine, JobError, JobSpec};
use pgxd_algorithms as algos;
use pgxd_graph::generate::{self, RmatParams};
use std::sync::mpsc;
use std::time::Duration;

fn engine(machines: usize, g: &pgxd_graph::Graph) -> Engine {
    Engine::builder()
        .machines(machines)
        .workers(2)
        .copiers(1)
        .build(g)
        .unwrap()
}

/// Three clients on three threads, each running a different algorithm
/// against one served graph. Integer-valued results (WCC labels, hop
/// counts) must be bit-identical to solo runs; PageRank floats are held
/// to 1e-12 — worker interleaving reassociates f64 sums, so even two
/// fresh solo runs differ in the last ulp.
#[test]
fn concurrent_sessions_match_solo_runs() {
    let g = generate::rmat(8, 6, RmatParams::skewed(), 4101);

    let mut solo = engine(4, &g);
    let solo_pr = algos::try_pagerank_pull(&mut solo, 0.85, 12, 0.0)
        .unwrap()
        .scores;
    let solo_wcc = algos::try_wcc(&mut solo).unwrap().component;
    let solo_hops = algos::try_hopdist(&mut solo, 0).unwrap().hops;
    drop(solo);

    let server = engine(4, &g).into_server();
    let (pr, wcc, hops) = std::thread::scope(|scope| {
        let pr = scope.spawn(|| {
            let session = server.session("ranker");
            session
                .submit(Lane::Interactive, 4, |e: &mut Engine, cancel| {
                    Ok(algos::try_pagerank_pull_with(e, 0.85, 12, 0.0, cancel)?.scores)
                })
                .unwrap()
                .join()
                .unwrap()
        });
        let wcc = scope.spawn(|| {
            let session = server.session("components");
            session
                .submit(Lane::Batch, 4, |e: &mut Engine, cancel| {
                    Ok(algos::try_wcc_with(e, cancel)?.component)
                })
                .unwrap()
                .join()
                .unwrap()
        });
        let hops = scope.spawn(|| {
            let session = server.session("bfs");
            session
                .submit(Lane::Interactive, 3, |e: &mut Engine, _| {
                    Ok(algos::try_hopdist(e, 0)?.hops)
                })
                .unwrap()
                .join()
                .unwrap()
        });
        (
            pr.join().unwrap(),
            wcc.join().unwrap(),
            hops.join().unwrap(),
        )
    });

    assert_eq!(pr.len(), solo_pr.len());
    for (a, b) in pr.iter().zip(&solo_pr) {
        assert!((a - b).abs() <= 1e-12, "served {a} vs solo {b}");
    }
    assert_eq!(wcc, solo_wcc, "WCC labels must be bit-identical");
    assert_eq!(hops, solo_hops, "hop counts must be bit-identical");

    let engine = server.shutdown();
    assert_eq!(
        engine.live_prop_ids().len(),
        0,
        "algorithms clean up their scratch columns"
    );
}

/// A job cancelled mid-flight surfaces `JobError::Cancelled` after its
/// current phase and the server reclaims every column the job created.
#[test]
fn mid_flight_cancel_frees_columns() {
    let g = generate::ring(64);
    let server = engine(2, &g).into_server();
    let session = server.session("victim");

    let (started_tx, started_rx) = mpsc::channel::<()>();
    let handle: JobHandle<()> = session
        .submit(Lane::Batch, 2, move |e: &mut Engine, cancel| {
            let a = e.add_prop("scratch_a", 0i64);
            let _b = e.add_prop("scratch_b", 0.0f64);
            started_tx.send(()).unwrap();
            // Keep running one phase at a time until the token fires; the
            // engine bails at a phase boundary with the structured error.
            loop {
                e.try_run_node_job_with(
                    &JobSpec::new(),
                    pgxd::tasks::on_node(move |ctx| {
                        let v: i64 = ctx.get(a);
                        ctx.set(a, v + 1);
                    }),
                    cancel,
                )?;
            }
        })
        .unwrap();

    started_rx.recv().unwrap();
    let job_id = handle.id();
    handle.cancel();
    match handle.join() {
        Err(JobError::Cancelled { job }) => assert_eq!(job, job_id),
        other => panic!("expected Cancelled, got {other:?}"),
    }

    // The cancelled job's columns are reclaimed immediately — a later job
    // in the same server sees a clean slate.
    let probe = session
        .submit(Lane::Interactive, 0, |e: &mut Engine, _| {
            Ok(e.live_prop_ids().len())
        })
        .unwrap();
    assert_eq!(probe.join().unwrap(), 0, "cancelled job leaked columns");

    drop(session);
    server.shutdown();
}

/// A deadline armed at submit covers queue wait plus run time and maps to
/// `JobError::DeadlineExceeded`.
#[test]
fn deadline_cancels_long_job() {
    let g = generate::ring(32);
    let server = engine(2, &g).into_server();
    let session = server.session("slow");
    let handle: JobHandle<()> = session
        .submit_with_deadline(
            Lane::Batch,
            1,
            Duration::from_millis(30),
            |e: &mut Engine, cancel| {
                let p = e.add_prop("spin", 0i64);
                loop {
                    e.try_run_node_job_with(
                        &JobSpec::new(),
                        pgxd::tasks::on_node(move |ctx| {
                            let v: i64 = ctx.get(p);
                            ctx.set(p, v + 1);
                        }),
                        cancel,
                    )?;
                }
            },
        )
        .unwrap();
    assert!(matches!(
        handle.join(),
        Err(JobError::DeadlineExceeded { .. })
    ));
    drop(session);
    let engine = server.shutdown();
    assert_eq!(engine.live_prop_ids().len(), 0);
    let stats = engine.cluster().telemetries()[0].stats().snapshot();
    assert_eq!(stats.jobs_deadline_missed, 1);
}

/// Closing a session cancels its queued jobs and reclaims the columns its
/// finished jobs created, without touching other sessions' columns.
#[test]
fn session_close_is_isolated() {
    let g = generate::ring(24);
    let server = engine(2, &g).into_server();

    let mut alice = server.session("alice");
    let bob = server.session("bob");

    // Alice materialises a column and keeps it (no cleanup in the job).
    alice
        .submit(Lane::Interactive, 1, |e: &mut Engine, _| {
            let p = e.add_prop("alice_col", 1i64);
            e.fill(p, 7);
            Ok(())
        })
        .unwrap()
        .join()
        .unwrap();
    // So does Bob.
    let bob_probe = bob
        .submit(Lane::Interactive, 1, |e: &mut Engine, _| {
            let p = e.add_prop("bob_col", 2i64);
            e.fill(p, 9);
            Ok(p)
        })
        .unwrap()
        .join()
        .unwrap();

    alice.close();

    // Bob's column survives Alice's close; Alice's is gone.
    let (live, bob_val) = bob
        .submit(Lane::Interactive, 0, move |e: &mut Engine, _| {
            Ok((e.live_prop_ids(), e.get(bob_probe, 0)))
        })
        .unwrap()
        .join()
        .unwrap();
    assert_eq!(live, vec![bob_probe.id()], "only bob's column remains");
    assert_eq!(bob_val, 9i64);

    drop(bob);
    let engine = server.shutdown();
    assert_eq!(engine.live_prop_ids().len(), 0);
}

/// The serving counters and queue-wait histogram are populated by a
/// normal workload.
#[test]
fn serving_telemetry_is_populated() {
    let g = generate::ring(16);
    let server = Engine::builder()
        .machines(2)
        .workers(2)
        .copiers(1)
        .telemetry(true)
        .build(&g)
        .unwrap()
        .into_server();
    let session = server.session("t");
    for _ in 0..3 {
        session
            .submit(Lane::Interactive, 0, |_: &mut Engine, _| Ok(()))
            .unwrap()
            .join()
            .unwrap();
    }
    let telemetry = std::sync::Arc::clone(server.telemetry());
    drop(session);
    server.shutdown();

    let stats = telemetry.stats().snapshot();
    assert_eq!(stats.jobs_admitted, 3);
    assert_eq!(stats.jobs_rejected, 0);
    let waits = telemetry.queue_wait_snapshot();
    assert_eq!(waits.count(), 3, "every dispatch records its queue wait");
}
