//! End-to-end integration: full algorithm pipelines on the distributed
//! engine validated against the sequential references, across crates.

use pgxd::Engine;
use pgxd_algorithms as algos;
use pgxd_baselines::seq;
use pgxd_graph::generate::{self, RmatParams};

fn engine(machines: usize, g: &pgxd_graph::Graph) -> Engine {
    Engine::builder()
        .machines(machines)
        .workers(2)
        .copiers(1)
        .ghost_threshold(Some(64))
        .build(g)
        .unwrap()
}

#[test]
fn pagerank_matches_sequential_reference() {
    let g = generate::rmat(9, 6, RmatParams::skewed(), 1001);
    let reference = seq::pagerank(&g, 0.85, 12);
    let mut e = engine(3, &g);
    let got = algos::try_pagerank_pull(&mut e, 0.85, 12, 0.0).unwrap();
    for (r, x) in reference.iter().zip(&got.scores) {
        assert!((r - x).abs() < 1e-9, "{r} vs {x}");
    }
}

#[test]
fn wcc_matches_sequential_reference() {
    let g = generate::rmat(9, 3, RmatParams::skewed(), 1002);
    let reference = seq::wcc(&g);
    let mut e = engine(4, &g);
    let got = algos::try_wcc(&mut e).unwrap();
    assert_eq!(got.component, reference);
}

#[test]
fn sssp_matches_sequential_reference() {
    let g = generate::rmat(8, 5, RmatParams::mild(), 1003).with_uniform_weights(1.0, 9.0, 11);
    let reference = seq::sssp(&g, 3);
    let mut e = engine(3, &g);
    let got = algos::try_sssp(&mut e, 3).unwrap();
    for (r, x) in reference.iter().zip(&got.dist) {
        assert!(
            (r - x).abs() < 1e-9 || (r.is_infinite() && x.is_infinite()),
            "{r} vs {x}"
        );
    }
}

#[test]
fn hopdist_matches_sequential_reference() {
    let g = generate::rmat(9, 4, RmatParams::skewed(), 1004);
    let reference = seq::bfs(&g, 0);
    let mut e = engine(4, &g);
    let got = algos::try_hopdist(&mut e, 0).unwrap();
    assert_eq!(got.hops, reference);
}

#[test]
fn eigenvector_matches_sequential_reference() {
    let g = generate::rmat(8, 5, RmatParams::mild(), 1005);
    let reference = seq::eigenvector(&g, 10);
    let mut e = engine(2, &g);
    let got = algos::try_eigenvector(&mut e, 10, 0.0).unwrap();
    for (r, x) in reference.iter().zip(&got.centrality) {
        assert!((r - x).abs() < 1e-9);
    }
}

#[test]
fn kcore_matches_sequential_reference() {
    let g = generate::rmat(8, 4, RmatParams::skewed(), 1006);
    let (rk, rc) = seq::kcore(&g);
    let mut e = engine(3, &g);
    let got = algos::try_kcore(&mut e, i64::MAX).unwrap();
    assert_eq!(got.max_core, rk);
    assert_eq!(got.core, rc);
}

#[test]
fn whole_suite_chains_on_one_engine() {
    // The §4.2 application model: many algorithms over one loaded graph,
    // creating and dropping temporary properties as they go.
    let g = generate::rmat(8, 6, RmatParams::skewed(), 1007).with_uniform_weights(1.0, 4.0, 5);
    let mut e = engine(3, &g);
    let pr = algos::try_pagerank_pull(&mut e, 0.85, 5, 0.0).unwrap();
    let prp = algos::try_pagerank_push(&mut e, 0.85, 5, 0.0).unwrap();
    let apr = algos::try_pagerank_approx(&mut e, 0.85, 1e-7, 200).unwrap();
    let comps = algos::try_wcc(&mut e).unwrap();
    let dists = algos::try_sssp(&mut e, 0).unwrap();
    let hops = algos::try_hopdist(&mut e, 0).unwrap();
    let ev = algos::try_eigenvector(&mut e, 5, 0.0).unwrap();
    let kc = algos::try_kcore(&mut e, i64::MAX).unwrap();

    // Spot-check consistency between them.
    for (a, b) in pr.scores.iter().zip(&prp.scores) {
        assert!((a - b).abs() < 1e-9, "pull vs push");
    }
    assert!(apr.iterations > 0);
    assert_eq!(comps.component.len(), g.num_nodes());
    // Reachable via weighted edges ⇔ reachable via hops.
    for (d, h) in dists.dist.iter().zip(&hops.hops) {
        assert_eq!(d.is_finite(), *h != i64::MAX);
    }
    assert_eq!(ev.centrality.len(), g.num_nodes());
    assert!(kc.max_core >= 1);
    // After dropping its temporaries, the engine serves fresh jobs.
    let pr2 = algos::try_pagerank_pull(&mut e, 0.85, 5, 0.0).unwrap();
    for (a, b) in pr.scores.iter().zip(&pr2.scores) {
        assert!((a - b).abs() < 1e-12, "engine state leaked between runs");
    }
}

#[test]
fn comparator_engines_agree_with_pgx() {
    use pgxd_baselines::programs::{self, Comparator};
    let g = generate::rmat(8, 4, RmatParams::skewed(), 1008);
    let mut e = engine(2, &g);
    let pgx = algos::try_wcc(&mut e).unwrap().component;
    let gas = programs::wcc(Comparator::Gas, &g, 2);
    let flow = programs::wcc(Comparator::Dataflow, &g, 2);
    assert_eq!(pgx, gas);
    assert_eq!(pgx, flow);
}

#[test]
fn graph_io_to_engine_roundtrip() {
    // Text file -> graph -> binary file -> graph -> engine -> algorithm.
    let g = generate::rmat(7, 4, RmatParams::mild(), 1009);
    let dir = std::env::temp_dir().join("pgxd-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let text = dir.join("g.txt");
    let bin = dir.join("g.bin");
    pgxd_graph::io::write_text_edge_list(&g, std::fs::File::create(&text).unwrap()).unwrap();
    let g1 = pgxd_graph::io::load_path(&text).unwrap();
    pgxd_graph::io::write_binary(&g1, std::fs::File::create(&bin).unwrap()).unwrap();
    let g2 = pgxd_graph::io::load_path(&bin).unwrap();
    // The text format cannot represent trailing isolated vertices, so node
    // counts may shrink; the edge structure must survive both formats.
    assert_eq!(g.out_csr().col_idx(), g2.out_csr().col_idx());
    assert_eq!(g.num_edges(), g2.num_edges());
    let mut e = engine(2, &g2);
    let got = algos::try_wcc(&mut e).unwrap();
    assert_eq!(got.component, seq::wcc(&g2));
    let _ = std::fs::remove_file(text);
    let _ = std::fs::remove_file(bin);
}

#[test]
fn dynamic_graph_snapshots_reload_into_engines() {
    // The §6.4 snapshot model: apply a batch of updates, reload, re-run
    // analytics; answers must track the evolving graph.
    use pgxd_graph::delta::GraphDelta;
    // Two disjoint paths.
    let g0 = pgxd_graph::builder::graph_from_edges(6, vec![(0, 1), (1, 2), (3, 4), (4, 5)]);
    let mut e0 = engine(2, &g0);
    assert_eq!(algos::try_wcc(&mut e0).unwrap().num_components, 2);

    // Epoch 1: bridge the components.
    let mut d = GraphDelta::new();
    d.add_edge(2, 3);
    let g1 = d.apply(&g0);
    let mut e1 = engine(3, &g1);
    assert_eq!(algos::try_wcc(&mut e1).unwrap().num_components, 1);
    let h = algos::try_hopdist(&mut e1, 0).unwrap();
    assert_eq!(h.hops[5], 5);

    // Epoch 2: cut the bridge again and grow the graph.
    let mut d = GraphDelta::new();
    d.remove_edge(2, 3).grow_nodes(8).add_edge(6, 7);
    let g2 = d.apply(&g1);
    let mut e2 = engine(2, &g2);
    let w = algos::try_wcc(&mut e2).unwrap();
    assert_eq!(w.num_components, 3);
    assert_eq!(w.component, seq::wcc(&g2));
}
