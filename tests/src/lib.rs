//! Integration-test crate; see the `tests/tests/` directory.
