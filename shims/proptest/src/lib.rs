//! Minimal `proptest` stand-in for an offline build environment.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the `Strategy` trait with `prop_map`/`boxed`, integer-range
//! and tuple strategies, `any::<T>()`, `prop::collection::vec`,
//! `prop::option::of`, `Just`, `Union` (behind `prop_oneof!`), and the
//! `proptest!`/`prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from upstream, deliberate for this environment:
//! - no shrinking — a failing case reports its deterministic case index
//!   and seed instead of a minimized input;
//! - case generation is seeded from the test's module path and case
//!   number, so every run explores the same inputs (CI-stable);
//! - no persistence files, forking, or timeout handling.

use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

/// Deterministic splitmix64 generator used to drive all strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Seed derived from a test identifier and case index so that every
    /// run of the suite explores the same sequence of inputs.
    pub fn deterministic(test_id: &str, case: u32) -> Self {
        // FNV-1a over the identifier, mixed with the case number.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_id.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::new(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }
}

/// Run-time configuration; only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe view of `Strategy`, for `BoxedStrategy`/`Union`.
trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice between same-valued strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

/// Always produces a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                let v = rng.below(span);
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Uniform in [-1e6, 1e6]: plenty for numeric property tests
        // without manufacturing NaN/Inf edge cases the engine never sees.
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        (unit - 0.5) * 2e6
    }
}

pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `prop::option::of(strategy)`: `None` one time in four.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Mirror of upstream's `prop` path alias (`prop::collection::vec`, ...).
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, Union,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", ::std::stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                ::std::stringify!($lhs), ::std::stringify!($rhs), lhs, rhs));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n  {}",
                ::std::stringify!($lhs), ::std::stringify!($rhs), lhs, rhs,
                ::std::format!($($fmt)+)));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if lhs == rhs {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                ::std::stringify!($lhs),
                ::std::stringify!($rhs),
                lhs
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// The driver macro: expands each `fn name(arg in strategy, ...) { body }`
/// into a `#[test]`-attributed function that runs `config.cases`
/// deterministic cases. The body runs inside a closure returning
/// `Result<(), String>` so that `prop_assert*` can early-return a message.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::deterministic(
                    ::std::concat!(::std::module_path!(), "::", ::std::stringify!($name)),
                    case,
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(msg) = outcome {
                    ::std::panic!(
                        "proptest `{}` failed at case {}/{}:\n{}",
                        ::std::stringify!($name), case, config.cases, msg
                    );
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Op {
        A(u8),
        B,
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![(0u8..7).prop_map(Op::A), Just(Op::B)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in 1usize..4) {
            prop_assert!(x >= 3 && x < 17);
            prop_assert!(y >= 1 && y < 4, "y was {}", y);
        }

        /// Doc comments on cases must parse.
        #[test]
        fn vec_lengths_in_bounds(v in prop::collection::vec(0u8..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for x in &v { prop_assert!(*x < 10); }
        }

        #[test]
        fn tuples_and_maps(pair in (0u32..5, 0u32..5).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair < 9);
        }

        #[test]
        fn oneof_hits_all_arms(ops in prop::collection::vec(arb_op(), 40..60)) {
            // With ~50 draws, both arms must appear.
            prop_assert!(ops.iter().any(|o| matches!(o, Op::A(_))));
            prop_assert!(ops.iter().any(|o| *o == Op::B));
        }

        #[test]
        fn option_of_produces_both(xs in prop::collection::vec(prop::option::of(0u8..4), 30..40)) {
            prop_assert!(xs.iter().any(|x| x.is_none()));
            prop_assert!(xs.iter().any(|x| x.is_some()));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let gen = || {
            let mut rng = crate::TestRng::deterministic("x", 3);
            (0u64..1000).generate(&mut rng)
        };
        assert_eq!(gen(), gen());
    }
}
