//! Minimal `rand` 0.9 stand-in for an offline build environment.
//!
//! Provides a deterministic `SmallRng` (xoshiro256++ seeded via
//! splitmix64, like upstream's small_rng on 64-bit targets),
//! `SeedableRng::seed_from_u64`, and `Rng::random_range` over integer and
//! float ranges — the exact surface the graph generators use. Streams are
//! deterministic per seed but are not bit-compatible with upstream rand;
//! nothing in the workspace depends on upstream's exact streams.

use std::ops::{Range, RangeInclusive};

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range, mirroring
/// `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let v = ((rng.next_u64() as u128) % span) as $t;
                self.start.wrapping_add(v)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                let v = ((rng.next_u64() as u128) % span) as $t;
                lo.wrapping_add(v)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 random bits -> uniform in [0, 1).
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

pub trait Rng: RngCore {
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded with splitmix64 — deterministic and fast.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u32..1_000_000),
                b.random_range(0u32..1_000_000)
            );
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.random_range(10u32..20);
            assert!((10..20).contains(&x));
            let f = rng.random_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
            let i = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn float_range_covers_span() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            let f = rng.random_range(0.0..1.0);
            lo_seen |= f < 0.1;
            hi_seen |= f > 0.9;
        }
        assert!(lo_seen && hi_seen);
    }
}
