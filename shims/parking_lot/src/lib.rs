//! Minimal `parking_lot` stand-in backed by `std::sync`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace patches `parking_lot` with this shim. It exposes exactly the
//! API surface the engine uses: `Mutex`, `Condvar` (with the
//! `wait(&mut guard)` signature), and `RwLock`. Poisoning is swallowed —
//! parking_lot has no poisoning, and the engine's panics already abort the
//! affected test.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

// Opaque Debug (no try_lock introspection): enough for derive(Debug) on
// structs embedding these primitives.
impl<T: ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Mutex { .. }")
    }
}

pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken during wait")
    }
}

/// Result of [`Condvar::wait_for`], mirroring parking_lot's type.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// parking_lot-style wait: re-acquires into the same guard slot.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard already waiting");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    /// parking_lot-style timed wait: re-acquires into the same guard slot
    /// and reports whether the wait hit the timeout.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard already waiting");
        let (inner, res) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        // std does not report the woken count; callers here ignore it.
        0
    }
}

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T: ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("RwLock { .. }")
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn condvar_wait_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            *g = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait(&mut g);
        }
        drop(g);
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(0u32);
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, std::time::Duration::from_millis(5));
        assert!(res.timed_out());
        // The guard is usable again after the timed wait.
        *g += 1;
        assert_eq!(*g, 1);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }
}
