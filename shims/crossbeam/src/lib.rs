//! Minimal `crossbeam` stand-in: an MPMC unbounded channel over
//! `Mutex<VecDeque>` + `Condvar`.
//!
//! The build environment cannot reach crates.io, so the workspace patches
//! `crossbeam` with this shim. Only `crossbeam::channel` is provided, with
//! the exact semantics the engine relies on: cloneable senders *and*
//! receivers (the copier/worker queues are shared MPMC), blocking `recv`,
//! non-blocking `try_recv`/`try_iter`, and disconnect detection when one
//! side is fully dropped.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
        // Receivers currently blocked in `recv`. Senders skip the condvar
        // notification entirely when nobody is waiting, which keeps the
        // per-message cost of a drain-heavy (try_recv) workload to one
        // uncontended lock.
        waiting: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        avail: Condvar,
    }

    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("Receiver { .. }")
        }
    }

    pub struct SendError<T>(pub T);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
                waiting: 0,
            }),
            avail: Condvar::new(),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.inner.state.lock().unwrap();
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.queue.push_back(value);
            let wake = st.waiting > 0;
            drop(st);
            if wake {
                self.inner.avail.notify_one();
            }
            Ok(())
        }

        pub fn is_empty(&self) -> bool {
            self.inner.state.lock().unwrap().queue.is_empty()
        }

        pub fn len(&self) -> usize {
            self.inner.state.lock().unwrap().queue.len()
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.inner.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st.waiting += 1;
                st = self.inner.avail.wait(st).unwrap();
                st.waiting -= 1;
            }
        }

        /// Blocking receive with a deadline. Returns `Timeout` if nothing
        /// arrived within `timeout`, `Disconnected` once all senders are
        /// gone and the queue is drained.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.inner.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                st.waiting += 1;
                let (g, _res) = self.inner.avail.wait_timeout(st, deadline - now).unwrap();
                st = g;
                st.waiting -= 1;
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.inner.state.lock().unwrap();
            match st.queue.pop_front() {
                Some(v) => Ok(v),
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Non-blocking iterator: drains currently available messages.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { rx: self }
        }

        pub fn is_empty(&self) -> bool {
            self.inner.state.lock().unwrap().queue.is_empty()
        }

        pub fn len(&self) -> usize {
            self.inner.state.lock().unwrap().queue.len()
        }
    }

    pub struct TryIter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.try_recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().unwrap().senders += 1;
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().unwrap().receivers += 1;
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.inner.state.lock().unwrap();
            st.senders -= 1;
            let disconnected = st.senders == 0;
            drop(st);
            if disconnected {
                // Wake blocked receivers so they observe the disconnect.
                self.inner.avail.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.state.lock().unwrap().receivers -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError, TryRecvError};
    use std::time::Duration;

    #[test]
    fn mpmc_roundtrip() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv().unwrap(), 1);
        assert_eq!(rx2.try_recv().unwrap(), 2);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_on_sender_drop() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 7);
        assert!(rx.recv().is_err());
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_with_no_receivers() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn blocking_recv_wakes() {
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(std::time::Duration::from_millis(10));
        tx.send(42u32).unwrap();
        assert_eq!(t.join().unwrap(), 42);
    }
}
