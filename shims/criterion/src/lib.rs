//! Minimal `criterion` stand-in for an offline build environment.
//!
//! Supports the API surface the workspace benches use: `Criterion`,
//! `benchmark_group` with `sample_size`/`throughput`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, and the `criterion_group!`/
//! `criterion_main!` macros. Measurement is a simple
//! warmup-then-median-of-samples timer printed to stdout — adequate for
//! relative comparisons, with none of upstream's statistical machinery.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
    BytesDecimal(u64),
}

pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: fmt::Display, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

pub struct Bencher {
    /// Median per-iteration time of the measured samples.
    elapsed: Duration,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warmup call, then `sample_size` timed samples.
        black_box(routine());
        let mut samples: Vec<Duration> = (0..self.sample_size.max(1))
            .map(|_| {
                let start = Instant::now();
                black_box(routine());
                start.elapsed()
            })
            .collect();
        samples.sort_unstable();
        self.elapsed = samples[samples.len() / 2];
    }
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, group_name: S) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: group_name.into(),
            sample_size,
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        run_one(id, None, sample_size, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<S: fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.throughput, self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.throughput, self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    mut f: F,
) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        sample_size,
    };
    f(&mut b);
    let per_iter = b.elapsed;
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) | Throughput::BytesDecimal(n) => {
            format!(
                " ({:.2} MiB/s)",
                n as f64 / per_iter.as_secs_f64() / (1 << 20) as f64
            )
        }
        Throughput::Elements(n) => {
            format!(" ({:.2} Melem/s)", n as f64 / per_iter.as_secs_f64() / 1e6)
        }
    });
    println!(
        "bench: {:<48} {:>12.3?}{}",
        id,
        per_iter,
        rate.unwrap_or_default()
    );
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.throughput(Throughput::Bytes(1024));
        let mut ran = 0;
        group.bench_function("f", |b| {
            b.iter(|| std::hint::black_box(2 + 2));
            ran += 1;
        });
        group.bench_with_input(BenchmarkId::new("h", 7), &7u32, |b, &x| {
            b.iter(|| std::hint::black_box(x * 2));
        });
        group.finish();
        assert_eq!(ran, 1);
    }
}
