#!/usr/bin/env bash
# Compares the two newest BENCH_<date>*.json trajectory snapshots (by
# mtime) in a directory (default: repo root) and fails when any headline
# metric regressed by more than BENCH_SLACK_PCT percent (default 10).
#
#   scripts/bench_compare.sh [dir]
#
# Headline metrics (schema pgxd-bench-v1):
#   edges_per_s                          higher is better
#   p50_latency_ns / p99_latency_ns      lower is better
#   wire_bytes / wire_msgs               lower is better
#   queue_wait_p50_ns / queue_wait_p99_ns  lower is better
#
# With fewer than two snapshots there is nothing to compare; that is a
# clean exit (the trajectory has to start somewhere). A metric missing
# from either snapshot is skipped with a note, not a failure, so the
# schema can grow without breaking old baselines.
set -euo pipefail

dir="${1:-$(dirname "$0")/..}"
slack="${BENCH_SLACK_PCT:-10}"

# Two newest snapshots by mtime: $new is the run under test, $old the
# baseline it must not regress from.
mapfile -t files < <(ls -t "$dir"/BENCH_*.json 2>/dev/null || true)
if (( ${#files[@]} < 2 )); then
  echo "bench_compare: need two BENCH_*.json snapshots in $dir, found ${#files[@]} — nothing to compare"
  exit 0
fi
new="${files[0]}"
old="${files[1]}"
echo "bench_compare: $(basename "$old") -> $(basename "$new") (slack ${slack}%)"

# Pulls one numeric headline value out of a pretty-printed snapshot.
# The headline block is flat ("key": number), so a line match suffices —
# no JSON parser needed in shell.
metric() { # file key
  awk -v key="\"$2\"" '
    /"headline"/ { inside = 1 }
    inside && $1 == key ":" { gsub(/[,}]/, "", $2); print $2; exit }
    inside && /}/ { exit }
  ' "$1"
}

fail=0
for spec in \
  "edges_per_s:higher" \
  "p50_latency_ns:lower" \
  "p99_latency_ns:lower" \
  "wire_bytes:lower" \
  "wire_msgs:lower" \
  "queue_wait_p50_ns:lower" \
  "queue_wait_p99_ns:lower"
do
  key="${spec%%:*}"
  dir_better="${spec##*:}"
  before="$(metric "$old" "$key")"
  after="$(metric "$new" "$key")"
  if [[ -z "$before" || -z "$after" ]]; then
    echo "  $key: missing in one snapshot, skipped"
    continue
  fi
  # Regression percentage, signed so improvements print negative.
  verdict="$(awk -v b="$before" -v a="$after" -v dir="$dir_better" -v slack="$slack" '
    BEGIN {
      if (b == 0) { print "ok 0"; exit }
      if (dir == "higher") pct = (b - a) / b * 100
      else                 pct = (a - b) / b * 100
      printf "%s %.1f", (pct > slack) ? "REGRESSION" : "ok", pct
    }')"
  state="${verdict%% *}"
  pct="${verdict##* }"
  printf '  %-20s %14s -> %14s  %s (%+.1f%% vs %s-is-better)\n' \
    "$key" "$before" "$after" "$state" "$pct" "$dir_better"
  if [[ "$state" == "REGRESSION" ]]; then
    fail=1
  fi
done

if (( fail )); then
  echo "bench_compare: FAILED — headline regression beyond ${slack}%"
  exit 1
fi
echo "bench_compare: ok"
