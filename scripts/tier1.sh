#!/usr/bin/env bash
# Tier-1 verification: release build, test suite, formatting, lints.
# Run from anywhere; exits non-zero on the first failing check.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== runtime fault/recovery tests with --features telemetry =="
# Exercises the checkpoint/restore and reliability paths with the
# histogram/tracer instruments compiled in (they are feature-gated).
cargo test -q -p pgxd-runtime --features telemetry

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --workspace --all-targets -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== chaos-quick smoke (fixed-seed fault plans) =="
# Sweeps fault-free / lossy / crash plans and asserts the reliability
# contract internally (exactly-once results, clean MachineDown abort).
cargo run --release -p pgxd-bench --bin repro -- chaos

echo "== commfast smoke (read combining + adaptive flush acceptance) =="
# Runs the fast path off/on/adaptive and asserts the contract internally
# (combined hits > 0, strictly fewer wire messages, scores within 1e-12,
# bit-identical on the deterministic star graph).
cargo run --release -p pgxd-bench --bin repro -- commfast

echo "== recover smoke (checkpoint/restore + automatic retry acceptance) =="
# Crashes one machine of four mid-PageRank under a seeded plan and asserts
# the recovery contract internally (restore on the P-1 survivors, converge
# to the fault-free fixpoint within 1e-12, >= 1 RecoveryDone event,
# nonzero checkpoint telemetry; with recovery off, a clean MachineDown).
cargo run --release -p pgxd-bench --bin repro -- recover

echo "== serve smoke (job server acceptance: sessions, lanes, admission) =="
# Serves TWT-S to 3 concurrent sessions and asserts the serving contract
# internally (results match solo runs, weighted-fair 3:1 lane order,
# structured Cancelled/DeadlineExceeded/AdmissionDenied, columns freed).
cargo run --release -p pgxd-bench --bin repro -- serve

echo "== cargo doc --workspace --no-deps (warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "tier-1: all checks passed"
