#!/usr/bin/env bash
# Tier-1 verification: release build, test suite, formatting, lints.
# Run from anywhere; exits non-zero on the first failing check.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== runtime fault/recovery tests with --features telemetry =="
# Exercises the checkpoint/restore and reliability paths with the
# histogram/tracer instruments compiled in (they are feature-gated).
cargo test -q -p pgxd-runtime --features telemetry

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --workspace --all-targets -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== chaos-quick smoke (fixed-seed fault plans) =="
# Sweeps fault-free / lossy / crash plans and asserts the reliability
# contract internally (exactly-once results, clean MachineDown abort).
cargo run --release -p pgxd-bench --bin repro -- chaos

echo "== commfast smoke (read combining + adaptive flush acceptance) =="
# Runs the fast path off/on/adaptive and asserts the contract internally
# (combined hits > 0, strictly fewer wire messages, scores within 1e-12,
# bit-identical on the deterministic star graph).
cargo run --release -p pgxd-bench --bin repro -- commfast

echo "== recover smoke (checkpoint/restore + automatic retry acceptance) =="
# Crashes one machine of four mid-PageRank under a seeded plan and asserts
# the recovery contract internally (restore on the P-1 survivors, converge
# to the fault-free fixpoint within 1e-12, >= 1 RecoveryDone event,
# nonzero checkpoint telemetry; with recovery off, a clean MachineDown).
cargo run --release -p pgxd-bench --bin repro -- recover

echo "== serve smoke (job server acceptance: sessions, lanes, admission) =="
# Serves TWT-S to 3 concurrent sessions and asserts the serving contract
# internally (results match solo runs, weighted-fair 3:1 lane order,
# structured Cancelled/DeadlineExceeded/AdmissionDenied, columns freed).
cargo run --release -p pgxd-bench --bin repro -- serve

echo "== soak smoke (whole-stack chaos: brownout, budgets, quarantine, storage faults) =="
# Seeded mixed-job stream across sessions under combined fabric+storage
# faults; asserts internally (one terminal outcome per job, columns and
# buffer-pool quota reclaimed, results within 1e-12 of fault-free, ring
# fallback past corrupted checkpoints, quarantine + degraded restore).
# The harness carries its own wall-clock bound; the hard timeout is the
# backstop so a hang can never wedge CI.
timeout 300 cargo run --release -p pgxd-bench --bin repro -- soak --quick

echo "== instrumentation compiles out (cargo check -p pgxd --no-default-features) =="
# The telemetry feature gates every instrument behind no-op twins; this
# guards the uninstrumented build (and its API surface) from rotting.
cargo check -q -p pgxd --no-default-features

echo "== bench trajectory smoke (repro bench --quick, twice) =="
# Two quick snapshots into a scratch dir, then the regression gate over
# them. Same-machine back-to-back runs still jitter, so the real compare
# uses a generous slack; the >10% gate itself is asserted on a synthetic
# fixture below.
bench_dir="$(mktemp -d)"
BENCH_DIR="$bench_dir" cargo run --release -p pgxd-bench --bin repro -- bench --quick
sleep 1  # distinct mtimes so ls -t orders the snapshots
BENCH_DIR="$bench_dir" cargo run --release -p pgxd-bench --bin repro -- bench --quick
BENCH_SLACK_PCT=400 scripts/bench_compare.sh "$bench_dir"
rm -rf "$bench_dir"

echo "== bench_compare regression gate (synthetic >10% fixture must fail) =="
fix_dir="$(mktemp -d)"
cat > "$fix_dir/BENCH_2000-01-01.json" <<'EOF'
{
  "schema": "pgxd-bench-v1",
  "headline": {
    "edges_per_s": 1000000,
    "p50_latency_ns": 100000,
    "p99_latency_ns": 500000,
    "wire_bytes": 4000000,
    "wire_msgs": 2000,
    "queue_wait_p50_ns": 10000,
    "queue_wait_p99_ns": 90000
  }
}
EOF
cat > "$fix_dir/BENCH_2000-01-02.json" <<'EOF'
{
  "schema": "pgxd-bench-v1",
  "headline": {
    "edges_per_s": 1000000,
    "p50_latency_ns": 100000,
    "p99_latency_ns": 600000,
    "wire_bytes": 4000000,
    "wire_msgs": 2000,
    "queue_wait_p50_ns": 10000,
    "queue_wait_p99_ns": 90000
  }
}
EOF
touch -d '2000-01-01' "$fix_dir/BENCH_2000-01-01.json"
if scripts/bench_compare.sh "$fix_dir" > /dev/null; then
  echo "bench_compare: synthetic 20% p99 regression was NOT rejected"
  exit 1
else
  echo "bench_compare: synthetic regression correctly rejected"
fi
rm -rf "$fix_dir"

echo "== cargo doc --workspace --no-deps (warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "tier-1: all checks passed"
