//! Automatic job recovery: retry-with-restore on machine loss.
//!
//! The [`RecoveryDriver`] wraps the engine's fallible job API in an
//! attempt loop. Algorithms expose their iteration structure through
//! [`ResumableAlgorithm`] — `setup` registers properties and seeds driver
//! state, `step` runs exactly one barrier-delimited iteration — and the
//! driver does the rest: it takes a barrier-consistent checkpoint right
//! after `setup` (the iteration-0 baseline) and then every
//! `checkpoint_every` completed iterations, and when an attempt dies with
//! a transient [`JobError`] (machine loss), it
//!
//! 1. extracts the last complete checkpoint (plain copied memory — never a
//!    view into the dead cluster),
//! 2. tears the failed engine down and rebuilds a *degraded* cluster from
//!    the `P−1` survivors — `Cluster::load` re-runs edge partitioning and
//!    ghost selection over the smaller machine set,
//! 3. re-runs the algorithm's `setup` (re-registering the same properties
//!    in the same order, so ids line up), restores the checkpoint under
//!    the survivors' partitioning, and resumes `step`ping from the
//!    checkpointed iteration.
//!
//! Fatal errors (protocol violations, corrupt checkpoints) and exhausted
//! retry budgets surface to the caller; [`RetryPolicy`] draws the line and
//! paces retries with bounded exponential backoff.

use crate::engine::{Engine, EngineBuilder};
use pgxd_graph::Graph;
use pgxd_runtime::checkpoint::Checkpoint;
use pgxd_runtime::config::{Config, RecoveryConfig};
use pgxd_runtime::health::JobError;
use pgxd_runtime::stats::StatsSnapshot;
use pgxd_runtime::telemetry::EventKind;
use std::sync::Arc;
use std::time::Duration;

/// What one [`ResumableAlgorithm::step`] call concluded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// More iterations remain.
    Continue,
    /// The algorithm converged (or hit its iteration cap).
    Done,
}

/// An algorithm decomposed into driver-visible iterations so the
/// [`RecoveryDriver`] can checkpoint between them and restart mid-job.
///
/// Contract: `setup` must be *re-runnable* — on every attempt it executes
/// on a fresh engine and must register the same properties in the same
/// order (that is what lets a restore re-bind shards by property id) and
/// re-seed any driver-side initial state. A subsequent restore overwrites
/// that state with the checkpointed values.
pub trait ResumableAlgorithm {
    /// What the finished job yields.
    type Output;

    /// Registers properties and seeds initial values on a fresh engine.
    fn setup(&mut self, engine: &mut Engine);

    /// Runs iteration `iteration` (0-based count of completed iterations).
    fn step(&mut self, engine: &mut Engine, iteration: u64) -> Result<StepOutcome, JobError>;

    /// Algorithm scalars to round-trip through checkpoints (RNG state,
    /// accumulated deltas, ...). Defaults to none — most algorithms keep
    /// every bit of mutable state in property vectors.
    fn scalars(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Reinstates [`ResumableAlgorithm::scalars`] after a restore.
    fn restore_scalars(&mut self, _scalars: &[u64]) {}

    /// Extracts the result from a converged engine.
    fn finish(&mut self, engine: &mut Engine) -> Self::Output;
}

/// When to retry and how long to wait: bounded attempts, exponential
/// backoff, transient-vs-fatal classification of [`JobError`].
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Retries allowed after the initial attempt.
    pub max_retries: u32,
    /// First backoff, milliseconds; doubles per retry.
    pub backoff_base_ms: u64,
    /// Backoff ceiling, milliseconds.
    pub backoff_max_ms: u64,
}

impl RetryPolicy {
    pub fn from_config(rc: &RecoveryConfig) -> Self {
        RetryPolicy {
            max_retries: rc.max_retries,
            backoff_base_ms: rc.backoff_base_ms,
            backoff_max_ms: rc.backoff_max_ms,
        }
    }

    /// Whether a `retry`-th retry (1-based) is allowed after `err`.
    /// Cancellations are never retried — the job was stopped on purpose,
    /// and replaying it would resurrect work the caller asked to kill.
    pub fn should_retry(&self, err: &JobError, retry: u32) -> bool {
        err.is_transient() && !err.is_cancellation() && retry <= self.max_retries
    }

    /// Backoff before the `retry`-th retry (1-based): `base * 2^(retry-1)`
    /// capped at `backoff_max_ms`.
    pub fn backoff(&self, retry: u32) -> Duration {
        let factor = 1u64 << retry.saturating_sub(1).min(20);
        Duration::from_millis(
            self.backoff_base_ms
                .saturating_mul(factor)
                .min(self.backoff_max_ms),
        )
    }
}

/// A successfully recovered (or never-failed) job, with the recovery
/// footprint the attempt loop observed.
#[derive(Debug)]
pub struct Recovered<T> {
    /// The algorithm's result.
    pub output: T,
    /// Attempts run (1 = the job never failed).
    pub attempts: u32,
    /// Retry attempts that successfully restored/restarted and resumed.
    pub recoveries: u32,
    /// `RecoveryDone` trace events present in the final engine's ring
    /// (nonzero only with telemetry enabled and ≥1 recovery).
    pub recovery_done_events: u64,
    /// Stats accumulated across *all* attempts, failed ones included —
    /// `checkpoints_taken` / `checkpoint_bytes` / `restores_applied` live
    /// here.
    pub stats: StatsSnapshot,
}

/// Drives a [`ResumableAlgorithm`] to completion across machine failures.
pub struct RecoveryDriver<'g> {
    graph: &'g Graph,
    config: Config,
}

impl<'g> RecoveryDriver<'g> {
    /// Validates `config` up front so knob errors surface before any
    /// cluster is built.
    pub fn new(graph: &'g Graph, config: Config) -> Result<Self, String> {
        config.validate()?;
        Ok(RecoveryDriver { graph, config })
    }

    /// The (validated) configuration attempts start from.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Runs `algo` to completion, retrying per the configured
    /// [`RecoveryConfig`]. With recovery disabled this is exactly one
    /// attempt with no checkpoints — a failure surfaces unchanged.
    pub fn run<A: ResumableAlgorithm>(
        &self,
        algo: &mut A,
    ) -> Result<Recovered<A::Output>, JobError> {
        let recovery = self.config.recovery;
        let policy = RetryPolicy::from_config(&recovery);
        let mut config = self.config.clone();
        let mut carry: Option<Arc<Checkpoint>> = None;
        let mut attempts = 0u32;
        let mut recoveries = 0u32;
        let mut stats = StatsSnapshot::default();
        loop {
            attempts += 1;
            let mut engine = EngineBuilder::from_config(config.clone())
                .build(self.graph)
                .map_err(JobError::Protocol)?;
            algo.setup(&mut engine);
            let mut iteration = 0u64;
            if attempts > 1 {
                engine
                    .cluster()
                    .trace_driver_event(EventKind::RecoveryStart, (attempts - 1) as u64);
                if let Some(ck) = &carry {
                    // Corrupt checkpoints are fatal: a retry would only
                    // replay the same bits.
                    engine.restore_checkpoint(ck)?;
                    iteration = ck.progress.iteration;
                    algo.restore_scalars(&ck.progress.scalars);
                }
                // No checkpoint yet → restart from iteration 0; still a
                // recovery (the degraded cluster replaces the dead one).
                recoveries += 1;
                engine
                    .cluster()
                    .trace_driver_event(EventKind::RecoveryDone, iteration);
            }
            // Baseline checkpoint of the freshly seeded (or just-restored)
            // state: a crash during the very first iterations then restores
            // instead of restarting from scratch, no matter when the fault
            // fires relative to the periodic cadence.
            let mut failure: Option<JobError> = if recovery.enabled {
                engine.take_checkpoint(iteration, algo.scalars()).err()
            } else {
                None
            };
            while failure.is_none() {
                match algo.step(&mut engine, iteration) {
                    Ok(StepOutcome::Done) => break,
                    Ok(StepOutcome::Continue) => {
                        iteration += 1;
                        if recovery.enabled && iteration.is_multiple_of(recovery.checkpoint_every) {
                            if let Err(err) = engine.take_checkpoint(iteration, algo.scalars()) {
                                failure = Some(err);
                                break;
                            }
                        }
                    }
                    Err(err) => {
                        failure = Some(err);
                        break;
                    }
                }
            }
            let Some(err) = failure else {
                let recovery_done_events = count_recovery_done(&engine);
                let output = algo.finish(&mut engine);
                stats = stats + engine.cluster().total_stats();
                return Ok(Recovered {
                    output,
                    attempts,
                    recoveries,
                    recovery_done_events,
                    stats,
                });
            };
            // Salvage the last complete checkpoint, fold in the dead
            // attempt's stats, then tear the engine down (joins threads).
            carry = engine.last_checkpoint().or(carry);
            stats = stats + engine.cluster().total_stats();
            drop(engine);
            if !recovery.enabled {
                return Err(err);
            }
            let retry = attempts; // 1-based index of the retry we want next
            if !policy.should_retry(&err, retry) {
                if err.is_transient() {
                    return Err(JobError::RetriesExhausted {
                        attempts,
                        last: Box::new(err),
                    });
                }
                return Err(err);
            }
            if let JobError::MachineDown { .. } = err {
                if config.machines <= 1 {
                    return Err(err);
                }
                // Degrade to the survivor set. The next Engine::build
                // re-runs edge partitioning and ghost selection over P−1
                // machines.
                config.machines -= 1;
            }
            // The seeded crash/slow plan already fired; a fresh fabric
            // would replay it at the same virtual time and kill the
            // retry too. Message-level fault rates stay.
            config.fault.crash = None;
            config.fault.slow = None;
            std::thread::sleep(policy.backoff(retry));
        }
    }
}

fn count_recovery_done(engine: &Engine) -> u64 {
    engine
        .cluster()
        .telemetries()
        .first()
        .map(|t| {
            t.worker_events(0)
                .iter()
                .filter(|e| e.kind == EventKind::RecoveryDone)
                .count() as u64
        })
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop::Prop;
    use crate::spec::JobSpec;
    use crate::tasks;
    use pgxd_graph::generate;
    use pgxd_runtime::props::ReduceOp;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_retries: 5,
            backoff_base_ms: 10,
            backoff_max_ms: 50,
        };
        assert_eq!(p.backoff(1), Duration::from_millis(10));
        assert_eq!(p.backoff(2), Duration::from_millis(20));
        assert_eq!(p.backoff(3), Duration::from_millis(40));
        assert_eq!(p.backoff(4), Duration::from_millis(50));
        assert_eq!(p.backoff(30), Duration::from_millis(50));
    }

    #[test]
    fn classification_gates_retries() {
        let p = RetryPolicy {
            max_retries: 2,
            backoff_base_ms: 1,
            backoff_max_ms: 1,
        };
        let down = JobError::MachineDown { machine: 0 };
        assert!(p.should_retry(&down, 1));
        assert!(p.should_retry(&down, 2));
        assert!(!p.should_retry(&down, 3));
        assert!(!p.should_retry(&JobError::Protocol("x".into()), 1));
        assert!(!p.should_retry(&JobError::CheckpointCorrupt("x".into()), 1));
    }

    #[test]
    fn cancellations_are_never_retried() {
        let p = RetryPolicy {
            max_retries: 5,
            backoff_base_ms: 1,
            backoff_max_ms: 1,
        };
        assert!(!p.should_retry(&JobError::Cancelled { job: 7 }, 1));
        assert!(!p.should_retry(&JobError::DeadlineExceeded { job: 7 }, 1));
    }

    /// Adds 1 to every vertex per iteration for a fixed count — all state
    /// in one property, plus one scalar to exercise the scalar round-trip.
    struct CountUp {
        rounds: u64,
        total: Prop<i64>,
        steps_seen: u64,
    }

    impl ResumableAlgorithm for CountUp {
        type Output = Vec<i64>;

        fn setup(&mut self, engine: &mut Engine) {
            self.total = engine.add_prop("total", 0i64);
        }

        fn step(&mut self, engine: &mut Engine, iteration: u64) -> Result<StepOutcome, JobError> {
            if iteration >= self.rounds {
                return Ok(StepOutcome::Done);
            }
            let total = self.total;
            engine.try_run_node_job(
                &JobSpec::new().reduce(total, ReduceOp::Sum),
                tasks::on_node(move |ctx| {
                    let cur: i64 = ctx.get(total);
                    ctx.set(total, cur + 1);
                }),
            )?;
            self.steps_seen += 1;
            Ok(StepOutcome::Continue)
        }

        fn scalars(&self) -> Vec<u64> {
            vec![self.steps_seen]
        }

        fn restore_scalars(&mut self, scalars: &[u64]) {
            self.steps_seen = scalars[0];
        }

        fn finish(&mut self, engine: &mut Engine) -> Vec<i64> {
            engine.gather(self.total)
        }
    }

    #[test]
    fn fault_free_run_is_single_attempt() {
        let g = generate::ring(24);
        let config = Config::builder()
            .machines(2)
            .workers(1)
            .copiers(1)
            .checkpoint_every(2)
            .build()
            .unwrap();
        let driver = RecoveryDriver::new(&g, config).unwrap();
        let mut algo = CountUp {
            rounds: 5,
            total: Prop::new(pgxd_runtime::props::PropId(0)),
            steps_seen: 0,
        };
        let rec = driver.run(&mut algo).unwrap();
        assert_eq!(rec.output, vec![5i64; 24]);
        assert_eq!(rec.attempts, 1);
        assert_eq!(rec.recoveries, 0);
        // Baseline snapshot at iteration 0 plus checkpoint_every=2 over 5
        // iterations (snapshots at 2 and 4), on both machines.
        assert_eq!(rec.stats.checkpoints_taken, 3 * 2);
        assert!(rec.stats.checkpoint_bytes > 0);
        assert_eq!(rec.stats.restores_applied, 0);
    }

    #[test]
    fn recovery_off_takes_no_checkpoints() {
        let g = generate::ring(24);
        let driver = RecoveryDriver::new(&g, Config::test(2)).unwrap();
        let mut algo = CountUp {
            rounds: 3,
            total: Prop::new(pgxd_runtime::props::PropId(0)),
            steps_seen: 0,
        };
        let rec = driver.run(&mut algo).unwrap();
        assert_eq!(rec.output, vec![3i64; 24]);
        assert_eq!(rec.stats.checkpoints_taken, 0);
    }
}
