//! Automatic job recovery: retry-with-restore on machine loss.
//!
//! The [`RecoveryDriver`] wraps the engine's fallible job API in an
//! attempt loop. Algorithms expose their iteration structure through
//! [`ResumableAlgorithm`] — `setup` registers properties and seeds driver
//! state, `step` runs exactly one barrier-delimited iteration — and the
//! driver does the rest: it takes a barrier-consistent checkpoint right
//! after `setup` (the iteration-0 baseline) and then every
//! `checkpoint_every` completed iterations, and when an attempt dies with
//! a transient [`JobError`] (machine loss), it
//!
//! 1. extracts the retained checkpoint *ring* (plain copied memory — never
//!    a view into the dead cluster),
//! 2. consults a [`FlapDetector`]: below the flap threshold the machine
//!    gets another chance at full cluster size; at the threshold it is
//!    quarantined and the driver rebuilds a *degraded* cluster from the
//!    `P−1` survivors — `Cluster::load` re-runs edge partitioning and
//!    ghost selection over the smaller machine set,
//! 3. re-runs the algorithm's `setup` (re-registering the same properties
//!    in the same order, so ids line up), then restores the newest ring
//!    entry that passes checksum verification — a corrupt newest
//!    checkpoint (injected storage fault, `StorageFaultPlan`) falls back
//!    to the next-older entry (`checkpoint_fallbacks` counter +
//!    `CheckpointFallback` trace), and if no entry is restorable the job
//!    cold-restarts from iteration 0 (`cold_restarts` + `ColdRestart`) —
//!    and resumes `step`ping from wherever that landed.
//!
//! Fatal errors (protocol violations) surface to the caller;
//! [`RetryPolicy`] draws the transient-vs-fatal line and paces retries
//! with seeded decorrelated-jitter backoff so concurrent tenants do not
//! synchronize into retry storms. An optional server-wide [`RetryBudget`]
//! is consulted before every retry; a dry bucket fails the job with
//! [`JobError::RetryBudgetExhausted`] instead of amplifying the outage.

use crate::engine::{Engine, EngineBuilder};
use pgxd_graph::Graph;
use pgxd_runtime::checkpoint::Checkpoint;
use pgxd_runtime::config::{Config, RecoveryConfig};
use pgxd_runtime::health::{FlapDetector, JobError, RetryBudget};
use pgxd_runtime::stats::StatsSnapshot;
use pgxd_runtime::telemetry::EventKind;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// splitmix64, the same hash family the fault injectors use: one
/// independent 64-bit draw per `(seed, n)` pair, no RNG state to carry.
#[inline]
fn mix64(seed: u64, n: u64) -> u64 {
    let mut z = seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What one [`ResumableAlgorithm::step`] call concluded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// More iterations remain.
    Continue,
    /// The algorithm converged (or hit its iteration cap).
    Done,
}

/// An algorithm decomposed into driver-visible iterations so the
/// [`RecoveryDriver`] can checkpoint between them and restart mid-job.
///
/// Contract: `setup` must be *re-runnable* — on every attempt it executes
/// on a fresh engine and must register the same properties in the same
/// order (that is what lets a restore re-bind shards by property id) and
/// re-seed any driver-side initial state. A subsequent restore overwrites
/// that state with the checkpointed values.
pub trait ResumableAlgorithm {
    /// What the finished job yields.
    type Output;

    /// Registers properties and seeds initial values on a fresh engine.
    fn setup(&mut self, engine: &mut Engine);

    /// Runs iteration `iteration` (0-based count of completed iterations).
    fn step(&mut self, engine: &mut Engine, iteration: u64) -> Result<StepOutcome, JobError>;

    /// Algorithm scalars to round-trip through checkpoints (RNG state,
    /// accumulated deltas, ...). Defaults to none — most algorithms keep
    /// every bit of mutable state in property vectors.
    fn scalars(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Reinstates [`ResumableAlgorithm::scalars`] after a restore.
    fn restore_scalars(&mut self, _scalars: &[u64]) {}

    /// Extracts the result from a converged engine.
    fn finish(&mut self, engine: &mut Engine) -> Self::Output;
}

/// When to retry and how long to wait: bounded attempts, seeded
/// decorrelated-jitter backoff, transient-vs-fatal classification of
/// [`JobError`].
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Retries allowed after the initial attempt.
    pub max_retries: u32,
    /// Backoff floor, milliseconds.
    pub backoff_base_ms: u64,
    /// Backoff ceiling, milliseconds.
    pub backoff_max_ms: u64,
    /// Seed for the decorrelated jitter draws; two policies with different
    /// seeds produce different (but individually deterministic) schedules,
    /// which is what keeps concurrent tenants from retrying in lockstep.
    pub jitter_seed: u64,
}

impl RetryPolicy {
    pub fn from_config(rc: &RecoveryConfig) -> Self {
        RetryPolicy {
            max_retries: rc.max_retries,
            backoff_base_ms: rc.backoff_base_ms,
            backoff_max_ms: rc.backoff_max_ms,
            jitter_seed: 0x5eed_b0ff,
        }
    }

    /// Whether a `retry`-th retry (1-based) is allowed after `err`.
    /// Cancellations are never retried — the job was stopped on purpose,
    /// and replaying it would resurrect work the caller asked to kill.
    pub fn should_retry(&self, err: &JobError, retry: u32) -> bool {
        err.is_transient() && !err.is_cancellation() && retry <= self.max_retries
    }

    /// Backoff before the `retry`-th retry (1-based): decorrelated jitter
    /// (`sleep = min(cap, uniform(base, 3 * prev_sleep))`), deterministic
    /// in `(jitter_seed, retry)`. Pure doubling synchronizes concurrent
    /// tenants' retries into storms; the jittered schedule keeps the same
    /// expected growth (~2× per retry until the cap) while decorrelating
    /// the instants.
    pub fn backoff(&self, retry: u32) -> Duration {
        let base = self.backoff_base_ms;
        if base == 0 || retry == 0 {
            return Duration::ZERO;
        }
        let cap = self.backoff_max_ms.max(base);
        let mut sleep = base;
        for i in 1..=retry.min(64) {
            let span = sleep
                .saturating_mul(3)
                .saturating_sub(base)
                .saturating_add(1);
            sleep = base
                .saturating_add(mix64(self.jitter_seed, u64::from(i)) % span)
                .min(cap);
        }
        Duration::from_millis(sleep)
    }
}

/// A successfully recovered (or never-failed) job, with the recovery
/// footprint the attempt loop observed.
#[derive(Debug)]
pub struct Recovered<T> {
    /// The algorithm's result.
    pub output: T,
    /// Attempts run (1 = the job never failed).
    pub attempts: u32,
    /// Retry attempts that successfully restored/restarted and resumed.
    pub recoveries: u32,
    /// `RecoveryDone` trace events present in the final engine's ring
    /// (nonzero only with telemetry enabled and ≥1 recovery).
    pub recovery_done_events: u64,
    /// Stats accumulated across *all* attempts, failed ones included —
    /// `checkpoints_taken` / `checkpoint_bytes` / `restores_applied` live
    /// here.
    pub stats: StatsSnapshot,
}

/// Drives a [`ResumableAlgorithm`] to completion across machine failures.
pub struct RecoveryDriver<'g> {
    graph: &'g Graph,
    config: Config,
    retry_budget: Option<Arc<RetryBudget>>,
}

impl<'g> RecoveryDriver<'g> {
    /// Validates `config` up front so knob errors surface before any
    /// cluster is built.
    pub fn new(graph: &'g Graph, config: Config) -> Result<Self, String> {
        config.validate()?;
        Ok(RecoveryDriver {
            graph,
            config,
            retry_budget: None,
        })
    }

    /// Shares a server-wide retry token bucket with this driver: every
    /// retry first takes a token, and a dry bucket fails the job with
    /// [`JobError::RetryBudgetExhausted`] instead of piling a retry storm
    /// onto an already-degraded cluster. Without a budget retries are
    /// gated only by `max_retries`.
    pub fn with_retry_budget(mut self, budget: Arc<RetryBudget>) -> Self {
        self.retry_budget = Some(budget);
        self
    }

    /// The (validated) configuration attempts start from.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Runs `algo` to completion, retrying per the configured
    /// [`RecoveryConfig`]. With recovery disabled this is exactly one
    /// attempt with no checkpoints — a failure surfaces unchanged.
    pub fn run<A: ResumableAlgorithm>(
        &self,
        algo: &mut A,
    ) -> Result<Recovered<A::Output>, JobError> {
        let recovery = self.config.recovery;
        let policy = RetryPolicy::from_config(&recovery);
        let mut config = self.config.clone();
        let mut carry: Vec<Arc<Checkpoint>> = Vec::new();
        let mut flap = FlapDetector::new(config.machines, recovery.flap_threshold);
        let mut quarantined: Option<u64> = None;
        let mut attempts = 0u32;
        let mut recoveries = 0u32;
        let mut stats = StatsSnapshot::default();
        loop {
            attempts += 1;
            let mut engine = EngineBuilder::from_config(config.clone())
                .build(self.graph)
                .map_err(JobError::Protocol)?;
            algo.setup(&mut engine);
            let mut iteration = 0u64;
            if attempts > 1 {
                engine
                    .cluster()
                    .trace_driver_event(EventKind::RecoveryStart, (attempts - 1) as u64);
                if let Some(machine) = quarantined.take() {
                    engine
                        .cluster()
                        .machine(0)
                        .stats
                        .machines_quarantined
                        .fetch_add(1, Ordering::Relaxed);
                    engine
                        .cluster()
                        .trace_driver_event(EventKind::Quarantine, machine);
                }
                // Restore the newest ring entry that verifies; skip corrupt
                // ones (injected storage faults keep the stale checksum, so
                // this is where they finally surface). If nothing in the
                // ring is restorable — or the ring is empty — the job cold-
                // restarts from iteration 0; still a recovery (the rebuilt
                // cluster replaces the dead one).
                let mut restored = false;
                let mut tried = 0u64;
                for ck in &carry {
                    tried += 1;
                    match engine.restore_checkpoint(ck) {
                        Ok(()) => {
                            iteration = ck.progress.iteration;
                            algo.restore_scalars(&ck.progress.scalars);
                            restored = true;
                            break;
                        }
                        Err(JobError::CheckpointCorrupt(_)) => {
                            engine
                                .cluster()
                                .machine(0)
                                .stats
                                .checkpoint_fallbacks
                                .fetch_add(1, Ordering::Relaxed);
                            engine
                                .cluster()
                                .trace_driver_event(EventKind::CheckpointFallback, ck.seq);
                        }
                        Err(other) => return Err(other),
                    }
                }
                if !restored {
                    engine
                        .cluster()
                        .machine(0)
                        .stats
                        .cold_restarts
                        .fetch_add(1, Ordering::Relaxed);
                    engine
                        .cluster()
                        .trace_driver_event(EventKind::ColdRestart, tried);
                }
                recoveries += 1;
                engine
                    .cluster()
                    .trace_driver_event(EventKind::RecoveryDone, iteration);
            }
            // Baseline checkpoint of the freshly seeded (or just-restored)
            // state: a crash during the very first iterations then restores
            // instead of restarting from scratch, no matter when the fault
            // fires relative to the periodic cadence.
            let mut failure: Option<JobError> = if recovery.enabled {
                engine.take_checkpoint(iteration, algo.scalars()).err()
            } else {
                None
            };
            while failure.is_none() {
                match algo.step(&mut engine, iteration) {
                    Ok(StepOutcome::Done) => break,
                    Ok(StepOutcome::Continue) => {
                        iteration += 1;
                        if recovery.enabled && iteration.is_multiple_of(recovery.checkpoint_every) {
                            if let Err(err) = engine.take_checkpoint(iteration, algo.scalars()) {
                                failure = Some(err);
                                break;
                            }
                        }
                    }
                    Err(err) => {
                        failure = Some(err);
                        break;
                    }
                }
            }
            let Some(err) = failure else {
                let recovery_done_events = count_recovery_done(&engine);
                let output = algo.finish(&mut engine);
                stats = stats + engine.cluster().total_stats();
                return Ok(Recovered {
                    output,
                    attempts,
                    recoveries,
                    recovery_done_events,
                    stats,
                });
            };
            // Salvage the retained checkpoint ring, fold in the dead
            // attempt's stats, then tear the engine down (joins threads).
            let ring = engine.checkpoint_ring();
            if !ring.is_empty() {
                carry = ring;
            }
            stats = stats + engine.cluster().total_stats();
            drop(engine);
            if !recovery.enabled {
                return Err(err);
            }
            let retry = attempts; // 1-based index of the retry we want next
            if !policy.should_retry(&err, retry) {
                if err.is_transient() {
                    return Err(JobError::RetriesExhausted {
                        attempts,
                        last: Box::new(err),
                    });
                }
                return Err(err);
            }
            // Every retry spends one token of the (possibly server-wide,
            // cross-session) budget; a dry bucket means the cluster is
            // already saturated with recovery work, so amplifying it would
            // turn one failure into an outage.
            if let Some(budget) = &self.retry_budget {
                if !budget.try_acquire() {
                    return Err(JobError::RetryBudgetExhausted);
                }
            }
            if let JobError::MachineDown { machine } = err {
                if flap.record_trip(machine) {
                    // Quarantined: degrade to the survivor set proactively.
                    // The next Engine::build re-runs edge partitioning and
                    // ghost selection over P−1 machines, and the seeded
                    // crash/slow plan dies with the flapper.
                    if config.machines <= 1 {
                        return Err(err);
                    }
                    config.machines -= 1;
                    quarantined = Some(u64::from(machine));
                    config.fault.crash = None;
                    config.fault.slow = None;
                } else {
                    // Below the flap threshold: the machine gets another
                    // chance at full cluster size. A recurring crash plan
                    // re-fires on the retry (that is what eventually trips
                    // the quarantine); a one-shot plan already fired and is
                    // cleared so the retry is not killed at the same
                    // virtual instant.
                    if !config.fault.crash_recurring {
                        config.fault.crash = None;
                    }
                    config.fault.slow = None;
                }
            } else {
                // Non-crash transient: keep the cluster shape, clear the
                // one-shot plans exactly as before.
                if !config.fault.crash_recurring {
                    config.fault.crash = None;
                }
                config.fault.slow = None;
            }
            std::thread::sleep(policy.backoff(retry));
        }
    }
}

fn count_recovery_done(engine: &Engine) -> u64 {
    engine
        .cluster()
        .telemetries()
        .first()
        .map(|t| {
            t.worker_events(0)
                .iter()
                .filter(|e| e.kind == EventKind::RecoveryDone)
                .count() as u64
        })
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop::Prop;
    use crate::spec::JobSpec;
    use crate::tasks;
    use pgxd_graph::generate;
    use pgxd_runtime::props::ReduceOp;

    #[test]
    fn backoff_jitters_within_bounds() {
        let p = RetryPolicy {
            max_retries: 5,
            backoff_base_ms: 10,
            backoff_max_ms: 50,
            jitter_seed: 42,
        };
        // Every draw stays within [base, cap], deterministically.
        for retry in 1..=30 {
            let d = p.backoff(retry);
            assert!(d >= Duration::from_millis(10), "retry {retry}: {d:?}");
            assert!(d <= Duration::from_millis(50), "retry {retry}: {d:?}");
            assert_eq!(d, p.backoff(retry), "same (seed, retry) ⇒ same delay");
        }
        // Different seeds decorrelate: the schedules are not identical.
        let q = RetryPolicy {
            jitter_seed: 43,
            ..p
        };
        assert!(
            (1..=30).any(|r| p.backoff(r) != q.backoff(r)),
            "two seeds should not produce lockstep schedules"
        );
        // Jitter actually jitters: the schedule is not one constant value.
        let first = p.backoff(1);
        assert!(
            (1..=30).any(|r| p.backoff(r) != first),
            "schedule collapsed to a constant"
        );
        assert_eq!(p.backoff(0), Duration::ZERO);
    }

    #[test]
    fn classification_gates_retries() {
        let p = RetryPolicy {
            max_retries: 2,
            backoff_base_ms: 1,
            backoff_max_ms: 1,
            jitter_seed: 0,
        };
        let down = JobError::MachineDown { machine: 0 };
        assert!(p.should_retry(&down, 1));
        assert!(p.should_retry(&down, 2));
        assert!(!p.should_retry(&down, 3));
        assert!(!p.should_retry(&JobError::Protocol("x".into()), 1));
        assert!(!p.should_retry(&JobError::CheckpointCorrupt("x".into()), 1));
    }

    #[test]
    fn cancellations_are_never_retried() {
        let p = RetryPolicy {
            max_retries: 5,
            backoff_base_ms: 1,
            backoff_max_ms: 1,
            jitter_seed: 0,
        };
        assert!(!p.should_retry(&JobError::Cancelled { job: 7 }, 1));
        assert!(!p.should_retry(&JobError::DeadlineExceeded { job: 7 }, 1));
    }

    /// Adds 1 to every vertex per iteration for a fixed count — all state
    /// in one property, plus one scalar to exercise the scalar round-trip.
    struct CountUp {
        rounds: u64,
        total: Prop<i64>,
        steps_seen: u64,
    }

    impl ResumableAlgorithm for CountUp {
        type Output = Vec<i64>;

        fn setup(&mut self, engine: &mut Engine) {
            self.total = engine.add_prop("total", 0i64);
        }

        fn step(&mut self, engine: &mut Engine, iteration: u64) -> Result<StepOutcome, JobError> {
            if iteration >= self.rounds {
                return Ok(StepOutcome::Done);
            }
            let total = self.total;
            engine.try_run_node_job(
                &JobSpec::new().reduce(total, ReduceOp::Sum),
                tasks::on_node(move |ctx| {
                    let cur: i64 = ctx.get(total);
                    ctx.set(total, cur + 1);
                }),
            )?;
            self.steps_seen += 1;
            Ok(StepOutcome::Continue)
        }

        fn scalars(&self) -> Vec<u64> {
            vec![self.steps_seen]
        }

        fn restore_scalars(&mut self, scalars: &[u64]) {
            self.steps_seen = scalars[0];
        }

        fn finish(&mut self, engine: &mut Engine) -> Vec<i64> {
            engine.gather(self.total)
        }
    }

    #[test]
    fn fault_free_run_is_single_attempt() {
        let g = generate::ring(24);
        let config = Config::builder()
            .machines(2)
            .workers(1)
            .copiers(1)
            .checkpoint_every(2)
            .build()
            .unwrap();
        let driver = RecoveryDriver::new(&g, config).unwrap();
        let mut algo = CountUp {
            rounds: 5,
            total: Prop::new(pgxd_runtime::props::PropId(0)),
            steps_seen: 0,
        };
        let rec = driver.run(&mut algo).unwrap();
        assert_eq!(rec.output, vec![5i64; 24]);
        assert_eq!(rec.attempts, 1);
        assert_eq!(rec.recoveries, 0);
        // Baseline snapshot at iteration 0 plus checkpoint_every=2 over 5
        // iterations (snapshots at 2 and 4), on both machines.
        assert_eq!(rec.stats.checkpoints_taken, 3 * 2);
        assert!(rec.stats.checkpoint_bytes > 0);
        assert_eq!(rec.stats.restores_applied, 0);
    }

    #[test]
    fn recovery_off_takes_no_checkpoints() {
        let g = generate::ring(24);
        let driver = RecoveryDriver::new(&g, Config::test(2)).unwrap();
        let mut algo = CountUp {
            rounds: 3,
            total: Prop::new(pgxd_runtime::props::PropId(0)),
            steps_seen: 0,
        };
        let rec = driver.run(&mut algo).unwrap();
        assert_eq!(rec.output, vec![3i64; 24]);
        assert_eq!(rec.stats.checkpoints_taken, 0);
    }
}
