//! The job-server facade: PGX.D as a multi-tenant service.
//!
//! PGX.D is deployed as a *server*: one expensively-loaded graph is
//! shared by many clients, each submitting analytics jobs. This module
//! glues the generic serving layer (`pgxd-sched`) onto the real
//! [`Engine`]:
//!
//! ```
//! use pgxd::serve::{Lane, ServeEngine};
//! use pgxd_graph::generate;
//!
//! let g = generate::ring(32);
//! let engine = pgxd::Engine::builder().machines(2).build(&g).unwrap();
//! let server = engine.into_server();
//!
//! let session = server.session("alice");
//! let degrees = session
//!     .submit(Lane::Interactive, 1, |engine, _cancel| {
//!         let d = engine.add_prop("deg", 0i64);
//!         engine.try_run_edge_job(
//!             pgxd::Dir::Out,
//!             &pgxd::JobSpec::new().reduce(d, pgxd::ReduceOp::Sum),
//!             pgxd::tasks::on_edge(move |ctx| {
//!                 ctx.write_nbr(d, pgxd::ReduceOp::Sum, 1i64)
//!             }),
//!         )?;
//!         Ok(engine.gather::<i64>(d))
//!     })
//!     .unwrap();
//! assert_eq!(degrees.join().unwrap(), vec![1i64; 32]);
//!
//! drop(session); // reclaims the session's property columns
//! let engine = server.shutdown();
//! # let _ = engine;
//! ```
//!
//! The [`ServeEngine`] impl below answers the three questions the server
//! asks of an engine: *how big is a job* (admission estimates from the
//! cluster's dimensions), *which columns exist* (session-namespace
//! attribution by diffing live property ids around each job), and *where
//! do serving metrics go* (machine 0's telemetry registry).

use crate::Engine;
use pgxd_runtime::props::PropId;
use pgxd_runtime::telemetry::Telemetry;
use std::sync::Arc;

pub use pgxd_runtime::cancel::{CancelReason, CancelToken};
pub use pgxd_runtime::config::{ServeConfig, StorageFaultPlan};
pub use pgxd_sched::{
    estimate_bytes, JobCtx, JobExec, JobHandle, JobMeta, JobOutcome, JobReport, JobServer, JobWire,
    Lane, MemProfile, PhaseSpan, RetryBudget, Scheduler, ServeEngine, Session,
};

impl ServeEngine for Engine {
    fn mem_profile(&self) -> MemProfile {
        let cluster = self.cluster();
        let config = cluster.config();
        MemProfile {
            nodes: cluster.num_nodes(),
            machines: cluster.machines().len(),
            ghosts: cluster.ghosts().len(),
            send_buffers_per_machine: config.send_buffers_per_machine,
            buffer_bytes: config.buffer_bytes,
            live_props: cluster.machines()[0].props.live().len(),
            recovery_enabled: config.recovery.enabled,
        }
    }

    fn live_prop_ids(&self) -> Vec<PropId> {
        // Property ids are assigned cluster-wide, so machine 0's table is
        // authoritative.
        self.cluster().machines()[0]
            .props
            .live()
            .iter()
            .map(|(id, _)| *id)
            .collect()
    }

    fn reclaim_prop(&mut self, id: PropId) {
        self.cluster_mut().drop_prop(id);
    }

    fn telemetry(&self) -> Arc<Telemetry> {
        Arc::clone(&self.cluster().telemetries()[0])
    }

    fn begin_job(&mut self, ctx: JobCtx, enqueue_ns: u64) {
        self.begin_job_window(ctx, enqueue_ns);
    }

    fn end_job(&mut self, outcome: JobOutcome) -> Option<JobExec> {
        self.end_job_window(outcome)
    }
}

impl Engine {
    /// Consumes the engine and starts a [`JobServer`] over it, configured
    /// from the engine's own `serve` config section (see the
    /// `.queue_depth` / `.memory_budget` / `.lane_weights` /
    /// `.default_deadline_ms` builder knobs).
    pub fn into_server(self) -> JobServer<Engine> {
        let config = self.cluster().config().serve;
        JobServer::start(self, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dir, Engine, JobSpec, ReduceOp};
    use pgxd_graph::generate;
    use pgxd_runtime::health::JobError;

    #[test]
    fn engine_profile_reflects_cluster() {
        let g = generate::ring(24);
        let mut e = Engine::builder().machines(3).build(&g).unwrap();
        let before = e.mem_profile();
        assert_eq!(before.nodes, 24);
        assert_eq!(before.machines, 3);
        let p = e.add_prop("x", 0i64);
        assert_eq!(e.mem_profile().live_props, before.live_props + 1);
        assert!(e.live_prop_ids().contains(&p.id));
        e.reclaim_prop(p.id);
        assert_eq!(e.mem_profile().live_props, before.live_props);
    }

    #[test]
    fn served_job_matches_direct_run() {
        let g = generate::ring(16);
        let mut direct = Engine::builder().machines(2).build(&g).unwrap();
        let d = direct.add_prop("deg", 0i64);
        direct
            .try_run_edge_job(
                Dir::Out,
                &JobSpec::new().reduce(d, ReduceOp::Sum),
                crate::tasks::on_edge(move |ctx| ctx.write_nbr(d, ReduceOp::Sum, 1i64)),
            )
            .unwrap();
        let expect = direct.gather::<i64>(d);

        let server = Engine::builder()
            .machines(2)
            .build(&g)
            .unwrap()
            .into_server();
        let session = server.session("t");
        let got = session
            .submit(Lane::Interactive, 1, |engine: &mut Engine, cancel| {
                let d = engine.add_prop("deg", 0i64);
                engine.try_run_edge_job_with(
                    Dir::Out,
                    &JobSpec::new().reduce(d, ReduceOp::Sum),
                    crate::tasks::on_edge(move |ctx| ctx.write_nbr(d, ReduceOp::Sum, 1i64)),
                    cancel,
                )?;
                Ok(engine.gather::<i64>(d))
            })
            .unwrap()
            .join()
            .unwrap();
        assert_eq!(got, expect);
        drop(session);
        server.shutdown();
    }

    #[test]
    fn session_columns_are_reclaimed_on_close() {
        let g = generate::ring(12);
        let server = Engine::builder()
            .machines(2)
            .build(&g)
            .unwrap()
            .into_server();
        let mut s = server.session("tenant");
        s.submit(Lane::Batch, 1, |engine: &mut Engine, _| {
            let _p = engine.add_prop("scratch", 0.0f64);
            Ok(())
        })
        .unwrap()
        .join()
        .unwrap();
        s.close();
        let engine = server.shutdown();
        assert_eq!(
            engine.live_prop_ids().len(),
            0,
            "closed session's columns must be gone"
        );
    }

    #[test]
    fn undersized_budget_denies_before_touching_cluster() {
        let g = generate::ring(12);
        let server = Engine::builder()
            .machines(2)
            .memory_budget(1)
            .build(&g)
            .unwrap()
            .into_server();
        let session = server.session("t");
        let err = session
            .submit(Lane::Interactive, 2, |_: &mut Engine, _| Ok(()))
            .unwrap_err();
        assert!(matches!(err, JobError::AdmissionDenied { .. }));
        drop(session);
        server.shutdown();
    }
}
