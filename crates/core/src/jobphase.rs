//! The main parallel phase: the run-to-completion worker loop over the
//! chunk queue (§3.2).
//!
//! Each worker: grab a chunk → for each active vertex run the task over
//! its edges → invoke locally-satisfied continuations → opportunistically
//! drain responses → repeat; once the queue is empty, flush the request
//! buffers and keep draining responses until the job is globally complete
//! ("a particular job completes when the task list is empty and there are
//! no unfinished remote requests").

use crate::scope::TaskScope;
use crate::task::{Dir, EdgeCtx, EdgeTask, NodeCtx, NodeTask, ReadDoneCtx};
use pgxd_runtime::chunk::ChunkQueue;
use pgxd_runtime::message::MsgKind;
use pgxd_runtime::phase::{JobState, Phase, WorkerEnv};
use pgxd_runtime::props::{PropId, ReduceOp};
use std::sync::Arc;

/// Invokes the pending locally-satisfied `read_done` continuations.
fn drain_local<F: Fn(&mut ReadDoneCtx<'_, '_>)>(scope: &mut TaskScope<'_>, read_done: &F) {
    while let Some((rec, bits)) = scope.local_reads.pop() {
        let mut ctx = ReadDoneCtx {
            scope,
            node: rec.node as usize,
            aux: rec.aux,
            bits,
        };
        read_done(&mut ctx);
    }
}

/// Drains the worker's response queue once; returns whether anything was
/// processed.
fn drain_responses<F: Fn(&mut ReadDoneCtx<'_, '_>)>(
    scope: &mut TaskScope<'_>,
    read_done: &F,
) -> bool {
    let mut worked = false;
    while let Some(resp) = scope.comm.try_pop_response() {
        worked = true;
        match resp.env.kind {
            MsgKind::ReadResp => {
                for i in 0..resp.recs.len() {
                    let rec = resp.recs[i];
                    // `read_value` maps the record through the combining
                    // entry-index table (identity when combining is off).
                    let bits = resp.read_value(i);
                    let mut ctx = ReadDoneCtx {
                        scope,
                        node: rec.node as usize,
                        aux: rec.aux,
                        bits,
                    };
                    read_done(&mut ctx);
                }
            }
            MsgKind::RmiResp => {
                for (bytes, rec) in
                    pgxd_runtime::message::rmi_resp_entries(&resp.env.payload).zip(resp.recs.iter())
                {
                    let mut first = [0u8; 8];
                    let n = bytes.len().min(8);
                    first[..n].copy_from_slice(&bytes[..n]);
                    let mut ctx = ReadDoneCtx {
                        scope,
                        node: rec.node as usize,
                        aux: rec.aux,
                        bits: u64::from_le_bytes(first),
                    };
                    read_done(&mut ctx);
                }
            }
            _ => unreachable!("worker queues carry only responses"),
        }
        scope.comm.finish_response(resp);
        drain_local(scope, read_done);
    }
    worked
}

/// Flush + drain until the phase is globally complete, then merge
/// privatized ghosts. Shared tail of both job phase kinds.
fn finish_phase<F: Fn(&mut ReadDoneCtx<'_, '_>)>(
    scope: &mut TaskScope<'_>,
    job: &JobState,
    machine_id: usize,
    worker_idx: usize,
    read_done: &F,
) {
    job.mark_tasks_done(machine_id, worker_idx);
    scope.comm.flush();
    loop {
        if drain_responses(scope, read_done) {
            scope.comm.flush();
            continue;
        }
        if job.is_complete() {
            break;
        }
        if scope.machine.health.is_aborted() {
            // Exact termination can never be reached once envelopes were
            // lost; fail the pending continuations and reach the barrier
            // so every thread joins (the driver surfaces the JobError).
            scope.comm.abort_in_flight();
            break;
        }
        std::thread::yield_now();
    }
    job.mark_drained(machine_id, worker_idx);
    scope.merge_privs();
    scope.publish_stats();
}

/// The main phase of an edge-iterator job.
pub(crate) struct EdgeJobPhase<T: EdgeTask> {
    pub task: Arc<T>,
    pub dir: Dir,
    pub reduces: Vec<(PropId, ReduceOp)>,
    pub privatize: bool,
    /// One chunk queue per machine.
    pub queues: Vec<Arc<ChunkQueue>>,
    pub job: Arc<JobState>,
}

impl<T: EdgeTask> Phase for EdgeJobPhase<T> {
    fn execute(&self, env: &mut WorkerEnv<'_>) {
        let machine = env.machine;
        let machine_id = machine.id as usize;
        let worker_idx = env.worker_idx;
        let mut scope = TaskScope::new(machine, env.comm, &self.reduces, self.privatize);
        let task = &*self.task;
        let read_done = |ctx: &mut ReadDoneCtx<'_, '_>| task.read_done(ctx);
        let queue = &self.queues[machine_id];

        let mut claims = 0u64;
        while let Some(chunk) = queue.pop() {
            claims += 1;
            if self.job.cancel().is_cancelled() {
                // Cooperative cancellation: retire this chunk unexecuted,
                // claim-and-retire the remainder of the queue, and fall
                // through to the normal end-of-phase drain + barrier so
                // exact termination still reaches zero on every machine.
                self.job.retire();
                self.job.retire_many(queue.drain_remaining());
                break;
            }
            for node in chunk {
                {
                    let mut nctx = NodeCtx {
                        scope: &mut scope,
                        node,
                    };
                    if !task.filter(&mut nctx) {
                        continue;
                    }
                }
                let frag = match self.dir {
                    Dir::Out => &machine.graph.out,
                    Dir::In => &machine.graph.inn,
                };
                for edge in frag.edge_range(node) {
                    let target = frag.targets[edge];
                    let mut ctx = EdgeCtx {
                        scope: &mut scope,
                        node,
                        edge,
                        target,
                        dir: self.dir,
                    };
                    task.run(&mut ctx);
                }
                drain_local(&mut scope, &read_done);
            }
            self.job.retire();
            drain_responses(&mut scope, &read_done);
        }
        machine.telemetry.record_chunk_claims(claims);
        finish_phase(&mut scope, &self.job, machine_id, worker_idx, &read_done);
    }
}

/// The main phase of a node-iterator job.
pub(crate) struct NodeJobPhase<T: NodeTask> {
    pub task: Arc<T>,
    pub reduces: Vec<(PropId, ReduceOp)>,
    pub privatize: bool,
    pub queues: Vec<Arc<ChunkQueue>>,
    pub job: Arc<JobState>,
}

impl<T: NodeTask> Phase for NodeJobPhase<T> {
    fn execute(&self, env: &mut WorkerEnv<'_>) {
        let machine = env.machine;
        let machine_id = machine.id as usize;
        let worker_idx = env.worker_idx;
        let mut scope = TaskScope::new(machine, env.comm, &self.reduces, self.privatize);
        let task = &*self.task;
        let read_done = |ctx: &mut ReadDoneCtx<'_, '_>| task.read_done(ctx);
        let queue = &self.queues[machine_id];

        let mut claims = 0u64;
        while let Some(chunk) = queue.pop() {
            claims += 1;
            if self.job.cancel().is_cancelled() {
                // Same cooperative-cancellation path as the edge phase.
                self.job.retire();
                self.job.retire_many(queue.drain_remaining());
                break;
            }
            for node in chunk {
                let skip = {
                    let mut nctx = NodeCtx {
                        scope: &mut scope,
                        node,
                    };
                    if task.filter(&mut nctx) {
                        task.run(&mut nctx);
                        false
                    } else {
                        true
                    }
                };
                if !skip {
                    drain_local(&mut scope, &read_done);
                }
            }
            self.job.retire();
            drain_responses(&mut scope, &read_done);
        }
        machine.telemetry.record_chunk_claims(claims);
        finish_phase(&mut scope, &self.job, machine_id, worker_idx, &read_done);
    }
}
