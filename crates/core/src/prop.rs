//! Typed property handles.

use pgxd_runtime::props::{PropId, PropValue};
use std::marker::PhantomData;

/// A typed handle to a distributed node property.
///
/// `Prop<T>` is a 2-byte id plus a phantom type: copying it around is free,
/// and the type parameter statically prevents reading an `f64` column as
/// `i64`. Handles are created by [`crate::Engine::add_prop`].
pub struct Prop<T: PropValue> {
    pub(crate) id: PropId,
    _marker: PhantomData<fn() -> T>,
}

impl<T: PropValue> Prop<T> {
    pub(crate) fn new(id: PropId) -> Self {
        Prop {
            id,
            _marker: PhantomData,
        }
    }

    /// The untyped runtime id.
    pub fn id(&self) -> PropId {
        self.id
    }
}

impl<T: PropValue> Clone for Prop<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: PropValue> Copy for Prop<T> {}

impl<T: PropValue> std::fmt::Debug for Prop<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Prop#{}", self.id.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_copy_and_cheap() {
        let p: Prop<f64> = Prop::new(PropId(3));
        let q = p;
        assert_eq!(p.id(), q.id());
        assert_eq!(std::mem::size_of::<Prop<f64>>(), 2);
        assert_eq!(format!("{p:?}"), "Prop#3");
    }
}
