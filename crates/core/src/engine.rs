//! The driver-side engine facade (§4.2 top-level execution model).

use crate::jobphase::{EdgeJobPhase, NodeJobPhase};
use crate::prop::Prop;
use crate::spec::JobSpec;
use crate::task::{Dir, EdgeTask, NodeTask};
use pgxd_graph::{Graph, NodeId};
use pgxd_runtime::cancel::{CancelReason, CancelToken};
use pgxd_runtime::checkpoint::Checkpoint;
use pgxd_runtime::chunk::{make_chunks, node_target_from_edges, ChunkQueue};
use pgxd_runtime::config::{
    AdaptiveFlushConfig, ChunkingMode, Config, FaultPlan, NetConfig, PartitioningMode,
    RecoveryConfig, ReliabilityConfig,
};
use pgxd_runtime::health::JobError;
use pgxd_runtime::jobctx::{JobCtx, JobExec, JobOutcome};
use pgxd_runtime::machine::RmiFn;
use pgxd_runtime::phase::{GhostPushPhase, GhostReducePhase, JobState, Phase};
use pgxd_runtime::props::{PropValue, ReduceOp};
use pgxd_runtime::stats::{Breakdown, StatsSnapshot};
use pgxd_runtime::Cluster;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Fluent construction of an [`Engine`] (wraps [`Config`]).
#[derive(Clone, Debug)]
pub struct EngineBuilder {
    config: Config,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        EngineBuilder {
            config: Config::test(2),
        }
    }
}

impl EngineBuilder {
    /// Number of simulated machines.
    pub fn machines(mut self, p: usize) -> Self {
        self.config.machines = p;
        self
    }

    /// Worker threads per machine.
    pub fn workers(mut self, w: usize) -> Self {
        self.config.workers = w;
        self
    }

    /// Copier threads per machine.
    pub fn copiers(mut self, c: usize) -> Self {
        self.config.copiers = c;
        self
    }

    /// Message buffer size in bytes (paper default: 256 KB).
    pub fn buffer_bytes(mut self, b: usize) -> Self {
        self.config.buffer_bytes = b;
        self
    }

    /// Ghost-node degree threshold (`None` disables ghosts).
    pub fn ghost_threshold(mut self, t: Option<usize>) -> Self {
        self.config.ghost_threshold = t;
        self
    }

    /// Vertex or edge partitioning.
    pub fn partitioning(mut self, m: PartitioningMode) -> Self {
        self.config.partitioning = m;
        self
    }

    /// Node or edge chunking.
    pub fn chunking(mut self, m: ChunkingMode) -> Self {
        self.config.chunking = m;
        self
    }

    /// Target edges per chunk.
    pub fn chunk_edges(mut self, e: usize) -> Self {
        self.config.chunk_edges = e;
        self
    }

    /// Toggle thread-private ghost copies for reduced properties.
    pub fn ghost_privatization(mut self, on: bool) -> Self {
        self.config.ghost_privatization = on;
        self
    }

    /// Simulated network cost model.
    pub fn net(mut self, net: NetConfig) -> Self {
        self.config.net = net;
        self
    }

    /// Enables or disables histogram/tracer telemetry recording.
    pub fn telemetry(mut self, on: bool) -> Self {
        self.config.telemetry.enabled = on;
        self
    }

    /// Installs a fault-injection plan on the fabric. An active plan
    /// auto-enables the reliability protocol (a faulty fabric without it
    /// would hang the exact termination counter).
    pub fn fault(mut self, plan: FaultPlan) -> Self {
        self.config = self.config.with_fault(plan);
        self
    }

    /// Enables or disables the reliability protocol (sequencing, acks,
    /// retransmission, watchdog) independently of fault injection.
    pub fn reliability(mut self, on: bool) -> Self {
        self.config.reliability = if on {
            ReliabilityConfig::on()
        } else {
            ReliabilityConfig::off()
        };
        self
    }

    /// Send-pool free-list shard count (see `Config::pool_shards`).
    pub fn pool_shards(mut self, n: usize) -> Self {
        self.config.pool_shards = n;
        self
    }

    /// Enables or disables in-flight remote-read combining.
    pub fn read_combining(mut self, on: bool) -> Self {
        self.config.read_combining = on;
        self
    }

    /// Adaptive flush-threshold control loop with explicit bounds.
    pub fn adaptive_flush(mut self, cfg: AdaptiveFlushConfig) -> Self {
        self.config.adaptive_flush = cfg;
        self
    }

    /// Checkpoint/retry policy for the recovery driver.
    pub fn recovery(mut self, rc: RecoveryConfig) -> Self {
        self.config.recovery = rc;
        self
    }

    /// Checkpoint cadence in iterations; enables recovery.
    pub fn checkpoint_every(mut self, every: u64) -> Self {
        self.config.recovery.enabled = true;
        self.config.recovery.checkpoint_every = every;
        self
    }

    /// Retry budget after the initial attempt; enables recovery.
    pub fn max_retries(mut self, n: u32) -> Self {
        self.config.recovery.enabled = true;
        self.config.recovery.max_retries = n;
        self
    }

    /// Installs a storage fault plan on every machine's checkpoint store.
    /// An active plan auto-enables recovery (without it the injected
    /// corruption could never be detected, let alone survived).
    pub fn storage_fault(mut self, plan: pgxd_runtime::config::StorageFaultPlan) -> Self {
        self.config = self.config.with_storage_fault(plan);
        self
    }

    /// How many checkpoints each store retains (the fallback depth for
    /// corrupt-newest restores); enables recovery.
    pub fn checkpoint_retain(mut self, n: usize) -> Self {
        self.config.recovery.enabled = true;
        self.config.recovery.retain = n;
        self
    }

    /// Watchdog trips a machine may accumulate before the flap detector
    /// quarantines it; enables recovery.
    pub fn flap_threshold(mut self, trips: u32) -> Self {
        self.config.recovery.enabled = true;
        self.config.recovery.flap_threshold = trips;
        self
    }

    /// Brownout gate thresholds as per-mille of the submission-queue depth:
    /// the batch lane sheds above `shed`, re-opens below `reopen`.
    pub fn brownout(mut self, shed_per_mille: u16, reopen_per_mille: u16) -> Self {
        self.config.serve.brownout_shed_per_mille = shed_per_mille;
        self.config.serve.brownout_reopen_per_mille = reopen_per_mille;
        self
    }

    /// Server-wide retry token budget shared across sessions (`0` tokens
    /// = unlimited); one token refills every `refill_ms`.
    pub fn retry_budget(mut self, tokens: u32, refill_ms: u64) -> Self {
        self.config.serve.retry_budget_tokens = tokens;
        self.config.serve.retry_budget_refill_ms = refill_ms;
        self
    }

    /// Crash-watchdog deadline: how long a peer may stay silent before it
    /// is declared dead (only meaningful with reliability enabled).
    pub fn heartbeat_deadline_ms(mut self, ms: u64) -> Self {
        self.config.reliability.watchdog_ms = ms;
        self
    }

    /// Job-server submission-queue depth (see `pgxd::serve`).
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.config.serve.queue_depth = depth;
        self
    }

    /// Job-server admission memory budget in bytes; `0` disables
    /// admission control.
    pub fn memory_budget(mut self, bytes: u64) -> Self {
        self.config.serve.memory_budget_bytes = bytes;
        self
    }

    /// Job-server `[interactive, batch]` weighted-fair drain weights.
    pub fn lane_weights(mut self, weights: [u32; 2]) -> Self {
        self.config.serve.lane_weights = weights;
        self
    }

    /// Default per-job deadline for served jobs, in milliseconds; `0`
    /// means no default deadline.
    pub fn default_deadline_ms(mut self, ms: u64) -> Self {
        self.config.serve.default_deadline_ms = ms;
        self
    }

    /// Start from an explicit [`Config`].
    pub fn from_config(config: Config) -> Self {
        EngineBuilder { config }
    }

    /// Loads `graph` and starts the engine threads.
    pub fn build(self, graph: &Graph) -> Result<Engine, String> {
        Ok(Engine {
            cluster: Cluster::load(graph, self.config)?,
            last_timings: Vec::new(),
            job_acc: None,
        })
    }

    /// Like [`Self::build`] with an explicit ghost-node list (Figure 6a).
    pub fn build_with_ghosts(self, graph: &Graph, ghosts: Vec<NodeId>) -> Result<Engine, String> {
        Ok(Engine {
            cluster: Cluster::load_with_ghosts(graph, self.config, ghosts)?,
            last_timings: Vec::new(),
            job_acc: None,
        })
    }
}

/// What one job execution cost (the driver's window into Figures 6a/6c).
#[derive(Clone, Debug)]
pub struct JobReport {
    /// Wall time of the whole job (ghost phases + main phase).
    pub total: Duration,
    /// Wall time of the main phase only.
    pub main: Duration,
    /// Traffic generated by the job, cluster-wide.
    pub traffic: StatsSnapshot,
    /// Figure-6c style busy/idle breakdown of the main phase.
    pub breakdown: Breakdown,
}

/// Accumulates engine-level breakdowns while a served job's attribution
/// window is open: one served job may run many barrier-delimited engine
/// jobs (e.g. one per PageRank iteration), and the serve layer wants
/// their compute/comm/drain/checkpoint seconds summed.
#[derive(Default)]
struct JobAcc {
    compute_s: f64,
    comm_s: f64,
    drain_s: f64,
    checkpoint_s: f64,
    engine_jobs: u64,
}

/// The PGX.D engine: a loaded distributed graph plus its thread pools.
pub struct Engine {
    cluster: Cluster,
    last_timings: Vec<Vec<pgxd_runtime::stats::WorkerTiming>>,
    job_acc: Option<JobAcc>,
}

impl Engine {
    /// Starts configuring an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// The underlying cluster (benchmarks reach through for counters).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Mutable cluster access (advanced/bench use).
    pub fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    /// Number of machines.
    pub fn num_machines(&self) -> usize {
        self.cluster.num_machines()
    }

    /// Total vertices.
    pub fn num_nodes(&self) -> usize {
        self.cluster.num_nodes()
    }

    // ------------------------------------------------------------------
    // Properties
    // ------------------------------------------------------------------

    /// Creates a node property with a default value on every machine.
    pub fn add_prop<T: PropValue>(&mut self, name: &str, default: T) -> Prop<T> {
        Prop::new(self.cluster.add_prop(name, default))
    }

    /// Drops a (temporary) property everywhere.
    pub fn drop_prop<T: PropValue>(&mut self, p: Prop<T>) {
        self.cluster.drop_prop(p.id);
    }

    /// Driver-side read of one vertex's value.
    pub fn get<T: PropValue>(&self, p: Prop<T>, v: NodeId) -> T {
        self.cluster.get(p.id, v)
    }

    /// Driver-side write of one vertex's value (between jobs only).
    pub fn set<T: PropValue>(&self, p: Prop<T>, v: NodeId, value: T) {
        self.cluster.set(p.id, v, value)
    }

    /// Fills a property everywhere (including ghost slots).
    pub fn fill<T: PropValue>(&self, p: Prop<T>, value: T) {
        self.cluster.fill(p.id, value)
    }

    /// Gathers a property into a vector indexed by global vertex id.
    pub fn gather<T: PropValue>(&self, p: Prop<T>) -> Vec<T> {
        self.cluster.gather(p.id)
    }

    /// Sequential global reduction over all vertices (driver-side).
    pub fn reduce<T: PropValue>(&self, p: Prop<T>, op: ReduceOp) -> T {
        self.cluster.reduce::<T>(p.id, op)
    }

    /// Counts vertices whose boolean property is set.
    pub fn count_true(&self, p: Prop<bool>) -> usize {
        self.cluster.count_true(p.id)
    }

    // ------------------------------------------------------------------
    // Checkpoint/restore
    // ------------------------------------------------------------------

    /// Snapshots every registered property plus `iteration`/`scalars`
    /// into per-machine checkpoint stores. Call between jobs — the
    /// quiescent cluster makes the snapshot barrier-consistent.
    pub fn take_checkpoint(
        &mut self,
        iteration: u64,
        scalars: Vec<u64>,
    ) -> Result<Arc<Checkpoint>, JobError> {
        let t0 = Instant::now();
        let result = self.cluster.take_checkpoint(iteration, scalars);
        if let Some(acc) = &mut self.job_acc {
            acc.checkpoint_s += t0.elapsed().as_secs_f64();
        }
        result
    }

    /// Restores a checkpoint taken on this cluster or on a differently
    /// partitioned one (degraded restart on survivors).
    pub fn restore_checkpoint(&mut self, ckpt: &Checkpoint) -> Result<(), JobError> {
        self.cluster.restore_checkpoint(ckpt)
    }

    /// The most recent durably-complete checkpoint, if any (plain copied
    /// memory — safe to hold across this engine's teardown).
    pub fn last_checkpoint(&self) -> Option<Arc<Checkpoint>> {
        self.cluster.last_checkpoint()
    }

    /// All retained checkpoints, newest first. The recovery driver carries
    /// this across engine teardown so a restore that finds the newest entry
    /// corrupt can fall back to an older one.
    pub fn checkpoint_ring(&self) -> Vec<Arc<Checkpoint>> {
        self.cluster.checkpoint_ring()
    }

    // ------------------------------------------------------------------
    // RMI
    // ------------------------------------------------------------------

    /// Registers a remote method on every machine; returns its id.
    pub fn register_rmi(&mut self, f: Arc<RmiFn>) -> u16 {
        self.cluster.register_rmi(f)
    }

    // ------------------------------------------------------------------
    // Jobs
    // ------------------------------------------------------------------

    /// Runs an edge-iterator job: `task.run` executes for every `dir`-edge
    /// of every vertex passing `task.filter`, across all machines.
    ///
    /// **Deprecated:** panics if the cluster aborts. New code should call
    /// [`Engine::try_run_edge_job`]; this is the single panicking wrapper
    /// kept for callers that genuinely cannot recover.
    pub fn run_edge_job<T: EdgeTask>(&mut self, dir: Dir, spec: &JobSpec, task: T) -> JobReport {
        self.try_run_edge_job(dir, spec, task).expect("job failed")
    }

    /// Fallible [`Engine::run_edge_job`]: a machine crash, partition, or
    /// protocol violation surfaces as a structured [`JobError`] once every
    /// worker has reached the phase barrier — no hang, no panic.
    pub fn try_run_edge_job<T: EdgeTask>(
        &mut self,
        dir: Dir,
        spec: &JobSpec,
        task: T,
    ) -> Result<JobReport, JobError> {
        self.try_run_edge_job_with(dir, spec, task, &CancelToken::never())
    }

    /// [`Engine::try_run_edge_job`] with a cancellation token. Workers poll
    /// the token once per chunk; a fired token lets the current chunk
    /// finish, retires the rest of the queue, ends the phase at its normal
    /// barrier, and surfaces [`JobError::Cancelled`] or
    /// [`JobError::DeadlineExceeded`]. The cluster stays healthy — the next
    /// job runs normally.
    pub fn try_run_edge_job_with<T: EdgeTask>(
        &mut self,
        dir: Dir,
        spec: &JobSpec,
        task: T,
        cancel: &CancelToken,
    ) -> Result<JobReport, JobError> {
        let queues = self.build_edge_queues(dir);
        let total_chunks: usize = queues.iter().map(|q| q.len()).sum();
        let config = self.cluster.config().clone();
        let main = Arc::new(EdgeJobPhase {
            task: Arc::new(task),
            dir,
            reduces: spec.reduces.clone(),
            privatize: config.ghost_privatization,
            queues,
            job: JobState::with_cancel(
                total_chunks,
                self.cluster.pending().clone(),
                config.machines,
                config.workers,
                cancel.clone(),
            ),
        });
        self.try_run_job_phases(spec, main.job.clone(), main, cancel)
    }

    /// Runs a node-iterator job: `task.run` executes once per active
    /// vertex.
    ///
    /// **Deprecated:** panics if the cluster aborts. New code should call
    /// [`Engine::try_run_node_job`]; this is the single panicking wrapper
    /// kept for callers that genuinely cannot recover.
    pub fn run_node_job<T: NodeTask>(&mut self, spec: &JobSpec, task: T) -> JobReport {
        self.try_run_node_job(spec, task).expect("job failed")
    }

    /// Fallible [`Engine::run_node_job`].
    pub fn try_run_node_job<T: NodeTask>(
        &mut self,
        spec: &JobSpec,
        task: T,
    ) -> Result<JobReport, JobError> {
        self.try_run_node_job_with(spec, task, &CancelToken::never())
    }

    /// [`Engine::try_run_node_job`] with a cancellation token; see
    /// [`Engine::try_run_edge_job_with`] for the semantics.
    pub fn try_run_node_job_with<T: NodeTask>(
        &mut self,
        spec: &JobSpec,
        task: T,
        cancel: &CancelToken,
    ) -> Result<JobReport, JobError> {
        let queues = self.build_node_queues();
        let total_chunks: usize = queues.iter().map(|q| q.len()).sum();
        let config = self.cluster.config().clone();
        let main = Arc::new(NodeJobPhase {
            task: Arc::new(task),
            reduces: spec.reduces.clone(),
            privatize: config.ghost_privatization,
            queues,
            job: JobState::with_cancel(
                total_chunks,
                self.cluster.pending().clone(),
                config.machines,
                config.workers,
                cancel.clone(),
            ),
        });
        self.try_run_job_phases(spec, main.job.clone(), main, cancel)
    }

    /// Maps a fired token to its structured error.
    fn cancel_error(cancel: &CancelToken) -> Option<JobError> {
        cancel.fired().map(|reason| match reason {
            CancelReason::Explicit => JobError::Cancelled { job: cancel.job() },
            CancelReason::Deadline => JobError::DeadlineExceeded { job: cancel.job() },
        })
    }

    fn try_run_job_phases(
        &mut self,
        spec: &JobSpec,
        main_job: Arc<JobState>,
        main: Arc<dyn Phase>,
        cancel: &CancelToken,
    ) -> Result<JobReport, JobError> {
        let config = self.cluster.config().clone();
        let workers_total = config.machines * config.workers;
        let has_ghosts = !self.cluster.ghosts().is_empty();
        let before = self.cluster.total_stats();
        let t0 = Instant::now();

        // A token that fired while the job sat in a queue means nothing
        // ran yet; bail before spinning up any phase.
        if let Some(err) = Self::cancel_error(cancel) {
            return Err(err);
        }

        if has_ghosts && !spec.is_empty() {
            let job = JobState::with_cancel(
                workers_total,
                self.cluster.pending().clone(),
                config.machines,
                config.workers,
                cancel.clone(),
            );
            self.cluster.try_run_labeled_phase(
                "ghost_push",
                Arc::new(GhostPushPhase {
                    read_props: spec.reads.clone(),
                    reduce_props: spec.reduces.clone(),
                    job,
                }),
            )?;
        }

        let t_main = Instant::now();
        self.cluster.try_run_labeled_phase("main", main)?;
        let main_dur = t_main.elapsed();

        if has_ghosts && !spec.reduces.is_empty() && !cancel.is_cancelled() {
            let job = JobState::with_cancel(
                workers_total,
                self.cluster.pending().clone(),
                config.machines,
                config.workers,
                cancel.clone(),
            );
            self.cluster.try_run_labeled_phase(
                "ghost_reduce",
                Arc::new(GhostReducePhase {
                    reduce_props: spec.reduces.clone(),
                    job,
                }),
            )?;
        }

        // The phases ended at their barriers; a fired token now becomes
        // the job's structured result.
        if let Some(err) = Self::cancel_error(cancel) {
            return Err(err);
        }

        let total = t0.elapsed();
        self.last_timings = main_job.timings();
        let breakdown = Breakdown::from_timings(&self.last_timings);
        if let Some(acc) = &mut self.job_acc {
            acc.compute_s += breakdown.fully_parallel;
            acc.comm_s += breakdown.intra_machine + breakdown.inter_machine;
            acc.drain_s += breakdown.drain;
            acc.engine_jobs += 1;
        }
        Ok(JobReport {
            total,
            main: main_dur,
            traffic: self.cluster.total_stats() - before,
            breakdown,
        })
    }

    /// Runs an empty phase through the full control path — the cost floor
    /// of one synchronization step (Figure 5b, shared-memory barrier).
    pub fn barrier_roundtrip(&mut self) -> Duration {
        struct Noop;
        impl Phase for Noop {
            fn execute(&self, _env: &mut pgxd_runtime::phase::WorkerEnv<'_>) {}
        }
        let t0 = Instant::now();
        self.cluster
            .try_run_phase(Arc::new(Noop))
            .expect("barrier phase failed");
        t0.elapsed()
    }

    /// Crosses the message-based distributed barrier once (Figure 5b,
    /// strict-distributed variant).
    pub fn dist_barrier_roundtrip(&mut self) -> Duration {
        let t0 = Instant::now();
        self.cluster.run_dist_barrier();
        t0.elapsed()
    }

    /// Per-worker timings of the last job's main phase.
    pub fn last_timings(&self) -> &[Vec<pgxd_runtime::stats::WorkerTiming>] {
        &self.last_timings
    }

    // ------------------------------------------------------------------
    // Served-job attribution (the serve layer's ServeEngine hooks)
    // ------------------------------------------------------------------

    /// Opens a served-job attribution window: the cluster charges wire
    /// traffic to `ctx` and this engine starts summing compute/comm/drain
    /// breakdowns of the engine jobs it runs until
    /// [`Engine::end_job_window`].
    pub fn begin_job_window(&mut self, ctx: JobCtx, enqueue_ns: u64) {
        self.job_acc = Some(JobAcc::default());
        self.cluster.begin_job(ctx, enqueue_ns);
    }

    /// Closes the window and returns the job's execution record, also
    /// appending it to the Chrome-trace job lanes.
    pub fn end_job_window(&mut self, outcome: JobOutcome) -> Option<JobExec> {
        let acc = self.job_acc.take().unwrap_or_default();
        let mut exec = self.cluster.end_job(outcome)?;
        exec.compute_s = acc.compute_s;
        exec.comm_s = acc.comm_s;
        exec.drain_s = acc.drain_s;
        exec.checkpoint_s = acc.checkpoint_s;
        exec.engine_jobs = acc.engine_jobs;
        self.cluster.push_job_span(exec.clone());
        Some(exec)
    }

    /// Writes `trace.json` (Chrome `trace_event` format, Perfetto-viewable)
    /// and `report.json` (per-machine metrics) into `dir`. The report
    /// includes the breakdown of the last job, drain time included.
    pub fn export_telemetry(
        &self,
        dir: &std::path::Path,
    ) -> std::io::Result<(std::path::PathBuf, std::path::PathBuf)> {
        use pgxd_runtime::telemetry::export::json::Value;
        let b = Breakdown::from_timings(&self.last_timings);
        let extra = vec![(
            "last_job_breakdown".to_string(),
            Value::obj(vec![
                ("fully_parallel_s", b.fully_parallel.into()),
                ("intra_machine_s", b.intra_machine.into()),
                ("inter_machine_s", b.inter_machine.into()),
                ("drain_s", b.drain.into()),
            ]),
        )];
        self.cluster.export_telemetry_with(dir, extra)
    }

    fn build_edge_queues(&self, dir: Dir) -> Vec<Arc<ChunkQueue>> {
        let config = self.cluster.config();
        self.cluster
            .machines()
            .iter()
            .map(|m| {
                let frag = match dir {
                    Dir::Out => &m.graph.out,
                    Dir::In => &m.graph.inn,
                };
                let chunks = match config.chunking {
                    ChunkingMode::Edge => make_chunks(
                        &frag.row_ptr,
                        m.graph.num_local(),
                        ChunkingMode::Edge,
                        config.chunk_edges,
                    ),
                    ChunkingMode::Node => {
                        let target = node_target_from_edges(
                            config.chunk_edges,
                            m.graph.num_local(),
                            frag.num_edges(),
                        );
                        make_chunks(
                            &frag.row_ptr,
                            m.graph.num_local(),
                            ChunkingMode::Node,
                            target,
                        )
                    }
                };
                Arc::new(ChunkQueue::new(chunks))
            })
            .collect()
    }

    fn build_node_queues(&self) -> Vec<Arc<ChunkQueue>> {
        let config = self.cluster.config();
        self.cluster
            .machines()
            .iter()
            .map(|m| {
                // Node jobs have uniform per-vertex work; chunk by vertex
                // count scaled from the edge target.
                let target = node_target_from_edges(
                    config.chunk_edges,
                    m.graph.num_local(),
                    m.graph.out.num_edges(),
                );
                let chunks = make_chunks(
                    &m.graph.out.row_ptr,
                    m.graph.num_local(),
                    ChunkingMode::Node,
                    target,
                );
                Arc::new(ChunkQueue::new(chunks))
            })
            .collect()
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Engine({:?})", self.cluster)
    }
}
