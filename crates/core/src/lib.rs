//! PGX.D programming model — the public API of the reproduction.
//!
//! This crate implements §4 of the paper on top of `pgxd-runtime`:
//!
//! * [`Engine`] — the driver-side facade: load a graph into the simulated
//!   cluster, create properties, run jobs, inspect results (§4.2's
//!   top-level execution model: sequential regions on the driver,
//!   parallel regions as jobs).
//! * [`EdgeTask`] / [`NodeTask`] — the run-to-completion task interface
//!   (§4.1.2): implement `run()` (and `read_done()` for *data pulling*)
//!   and the engine invokes it for every edge (or node) of the graph in
//!   parallel, across machines.
//! * [`EdgeCtx`] / [`ReadDoneCtx`] / [`NodeCtx`] — the accessors the paper
//!   exposes as `get_local` / `set_local` / `write_remote<OP>` /
//!   `read_remote`, plus neighbor/degree/weight helpers.
//! * [`JobSpec`] — the per-job property declaration ("the program needs to
//!   define what properties are used in the region as well as how they are
//!   used — to be read or to be written (reduced)"), which drives the
//!   automatic ghost synchronization.
//!
//! # Example: pull-mode PageRank kernel
//!
//! ```
//! use pgxd::{Engine, EdgeTask, EdgeCtx, ReadDoneCtx, Dir, JobSpec, Prop, ReduceOp};
//! use pgxd_graph::generate;
//!
//! struct PullSum { src: Prop<f64>, dst: Prop<f64> }
//! impl EdgeTask for PullSum {
//!     fn run(&self, ctx: &mut EdgeCtx<'_, '_>) {
//!         ctx.read_nbr(self.src); // continues in read_done, even cross-machine
//!     }
//!     fn read_done(&self, ctx: &mut ReadDoneCtx<'_, '_>) {
//!         let v: f64 = ctx.value();
//!         let cur: f64 = ctx.get(self.dst);
//!         ctx.set(self.dst, cur + v); // same worker per node: no atomics
//!     }
//! }
//!
//! let g = generate::ring(64);
//! let mut engine = Engine::builder().machines(2).build(&g).unwrap();
//! let src = engine.add_prop("src", 1.0f64);
//! let dst = engine.add_prop("dst", 0.0f64);
//! engine
//!     .try_run_edge_job(
//!         Dir::In,
//!         &JobSpec::new().read(src).reduce(dst, ReduceOp::Sum),
//!         PullSum { src, dst },
//!     )
//!     .unwrap();
//! // Every ring node has exactly one in-neighbor with src == 1.0.
//! assert_eq!(engine.gather(dst), vec![1.0f64; 64]);
//! ```

mod closure_tasks;
mod engine;
mod jobphase;
mod prop;
pub mod recover;
mod scope;
pub mod serve;
mod spec;
mod task;
pub mod tune;
pub mod vector;

pub use engine::{Engine, EngineBuilder, JobReport};
pub use prop::Prop;
pub use recover::{Recovered, RecoveryDriver, ResumableAlgorithm, RetryPolicy, StepOutcome};
pub use spec::JobSpec;
pub use task::{Dir, EdgeCtx, EdgeTask, NodeCtx, NodeTask, ReadDoneCtx};

/// Closure-based ad-hoc kernels (see [`tasks::on_edge`]).
pub mod tasks {
    pub use crate::closure_tasks::{
        on_edge, on_edge_filtered, on_edge_pull, on_node, EdgeClosure, EdgePullClosure,
        FilteredEdgeClosure, NodeClosure,
    };
}

// Re-exports so algorithm code only needs `pgxd`.
pub use pgxd_graph::NodeId;
pub use pgxd_runtime::cancel::{CancelReason, CancelToken};
pub use pgxd_runtime::checkpoint::{Checkpoint, CheckpointStore, JobProgress};
pub use pgxd_runtime::config::{
    AdaptiveFlushConfig, ChunkingMode, Config, CrashPlan, FaultPlan, NetConfig, PartitioningMode,
    RecoveryConfig, ReliabilityConfig, ServeConfig, SlowPlan, StorageFaultKind, StorageFaultPlan,
    TelemetryConfig,
};
pub use pgxd_runtime::health::{JobError, RetryBudget};
pub use pgxd_runtime::props::{PropValue, ReduceOp};
pub use pgxd_runtime::stats::{Breakdown, StatsSnapshot};
