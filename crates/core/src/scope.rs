//! Worker-local execution scope shared by all task contexts of one phase.
//!
//! The scope is where the Data Manager decisions of §3.3 happen at
//! runtime: a property access against an [`EncTarget`] is resolved to a
//! plain local load/store, a (possibly privatized) ghost-slot reduction, or
//! a buffered remote request.

use pgxd_runtime::ids::MachineId;
use pgxd_runtime::localgraph::EncTarget;
use pgxd_runtime::machine::MachineState;
use pgxd_runtime::props::{bottom_bits, reduce_bits, Column, PropId, ReduceOp, TypeTag};
use pgxd_runtime::worker::{SideRec, WorkerComm};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// A thread-private ghost copy of one reduced property (§3.3 "Ghost
/// Privatization": "during the parallel region, reductions to the
/// properties are applied to the thread-private copies without using
/// atomic instructions").
struct PrivGhost {
    prop: PropId,
    op: ReduceOp,
    tag: TypeTag,
    bottom: u64,
    vals: Vec<u64>,
}

/// Per-worker, per-phase execution state.
pub(crate) struct TaskScope<'a> {
    pub machine: &'a Arc<MachineState>,
    pub comm: &'a mut WorkerComm,
    /// Lazily resolved property columns, indexed by prop id.
    cols: Vec<Option<Arc<Column>>>,
    /// Thread-private ghost copies (empty when privatization is off or the
    /// job reduces nothing).
    privs: Vec<PrivGhost>,
    /// Locally satisfied reads waiting for their `read_done` callback
    /// ("if the other node is in the same machine, read_done() is
    /// immediately invoked with the pointer to the local data").
    pub(crate) local_reads: Vec<(SideRec, u64)>,
    /// Batched local-access statistics, published at phase end.
    stat_local_reads: u64,
    stat_local_writes: u64,
}

impl<'a> TaskScope<'a> {
    pub fn new(
        machine: &'a Arc<MachineState>,
        comm: &'a mut WorkerComm,
        reduces: &[(PropId, ReduceOp)],
        privatize: bool,
    ) -> Self {
        let num_ghosts = machine.graph.num_ghosts();
        let privs = if privatize && num_ghosts > 0 {
            reduces
                .iter()
                .map(|&(prop, op)| {
                    let tag = machine.props.column(prop).tag();
                    let bottom = bottom_bits(tag, op);
                    PrivGhost {
                        prop,
                        op,
                        tag,
                        bottom,
                        vals: vec![bottom; num_ghosts],
                    }
                })
                .collect()
        } else {
            Vec::new()
        };
        TaskScope {
            machine,
            comm,
            cols: Vec::new(),
            privs,
            local_reads: Vec::new(),
            stat_local_reads: 0,
            stat_local_writes: 0,
        }
    }

    /// Resolves (and caches) a property column.
    #[inline]
    pub fn col(&mut self, p: PropId) -> &Arc<Column> {
        let idx = p.0 as usize;
        if self.cols.len() <= idx {
            self.cols.resize_with(idx + 1, || None);
        }
        if self.cols[idx].is_none() {
            self.cols[idx] = Some(self.machine.props.column(p));
        }
        self.cols[idx].as_ref().unwrap()
    }

    /// Plain load of a local column index.
    #[inline]
    pub fn load_local(&mut self, p: PropId, index: usize) -> u64 {
        self.col(p).load_bits(index)
    }

    /// Plain store to a local column index.
    #[inline]
    pub fn store_local(&mut self, p: PropId, index: usize, bits: u64) {
        self.col(p).store_bits(index, bits);
    }

    /// Applies a write-reduction against an encoded target: the §3.3 /
    /// §3.4 dispatch (ghost-private / local-atomic / buffered-remote).
    pub fn reduce_target(&mut self, target: EncTarget, p: PropId, op: ReduceOp, bits: u64) {
        if target.is_remote() {
            let gid = target.global_id();
            self.comm.push_mut(gid.machine(), p, op, gid.offset(), bits);
            return;
        }
        let index = target.local_index();
        let num_local = self.machine.graph.num_local();
        if index >= num_local {
            let ord = index - num_local;
            if let Some(pg) = self.privs.iter_mut().find(|pg| pg.prop == p && pg.op == op) {
                pg.vals[ord] = reduce_bits(pg.tag, op, pg.vals[ord], bits);
                return;
            }
        }
        self.stat_local_writes += 1;
        self.col(p).reduce_bits_atomic(index, op, bits);
    }

    /// Issues a read against an encoded target; local targets are answered
    /// immediately into `local_reads`, remote ones are buffered.
    pub fn read_target(&mut self, rec: SideRec, target: EncTarget, p: PropId) {
        if target.is_remote() {
            let gid = target.global_id();
            self.comm.push_read(gid.machine(), p, gid.offset(), rec);
        } else {
            self.stat_local_reads += 1;
            let bits = self.col(p).load_bits(target.local_index());
            self.local_reads.push((rec, bits));
        }
    }

    /// Reduces a value into an arbitrary vertex by *global* id, local or
    /// not (used by node tasks that target non-neighbors).
    pub fn reduce_global(&mut self, v: pgxd_graph::NodeId, p: PropId, op: ReduceOp, bits: u64) {
        let part = &self.machine.partition;
        let owner: MachineId = part.owner(v);
        let offset = v - part.start(owner);
        if owner == self.machine.id {
            self.stat_local_writes += 1;
            self.col(p).reduce_bits_atomic(offset as usize, op, bits);
        } else {
            self.comm.push_mut(owner, p, op, offset, bits);
        }
    }

    /// Publishes batched local-access statistics to the machine counters.
    pub fn publish_stats(&mut self) {
        if self.stat_local_reads > 0 {
            self.machine
                .stats
                .local_reads
                .fetch_add(self.stat_local_reads, Ordering::Relaxed);
            self.stat_local_reads = 0;
        }
        if self.stat_local_writes > 0 {
            self.machine
                .stats
                .local_writes
                .fetch_add(self.stat_local_writes, Ordering::Relaxed);
            self.stat_local_writes = 0;
        }
    }

    /// Merges thread-private ghost partials into the machine's shared
    /// ghost slots (stage one of the two-staged ghost synchronization:
    /// "first between cores and then between machines").
    pub fn merge_privs(&mut self) {
        let num_local = self.machine.graph.num_local();
        let privs = std::mem::take(&mut self.privs);
        for pg in &privs {
            let col = self.col(pg.prop).clone();
            for (ord, &bits) in pg.vals.iter().enumerate() {
                if bits != pg.bottom {
                    col.reduce_bits_atomic(num_local + ord, pg.op, bits);
                }
            }
        }
    }
}
