//! Closure-based task construction — the convenience layer §4.3 motivates
//! ("for the sake of data scientists who may not be experts in C++
//! programming"). Instead of implementing [`EdgeTask`]/[`NodeTask`] on a
//! struct, ad-hoc kernels can be written inline:
//!
//! ```
//! use pgxd::{tasks, Engine, Dir, JobSpec, ReduceOp};
//! use pgxd_graph::generate;
//!
//! let g = generate::ring(16);
//! let mut engine = Engine::builder().machines(2).build(&g).unwrap();
//! let deg = engine.add_prop("deg", 0i64);
//!
//! // Count in-degrees with a one-line push kernel.
//! engine
//!     .try_run_edge_job(
//!         Dir::Out,
//!         &JobSpec::new().reduce(deg, ReduceOp::Sum),
//!         tasks::on_edge(move |ctx| ctx.write_nbr(deg, ReduceOp::Sum, 1i64)),
//!     )
//!     .unwrap();
//! assert_eq!(engine.gather::<i64>(deg), vec![1i64; 16]);
//! ```

use crate::task::{EdgeCtx, EdgeTask, NodeCtx, NodeTask, ReadDoneCtx};

/// An [`EdgeTask`] built from a `run` closure.
pub struct EdgeClosure<R> {
    run: R,
}

impl<R> EdgeTask for EdgeClosure<R>
where
    R: Fn(&mut EdgeCtx<'_, '_>) + Send + Sync + 'static,
{
    fn run(&self, ctx: &mut EdgeCtx<'_, '_>) {
        (self.run)(ctx)
    }
}

/// An [`EdgeTask`] built from `run` + `read_done` closures (pull kernels).
pub struct EdgePullClosure<R, D> {
    run: R,
    done: D,
}

impl<R, D> EdgeTask for EdgePullClosure<R, D>
where
    R: Fn(&mut EdgeCtx<'_, '_>) + Send + Sync + 'static,
    D: Fn(&mut ReadDoneCtx<'_, '_>) + Send + Sync + 'static,
{
    fn run(&self, ctx: &mut EdgeCtx<'_, '_>) {
        (self.run)(ctx)
    }
    fn read_done(&self, ctx: &mut ReadDoneCtx<'_, '_>) {
        (self.done)(ctx)
    }
}

/// An [`EdgeTask`] with a vertex filter.
pub struct FilteredEdgeClosure<F, R> {
    filter: F,
    run: R,
}

impl<F, R> EdgeTask for FilteredEdgeClosure<F, R>
where
    F: Fn(&mut NodeCtx<'_, '_>) -> bool + Send + Sync + 'static,
    R: Fn(&mut EdgeCtx<'_, '_>) + Send + Sync + 'static,
{
    fn filter(&self, ctx: &mut NodeCtx<'_, '_>) -> bool {
        (self.filter)(ctx)
    }
    fn run(&self, ctx: &mut EdgeCtx<'_, '_>) {
        (self.run)(ctx)
    }
}

/// A [`NodeTask`] built from a closure.
pub struct NodeClosure<R> {
    run: R,
}

impl<R> NodeTask for NodeClosure<R>
where
    R: Fn(&mut NodeCtx<'_, '_>) + Send + Sync + 'static,
{
    fn run(&self, ctx: &mut NodeCtx<'_, '_>) {
        (self.run)(ctx)
    }
}

/// Wraps a closure as an edge task (push-style kernels).
pub fn on_edge<R>(run: R) -> EdgeClosure<R>
where
    R: Fn(&mut EdgeCtx<'_, '_>) + Send + Sync + 'static,
{
    EdgeClosure { run }
}

/// Wraps `run` + `read_done` closures as a pull-style edge task.
pub fn on_edge_pull<R, D>(run: R, read_done: D) -> EdgePullClosure<R, D>
where
    R: Fn(&mut EdgeCtx<'_, '_>) + Send + Sync + 'static,
    D: Fn(&mut ReadDoneCtx<'_, '_>) + Send + Sync + 'static,
{
    EdgePullClosure {
        run,
        done: read_done,
    }
}

/// Wraps a filter + run pair as a filtered edge task (active-vertex
/// kernels).
pub fn on_edge_filtered<F, R>(filter: F, run: R) -> FilteredEdgeClosure<F, R>
where
    F: Fn(&mut NodeCtx<'_, '_>) -> bool + Send + Sync + 'static,
    R: Fn(&mut EdgeCtx<'_, '_>) + Send + Sync + 'static,
{
    FilteredEdgeClosure { filter, run }
}

/// Wraps a closure as a node task.
pub fn on_node<R>(run: R) -> NodeClosure<R>
where
    R: Fn(&mut NodeCtx<'_, '_>) + Send + Sync + 'static,
{
    NodeClosure { run }
}

#[cfg(test)]
mod tests {
    use crate::{Dir, Engine, JobSpec, ReduceOp};
    use pgxd_graph::generate;

    #[test]
    fn closure_push_kernel() {
        let g = generate::ring(12);
        let mut e = Engine::builder().machines(3).build(&g).unwrap();
        let acc = e.add_prop("acc", 0i64);
        e.try_run_edge_job(
            Dir::Out,
            &JobSpec::new().reduce(acc, ReduceOp::Sum),
            super::on_edge(move |ctx| ctx.write_nbr(acc, ReduceOp::Sum, 2i64)),
        )
        .unwrap();
        assert_eq!(e.gather::<i64>(acc), vec![2i64; 12]);
    }

    #[test]
    fn closure_pull_kernel() {
        let g = generate::ring(8);
        let mut e = Engine::builder().machines(2).build(&g).unwrap();
        let src = e.add_prop("src", 3i64);
        let dst = e.add_prop("dst", 0i64);
        e.try_run_edge_job(
            Dir::In,
            &JobSpec::new().read(src),
            super::on_edge_pull(
                move |ctx| ctx.read_nbr(src),
                move |ctx| {
                    let v: i64 = ctx.value();
                    let cur: i64 = ctx.get(dst);
                    ctx.set(dst, cur + v);
                },
            ),
        )
        .unwrap();
        assert_eq!(e.gather::<i64>(dst), vec![3i64; 8]);
    }

    #[test]
    fn closure_filtered_kernel() {
        let g = generate::ring(10);
        let mut e = Engine::builder().machines(2).build(&g).unwrap();
        let acc = e.add_prop("acc", 0i64);
        // Only even-numbered vertices push.
        e.try_run_edge_job(
            Dir::Out,
            &JobSpec::new().reduce(acc, ReduceOp::Sum),
            super::on_edge_filtered(
                |ctx| ctx.node() % 2 == 0,
                move |ctx| ctx.write_nbr(acc, ReduceOp::Sum, 1i64),
            ),
        )
        .unwrap();
        // Ring edge v -> v+1: odd receivers got 1, even receivers 0.
        let got = e.gather::<i64>(acc);
        for (v, &x) in got.iter().enumerate() {
            let sender_even = ((v + 10 - 1) % 10) % 2 == 0;
            assert_eq!(x, sender_even as i64, "node {v}");
        }
    }

    #[test]
    fn closure_node_kernel() {
        let g = generate::ring(6);
        let mut e = Engine::builder().machines(2).build(&g).unwrap();
        let p = e.add_prop("p", 0i64);
        e.try_run_node_job(
            &JobSpec::new(),
            super::on_node(move |ctx| {
                let v = ctx.node() as i64;
                ctx.set(p, v * v);
            }),
        )
        .unwrap();
        assert_eq!(e.gather::<i64>(p), vec![0, 1, 4, 9, 16, 25]);
    }
}
