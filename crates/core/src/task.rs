//! Task traits and execution contexts (§4.1).
//!
//! A PGX.D task is a run-to-completion context object: `run()` is invoked
//! once per edge (or node) and always returns; remote reads requested
//! inside `run()` continue later in `read_done()`, on the *same* worker
//! thread, with whatever state the task saved in its fields or in node
//! properties (§4.1.2).

use crate::prop::Prop;
use crate::scope::TaskScope;
use pgxd_graph::NodeId;
use pgxd_runtime::localgraph::EncTarget;
use pgxd_runtime::props::{PropValue, ReduceOp};
use pgxd_runtime::worker::SideRec;

/// Which neighbor set an edge task iterates: the paper's
/// `outnbr_iter_task` / `innbr_iter_task` split. `In` is what enables the
/// natural *data pulling* form of algorithms like PageRank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    /// Iterate each node's outgoing edges (push-friendly).
    Out,
    /// Iterate each node's incoming edges (pull-friendly).
    In,
}

/// A neighborhood-iteration task: `run` executes for every (in- or out-)
/// edge of every active vertex.
pub trait EdgeTask: Send + Sync + 'static {
    /// Vertex filter, evaluated once per vertex before its edges run
    /// ("a custom filter method which is evaluated for each vertex prior
    /// to its execution"). Return `false` to skip the vertex entirely.
    fn filter(&self, _ctx: &mut NodeCtx<'_, '_>) -> bool {
        true
    }

    /// The per-edge kernel.
    fn run(&self, ctx: &mut EdgeCtx<'_, '_>);

    /// Continuation for reads issued by `run` (one callback per
    /// `read_nbr`). Guaranteed to execute on the worker that ran `run`.
    fn read_done(&self, _ctx: &mut ReadDoneCtx<'_, '_>) {}
}

/// A per-vertex task (the paper's node iterator): `run` executes once per
/// active vertex.
pub trait NodeTask: Send + Sync + 'static {
    /// Vertex filter (see [`EdgeTask::filter`]).
    fn filter(&self, _ctx: &mut NodeCtx<'_, '_>) -> bool {
        true
    }

    /// The per-vertex kernel.
    fn run(&self, ctx: &mut NodeCtx<'_, '_>);

    /// Continuation for reads issued by `run`.
    fn read_done(&self, _ctx: &mut ReadDoneCtx<'_, '_>) {}
}

/// Context over the *current vertex* (filters and node tasks).
pub struct NodeCtx<'s, 'a> {
    pub(crate) scope: &'s mut TaskScope<'a>,
    pub(crate) node: usize,
}

impl NodeCtx<'_, '_> {
    /// Global id of the current vertex.
    #[inline]
    pub fn node(&self) -> NodeId {
        self.scope.machine.graph.to_global(self.node)
    }

    /// `get_local`: reads a property of the current vertex.
    #[inline]
    pub fn get<T: PropValue>(&mut self, p: Prop<T>) -> T {
        T::from_bits(self.scope.load_local(p.id, self.node))
    }

    /// `set_local`: writes a property of the current vertex. Safe without
    /// atomics because one vertex is processed by one worker.
    #[inline]
    pub fn set<T: PropValue>(&mut self, p: Prop<T>, v: T) {
        self.scope.store_local(p.id, self.node, v.to_bits());
    }

    /// Full out-degree of the current vertex.
    #[inline]
    pub fn out_degree(&self) -> usize {
        self.scope.machine.graph.out.degree(self.node)
    }

    /// Full in-degree of the current vertex.
    #[inline]
    pub fn in_degree(&self) -> usize {
        self.scope.machine.graph.inn.degree(self.node)
    }

    /// `write_remote` to an arbitrary vertex by global id (reduction).
    #[inline]
    pub fn reduce_global<T: PropValue>(&mut self, v: NodeId, p: Prop<T>, op: ReduceOp, val: T) {
        self.scope.reduce_global(v, p.id, op, val.to_bits());
    }

    /// Issues a remote method invocation on machine `dst`; the response
    /// arrives in `read_done` with `aux` as the tag and the first 8 bytes
    /// of the response as the value.
    #[inline]
    pub fn rmi(&mut self, dst: u16, fn_id: u16, args: &[u8], aux: u64) {
        let rec = SideRec {
            node: self.node as u32,
            aux,
        };
        self.scope.comm.push_rmi(dst, fn_id, args, rec);
    }
}

/// Context over the *current edge* (edge tasks): the current vertex plus
/// one neighbor.
pub struct EdgeCtx<'s, 'a> {
    pub(crate) scope: &'s mut TaskScope<'a>,
    pub(crate) node: usize,
    pub(crate) edge: usize,
    pub(crate) target: EncTarget,
    pub(crate) dir: Dir,
}

impl EdgeCtx<'_, '_> {
    /// Global id of the current vertex.
    #[inline]
    pub fn node(&self) -> NodeId {
        self.scope.machine.graph.to_global(self.node)
    }

    /// Global id of the neighbor on this edge.
    #[inline]
    pub fn nbr(&self) -> NodeId {
        if self.target.is_remote() {
            let gid = self.target.global_id();
            self.scope.machine.partition.start(gid.machine()) + gid.offset()
        } else {
            let idx = self.target.local_index();
            let g = &self.scope.machine.graph;
            if idx < g.num_local() {
                g.to_global(idx)
            } else {
                g.ghosts().node_at((idx - g.num_local()) as u32)
            }
        }
    }

    /// True when the neighbor lives on another machine *and* is not
    /// ghosted (i.e. touching it costs a message).
    #[inline]
    pub fn is_nbr_remote(&self) -> bool {
        self.target.is_remote()
    }

    /// `get_local` on the current vertex.
    #[inline]
    pub fn get<T: PropValue>(&mut self, p: Prop<T>) -> T {
        T::from_bits(self.scope.load_local(p.id, self.node))
    }

    /// `set_local` on the current vertex.
    #[inline]
    pub fn set<T: PropValue>(&mut self, p: Prop<T>, v: T) {
        self.scope.store_local(p.id, self.node, v.to_bits());
    }

    /// `write_remote<OP>`: reduces `val` into the neighbor's property —
    /// applied immediately if the neighbor is local or ghosted, buffered
    /// into a write-request message otherwise (the *data pushing* pattern).
    #[inline]
    pub fn write_nbr<T: PropValue>(&mut self, p: Prop<T>, op: ReduceOp, val: T) {
        self.scope
            .reduce_target(self.target, p.id, op, val.to_bits());
    }

    /// `read_remote`: requests the neighbor's property value; continues in
    /// [`EdgeTask::read_done`] (the *data pulling* pattern, which
    /// conventional systems disallow).
    #[inline]
    pub fn read_nbr<T: PropValue>(&mut self, p: Prop<T>) {
        self.read_nbr_tagged(p, 0);
    }

    /// Like [`Self::read_nbr`] with a user tag made available as
    /// [`ReadDoneCtx::aux`] — the paper's mechanism for state-machine tasks
    /// that continue more than once.
    #[inline]
    pub fn read_nbr_tagged<T: PropValue>(&mut self, p: Prop<T>, aux: u64) {
        let rec = SideRec {
            node: self.node as u32,
            aux,
        };
        self.scope.read_target(rec, self.target, p.id);
    }

    /// Weight of the current edge (1.0 for unweighted graphs).
    #[inline]
    pub fn edge_weight(&self) -> f64 {
        let frag = match self.dir {
            Dir::Out => &self.scope.machine.graph.out,
            Dir::In => &self.scope.machine.graph.inn,
        };
        if frag.weights.is_empty() {
            1.0
        } else {
            frag.weights[self.edge]
        }
    }

    /// Full out-degree of the current vertex.
    #[inline]
    pub fn out_degree(&self) -> usize {
        self.scope.machine.graph.out.degree(self.node)
    }

    /// Full in-degree of the current vertex.
    #[inline]
    pub fn in_degree(&self) -> usize {
        self.scope.machine.graph.inn.degree(self.node)
    }

    /// Full out-degree of the neighbor, when known without communication
    /// (local vertices and ghosted hubs); `None` for plain remote
    /// neighbors.
    #[inline]
    pub fn nbr_out_degree(&self) -> Option<usize> {
        if self.target.is_remote() {
            None
        } else {
            Some(
                self.scope
                    .machine
                    .graph
                    .out_degree_of_index(self.target.local_index()),
            )
        }
    }

    /// Full in-degree of the neighbor, when known without communication.
    #[inline]
    pub fn nbr_in_degree(&self) -> Option<usize> {
        if self.target.is_remote() {
            None
        } else {
            Some(
                self.scope
                    .machine
                    .graph
                    .in_degree_of_index(self.target.local_index()),
            )
        }
    }

    /// `write_remote` to an arbitrary vertex by global id.
    #[inline]
    pub fn reduce_global<T: PropValue>(&mut self, v: NodeId, p: Prop<T>, op: ReduceOp, val: T) {
        self.scope.reduce_global(v, p.id, op, val.to_bits());
    }
}

/// Continuation context: the value fetched by a `read_nbr` (or the first 8
/// response bytes of an RMI), plus local access to the originating vertex.
pub struct ReadDoneCtx<'s, 'a> {
    pub(crate) scope: &'s mut TaskScope<'a>,
    pub(crate) node: usize,
    pub(crate) aux: u64,
    pub(crate) bits: u64,
}

impl ReadDoneCtx<'_, '_> {
    /// Global id of the vertex whose task issued the read.
    #[inline]
    pub fn node(&self) -> NodeId {
        self.scope.machine.graph.to_global(self.node)
    }

    /// The tag passed to `read_nbr_tagged` (0 for `read_nbr`).
    #[inline]
    pub fn aux(&self) -> u64 {
        self.aux
    }

    /// The fetched value.
    #[inline]
    pub fn value<T: PropValue>(&self) -> T {
        T::from_bits(self.bits)
    }

    /// `get_local` on the originating vertex.
    #[inline]
    pub fn get<T: PropValue>(&mut self, p: Prop<T>) -> T {
        T::from_bits(self.scope.load_local(p.id, self.node))
    }

    /// `set_local` on the originating vertex. Race-free: all callbacks for
    /// one vertex run on one worker.
    #[inline]
    pub fn set<T: PropValue>(&mut self, p: Prop<T>, v: T) {
        self.scope.store_local(p.id, self.node, v.to_bits());
    }

    /// `write_remote` to an arbitrary vertex by global id.
    #[inline]
    pub fn reduce_global<T: PropValue>(&mut self, v: NodeId, p: Prop<T>, op: ReduceOp, val: T) {
        self.scope.reduce_global(v, p.id, op, val.to_bits());
    }
}
