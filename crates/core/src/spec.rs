//! Per-job property declarations (§4.2).
//!
//! "The user needs to specify the list of properties that are read and
//! written for each job; reduction operators also need to be specified for
//! the properties that are written. Then, PGX.D automatically takes care of
//! synchronization of properties between ghost nodes between each job."

use crate::prop::Prop;
use pgxd_runtime::props::{PropId, PropValue, ReduceOp};

/// Declares how a parallel region uses its properties.
#[derive(Clone, Debug, Default)]
pub struct JobSpec {
    pub(crate) reads: Vec<PropId>,
    pub(crate) reduces: Vec<(PropId, ReduceOp)>,
}

impl JobSpec {
    /// An empty declaration (no remote reads, no reductions): suitable for
    /// jobs that only touch node-local state.
    pub fn new() -> Self {
        JobSpec::default()
    }

    /// Declares a property that the region reads (possibly from
    /// neighbors). Ghost copies of it are refreshed before the region runs.
    pub fn read<T: PropValue>(mut self, p: Prop<T>) -> Self {
        if !self.reads.contains(&p.id) {
            self.reads.push(p.id);
        }
        self
    }

    /// Declares a property that the region writes with reduction `op`.
    /// Ghost copies are bottom-initialized before, and merged to the owner
    /// after, the region.
    pub fn reduce<T: PropValue>(mut self, p: Prop<T>, op: ReduceOp) -> Self {
        assert!(
            !self.reduces.iter().any(|(id, _)| *id == p.id),
            "property declared reduced twice"
        );
        self.reduces.push((p.id, op));
        self
    }

    /// True if the spec declares nothing (ghost phases can be skipped).
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty() && self.reduces.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let a: Prop<f64> = Prop::new(PropId(0));
        let b: Prop<i64> = Prop::new(PropId(1));
        let s = JobSpec::new().read(a).reduce(b, ReduceOp::Sum);
        assert_eq!(s.reads, vec![PropId(0)]);
        assert_eq!(s.reduces, vec![(PropId(1), ReduceOp::Sum)]);
        assert!(!s.is_empty());
        assert!(JobSpec::new().is_empty());
    }

    #[test]
    fn duplicate_reads_deduped() {
        let a: Prop<f64> = Prop::new(PropId(0));
        let s = JobSpec::new().read(a).read(a);
        assert_eq!(s.reads.len(), 1);
    }

    #[test]
    #[should_panic(expected = "reduced twice")]
    fn duplicate_reduce_panics() {
        let a: Prop<f64> = Prop::new(PropId(0));
        let _ = JobSpec::new()
            .reduce(a, ReduceOp::Sum)
            .reduce(a, ReduceOp::Min);
    }
}
