//! One-dimensional distributed data — the §6.2 future-work abstraction
//! ("it would be relatively straightforward for us to provide abstractions
//! for one dimensional data representations, which would suffice various
//! non-graph workloads").
//!
//! A [`DistVec`] is a typed view over a distributed property column: its
//! elements live partitioned across the cluster's machines exactly like
//! node properties (they *are* node properties), and element-wise
//! operations run as node jobs over all machines' worker threads, with
//! driver-side reductions for scalars.
//!
//! ```
//! use pgxd::{Engine, vector::DistVec, ReduceOp};
//! use pgxd_graph::generate;
//!
//! // The "graph" only supplies the index space 0..n.
//! let domain = generate::ring(1000);
//! let mut engine = Engine::builder().machines(4).build(&domain).unwrap();
//!
//! let xs = DistVec::<f64>::from_fn(&mut engine, "xs", |i| i as f64);
//! let ys = DistVec::<f64>::from_fn(&mut engine, "ys", |i| 2.0 * i as f64);
//! let dot = xs.dot(&mut engine, &ys);
//! let expect: f64 = (0..1000).map(|i| (i * i * 2) as f64).sum();
//! assert_eq!(dot, expect);
//! ```

use crate::closure_tasks::on_node;
use crate::engine::Engine;
use crate::prop::Prop;
use crate::spec::JobSpec;
use pgxd_runtime::props::{PropValue, ReduceOp};
use std::marker::PhantomData;

/// A distributed vector of `n` elements (the engine's vertex count defines
/// `n`), stored as a property column on each machine.
pub struct DistVec<T: PropValue> {
    prop: Prop<T>,
    len: usize,
    _marker: PhantomData<T>,
}

impl<T: PropValue> DistVec<T> {
    /// Allocates a vector filled with `init`.
    pub fn new(engine: &mut Engine, name: &str, init: T) -> Self {
        let prop = engine.add_prop(name, init);
        DistVec {
            prop,
            len: engine.num_nodes(),
            _marker: PhantomData,
        }
    }

    /// Allocates and fills from an index function, in parallel across the
    /// cluster.
    pub fn from_fn<F>(engine: &mut Engine, name: &str, f: F) -> Self
    where
        F: Fn(usize) -> T + Send + Sync + 'static,
    {
        let v = Self::new(engine, name, T::from_bits(0));
        let prop = v.prop;
        engine
            .try_run_node_job(
                &JobSpec::new(),
                on_node(move |ctx| {
                    let i = ctx.node() as usize;
                    ctx.set(prop, f(i));
                }),
            )
            .expect("vector fill job failed");
        v
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The underlying property handle.
    pub fn prop(&self) -> Prop<T> {
        self.prop
    }

    /// Parallel element-wise update in place: `self[i] = f(i, self[i])`.
    pub fn map_inplace<F>(&self, engine: &mut Engine, f: F)
    where
        F: Fn(usize, T) -> T + Send + Sync + 'static,
    {
        let prop = self.prop;
        engine
            .try_run_node_job(
                &JobSpec::new(),
                on_node(move |ctx| {
                    let i = ctx.node() as usize;
                    let cur = ctx.get(prop);
                    ctx.set(prop, f(i, cur));
                }),
            )
            .expect("vector map job failed");
    }

    /// Parallel binary element-wise operation: `dst[i] = f(self[i],
    /// other[i])` into a new vector.
    pub fn zip_map<U, V, F>(
        &self,
        engine: &mut Engine,
        other: &DistVec<U>,
        name: &str,
        f: F,
    ) -> DistVec<V>
    where
        U: PropValue,
        V: PropValue,
        F: Fn(T, U) -> V + Send + Sync + 'static,
    {
        assert_eq!(self.len, other.len, "length mismatch");
        let dst = DistVec::<V>::new(engine, name, V::from_bits(0));
        let (a, b, d) = (self.prop, other.prop, dst.prop);
        engine
            .try_run_node_job(
                &JobSpec::new(),
                on_node(move |ctx| {
                    let x = ctx.get(a);
                    let y = ctx.get(b);
                    ctx.set(d, f(x, y));
                }),
            )
            .expect("vector zip job failed");
        dst
    }

    /// Global reduction to a scalar (driver-side sequential region).
    pub fn reduce(&self, engine: &Engine, op: ReduceOp) -> T {
        engine.reduce(self.prop, op)
    }

    /// Gathers to a local `Vec` in index order.
    pub fn to_vec(&self, engine: &Engine) -> Vec<T> {
        engine.gather(self.prop)
    }

    /// Reads one element (driver-side).
    pub fn get(&self, engine: &Engine, i: usize) -> T {
        engine.get(self.prop, i as u32)
    }

    /// Writes one element (driver-side, between jobs).
    pub fn set(&self, engine: &Engine, i: usize, v: T) {
        engine.set(self.prop, i as u32, v);
    }

    /// Frees the storage on every machine.
    pub fn drop_storage(self, engine: &mut Engine) {
        engine.drop_prop(self.prop);
    }
}

impl DistVec<f64> {
    /// Dot product: element-wise multiply into a temporary, then a global
    /// sum — two jobs, like any PGX.D region pair.
    pub fn dot(&self, engine: &mut Engine, other: &DistVec<f64>) -> f64 {
        let tmp = self.zip_map(engine, other, "dot_tmp", |a, b| a * b);
        let sum = tmp.reduce(engine, ReduceOp::Sum);
        tmp.drop_storage(engine);
        sum
    }

    /// L2 norm.
    pub fn norm(&self, engine: &mut Engine) -> f64 {
        self.dot_self(engine).sqrt()
    }

    fn dot_self(&self, engine: &mut Engine) -> f64 {
        let tmp = self.zip_map(engine, self, "norm_tmp", |a, b| a * b);
        let sum = tmp.reduce(engine, ReduceOp::Sum);
        tmp.drop_storage(engine);
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgxd_graph::generate;

    fn engine(n: usize, machines: usize) -> Engine {
        let domain = generate::ring(n);
        Engine::builder().machines(machines).build(&domain).unwrap()
    }

    #[test]
    fn from_fn_and_gather() {
        let mut e = engine(100, 3);
        let v = DistVec::<i64>::from_fn(&mut e, "v", |i| i as i64 * 3);
        assert_eq!(v.len(), 100);
        let out = v.to_vec(&e);
        assert_eq!(out[0], 0);
        assert_eq!(out[99], 297);
    }

    #[test]
    fn map_inplace_applies_everywhere() {
        let mut e = engine(64, 4);
        let v = DistVec::<i64>::from_fn(&mut e, "v", |i| i as i64);
        v.map_inplace(&mut e, |_, x| x * x);
        let out = v.to_vec(&e);
        for (i, &x) in out.iter().enumerate() {
            assert_eq!(x, (i * i) as i64);
        }
    }

    #[test]
    fn zip_map_and_reduce() {
        let mut e = engine(50, 2);
        let a = DistVec::<i64>::from_fn(&mut e, "a", |i| i as i64);
        let b = DistVec::<i64>::from_fn(&mut e, "b", |i| (49 - i) as i64);
        let sum = a.zip_map(&mut e, &b, "s", |x, y| x + y);
        let out = sum.to_vec(&e);
        assert!(out.iter().all(|&x| x == 49));
        assert_eq!(sum.reduce(&e, ReduceOp::Max), 49);
        assert_eq!(sum.reduce(&e, ReduceOp::Sum), 49 * 50);
    }

    #[test]
    fn dot_and_norm() {
        let mut e = engine(10, 2);
        let a = DistVec::<f64>::from_fn(&mut e, "a", |_| 3.0);
        let b = DistVec::<f64>::from_fn(&mut e, "b", |_| 4.0);
        assert_eq!(a.dot(&mut e, &b), 120.0);
        assert!((a.norm(&mut e) - (90.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn element_access() {
        let mut e = engine(16, 4);
        let v = DistVec::<f64>::new(&mut e, "v", 1.5);
        assert_eq!(v.get(&e, 7), 1.5);
        v.set(&e, 7, 9.0);
        assert_eq!(v.get(&e, 7), 9.0);
        assert_eq!(v.get(&e, 8), 1.5);
    }
}
