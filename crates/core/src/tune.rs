//! Worker/copier auto-tuning — the future-work item of §5.3.3
//! ("Eventually, the system will be able to auto-tune the number of
//! threads based on the algorithmic workload"), implemented as an offline
//! probe: run a representative pull kernel under each candidate
//! configuration and pick the fastest.

use crate::closure_tasks::{on_edge_pull, on_node};
use crate::engine::{Engine, EngineBuilder};
use pgxd_graph::Graph;
use std::time::Duration;

/// Result of an auto-tuning sweep.
#[derive(Clone, Debug)]
pub struct TuneResult {
    /// Best (workers, copiers) pair found.
    pub workers: usize,
    /// Copiers of the best pair.
    pub copiers: usize,
    /// Measured duration per candidate: `(workers, copiers, main-phase
    /// time)` — the Figure 7 grid, machine-readable.
    pub grid: Vec<(usize, usize, Duration)>,
}

/// Probes each `(workers, copiers)` candidate with a pull-pattern job on
/// `graph` (the communication-heavy workload that exposes both thread
/// pools) and returns the fastest configuration.
///
/// `base` supplies everything except thread counts; each probe builds a
/// fresh engine, so expect `candidates.len()` × engine-setup cost.
pub fn autotune_threads(
    graph: &Graph,
    base: EngineBuilder,
    candidates: &[(usize, usize)],
    probe_iters: usize,
) -> TuneResult {
    assert!(!candidates.is_empty(), "need at least one candidate");
    let mut grid = Vec::with_capacity(candidates.len());
    for &(workers, copiers) in candidates {
        let mut engine: Engine = base
            .clone()
            .workers(workers)
            .copiers(copiers)
            .build(graph)
            .expect("engine construction during autotune");
        let dur = probe(&mut engine, probe_iters);
        grid.push((workers, copiers, dur));
    }
    let best = grid
        .iter()
        .min_by_key(|(_, _, d)| *d)
        .expect("non-empty grid");
    TuneResult {
        workers: best.0,
        copiers: best.1,
        grid,
    }
}

/// One probe: a few iterations of a pull-sum kernel (reads stress the
/// copiers, continuations stress the workers). Returns summed main-phase
/// time.
fn probe(engine: &mut Engine, iters: usize) -> Duration {
    let src = engine.add_prop("tune_src", 1.0f64);
    let dst = engine.add_prop("tune_dst", 0.0f64);
    // Warm-up job.
    run_pull_once(engine, src, dst);
    let mut total = Duration::ZERO;
    for _ in 0..iters.max(1) {
        total += run_pull_once(engine, src, dst);
        engine
            .try_run_node_job(
                &crate::spec::JobSpec::new(),
                on_node(move |ctx| ctx.set(dst, 0.0f64)),
            )
            .expect("tune reset job failed");
    }
    engine.drop_prop(src);
    engine.drop_prop(dst);
    total
}

fn run_pull_once(
    engine: &mut Engine,
    src: crate::prop::Prop<f64>,
    dst: crate::prop::Prop<f64>,
) -> Duration {
    let report = engine
        .try_run_edge_job(
            crate::task::Dir::In,
            &crate::spec::JobSpec::new().read(src),
            on_edge_pull(
                move |ctx| ctx.read_nbr(src),
                move |ctx| {
                    let v: f64 = ctx.value();
                    let cur: f64 = ctx.get(dst);
                    ctx.set(dst, cur + v);
                },
            ),
        )
        .expect("tune probe job failed");
    report.main
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgxd_graph::generate;

    #[test]
    fn autotune_returns_a_candidate() {
        let g = generate::rmat(8, 6, generate::RmatParams::skewed(), 3001);
        let base = Engine::builder().machines(2).ghost_threshold(Some(64));
        let candidates = [(1usize, 1usize), (2, 1)];
        let r = autotune_threads(&g, base, &candidates, 2);
        assert!(candidates.contains(&(r.workers, r.copiers)));
        assert_eq!(r.grid.len(), 2);
        for (_, _, d) in &r.grid {
            assert!(*d > Duration::ZERO);
        }
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_candidates_rejected() {
        let g = generate::ring(8);
        autotune_threads(&g, Engine::builder().machines(1), &[], 1);
    }
}
