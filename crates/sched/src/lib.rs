//! Job server for the PGX.D reproduction: sessions, a priority-lane
//! scheduler, admission control, and cancellation/deadlines.
//!
//! PGX.D is built as a *server*: one loaded graph is shared by many
//! concurrent clients, each submitting analytics jobs that the engine
//! serializes onto the cluster one at a time (jobs are barrier-delimited,
//! so interleaving them would corrupt the exact-termination accounting).
//! This crate adds that serving layer on top of `pgxd-runtime`:
//!
//! * [`Session`] — a named client handle. Properties a session's jobs
//!   create belong to that session and are reclaimed when it closes, so
//!   concurrent clients get private namespaces over the shared graph.
//! * [`Scheduler`] — two priority lanes (interactive/batch) drained
//!   weighted-fair, FIFO within a lane, with per-session in-flight caps
//!   and a bounded submission queue ([`JobError::QueueFull`]).
//! * [`admission`] — a per-job memory estimate (property columns +
//!   buffer-pool share + checkpoint overhead) checked against a
//!   configurable budget ([`JobError::AdmissionDenied`]).
//! * [`CancelToken`] — cooperative cancellation and deadlines, observed
//!   by workers within one chunk and surfaced as
//!   [`JobError::Cancelled`] / [`JobError::DeadlineExceeded`].
//!
//! The crate is generic over [`ServeEngine`] so it depends only on the
//! runtime; the `pgxd` crate implements the trait for its `Engine` and
//! re-exports everything as `pgxd::serve`.
//!
//! [`JobError::QueueFull`]: pgxd_runtime::health::JobError::QueueFull
//! [`JobError::AdmissionDenied`]: pgxd_runtime::health::JobError::AdmissionDenied
//! [`JobError::Cancelled`]: pgxd_runtime::health::JobError::Cancelled
//! [`JobError::DeadlineExceeded`]: pgxd_runtime::health::JobError::DeadlineExceeded

pub mod admission;
pub mod scheduler;
pub mod server;

pub use admission::{estimate_bytes, MemProfile};
pub use scheduler::{JobMeta, Lane, Scheduler};
pub use server::{JobHandle, JobReport, JobServer, Session};

pub use pgxd_runtime::cancel::{CancelReason, CancelToken};
pub use pgxd_runtime::health::RetryBudget;
pub use pgxd_runtime::jobctx::{JobCtx, JobExec, JobOutcome, JobWire, PhaseSpan};

use pgxd_runtime::props::PropId;
use pgxd_runtime::telemetry::Telemetry;
use std::sync::Arc;

/// What the job server needs from an engine. `pgxd::Engine` implements
/// this; tests use lightweight mocks.
pub trait ServeEngine: Send + 'static {
    /// Memory-relevant cluster dimensions for admission estimates,
    /// including the *current* live property-column count.
    fn mem_profile(&self) -> MemProfile;

    /// Ids of every live property column.
    fn live_prop_ids(&self) -> Vec<PropId>;

    /// Drops one property column everywhere (session-namespace
    /// reclamation).
    fn reclaim_prop(&mut self, id: PropId);

    /// The registry the server records job counters, queue-wait samples,
    /// and `JobEnqueue`/`JobDispatch`/`JobCancel` tracer events into
    /// (machine 0's, for a cluster-backed engine).
    fn telemetry(&self) -> Arc<Telemetry>;

    /// Opens a per-job attribution window right before the dispatcher
    /// runs the job body. A cluster-backed engine threads `ctx` to every
    /// machine so workers/copiers charge wire traffic to the job;
    /// `enqueue_ns` is the submit timestamp on the engine's clock (for
    /// the queued span in trace exports). The default is a no-op so
    /// non-cluster engines (and test mocks) need not care.
    fn begin_job(&mut self, _ctx: JobCtx, _enqueue_ns: u64) {}

    /// Closes the window opened by [`ServeEngine::begin_job`] and returns
    /// the per-job execution record, if the engine tracks one.
    fn end_job(&mut self, _outcome: JobOutcome) -> Option<JobExec> {
        None
    }
}
