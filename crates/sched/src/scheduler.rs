//! The job scheduler: two priority lanes drained weighted-fair, FIFO
//! within a lane, per-session in-flight caps, and a bounded submission
//! queue.
//!
//! This is a pure data structure — no threads, no clock. The server wraps
//! it in a mutex/condvar pair; keeping the policy synchronous makes every
//! interleaving of `submit`/`cancel`/`next_job`/`complete` directly testable
//! (see the property tests at the bottom).
//!
//! **Weighted-fair draining.** Each lane has a weight `w` and a dispatch
//! count `served`. `next_job` picks the eligible lane with the smallest
//! `served / w` (compared as `served_a × w_b ≤ served_b × w_a` to stay in
//! integers), so with weights `[3, 1]` a saturated queue dispatches three
//! interactive jobs per batch job — batch never starves, interactive
//! never waits behind a wall of batch work.
//!
//! **Session caps.** A session may have at most `session_cap` jobs
//! *in flight* (dispatched, not yet completed): a queued job whose
//! session is at its cap is skipped — not dropped — by `next_job` until a
//! slot frees up, so one greedy session cannot monopolise the cluster
//! while others wait. The global queue bound still applies at submit
//! ([`JobError::QueueFull`]).

use pgxd_runtime::health::JobError;
use std::collections::HashMap;
use std::collections::VecDeque;

/// Priority lane of a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Lane {
    /// Latency-sensitive client queries; drained with the higher default
    /// weight.
    Interactive = 0,
    /// Throughput work (full-graph analytics, batch scoring).
    Batch = 1,
}

impl Lane {
    fn index(self) -> usize {
        self as usize
    }
}

/// Scheduler-visible description of one submitted job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobMeta {
    /// Server-assigned job id (also the [`CancelToken`] id).
    ///
    /// [`CancelToken`]: pgxd_runtime::cancel::CancelToken
    pub id: u64,
    /// Owning session.
    pub session: u64,
    pub lane: Lane,
    /// Property columns the job expects to create (admission input).
    pub props: usize,
}

/// The pure scheduling core. See the module docs.
#[derive(Debug)]
pub struct Scheduler {
    depth: usize,
    session_cap: usize,
    weights: [u64; 2],
    served: [u64; 2],
    lanes: [VecDeque<JobMeta>; 2],
    /// Jobs currently dispatched (not yet completed), per session.
    running: HashMap<u64, usize>,
}

impl Scheduler {
    /// `depth` bounds the total queued jobs across lanes; `weights` are
    /// the `[interactive, batch]` drain weights; `session_cap` bounds one
    /// session's in-flight (dispatched, uncompleted) jobs. All must be
    /// nonzero (validated by `Config::validate`, asserted here).
    pub fn new(depth: usize, weights: [u32; 2], session_cap: usize) -> Scheduler {
        assert!(depth >= 1 && session_cap >= 1 && weights.iter().all(|&w| w >= 1));
        Scheduler {
            depth,
            session_cap,
            weights: [u64::from(weights[0]), u64::from(weights[1])],
            served: [0; 2],
            lanes: [VecDeque::new(), VecDeque::new()],
            running: HashMap::new(),
        }
    }

    /// Total queued jobs across both lanes.
    pub fn queued(&self) -> usize {
        self.lanes.iter().map(|l| l.len()).sum()
    }

    /// Jobs dispatched and not yet completed.
    pub fn running(&self) -> usize {
        self.running.values().sum()
    }

    /// True when nothing is queued or running.
    pub fn is_idle(&self) -> bool {
        self.queued() == 0 && self.running() == 0
    }

    /// Enqueues a job, rejecting with [`JobError::QueueFull`] when the
    /// global queue is at depth.
    pub fn submit(&mut self, meta: JobMeta) -> Result<(), JobError> {
        let queued = self.queued();
        if queued >= self.depth {
            return Err(JobError::QueueFull {
                queued,
                depth: self.depth,
            });
        }
        self.lanes[meta.lane.index()].push_back(meta);
        Ok(())
    }

    /// Removes a queued job; returns its meta if it was still queued
    /// (`None` means it already dispatched or never existed).
    pub fn cancel(&mut self, id: u64) -> Option<JobMeta> {
        for lane in &mut self.lanes {
            if let Some(pos) = lane.iter().position(|j| j.id == id) {
                return lane.remove(pos);
            }
        }
        None
    }

    /// First job in `lane` whose session is below its in-flight cap.
    fn eligible_pos(&self, lane: usize) -> Option<usize> {
        self.lanes[lane]
            .iter()
            .position(|j| self.running.get(&j.session).copied().unwrap_or(0) < self.session_cap)
    }

    /// Dispatches the next job: the eligible lane with the smallest
    /// weighted served count, FIFO within the lane (skipping capped
    /// sessions). Returns `None` when nothing is eligible. The caller
    /// must pair every `next_job` with a [`Scheduler::complete`].
    pub fn next_job(&mut self) -> Option<JobMeta> {
        let candidates: Vec<(usize, usize)> = (0..2)
            .filter_map(|l| self.eligible_pos(l).map(|pos| (l, pos)))
            .collect();
        let (lane, pos) = match candidates.as_slice() {
            [] => return None,
            [only] => *only,
            [a, b] => {
                // served_a / w_a <= served_b / w_b, cross-multiplied.
                // Ties go to the interactive lane (index 0).
                if self.served[a.0] * self.weights[b.0] <= self.served[b.0] * self.weights[a.0] {
                    *a
                } else {
                    *b
                }
            }
            _ => unreachable!("two lanes"),
        };
        let meta = self.lanes[lane].remove(pos).expect("position just found");
        self.served[lane] += 1;
        *self.running.entry(meta.session).or_insert(0) += 1;
        Some(meta)
    }

    /// Marks a dispatched job finished, freeing its session slot.
    pub fn complete(&mut self, session: u64) {
        match self.running.get_mut(&session) {
            Some(n) if *n > 1 => *n -= 1,
            Some(_) => {
                self.running.remove(&session);
            }
            None => debug_assert!(false, "complete without a matching next"),
        }
    }

    /// Drains every queued job of one session (session close). Returns
    /// the removed metas.
    pub fn drain_session(&mut self, session: u64) -> Vec<JobMeta> {
        let mut out = Vec::new();
        for lane in &mut self.lanes {
            let mut keep = VecDeque::with_capacity(lane.len());
            while let Some(j) = lane.pop_front() {
                if j.session == session {
                    out.push(j);
                } else {
                    keep.push_back(j);
                }
            }
            *lane = keep;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn meta(id: u64, session: u64, lane: Lane) -> JobMeta {
        JobMeta {
            id,
            session,
            lane,
            props: 0,
        }
    }

    #[test]
    fn bounded_queue_rejects_with_occupancy() {
        let mut s = Scheduler::new(2, [3, 1], 16);
        s.submit(meta(1, 0, Lane::Interactive)).unwrap();
        s.submit(meta(2, 0, Lane::Batch)).unwrap();
        match s.submit(meta(3, 1, Lane::Interactive)) {
            Err(JobError::QueueFull { queued, depth }) => {
                assert_eq!((queued, depth), (2, 2));
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
    }

    #[test]
    fn session_cap_bounds_in_flight_jobs() {
        let mut s = Scheduler::new(64, [3, 1], 2);
        for i in 1..=3 {
            s.submit(meta(i, 7, Lane::Interactive)).unwrap();
        }
        assert_eq!(s.next_job().unwrap().id, 1);
        assert_eq!(s.next_job().unwrap().id, 2);
        // Session 7 is at its in-flight cap: job 3 waits...
        assert_eq!(s.next_job(), None);
        // ...until a completion frees a slot.
        s.complete(7);
        assert_eq!(s.next_job().unwrap().id, 3);
    }

    #[test]
    fn weighted_fair_drain_matches_weights() {
        let mut s = Scheduler::new(64, [3, 1], 64);
        for i in 0..12 {
            s.submit(meta(i, 0, Lane::Interactive)).unwrap();
            s.submit(meta(100 + i, 1, Lane::Batch)).unwrap();
        }
        let first8: Vec<Lane> = (0..8).map(|_| s.next_job().unwrap().lane).collect();
        let interactive = first8.iter().filter(|&&l| l == Lane::Interactive).count();
        // 3:1 weights → 6 interactive / 2 batch over any 8 dispatches of a
        // saturated queue.
        assert_eq!(interactive, 6, "dispatch order {first8:?}");
    }

    #[test]
    fn fifo_within_lane() {
        let mut s = Scheduler::new(64, [1, 1], 64);
        for i in 0..5 {
            s.submit(meta(i, i, Lane::Batch)).unwrap();
        }
        let order: Vec<u64> = (0..5).map(|_| s.next_job().unwrap().id).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn capped_session_is_skipped_not_dropped() {
        let mut s = Scheduler::new(64, [1, 1], 1);
        s.submit(meta(1, 7, Lane::Interactive)).unwrap();
        assert_eq!(s.next_job().unwrap().id, 1); // session 7 now at cap
        s.submit(meta(2, 7, Lane::Interactive)).unwrap();
        s.submit(meta(3, 8, Lane::Interactive)).unwrap();
        // Job 2 is skipped while its session is saturated; job 3 runs.
        assert_eq!(s.next_job().unwrap().id, 3);
        assert_eq!(s.next_job(), None);
        s.complete(7);
        assert_eq!(s.next_job().unwrap().id, 2);
    }

    #[test]
    fn cancel_removes_queued_only() {
        let mut s = Scheduler::new(64, [1, 1], 64);
        s.submit(meta(1, 0, Lane::Batch)).unwrap();
        s.submit(meta(2, 0, Lane::Batch)).unwrap();
        assert_eq!(s.cancel(1).unwrap().id, 1);
        assert_eq!(s.cancel(1), None, "cancel is one-shot");
        assert_eq!(s.next_job().unwrap().id, 2);
        assert_eq!(s.cancel(2), None, "dispatched jobs are not queued");
    }

    #[test]
    fn drain_session_empties_both_lanes() {
        let mut s = Scheduler::new(64, [1, 1], 64);
        s.submit(meta(1, 7, Lane::Interactive)).unwrap();
        s.submit(meta(2, 8, Lane::Interactive)).unwrap();
        s.submit(meta(3, 7, Lane::Batch)).unwrap();
        let drained: Vec<u64> = s.drain_session(7).iter().map(|j| j.id).collect();
        assert_eq!(drained, vec![1, 3]);
        assert_eq!(s.queued(), 1);
        assert_eq!(s.next_job().unwrap().id, 2);
    }

    /// One scheduler op for the interleaving property test.
    #[derive(Clone, Debug)]
    enum Op {
        Submit { session: u64, lane: Lane },
        Cancel { nth: u64 },
        Next,
        Complete,
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u64..4, 0u8..2).prop_map(|(session, b)| Op::Submit {
                session,
                lane: if b == 0 {
                    Lane::Interactive
                } else {
                    Lane::Batch
                },
            }),
            (0u64..8).prop_map(|nth| Op::Cancel { nth }),
            Just(Op::Next),
            Just(Op::Next), // bias toward draining
            Just(Op::Complete),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Any interleaving of submit/cancel/next/complete conserves
        /// jobs — each accepted job is dispatched at most once and ends
        /// in exactly one of {queued, dispatched, cancelled} — and
        /// respects FIFO within each lane.
        #[test]
        fn interleavings_conserve_jobs(
            ops in prop::collection::vec(arb_op(), 0..120),
            depth in 1usize..12,
            cap in 1usize..4,
            wi in 1u32..5,
            wb in 1u32..5,
        ) {
            let mut s = Scheduler::new(depth, [wi, wb], cap);
            let mut next_id = 0u64;
            let mut accepted: Vec<u64> = Vec::new();
            let mut dispatched: Vec<JobMeta> = Vec::new();
            let mut cancelled: Vec<u64> = Vec::new();
            let mut running: Vec<u64> = Vec::new(); // sessions, multiset
            for op in ops {
                match op {
                    Op::Submit { session, lane } => {
                        next_id += 1;
                        let m = meta(next_id, session, lane);
                        if s.submit(m).is_ok() {
                            accepted.push(m.id);
                        }
                        prop_assert!(s.queued() <= depth);
                    }
                    Op::Cancel { nth } => {
                        // Aim at some id that may or may not be queued.
                        if next_id > 0 {
                            let id = nth % next_id + 1;
                            if let Some(m) = s.cancel(id) {
                                prop_assert_eq!(m.id, id);
                                prop_assert!(accepted.contains(&id));
                                prop_assert!(!cancelled.contains(&id), "double cancel");
                                prop_assert!(
                                    !dispatched.iter().any(|d| d.id == id),
                                    "cancelled a dispatched job"
                                );
                                cancelled.push(id);
                            }
                        }
                    }
                    Op::Next => {
                        if let Some(m) = s.next_job() {
                            prop_assert!(accepted.contains(&m.id));
                            prop_assert!(
                                !dispatched.iter().any(|d| d.id == m.id),
                                "job {} dispatched twice", m.id
                            );
                            prop_assert!(!cancelled.contains(&m.id));
                            // Per-session in-flight cap, counting this one.
                            let inflight =
                                running.iter().filter(|&&x| x == m.session).count() + 1;
                            prop_assert!(inflight <= cap);
                            dispatched.push(m);
                            running.push(m.session);
                        }
                    }
                    Op::Complete => {
                        if let Some(session) = running.pop() {
                            s.complete(session);
                        }
                    }
                }
            }
            // Conservation: every accepted job is in exactly one bucket.
            let queued_now = s.queued();
            prop_assert_eq!(
                dispatched.len() + cancelled.len() + queued_now,
                accepted.len()
            );
            // Same-session dispatches within one lane stay FIFO.
            for lane in [Lane::Interactive, Lane::Batch] {
                for session in 0u64..4 {
                    let ids: Vec<u64> = dispatched
                        .iter()
                        .filter(|m| m.lane == lane && m.session == session)
                        .map(|m| m.id)
                        .collect();
                    let mut sorted = ids.clone();
                    sorted.sort_unstable();
                    prop_assert_eq!(ids, sorted, "lane {:?} session {}", lane, session);
                }
            }
        }
    }
}
