//! The job server: sessions, the dispatcher thread, and job handles.
//!
//! One [`JobServer`] owns one engine (a loaded graph). Clients open
//! [`Session`]s and submit jobs — closures over the engine — which the
//! server queues through the [`Scheduler`], admission-checks against the
//! memory budget, and runs one at a time on a dedicated dispatcher thread
//! (jobs are barrier-delimited parallel regions; the cluster executes one
//! region at a time, so dispatch order *is* the schedule).
//!
//! **Session namespaces.** Property ids are assigned sequentially and
//! never reused, so concurrent sessions cannot collide. The server diffs
//! the live-property set around each job and attributes new columns to
//! the submitting session; closing the session (or cancelling the job
//! mid-flight) reclaims them.
//!
//! **Cancellation.** [`JobHandle::cancel`] fires the job's
//! [`CancelToken`] and, if the job is still queued, fails it immediately
//! with [`JobError::Cancelled`]. A running job observes the token within
//! one chunk, finishes its phase at the normal barrier, and surfaces the
//! same error — the cluster stays healthy for the next job.
//!
//! **Deadlines.** A deadline is armed at submit time, so queue wait
//! counts against it: an expired job is failed with
//! [`JobError::DeadlineExceeded`] at dispatch if it never started, or
//! cooperatively mid-run if it did.
//!
//! **Brownout.** When queue occupancy crosses the configured shed
//! threshold, batch-lane submissions are refused with
//! [`JobError::Overloaded`] (carrying a retry-after hint) until
//! occupancy drains below the lower reopen threshold — hysteresis keeps
//! the gate from flapping at the boundary. The interactive lane stays
//! live throughout: brownout protects latency under pressure, it does
//! not replace the hard queue bound ([`JobError::QueueFull`] still
//! backstops both lanes).
//!
//! **Retry budget.** The server owns one [`RetryBudget`] token bucket,
//! shared by every session and handed (via [`JobServer::retry_budget`])
//! to recovery drivers, so concurrent tenants cannot amplify a degraded
//! cluster's failure into a retry storm.

use crate::admission::estimate_bytes;
use crate::scheduler::{JobMeta, Lane, Scheduler};
use crate::ServeEngine;
use parking_lot::{Condvar, Mutex};
use pgxd_runtime::cancel::{CancelReason, CancelToken};
use pgxd_runtime::config::ServeConfig;
use pgxd_runtime::health::{JobError, RetryBudget};
use pgxd_runtime::jobctx::{JobCtx, JobExec, JobOutcome, PhaseSpan};
use pgxd_runtime::props::PropId;
use pgxd_runtime::telemetry::{EventKind, Telemetry};
use std::any::Any;
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

type JobResult = Result<Box<dyn Any + Send>, JobError>;
type BoxedJob<E> = Box<dyn FnOnce(&mut E, &CancelToken) -> JobResult + Send>;
/// What the dispatcher sends back per job: the typed result plus the
/// completion report (`None` for jobs failed before dispatch).
type JobCompletion = (JobResult, Option<JobReport>);

/// A job waiting in the scheduler.
struct QueuedJob<E> {
    run: BoxedJob<E>,
    token: CancelToken,
    tx: mpsc::Sender<JobCompletion>,
    submitted: Instant,
    /// Submit timestamp on the engine's telemetry clock, for the queued
    /// span in trace exports (0 with telemetry off).
    enqueue_ns: u64,
}

/// Completion report for one served job: where its time went and what it
/// cost the cluster. Returned by [`JobHandle::join_with_report`].
///
/// The wall-clock fields (`queue_wait`, `run`) are always measured; the
/// breakdown and wire attribution come from the engine's [`JobExec`]
/// record and are zero when the engine doesn't track one (mock engines,
/// or the `telemetry` feature compiled out).
#[derive(Clone, Debug)]
pub struct JobReport {
    /// Server-assigned job id.
    pub job: u64,
    /// Owning session.
    pub session: u64,
    pub lane: Lane,
    /// Time from submit to dispatch.
    pub queue_wait: Duration,
    /// Time the job body held the cluster.
    pub run: Duration,
    pub outcome: JobOutcome,
    /// The engine's per-job attribution record, when tracked.
    pub exec: Option<JobExec>,
}

impl JobReport {
    fn exec_secs(&self, pick: fn(&JobExec) -> f64) -> Duration {
        self.exec
            .as_ref()
            .map(|e| Duration::from_secs_f64(pick(e).max(0.0)))
            .unwrap_or_default()
    }

    /// Fully-parallel compute time across the job's parallel regions.
    pub fn compute(&self) -> Duration {
        self.exec_secs(|e| e.compute_s)
    }

    /// Communication time (intra- + inter-machine message work).
    pub fn comm(&self) -> Duration {
        self.exec_secs(|e| e.comm_s)
    }

    /// Post-task message-drain time.
    pub fn drain(&self) -> Duration {
        self.exec_secs(|e| e.drain_s)
    }

    /// Time spent taking checkpoints inside the job.
    pub fn checkpoint(&self) -> Duration {
        self.exec_secs(|e| e.checkpoint_s)
    }

    /// Payload bytes workers sent on the job's behalf.
    pub fn wire_bytes(&self) -> u64 {
        self.exec.as_ref().map_or(0, |e| e.wire.bytes_sent)
    }

    /// Message buffers workers sealed on the job's behalf.
    pub fn wire_msgs(&self) -> u64 {
        self.exec.as_ref().map_or(0, |e| e.wire.msgs_sent)
    }

    /// Phase spans (with per-phase barrier residence), execution order.
    pub fn phases(&self) -> &[PhaseSpan] {
        self.exec.as_ref().map_or(&[], |e| e.phases.as_slice())
    }
}

struct State<E> {
    sched: Scheduler,
    /// Closures and completion channels of queued jobs, by id.
    queued: HashMap<u64, QueuedJob<E>>,
    /// Columns each session's finished jobs created.
    session_props: HashMap<u64, Vec<PropId>>,
    /// Sessions closed since the dispatcher last ran reclamation.
    retired_sessions: Vec<u64>,
    next_job: u64,
    shutdown: bool,
    /// Brownout gate: set when occupancy crossed the shed threshold,
    /// cleared once it drains below the reopen threshold.
    browned_out: bool,
}

struct Shared<E> {
    state: Mutex<State<E>>,
    cv: Condvar,
    config: ServeConfig,
    telemetry: Arc<Telemetry>,
    /// Column bytes etc. of the loaded graph — static for the engine's
    /// lifetime, snapshotted so submit-time admission checks need no
    /// engine access.
    base_profile: crate::MemProfile,
    /// Server-wide retry token bucket (capacity 0 = unbudgeted).
    retry_budget: Arc<RetryBudget>,
}

impl<E> Shared<E> {
    fn fail_job(&self, job: u64, qj: QueuedJob<E>, err: JobError) {
        let stats = self.telemetry.stats();
        match &err {
            JobError::DeadlineExceeded { .. } => {
                stats.jobs_deadline_missed.fetch_add(1, Ordering::Relaxed);
                stats.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
            }
            JobError::Cancelled { .. } => {
                stats.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
            }
            _ => {
                stats.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            }
        }
        if err.is_cancellation() {
            self.telemetry.trace(0, EventKind::JobCancel, job);
        }
        let _ = qj.tx.send((Err(err), None));
    }
}

/// What the dispatcher pulled out of the shared state to act on.
enum Work<E> {
    Run { meta: JobMeta, qj: QueuedJob<E> },
    Reclaim(Vec<PropId>),
    Shutdown,
}

/// Typed handle to one submitted job.
pub struct JobHandle<T> {
    job: u64,
    token: CancelToken,
    rx: mpsc::Receiver<JobCompletion>,
    /// Type-erased hook that removes the job from the queue on cancel.
    cancel_queued: Arc<dyn Fn(u64) + Send + Sync>,
    _result: PhantomData<fn() -> T>,
}

impl<T> std::fmt::Debug for JobHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle").field("job", &self.job).finish()
    }
}

impl<T: 'static> JobHandle<T> {
    /// The server-assigned job id.
    pub fn id(&self) -> u64 {
        self.job
    }

    /// The job's cancellation token (cloneable; useful for wiring
    /// external timeouts).
    pub fn token(&self) -> &CancelToken {
        &self.token
    }

    /// Requests cancellation: a queued job fails immediately, a running
    /// job within one chunk. Idempotent.
    pub fn cancel(&self) {
        self.token.cancel();
        (self.cancel_queued)(self.job);
    }

    /// Blocks until the job finishes (or fails) and returns its result.
    pub fn join(self) -> Result<T, JobError> {
        self.join_with_report().0
    }

    /// [`JobHandle::join`] plus the job's completion report: queue-wait /
    /// compute / comm / drain / checkpoint breakdown, per-phase barrier
    /// times, and the wire traffic attributed to the job. The report is
    /// `None` for jobs that never dispatched (cancelled in the queue,
    /// admission-denied, server shutdown).
    pub fn join_with_report(self) -> (Result<T, JobError>, Option<JobReport>) {
        match self.rx.recv() {
            Ok((result, report)) => (Self::downcast(result), report),
            Err(_) => (Err(JobError::Protocol("job server shut down".into())), None),
        }
    }

    /// Non-blocking [`JobHandle::join`]: `None` while the job is still
    /// queued or running.
    pub fn try_join(&self) -> Option<Result<T, JobError>> {
        match self.rx.try_recv() {
            Ok((result, _report)) => Some(Self::downcast(result)),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => {
                Some(Err(JobError::Protocol("job server shut down".into())))
            }
        }
    }

    fn downcast(result: JobResult) -> Result<T, JobError> {
        result.map(|boxed| {
            *boxed
                .downcast::<T>()
                .expect("job result type matches the submit closure")
        })
    }
}

/// A client's named handle onto the server. Dropping (or
/// [`Session::close`]-ing) it cancels the session's queued jobs and
/// reclaims every property column its jobs created.
pub struct Session<E: ServeEngine> {
    shared: Arc<Shared<E>>,
    id: u64,
    name: String,
    closed: bool,
}

impl<E: ServeEngine> Session<E> {
    /// The server-assigned session id.
    pub fn id(&self) -> u64 {
        self.id
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Submits a job with the config's default deadline (if any).
    ///
    /// `props` is the number of property columns the job expects to
    /// create — the admission-control input. `f` runs on the dispatcher
    /// thread with exclusive engine access; thread the token into
    /// `try_run_*_with` calls so cancellation can interrupt phases.
    pub fn submit<T, F>(&self, lane: Lane, props: usize, f: F) -> Result<JobHandle<T>, JobError>
    where
        T: Send + 'static,
        F: FnOnce(&mut E, &CancelToken) -> Result<T, JobError> + Send + 'static,
    {
        let default = self.shared.config.default_deadline_ms;
        let deadline = (default > 0).then(|| Duration::from_millis(default));
        self.submit_inner(lane, props, deadline, f)
    }

    /// [`Session::submit`] with an explicit deadline, measured from now —
    /// time spent queued counts against it.
    pub fn submit_with_deadline<T, F>(
        &self,
        lane: Lane,
        props: usize,
        deadline: Duration,
        f: F,
    ) -> Result<JobHandle<T>, JobError>
    where
        T: Send + 'static,
        F: FnOnce(&mut E, &CancelToken) -> Result<T, JobError> + Send + 'static,
    {
        self.submit_inner(lane, props, Some(deadline), f)
    }

    fn submit_inner<T, F>(
        &self,
        lane: Lane,
        props: usize,
        deadline: Option<Duration>,
        f: F,
    ) -> Result<JobHandle<T>, JobError>
    where
        T: Send + 'static,
        F: FnOnce(&mut E, &CancelToken) -> Result<T, JobError> + Send + 'static,
    {
        let shared = &self.shared;
        // A job that would overshoot the budget on an *empty* column set
        // can never be admitted; reject at submit instead of letting it
        // camp in the queue.
        let budget = shared.config.memory_budget_bytes;
        if budget > 0 {
            let mut empty = shared.base_profile;
            empty.live_props = 0;
            let estimated = estimate_bytes(&empty, props);
            if estimated > budget {
                shared
                    .telemetry
                    .stats()
                    .jobs_rejected
                    .fetch_add(1, Ordering::Relaxed);
                return Err(JobError::AdmissionDenied {
                    estimated_bytes: estimated,
                    budget_bytes: budget,
                });
            }
        }
        let mut st = shared.state.lock();
        if st.shutdown {
            return Err(JobError::Protocol("job server shut down".into()));
        }
        // Overload brownout: track queue occupancy against the shed /
        // reopen thresholds (hysteresis), and while the gate is closed
        // refuse batch work with a retry-after hint. Interactive
        // submissions still update the gate — they are how a batch-only
        // lull gets observed — but are never shed themselves.
        let shed_pm = shared.config.brownout_shed_per_mille;
        if shed_pm > 0 {
            let occupancy = st.sched.queued();
            let depth = shared.config.queue_depth;
            let shed_at = (depth * usize::from(shed_pm) / 1000).max(1);
            let reopen_at = depth * usize::from(shared.config.brownout_reopen_per_mille) / 1000;
            let stats = shared.telemetry.stats();
            if !st.browned_out && occupancy >= shed_at {
                st.browned_out = true;
                stats.brownout_sheds.fetch_add(1, Ordering::Relaxed);
                shared
                    .telemetry
                    .trace(0, EventKind::BrownoutShed, occupancy as u64);
            } else if st.browned_out && occupancy <= reopen_at {
                st.browned_out = false;
                stats.brownout_reopens.fetch_add(1, Ordering::Relaxed);
                shared
                    .telemetry
                    .trace(0, EventKind::BrownoutReopen, occupancy as u64);
            }
            if st.browned_out && lane == Lane::Batch {
                stats.jobs_rejected.fetch_add(1, Ordering::Relaxed);
                return Err(JobError::Overloaded {
                    retry_after_ms: shared.config.brownout_retry_after_ms,
                });
            }
        }
        st.next_job += 1;
        let id = st.next_job;
        let token = CancelToken::for_job(id);
        if let Some(d) = deadline {
            token.set_deadline(d);
        }
        st.sched.submit(JobMeta {
            id,
            session: self.id,
            lane,
            props,
        })?;
        let (tx, rx) = mpsc::channel();
        let run: BoxedJob<E> = Box::new(move |engine, cancel| {
            f(engine, cancel).map(|v| Box::new(v) as Box<dyn Any + Send>)
        });
        st.queued.insert(
            id,
            QueuedJob {
                run,
                token: token.clone(),
                tx,
                submitted: Instant::now(),
                enqueue_ns: shared.telemetry.now_ns(),
            },
        );
        drop(st);
        shared.telemetry.trace(0, EventKind::JobEnqueue, id);
        shared.cv.notify_all();
        let cancel_shared = Arc::clone(shared);
        Ok(JobHandle {
            job: id,
            token,
            rx,
            cancel_queued: Arc::new(move |job| {
                let mut st = cancel_shared.state.lock();
                if st.sched.cancel(job).is_some() {
                    let qj = st.queued.remove(&job).expect("queued job has a closure");
                    drop(st);
                    cancel_shared.fail_job(job, qj, JobError::Cancelled { job });
                    cancel_shared.cv.notify_all();
                }
            }),
            _result: PhantomData,
        })
    }

    /// Cancels the session's queued jobs and schedules reclamation of
    /// every property column its jobs created. Idempotent; also runs on
    /// drop.
    pub fn close(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        let mut st = self.shared.state.lock();
        for meta in st.sched.drain_session(self.id) {
            if let Some(qj) = st.queued.remove(&meta.id) {
                qj.token.cancel();
                self.shared
                    .fail_job(meta.id, qj, JobError::Cancelled { job: meta.id });
            }
        }
        st.retired_sessions.push(self.id);
        drop(st);
        self.shared.cv.notify_all();
    }
}

impl<E: ServeEngine> Drop for Session<E> {
    fn drop(&mut self) {
        self.close();
    }
}

/// The multi-tenant job server. See the module docs.
pub struct JobServer<E: ServeEngine> {
    shared: Arc<Shared<E>>,
    next_session: AtomicU64,
    dispatcher: Option<std::thread::JoinHandle<E>>,
}

impl<E: ServeEngine> JobServer<E> {
    /// Takes ownership of a loaded engine and starts the dispatcher
    /// thread. `config` is usually the engine's own `serve` section.
    pub fn start(engine: E, config: ServeConfig) -> JobServer<E> {
        let telemetry = engine.telemetry();
        let mut base_profile = engine.mem_profile();
        base_profile.live_props = 0;
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                sched: Scheduler::new(config.queue_depth, config.lane_weights, config.session_cap),
                queued: HashMap::new(),
                session_props: HashMap::new(),
                retired_sessions: Vec::new(),
                next_job: 0,
                shutdown: false,
                browned_out: false,
            }),
            cv: Condvar::new(),
            retry_budget: Arc::new(RetryBudget::new(
                config.retry_budget_tokens,
                config.retry_budget_refill_ms,
            )),
            config,
            telemetry,
            base_profile,
        });
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("pgxd-dispatch".into())
                .spawn(move || dispatcher_loop(engine, shared))
                .expect("spawn dispatcher")
        };
        JobServer {
            shared,
            next_session: AtomicU64::new(0),
            dispatcher: Some(dispatcher),
        }
    }

    /// Opens a named session.
    pub fn session(&self, name: &str) -> Session<E> {
        Session {
            shared: Arc::clone(&self.shared),
            id: self.next_session.fetch_add(1, Ordering::Relaxed) + 1,
            name: name.to_string(),
            closed: false,
        }
    }

    /// The server's telemetry registry (machine 0's, for cluster-backed
    /// engines) — job counters and the queue-wait histogram live here.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.shared.telemetry
    }

    /// The server-wide retry budget. Hand clones to recovery drivers
    /// (`RecoveryDriver::with_retry_budget`) so their retries draw from
    /// the same token pool as every session's; with
    /// `retry_budget_tokens = 0` the bucket is unbudgeted and every
    /// acquire succeeds.
    pub fn retry_budget(&self) -> Arc<RetryBudget> {
        Arc::clone(&self.shared.retry_budget)
    }

    /// Takes one token from the server-wide retry budget on behalf of a
    /// client about to resubmit a shed or failed job. A dry bucket
    /// returns `false`, bumps the `retry_budget_exhausted` telemetry
    /// counter, and the client must surface
    /// [`JobError::RetryBudgetExhausted`] instead of retrying.
    pub fn try_retry(&self) -> bool {
        let ok = self.shared.retry_budget.try_acquire();
        if !ok {
            self.shared
                .telemetry
                .stats()
                .retry_budget_exhausted
                .fetch_add(1, Ordering::Relaxed);
        }
        ok
    }

    /// Stops accepting work, fails still-queued jobs with
    /// [`JobError::Cancelled`], waits for the running job (if any) to
    /// finish, and returns the engine.
    pub fn shutdown(mut self) -> E {
        self.begin_shutdown();
        self.dispatcher
            .take()
            .expect("dispatcher joined once")
            .join()
            .expect("dispatcher thread panicked")
    }

    fn begin_shutdown(&self) {
        let mut st = self.shared.state.lock();
        st.shutdown = true;
        let ids: Vec<u64> = st.queued.keys().copied().collect();
        for id in ids {
            if st.sched.cancel(id).is_some() {
                let qj = st.queued.remove(&id).expect("queued job has a closure");
                qj.token.cancel();
                self.shared
                    .fail_job(id, qj, JobError::Cancelled { job: id });
            }
        }
        drop(st);
        self.shared.cv.notify_all();
    }
}

impl<E: ServeEngine> Drop for JobServer<E> {
    fn drop(&mut self) {
        if let Some(handle) = self.dispatcher.take() {
            self.begin_shutdown();
            let _ = handle.join();
        }
    }
}

fn dispatcher_loop<E: ServeEngine>(mut engine: E, shared: Arc<Shared<E>>) -> E {
    loop {
        let work: Work<E> = {
            let mut st = shared.state.lock();
            loop {
                if !st.retired_sessions.is_empty() {
                    let mut props = Vec::new();
                    let sessions: Vec<u64> = st.retired_sessions.drain(..).collect();
                    for s in sessions {
                        props.extend(st.session_props.remove(&s).unwrap_or_default());
                    }
                    break Work::Reclaim(props);
                }
                if let Some(meta) = st.sched.next_job() {
                    let qj = st
                        .queued
                        .remove(&meta.id)
                        .expect("queued job has a closure");
                    break Work::Run { meta, qj };
                }
                if st.shutdown {
                    break Work::Shutdown;
                }
                shared.cv.wait(&mut st);
            }
        };
        match work {
            Work::Shutdown => return engine,
            Work::Reclaim(props) => {
                for id in props {
                    engine.reclaim_prop(id);
                }
            }
            Work::Run { meta, qj } => run_one(&mut engine, &shared, meta, qj),
        }
    }
}

/// Dispatch-time checks + execution of one job. Runs on the dispatcher
/// thread with the state lock released (only re-taken briefly to record
/// completion).
fn run_one<E: ServeEngine>(
    engine: &mut E,
    shared: &Arc<Shared<E>>,
    meta: JobMeta,
    qj: QueuedJob<E>,
) {
    let telemetry = &shared.telemetry;
    let wait_ns = qj.submitted.elapsed().as_nanos() as u64;
    telemetry.record_queue_wait(wait_ns);

    // The token may have fired while the job sat in the queue (deadline,
    // or a cancel that raced dispatch).
    let queued_failure = qj.token.fired().map(|reason| match reason {
        CancelReason::Explicit => JobError::Cancelled { job: meta.id },
        CancelReason::Deadline => JobError::DeadlineExceeded { job: meta.id },
    });
    if let Some(err) = queued_failure {
        shared.fail_job(meta.id, qj, err);
        shared.state.lock().sched.complete(meta.session);
        shared.cv.notify_all();
        return;
    }

    // Admission against the *current* column population: long-lived
    // sessions grow the resident set, and later jobs must fit next to it.
    let budget = shared.config.memory_budget_bytes;
    if budget > 0 {
        let estimated = estimate_bytes(&engine.mem_profile(), meta.props);
        if estimated > budget {
            shared.fail_job(
                meta.id,
                qj,
                JobError::AdmissionDenied {
                    estimated_bytes: estimated,
                    budget_bytes: budget,
                },
            );
            shared.state.lock().sched.complete(meta.session);
            shared.cv.notify_all();
            return;
        }
    }

    let stats = telemetry.stats();
    stats.jobs_admitted.fetch_add(1, Ordering::Relaxed);
    telemetry.trace(0, EventKind::JobDispatch, meta.id);

    // Open the per-job attribution window: machines charge wire traffic
    // to this job until `end_job`. Jobs serialize on this thread, so the
    // window brackets exactly one job body.
    engine.begin_job(
        JobCtx {
            job: meta.id,
            session: meta.session,
            lane: meta.lane as u8,
        },
        qj.enqueue_ns,
    );
    let before = engine.live_prop_ids();
    let run_started = Instant::now();
    let result = (qj.run)(engine, &qj.token);
    let run = run_started.elapsed();
    let outcome = match &result {
        Ok(_) => JobOutcome::Done,
        Err(err) if err.is_cancellation() => JobOutcome::Cancelled,
        Err(_) => JobOutcome::Failed,
    };
    let exec = engine.end_job(outcome);
    let after = engine.live_prop_ids();
    let created: Vec<PropId> = after
        .into_iter()
        .filter(|id| !before.contains(id))
        .collect();

    match &result {
        Err(err) if err.is_cancellation() => {
            // A killed job's scratch columns are garbage; free them now so
            // a cancelled batch job cannot leak memory into the budget.
            for id in created {
                engine.reclaim_prop(id);
            }
            let stats = telemetry.stats();
            if matches!(err, JobError::DeadlineExceeded { .. }) {
                stats.jobs_deadline_missed.fetch_add(1, Ordering::Relaxed);
            }
            stats.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
            telemetry.trace(0, EventKind::JobCancel, meta.id);
        }
        _ => {
            if !created.is_empty() {
                shared
                    .state
                    .lock()
                    .session_props
                    .entry(meta.session)
                    .or_default()
                    .extend(created);
            }
        }
    }

    if outcome != JobOutcome::Cancelled {
        // Cancellation already traced `JobCancel` above; everything else
        // marks the cluster release explicitly.
        telemetry.trace(0, EventKind::JobDone, meta.id);
    }
    let report = JobReport {
        job: meta.id,
        session: meta.session,
        lane: meta.lane,
        queue_wait: Duration::from_nanos(wait_ns),
        run,
        outcome,
        exec,
    };
    let _ = qj.tx.send((result, Some(report)));
    shared.state.lock().sched.complete(meta.session);
    shared.cv.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemProfile;

    /// A fake engine: properties are just a set of ids, jobs are
    /// closures over a counter.
    struct MockEngine {
        props: Vec<PropId>,
        next_prop: u16,
        telemetry: Arc<Telemetry>,
        runs: u64,
    }

    impl MockEngine {
        fn new() -> Self {
            MockEngine {
                props: Vec::new(),
                next_prop: 0,
                telemetry: Telemetry::detached(1, true),
                runs: 0,
            }
        }

        fn add_prop(&mut self) -> PropId {
            let id = PropId(self.next_prop);
            self.next_prop += 1;
            self.props.push(id);
            id
        }
    }

    impl ServeEngine for MockEngine {
        fn mem_profile(&self) -> MemProfile {
            MemProfile {
                nodes: 1000,
                machines: 2,
                ghosts: 0,
                send_buffers_per_machine: 2,
                buffer_bytes: 1024,
                live_props: self.props.len(),
                recovery_enabled: false,
            }
        }

        fn live_prop_ids(&self) -> Vec<PropId> {
            self.props.clone()
        }

        fn reclaim_prop(&mut self, id: PropId) {
            self.props.retain(|&p| p != id);
        }

        fn telemetry(&self) -> Arc<Telemetry> {
            Arc::clone(&self.telemetry)
        }
    }

    fn config() -> ServeConfig {
        ServeConfig::default()
    }

    #[test]
    fn jobs_run_and_return_typed_results() {
        let server = JobServer::start(MockEngine::new(), config());
        let session = server.session("alice");
        let h = session
            .submit(Lane::Interactive, 0, |engine: &mut MockEngine, _| {
                engine.runs += 1;
                Ok(engine.runs * 10)
            })
            .unwrap();
        assert_eq!(h.join().unwrap(), 10);
        drop(session);
        let engine = server.shutdown();
        assert_eq!(engine.runs, 1);
    }

    #[test]
    fn queued_cancel_fails_immediately_without_running() {
        let server = JobServer::start(MockEngine::new(), config());
        let session = server.session("s");
        // Occupy the dispatcher so the next job stays queued.
        let (block_tx, block_rx) = mpsc::channel::<()>();
        let blocker = session
            .submit(Lane::Batch, 0, move |_: &mut MockEngine, _| {
                block_rx.recv().ok();
                Ok(())
            })
            .unwrap();
        let victim = session
            .submit(Lane::Batch, 0, |engine: &mut MockEngine, _| {
                engine.runs += 1;
                Ok(())
            })
            .unwrap();
        let victim_id = victim.id();
        victim.cancel();
        match victim.join() {
            Err(JobError::Cancelled { job }) => assert_eq!(job, victim_id),
            other => panic!("expected Cancelled, got {other:?}"),
        }
        block_tx.send(()).unwrap();
        blocker.join().unwrap();
        drop(session);
        let engine = server.shutdown();
        assert_eq!(engine.runs, 0, "cancelled job never ran");
    }

    #[test]
    fn running_job_observes_token() {
        let server = JobServer::start(MockEngine::new(), config());
        let session = server.session("s");
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let h = session
            .submit(Lane::Interactive, 0, move |_: &mut MockEngine, cancel| {
                started_tx.send(()).unwrap();
                while !cancel.is_cancelled() {
                    std::thread::yield_now();
                }
                Err::<(), _>(JobError::Cancelled { job: cancel.job() })
            })
            .unwrap();
        started_rx.recv().unwrap();
        h.cancel();
        assert!(matches!(h.join(), Err(JobError::Cancelled { .. })));
        let t = Arc::clone(server.telemetry());
        drop(session);
        drop(server);
        assert_eq!(t.stats().snapshot().jobs_cancelled, 1);
    }

    #[test]
    fn deadline_expired_in_queue_surfaces_at_dispatch() {
        let server = JobServer::start(MockEngine::new(), config());
        let session = server.session("s");
        let (block_tx, block_rx) = mpsc::channel::<()>();
        let blocker = session
            .submit(Lane::Batch, 0, move |_: &mut MockEngine, _| {
                block_rx.recv().ok();
                Ok(())
            })
            .unwrap();
        let doomed = session
            .submit_with_deadline(Lane::Batch, 0, Duration::ZERO, |e: &mut MockEngine, _| {
                e.runs += 1;
                Ok(())
            })
            .unwrap();
        std::thread::sleep(Duration::from_millis(2));
        block_tx.send(()).unwrap();
        blocker.join().unwrap();
        assert!(matches!(
            doomed.join(),
            Err(JobError::DeadlineExceeded { .. })
        ));
        drop(session);
        let engine = server.shutdown();
        assert_eq!(engine.runs, 0);
        assert_eq!(engine.telemetry.stats().snapshot().jobs_deadline_missed, 1);
    }

    #[test]
    fn admission_denied_when_budget_undersized() {
        let mut cfg = config();
        cfg.memory_budget_bytes = 1; // everything is too big
        let server = JobServer::start(MockEngine::new(), cfg);
        let session = server.session("s");
        let err = session
            .submit(Lane::Interactive, 4, |_: &mut MockEngine, _| Ok(()))
            .unwrap_err();
        match err {
            JobError::AdmissionDenied {
                estimated_bytes,
                budget_bytes,
            } => {
                assert!(estimated_bytes > budget_bytes);
                assert_eq!(budget_bytes, 1);
            }
            other => panic!("expected AdmissionDenied, got {other:?}"),
        }
        drop(session);
        let engine = server.shutdown();
        assert_eq!(engine.telemetry.stats().snapshot().jobs_rejected, 1);
    }

    #[test]
    fn dispatch_time_admission_counts_live_columns() {
        let mut cfg = config();
        // Head-room for one column (plus buffers) but not three. Mock
        // profile: column = 8 × 1000 = 8000 B, buffers = 2×2×1024 = 4096 B.
        cfg.memory_budget_bytes = 8000 + 4096 + 100;
        let server = JobServer::start(MockEngine::new(), cfg);
        let session = server.session("s");
        let first = session
            .submit(Lane::Interactive, 1, |e: &mut MockEngine, _| {
                e.add_prop();
                Ok(())
            })
            .unwrap();
        first.join().unwrap();
        // The column created by job 1 is now resident: an identical job no
        // longer fits, even though it passed the submit-time check.
        let second = session
            .submit(Lane::Interactive, 1, |e: &mut MockEngine, _| {
                e.add_prop();
                Ok(())
            })
            .unwrap();
        assert!(matches!(
            second.join(),
            Err(JobError::AdmissionDenied { .. })
        ));
        drop(session);
        server.shutdown();
    }

    #[test]
    fn session_close_reclaims_columns_and_cancelled_jobs_reclaim_now() {
        let server = JobServer::start(MockEngine::new(), config());
        let mut alice = server.session("alice");
        let bob = server.session("bob");
        let a = alice
            .submit(Lane::Interactive, 1, |e: &mut MockEngine, _| {
                Ok(e.add_prop())
            })
            .unwrap();
        let b = bob
            .submit(Lane::Interactive, 1, |e: &mut MockEngine, _| {
                Ok(e.add_prop())
            })
            .unwrap();
        let a_prop = a.join().unwrap();
        let b_prop = b.join().unwrap();
        assert_ne!(a_prop, b_prop, "sessions get disjoint property ids");
        // A cancelled job's columns are reclaimed immediately.
        let c = alice
            .submit(Lane::Interactive, 1, |e: &mut MockEngine, cancel| {
                let _scratch = e.add_prop();
                Err::<(), _>(JobError::Cancelled { job: cancel.job() })
            })
            .unwrap();
        assert!(matches!(c.join(), Err(JobError::Cancelled { .. })));
        alice.close();
        drop(bob);
        let engine = server.shutdown();
        assert!(
            engine.props.is_empty(),
            "all session columns reclaimed, got {:?}",
            engine.props
        );
    }

    #[test]
    fn queue_overflow_is_structured() {
        let mut cfg = config();
        cfg.queue_depth = 1;
        let server = JobServer::start(MockEngine::new(), cfg);
        let session = server.session("s");
        let (block_tx, block_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let blocker = session
            .submit(Lane::Batch, 0, move |_: &mut MockEngine, _| {
                started_tx.send(()).ok();
                block_rx.recv().ok();
                Ok(())
            })
            .unwrap();
        // Wait until the blocker has left the queue and holds the engine.
        started_rx.recv().unwrap();
        let _queued = session
            .submit(Lane::Batch, 0, |_: &mut MockEngine, _| Ok(()))
            .unwrap();
        let err = session
            .submit(Lane::Batch, 0, |_: &mut MockEngine, _| Ok(()))
            .unwrap_err();
        assert!(matches!(err, JobError::QueueFull { depth: 1, .. }));
        block_tx.send(()).unwrap();
        blocker.join().unwrap();
        drop(session);
        server.shutdown();
    }

    #[test]
    fn brownout_sheds_batch_lane_with_hysteresis() {
        let mut cfg = config();
        cfg.queue_depth = 4;
        cfg.brownout_shed_per_mille = 500; // shed at 2 queued
        cfg.brownout_reopen_per_mille = 250; // reopen at ≤ 1 queued
        cfg.brownout_retry_after_ms = 40;
        let server = JobServer::start(MockEngine::new(), cfg);
        let session = server.session("s");
        let (block_tx, block_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        let blocker = session
            .submit(Lane::Batch, 0, move |_: &mut MockEngine, _| {
                started_tx.send(()).ok();
                block_rx.recv().ok();
                Ok(())
            })
            .unwrap();
        started_rx.recv().unwrap();
        // Fill to the shed threshold while the dispatcher is held.
        let q1 = session
            .submit(Lane::Batch, 0, |_: &mut MockEngine, _| Ok(()))
            .unwrap();
        let q2 = session
            .submit(Lane::Batch, 0, |_: &mut MockEngine, _| Ok(()))
            .unwrap();
        // Occupancy 2 ≥ shed threshold: gate closes, batch is shed with
        // the configured hint...
        let err = session
            .submit(Lane::Batch, 0, |_: &mut MockEngine, _| Ok(()))
            .unwrap_err();
        assert!(matches!(err, JobError::Overloaded { retry_after_ms: 40 }));
        assert!(err.is_transient(), "Overloaded must invite a retry");
        // ...and stays closed for batch while occupancy holds...
        assert!(matches!(
            session
                .submit(Lane::Batch, 0, |_: &mut MockEngine, _| Ok(()))
                .unwrap_err(),
            JobError::Overloaded { .. }
        ));
        // ...but the interactive lane is still live.
        let live = session
            .submit(Lane::Interactive, 0, |_: &mut MockEngine, _| Ok(42u32))
            .unwrap();
        block_tx.send(()).unwrap();
        blocker.join().unwrap();
        q1.join().unwrap();
        q2.join().unwrap();
        assert_eq!(live.join().unwrap(), 42);
        // Queue drained below the reopen threshold: batch flows again.
        session
            .submit(Lane::Batch, 0, |_: &mut MockEngine, _| Ok(()))
            .unwrap()
            .join()
            .unwrap();
        let t = Arc::clone(server.telemetry());
        drop(session);
        drop(server);
        let snap = t.stats().snapshot();
        assert_eq!(snap.brownout_sheds, 1, "one shed transition");
        assert_eq!(snap.brownout_reopens, 1, "one reopen transition");
        assert_eq!(snap.jobs_rejected, 2, "both shed submissions counted");
    }

    #[test]
    fn retry_budget_is_server_wide_and_counts_exhaustion() {
        let mut cfg = config();
        cfg.retry_budget_tokens = 1;
        cfg.retry_budget_refill_ms = 60_000; // effectively no refill here
        let server = JobServer::start(MockEngine::new(), cfg);
        let budget = server.retry_budget();
        assert!(server.try_retry(), "first token available");
        assert!(!server.try_retry(), "bucket dry");
        assert_eq!(budget.exhausted_events(), 1);
        // Every accessor call hands out the same bucket.
        assert!(!budget.try_acquire());
        assert_eq!(budget.exhausted_events(), 2);
        let t = Arc::clone(server.telemetry());
        server.shutdown();
        assert_eq!(
            t.stats().snapshot().retry_budget_exhausted,
            1,
            "server-mediated exhaustion is counted in telemetry"
        );
    }

    #[test]
    fn queue_wait_histogram_is_fed() {
        let server = JobServer::start(MockEngine::new(), config());
        let session = server.session("s");
        session
            .submit(Lane::Interactive, 0, |_: &mut MockEngine, _| Ok(()))
            .unwrap()
            .join()
            .unwrap();
        let t = Arc::clone(server.telemetry());
        drop(session);
        drop(server);
        assert_eq!(t.queue_wait_snapshot().count(), 1);
        assert_eq!(t.stats().snapshot().jobs_admitted, 1);
    }

    #[test]
    fn completion_report_carries_wall_times_and_outcome() {
        let server = JobServer::start(MockEngine::new(), config());
        let session = server.session("s");
        let h = session
            .submit(Lane::Batch, 0, |_: &mut MockEngine, _| {
                std::thread::sleep(Duration::from_millis(2));
                Ok(7u64)
            })
            .unwrap();
        let (result, report) = h.join_with_report();
        assert_eq!(result.unwrap(), 7);
        let r = report.expect("dispatched jobs report");
        assert_eq!(r.outcome, JobOutcome::Done);
        assert_eq!(r.lane, Lane::Batch);
        assert!(r.run >= Duration::from_millis(2));
        // MockEngine tracks no JobExec: breakdown accessors default to zero.
        assert!(r.exec.is_none());
        assert_eq!(r.compute(), Duration::ZERO);
        assert_eq!(r.wire_bytes(), 0);
        assert!(r.phases().is_empty());

        // A job cancelled while queued never dispatches → no report.
        let (block_tx, block_rx) = mpsc::channel::<()>();
        let blocker = session
            .submit(Lane::Batch, 0, move |_: &mut MockEngine, _| {
                block_rx.recv().ok();
                Ok(())
            })
            .unwrap();
        let victim = session
            .submit(Lane::Batch, 0, |_: &mut MockEngine, _| Ok(()))
            .unwrap();
        victim.cancel();
        let (result, report) = victim.join_with_report();
        assert!(matches!(result, Err(JobError::Cancelled { .. })));
        assert!(report.is_none());
        block_tx.send(()).unwrap();
        blocker.join().unwrap();
        drop(session);
        server.shutdown();
    }
}
