//! Admission control: a conservative per-job memory estimate checked
//! against a configured budget before the job may touch the cluster.
//!
//! The estimate covers the three allocations a job can force:
//!
//! 1. **Property columns** — every column holds 8-byte cells for each
//!    machine's local vertices *plus* its ghost slots, so one column costs
//!    `8 × (nodes + machines × ghosts)` bytes cluster-wide. The estimate
//!    charges the job for the columns already live (they stay resident
//!    while it runs) plus the columns it declares it will create.
//! 2. **Send-buffer pool share** — each machine's pool may hand out up to
//!    `send_buffers_per_machine` buffers of `buffer_bytes` each.
//! 3. **Checkpoint overhead** — with recovery enabled, a barrier
//!    checkpoint copies every column once more.
//!
//! The estimate is deliberately pessimistic: rejecting a job is cheap and
//! structured ([`JobError::AdmissionDenied`] carries the estimate), while
//! letting an oversized job OOM a shared server kills every session.
//!
//! [`JobError::AdmissionDenied`]: pgxd_runtime::health::JobError::AdmissionDenied

/// Memory-relevant dimensions of a loaded cluster.
#[derive(Clone, Copy, Debug)]
pub struct MemProfile {
    /// Total vertices across machines.
    pub nodes: usize,
    /// Machines in the cluster.
    pub machines: usize,
    /// Ghost slots per machine (each machine appends the full ghost set
    /// to its columns).
    pub ghosts: usize,
    /// Send-buffer quota per machine.
    pub send_buffers_per_machine: usize,
    /// Bytes per send buffer.
    pub buffer_bytes: usize,
    /// Property columns currently live.
    pub live_props: usize,
    /// Whether barrier checkpoints (one extra copy of every column) are
    /// enabled.
    pub recovery_enabled: bool,
}

impl MemProfile {
    /// Cluster-wide bytes of one property column.
    pub fn column_bytes(&self) -> u64 {
        8 * (self.nodes as u64 + self.machines as u64 * self.ghosts as u64)
    }
}

/// Bytes a job that creates `new_props` property columns is charged for
/// under `profile`. See the module docs for the three components.
pub fn estimate_bytes(profile: &MemProfile, new_props: usize) -> u64 {
    let columns = (profile.live_props as u64 + new_props as u64) * profile.column_bytes();
    let buffers = profile.machines as u64
        * profile.send_buffers_per_machine as u64
        * profile.buffer_bytes as u64;
    let checkpoints = if profile.recovery_enabled { columns } else { 0 };
    columns + buffers + checkpoints
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> MemProfile {
        MemProfile {
            nodes: 1000,
            machines: 4,
            ghosts: 50,
            send_buffers_per_machine: 16,
            buffer_bytes: 4096,
            live_props: 0,
            recovery_enabled: false,
        }
    }

    #[test]
    fn column_counts_locals_and_ghosts() {
        // 1000 locals + 4 machines × 50 ghost slots = 1200 cells × 8 B.
        assert_eq!(profile().column_bytes(), 9600);
    }

    #[test]
    fn estimate_scales_with_props() {
        let p = profile();
        let base = estimate_bytes(&p, 0);
        assert_eq!(base, 4 * 16 * 4096, "no columns → buffer share only");
        assert_eq!(estimate_bytes(&p, 2) - base, 2 * p.column_bytes());
    }

    #[test]
    fn live_columns_are_charged() {
        let mut p = profile();
        let fresh = estimate_bytes(&p, 1);
        p.live_props = 3;
        assert_eq!(estimate_bytes(&p, 1) - fresh, 3 * p.column_bytes());
    }

    #[test]
    fn recovery_doubles_column_cost() {
        let mut p = profile();
        let plain = estimate_bytes(&p, 2);
        p.recovery_enabled = true;
        assert_eq!(estimate_bytes(&p, 2) - plain, 2 * p.column_bytes());
    }
}
