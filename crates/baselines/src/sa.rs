//! The "SA" baseline: standalone single-machine implementations over
//! direct CSR arrays with hand-rolled parallel loops (the paper's
//! OpenMP-style standalone applications, §5.2).
//!
//! No framework: no tasks, no messages, no properties — just slices,
//! atomics, and scoped threads. This is the performance bar that Table 3's
//! `SA` row sets for every distributed system.

use pgxd_graph::{Graph, NodeId};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};

/// Splits `0..n` into `threads` contiguous ranges and runs `f(range)` on
/// scoped threads — the moral equivalent of `#pragma omp parallel for`.
pub fn parallel_for<F>(n: usize, threads: usize, f: F)
where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 {
        f(0..n);
        return;
    }
    std::thread::scope(|s| {
        for t in 0..threads {
            let f = &f;
            let lo = n * t / threads;
            let hi = n * (t + 1) / threads;
            s.spawn(move || f(lo..hi));
        }
    });
}

/// Fills `dst[i] = f(i)` in parallel by handing each thread a disjoint
/// chunk — the no-atomics owner-computes pattern of the OpenMP originals.
pub fn parallel_map_into<T: Send, F>(dst: &mut [T], threads: usize, f: F)
where
    F: Fn(usize) -> T + Sync,
{
    let n = dst.len();
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 {
        for (i, slot) in dst.iter_mut().enumerate() {
            *slot = f(i);
        }
        return;
    }
    std::thread::scope(|s| {
        let mut rest = dst;
        let mut offset = 0usize;
        for t in 0..threads {
            let hi = n * (t + 1) / threads;
            let size = hi - offset;
            let (chunk, r) = rest.split_at_mut(size);
            rest = r;
            let f = &f;
            let base = offset;
            s.spawn(move || {
                for (i, slot) in chunk.iter_mut().enumerate() {
                    *slot = f(base + i);
                }
            });
            offset = hi;
        }
    });
}

#[inline]
fn atomic_add_f64(cell: &AtomicU64, add: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + add).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(c) => cur = c,
        }
    }
}

#[inline]
fn atomic_min_f64(cell: &AtomicU64, cand: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    while cand < f64::from_bits(cur) {
        match cell.compare_exchange_weak(cur, cand.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => return,
            Err(c) => cur = c,
        }
    }
}

#[inline]
fn atomic_min_i64(cell: &AtomicI64, cand: i64) {
    let mut cur = cell.load(Ordering::Relaxed);
    while cand < cur {
        match cell.compare_exchange_weak(cur, cand, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(c) => cur = c,
        }
    }
}

/// Raw edge-iteration speed probe (Figure 5a's OpenMP line): sums the
/// destination ids of every edge, in parallel, and returns the sum so the
/// traversal cannot be optimized away.
pub fn edge_iteration(g: &Graph, threads: usize) -> u64 {
    let total = AtomicU64::new(0);
    parallel_for(g.num_nodes(), threads, |range| {
        let mut local = 0u64;
        for v in range {
            for &t in g.out_neighbors(v as NodeId) {
                local = local.wrapping_add(t as u64);
            }
        }
        total.fetch_add(local, Ordering::Relaxed);
    });
    total.into_inner()
}

/// Pull-mode exact PageRank (no atomics — each vertex is written by one
/// thread).
pub fn pagerank_pull(g: &Graph, damping: f64, iters: usize, threads: usize) -> Vec<f64> {
    let n = g.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let base = (1.0 - damping) / n as f64;
    let mut pr = vec![1.0 / n as f64; n];
    let mut tmp = vec![0.0f64; n];
    let mut nxt = vec![0.0f64; n];
    for _ in 0..iters {
        {
            let pr_r = &pr;
            parallel_map_into(&mut tmp, threads, |v| {
                let d = g.out_degree(v as NodeId);
                if d > 0 {
                    pr_r[v] / d as f64
                } else {
                    0.0
                }
            });
        }
        {
            let tmp_r = &tmp;
            parallel_map_into(&mut nxt, threads, |v| {
                let sum: f64 = g
                    .in_neighbors(v as NodeId)
                    .iter()
                    .map(|&t| tmp_r[t as usize])
                    .sum();
                base + damping * sum
            });
        }
        std::mem::swap(&mut pr, &mut nxt);
    }
    pr
}

/// Push-mode exact PageRank (atomic accumulation, like the distributed
/// push variant).
pub fn pagerank_push(g: &Graph, damping: f64, iters: usize, threads: usize) -> Vec<f64> {
    let n = g.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let base = (1.0 - damping) / n as f64;
    let mut pr = vec![1.0 / n as f64; n];
    for _ in 0..iters {
        let acc: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        {
            let pr_r = &pr;
            let acc_r = &acc;
            parallel_for(n, threads, |range| {
                for v in range {
                    let d = g.out_degree(v as NodeId);
                    if d == 0 {
                        continue;
                    }
                    let share = pr_r[v] / d as f64;
                    for &t in g.out_neighbors(v as NodeId) {
                        atomic_add_f64(&acc_r[t as usize], share);
                    }
                }
            });
        }
        for (v, cell) in acc.into_iter().enumerate() {
            pr[v] = base + damping * f64::from_bits(cell.into_inner());
        }
    }
    pr
}

/// Approximate PageRank with delta propagation and deactivation.
pub fn pagerank_approx(
    g: &Graph,
    damping: f64,
    threshold: f64,
    threads: usize,
) -> (Vec<f64>, usize) {
    let n = g.num_nodes();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let init = (1.0 - damping) / n as f64;
    let mut pr = vec![init; n];
    let mut delta = vec![init; n];
    let mut active = vec![true; n];
    let mut iterations = 0;
    loop {
        iterations += 1;
        let acc: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        {
            let delta_r = &delta;
            let active_r = &active;
            let acc_r = &acc;
            parallel_for(n, threads, |range| {
                for v in range {
                    if !active_r[v] {
                        continue;
                    }
                    let d = g.out_degree(v as NodeId);
                    if d == 0 {
                        continue;
                    }
                    let share = delta_r[v] / d as f64;
                    for &t in g.out_neighbors(v as NodeId) {
                        atomic_add_f64(&acc_r[t as usize], share);
                    }
                }
            });
        }
        let mut any = false;
        for v in 0..n {
            let nd = damping * f64::from_bits(acc[v].load(Ordering::Relaxed));
            pr[v] += nd;
            delta[v] = nd;
            active[v] = nd >= threshold;
            any |= active[v];
        }
        if !any {
            break;
        }
    }
    (pr, iterations)
}

/// Weakly connected components by parallel min-label propagation.
pub fn wcc(g: &Graph, threads: usize) -> Vec<u32> {
    let n = g.num_nodes();
    let comp: Vec<AtomicU64> = (0..n).map(|v| AtomicU64::new(v as u64)).collect();
    let changed = AtomicBool::new(true);
    while changed.swap(false, Ordering::Relaxed) {
        let comp_r = &comp;
        let changed_r = &changed;
        parallel_for(n, threads, |range| {
            for v in range {
                let mine = comp_r[v].load(Ordering::Relaxed);
                let mut best = mine;
                for &t in g
                    .out_neighbors(v as NodeId)
                    .iter()
                    .chain(g.in_neighbors(v as NodeId))
                {
                    best = best.min(comp_r[t as usize].load(Ordering::Relaxed));
                }
                if best < mine {
                    comp_r[v].store(best, Ordering::Relaxed);
                    changed_r.store(true, Ordering::Relaxed);
                }
            }
        });
    }
    comp.into_iter().map(|c| c.into_inner() as u32).collect()
}

/// Parallel Bellman-Ford from `root`.
pub fn sssp(g: &Graph, root: NodeId, threads: usize) -> Vec<f64> {
    let n = g.num_nodes();
    let dist: Vec<AtomicU64> = (0..n)
        .map(|_| AtomicU64::new(f64::INFINITY.to_bits()))
        .collect();
    dist[root as usize].store(0f64.to_bits(), Ordering::Relaxed);
    let changed = AtomicBool::new(true);
    while changed.swap(false, Ordering::Relaxed) {
        let dist_r = &dist;
        let changed_r = &changed;
        parallel_for(n, threads, |range| {
            for v in range {
                let dv = f64::from_bits(dist_r[v].load(Ordering::Relaxed));
                if !dv.is_finite() {
                    continue;
                }
                for (k, &t) in g.out_neighbors(v as NodeId).iter().enumerate() {
                    let e = g.out_csr().edge_start(v as NodeId) + k;
                    let cand = dv + g.weight(e);
                    let cell = &dist_r[t as usize];
                    if cand < f64::from_bits(cell.load(Ordering::Relaxed)) {
                        atomic_min_f64(cell, cand);
                        changed_r.store(true, Ordering::Relaxed);
                    }
                }
            }
        });
    }
    dist.into_iter()
        .map(|c| f64::from_bits(c.into_inner()))
        .collect()
}

/// Parallel level-synchronous BFS hop counts.
pub fn hopdist(g: &Graph, root: NodeId, threads: usize) -> Vec<i64> {
    let n = g.num_nodes();
    let hops: Vec<AtomicI64> = (0..n).map(|_| AtomicI64::new(i64::MAX)).collect();
    hops[root as usize].store(0, Ordering::Relaxed);
    let mut level = 0i64;
    let changed = AtomicBool::new(true);
    while changed.swap(false, Ordering::Relaxed) {
        let hops_r = &hops;
        let changed_r = &changed;
        parallel_for(n, threads, |range| {
            for v in range {
                if hops_r[v].load(Ordering::Relaxed) != level {
                    continue;
                }
                for &t in g.out_neighbors(v as NodeId) {
                    let cell = &hops_r[t as usize];
                    if level + 1 < cell.load(Ordering::Relaxed) {
                        atomic_min_i64(cell, level + 1);
                        changed_r.store(true, Ordering::Relaxed);
                    }
                }
            }
        });
        level += 1;
    }
    hops.into_iter().map(|c| c.into_inner()).collect()
}

/// Parallel eigenvector centrality (pull + L2 normalization).
pub fn eigenvector(g: &Graph, iters: usize, threads: usize) -> Vec<f64> {
    let n = g.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let mut ev = vec![1.0 / (n as f64).sqrt(); n];
    let mut nxt = vec![0.0f64; n];
    for _ in 0..iters {
        {
            let ev_r = &ev;
            parallel_map_into(&mut nxt, threads, |v| {
                g.in_neighbors(v as NodeId)
                    .iter()
                    .map(|&t| ev_r[t as usize])
                    .sum()
            });
        }
        let norm: f64 = nxt.iter().map(|x| x * x).sum::<f64>().sqrt();
        let inv = if norm > 0.0 { 1.0 / norm } else { 0.0 };
        for (e, &v) in ev.iter_mut().zip(&nxt) {
            *e = v * inv;
        }
    }
    ev
}

/// Parallel k-core peeling (same degree convention as [`crate::seq::kcore`]).
pub fn kcore(g: &Graph, threads: usize) -> (i64, Vec<i64>) {
    let n = g.num_nodes();
    let deg: Vec<AtomicI64> = (0..n as NodeId)
        .map(|v| AtomicI64::new((g.in_degree(v) + g.out_degree(v)) as i64))
        .collect();
    let alive: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(true)).collect();
    let mut core = vec![0i64; n];
    let mut remaining = n;
    let mut max_core = 0i64;
    let mut k = 1i64;
    while remaining > 0 {
        loop {
            let dying: Vec<usize> = (0..n)
                .filter(|&v| alive[v].load(Ordering::Relaxed) && deg[v].load(Ordering::Relaxed) < k)
                .collect();
            if dying.is_empty() {
                break;
            }
            for &v in &dying {
                alive[v].store(false, Ordering::Relaxed);
                core[v] = k - 1;
                remaining -= 1;
            }
            let deg_r = &deg;
            parallel_for(dying.len(), threads, |range| {
                for i in range {
                    let v = dying[i] as NodeId;
                    for &t in g.out_neighbors(v).iter().chain(g.in_neighbors(v)) {
                        deg_r[t as usize].fetch_sub(1, Ordering::Relaxed);
                    }
                }
            });
        }
        if remaining == 0 {
            max_core = k - 1;
            break;
        }
        max_core = k;
        k += 1;
    }
    for v in 0..n {
        if alive[v].load(Ordering::Relaxed) {
            core[v] = max_core;
        }
    }
    (max_core, core)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use pgxd_graph::generate;

    fn skewed() -> Graph {
        generate::rmat(8, 5, generate::RmatParams::skewed(), 81)
    }

    #[test]
    fn parallel_for_covers_range() {
        let hits: Vec<AtomicI64> = (0..100).map(|_| AtomicI64::new(0)).collect();
        parallel_for(100, 4, |range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_empty_and_single() {
        parallel_for(0, 4, |r| assert!(r.is_empty()));
        let hit = AtomicI64::new(0);
        parallel_for(1, 8, |r| {
            hit.fetch_add(r.len() as i64, Ordering::Relaxed);
        });
        assert_eq!(hit.into_inner(), 1);
    }

    #[test]
    fn edge_iteration_deterministic() {
        let g = skewed();
        let a = edge_iteration(&g, 1);
        let b = edge_iteration(&g, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn pagerank_variants_match_seq() {
        let g = skewed();
        let reference = seq::pagerank(&g, 0.85, 15);
        let pull = pagerank_pull(&g, 0.85, 15, 3);
        let push = pagerank_push(&g, 0.85, 15, 3);
        for ((r, a), b) in reference.iter().zip(&pull).zip(&push) {
            assert!((r - a).abs() < 1e-9);
            assert!((r - b).abs() < 1e-9);
        }
    }

    #[test]
    fn approx_close_to_exact() {
        let g = skewed();
        let exact = seq::pagerank(&g, 0.85, 60);
        let (approx, iters) = pagerank_approx(&g, 0.85, 1e-10, 3);
        assert!(iters > 1);
        for (e, a) in exact.iter().zip(&approx) {
            assert!((e - a).abs() < 1e-5, "{e} vs {a}");
        }
    }

    #[test]
    fn wcc_matches_seq() {
        let g = skewed();
        assert_eq!(wcc(&g, 3), seq::wcc(&g));
    }

    #[test]
    fn sssp_matches_seq() {
        let g = skewed().with_uniform_weights(1.0, 5.0, 3);
        let a = sssp(&g, 0, 3);
        let b = seq::sssp(&g, 0);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9 || (x.is_infinite() && y.is_infinite()));
        }
    }

    #[test]
    fn hopdist_matches_seq() {
        let g = skewed();
        assert_eq!(hopdist(&g, 0, 3), seq::bfs(&g, 0));
    }

    #[test]
    fn eigenvector_matches_seq() {
        let g = skewed();
        let a = eigenvector(&g, 10, 3);
        let b = seq::eigenvector(&g, 10);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn kcore_matches_seq() {
        let g = skewed();
        let (ka, ca) = kcore(&g, 3);
        let (kb, cb) = seq::kcore(&g);
        assert_eq!(ka, kb);
        assert_eq!(ca, cb);
    }
}
