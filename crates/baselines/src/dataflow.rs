//! A GraphX-class comparator engine ("GX" in Table 3): the same vertex
//! programs as [`crate::gas`], executed through a materialize-shuffle
//! dataflow per superstep, the way GraphX lowers Pregel onto Spark:
//!
//! 1. **triplet materialization** — an owned record is built for every
//!    edge whose source is scheduled (src, dst, message), like GraphX's
//!    `EdgeTriplet` RDD;
//! 2. **shuffle** — the records are sorted by destination (the repartition
//!    Spark pays between map and reduce stages);
//! 3. **reduce** — sorted runs are folded with the combiner;
//! 4. **apply** — vertex states are updated next superstep.
//!
//! The extra full materialization and sort per superstep is what puts this
//! engine an order of magnitude behind the GAS engine, matching the
//! GL-vs-GX gap in Figure 3.

use crate::gas::VertexProgram;
use pgxd_graph::{Graph, NodeId};

/// One materialized edge triplet (GraphX's `EdgeTriplet`, reduced to what
/// the message needs).
struct Triplet<M> {
    dst: u32,
    msg: M,
}

/// Runs supersteps until quiescence (see [`crate::gas::run_until_quiescent`]).
pub fn run_until_quiescent<P: VertexProgram>(
    g: &Graph,
    machines: usize,
    program: &P,
    states: &mut [P::State],
    scheduled: Vec<bool>,
    max_steps: usize,
) -> usize {
    run_internal(g, machines, program, states, scheduled, max_steps, false)
}

/// Runs exactly `steps` supersteps with every vertex scheduled.
pub fn run_fixed<P: VertexProgram>(
    g: &Graph,
    machines: usize,
    program: &P,
    states: &mut [P::State],
    steps: usize,
) -> usize {
    let scheduled = vec![true; g.num_nodes()];
    run_internal(g, machines, program, states, scheduled, steps, true)
}

fn run_internal<P: VertexProgram>(
    g: &Graph,
    machines: usize,
    program: &P,
    states: &mut [P::State],
    mut scheduled: Vec<bool>,
    max_steps: usize,
    always_all: bool,
) -> usize {
    let n = g.num_nodes();
    assert_eq!(states.len(), n);
    let machines = machines.max(1);
    let mut msgs: Vec<Option<P::Msg>> = (0..n).map(|_| None).collect();
    let mut steps = 0usize;

    while steps < max_steps {
        if !always_all && !scheduled.iter().any(|&s| s) && msgs.iter().all(|m| m.is_none()) {
            break;
        }
        steps += 1;

        // --- compute (map stage): emitted messages per vertex ---
        let emitted: Vec<Option<P::Msg>> = {
            let msgs_r = &msgs;
            let scheduled_r = &scheduled;
            let mut out: Vec<Option<P::Msg>> = (0..n).map(|_| None).collect();
            std::thread::scope(|s| {
                let mut rest_state = &mut *states;
                let mut rest_out = &mut out[..];
                for m in 0..machines {
                    let lo = n * m / machines;
                    let hi = n * (m + 1) / machines;
                    let (chunk_s, rs) = rest_state.split_at_mut(hi - lo);
                    rest_state = rs;
                    let (chunk_o, ro) = rest_out.split_at_mut(hi - lo);
                    rest_out = ro;
                    s.spawn(move || {
                        for (i, v) in (lo..hi).enumerate() {
                            let incoming = msgs_r[v];
                            if !(always_all || scheduled_r[v] || incoming.is_some()) {
                                continue;
                            }
                            chunk_o[i] =
                                program.compute(v as NodeId, &mut chunk_s[i], incoming, g, steps);
                        }
                    });
                }
            });
            out
        };

        // --- triplet materialization: one *individually boxed* record per
        // live edge, the per-record object cost a JVM dataflow pays ---
        let mut triplets: Vec<Box<Triplet<P::Msg>>> = Vec::new();
        {
            let parts: Vec<Vec<Box<Triplet<P::Msg>>>> = std::thread::scope(|s| {
                let emitted_r = &emitted;
                (0..machines)
                    .map(|m| {
                        let lo = n * m / machines;
                        let hi = n * (m + 1) / machines;
                        s.spawn(move || {
                            let mut part = Vec::new();
                            for (v, slot) in emitted_r.iter().enumerate().take(hi).skip(lo) {
                                if let Some(msg) = *slot {
                                    for &t in g.out_neighbors(v as NodeId) {
                                        part.push(Box::new(Triplet { dst: t, msg }));
                                    }
                                    if program.both_directions() {
                                        for &t in g.in_neighbors(v as NodeId) {
                                            part.push(Box::new(Triplet { dst: t, msg }));
                                        }
                                    }
                                }
                            }
                            part
                        })
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect()
            });
            for p in parts {
                triplets.extend(p);
            }
        }

        // --- shuffle: sort by destination (the Spark repartition) ---
        triplets.sort_by_key(|t| t.dst);

        // --- reduce: fold sorted runs with the combiner ---
        let mut next_msgs: Vec<Option<P::Msg>> = (0..n).map(|_| None).collect();
        let mut i = 0usize;
        while i < triplets.len() {
            let dst = triplets[i].dst;
            let mut acc = triplets[i].msg;
            i += 1;
            while i < triplets.len() && triplets[i].dst == dst {
                acc = P::combine(acc, triplets[i].msg);
                i += 1;
            }
            next_msgs[dst as usize] = Some(acc);
        }

        msgs = next_msgs;
        scheduled.iter_mut().for_each(|s| *s = false);
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgxd_graph::generate;

    struct MinLabel;
    impl VertexProgram for MinLabel {
        type State = u32;
        type Msg = u32;
        fn combine(a: u32, b: u32) -> u32 {
            a.min(b)
        }
        fn both_directions(&self) -> bool {
            true
        }
        fn compute(
            &self,
            _v: NodeId,
            comp: &mut u32,
            incoming: Option<u32>,
            _g: &Graph,
            _step: usize,
        ) -> Option<u32> {
            match incoming {
                None => Some(*comp),
                Some(m) if m < *comp => {
                    *comp = m;
                    Some(m)
                }
                Some(_) => None,
            }
        }
    }

    #[test]
    fn dataflow_matches_gas_engine() {
        let g = generate::rmat(7, 3, generate::RmatParams::skewed(), 111);
        let n = g.num_nodes();
        let mut a: Vec<u32> = (0..n as u32).collect();
        let mut b: Vec<u32> = (0..n as u32).collect();
        crate::gas::run_until_quiescent(&g, 3, &MinLabel, &mut a, vec![true; n], 10_000);
        run_until_quiescent(&g, 3, &MinLabel, &mut b, vec![true; n], 10_000);
        assert_eq!(a, b);
    }

    #[test]
    fn quiescence_reached() {
        let g = generate::ring(10);
        let mut states: Vec<u32> = (0..10).collect();
        let steps = run_until_quiescent(&g, 2, &MinLabel, &mut states, vec![true; 10], 1000);
        assert!(steps < 1000);
        assert!(states.iter().all(|&c| c == 0));
    }
}
