//! Sequential reference implementations — ground truth for every engine's
//! tests. Written for clarity, not speed.

use pgxd_graph::{Graph, NodeId};
use std::collections::VecDeque;

/// Exact PageRank by power iteration; mirrors the paper's kernel
/// (`n.PR_nxt += t.PR / t.degree()` over in-neighbors).
pub fn pagerank(g: &Graph, damping: f64, iters: usize) -> Vec<f64> {
    let n = g.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let base = (1.0 - damping) / n as f64;
    let mut pr = vec![1.0 / n as f64; n];
    let mut nxt = vec![0.0f64; n];
    for _ in 0..iters {
        for v in 0..n as NodeId {
            let mut sum = 0.0;
            for &t in g.in_neighbors(v) {
                let d = g.out_degree(t);
                if d > 0 {
                    sum += pr[t as usize] / d as f64;
                }
            }
            nxt[v as usize] = base + damping * sum;
        }
        std::mem::swap(&mut pr, &mut nxt);
    }
    pr
}

/// Weakly connected components: BFS over the union of both directions.
/// Returns the smallest member id per component, matching the label the
/// propagation algorithms converge to.
pub fn wcc(g: &Graph) -> Vec<u32> {
    let n = g.num_nodes();
    let mut comp = vec![u32::MAX; n];
    for start in 0..n as NodeId {
        if comp[start as usize] != u32::MAX {
            continue;
        }
        comp[start as usize] = start;
        let mut q = VecDeque::from([start]);
        while let Some(v) = q.pop_front() {
            for &t in g.out_neighbors(v).iter().chain(g.in_neighbors(v)) {
                if comp[t as usize] == u32::MAX {
                    comp[t as usize] = start;
                    q.push_back(t);
                }
            }
        }
    }
    comp
}

/// Bellman-Ford shortest paths from `root` along out-edges.
pub fn sssp(g: &Graph, root: NodeId) -> Vec<f64> {
    let n = g.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    dist[root as usize] = 0.0;
    let mut changed = true;
    while changed {
        changed = false;
        for v in 0..n as NodeId {
            if dist[v as usize].is_finite() {
                for (k, &t) in g.out_neighbors(v).iter().enumerate() {
                    let e = g.out_csr().edge_start(v) + k;
                    let cand = dist[v as usize] + g.weight(e);
                    if cand < dist[t as usize] {
                        dist[t as usize] = cand;
                        changed = true;
                    }
                }
            }
        }
    }
    dist
}

/// Breadth-first hop counts from `root` along out-edges; `i64::MAX` for
/// unreachable vertices.
pub fn bfs(g: &Graph, root: NodeId) -> Vec<i64> {
    let n = g.num_nodes();
    let mut hops = vec![i64::MAX; n];
    hops[root as usize] = 0;
    let mut q = VecDeque::from([root]);
    while let Some(v) = q.pop_front() {
        for &t in g.out_neighbors(v) {
            if hops[t as usize] == i64::MAX {
                hops[t as usize] = hops[v as usize] + 1;
                q.push_back(t);
            }
        }
    }
    hops
}

/// Eigenvector centrality by power iteration with L2 normalization,
/// pulling over in-edges. Same step structure as the distributed version
/// so fixed-iteration comparisons are exact.
pub fn eigenvector(g: &Graph, iters: usize) -> Vec<f64> {
    let n = g.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let mut ev = vec![1.0 / (n as f64).sqrt(); n];
    let mut nxt = vec![0.0f64; n];
    for _ in 0..iters {
        for v in 0..n as NodeId {
            nxt[v as usize] = g.in_neighbors(v).iter().map(|&t| ev[t as usize]).sum();
        }
        let norm: f64 = nxt.iter().map(|x| x * x).sum::<f64>().sqrt();
        let inv = if norm > 0.0 { 1.0 / norm } else { 0.0 };
        for v in 0..n {
            ev[v] = nxt[v] * inv;
            nxt[v] = 0.0;
        }
    }
    ev
}

/// K-core peeling with the degree convention shared by all engines in this
/// workspace: a vertex's degree counts its directed in-edges plus
/// out-edges. Returns `(max_core, core_number_per_vertex)`.
pub fn kcore(g: &Graph) -> (i64, Vec<i64>) {
    let n = g.num_nodes();
    let mut deg: Vec<i64> = (0..n as NodeId)
        .map(|v| (g.in_degree(v) + g.out_degree(v)) as i64)
        .collect();
    let mut alive = vec![true; n];
    let mut core = vec![0i64; n];
    let mut max_core = 0i64;
    let mut remaining = n;
    let mut k = 1i64;
    while remaining > 0 {
        loop {
            let dying: Vec<usize> = (0..n).filter(|&v| alive[v] && deg[v] < k).collect();
            if dying.is_empty() {
                break;
            }
            for &v in &dying {
                alive[v] = false;
                core[v] = k - 1;
                remaining -= 1;
                for &t in g
                    .out_neighbors(v as NodeId)
                    .iter()
                    .chain(g.in_neighbors(v as NodeId))
                {
                    deg[t as usize] -= 1;
                }
            }
        }
        if remaining == 0 {
            max_core = k - 1;
            break;
        }
        max_core = k;
        k += 1;
    }
    for v in 0..n {
        if alive[v] {
            core[v] = max_core;
        }
    }
    (max_core, core)
}

/// Brandes' betweenness centrality (unnormalized, directed, all sources).
/// Parallel edges count as distinct shortest paths, matching the
/// distributed implementation's per-edge semantics.
pub fn betweenness(g: &Graph) -> Vec<f64> {
    let n = g.num_nodes();
    let mut bc = vec![0.0f64; n];
    for s in 0..n as NodeId {
        // Forward BFS with path counting.
        let mut dist = vec![i64::MAX; n];
        let mut sigma = vec![0.0f64; n];
        let mut order: Vec<NodeId> = Vec::new();
        dist[s as usize] = 0;
        sigma[s as usize] = 1.0;
        let mut q = VecDeque::from([s]);
        while let Some(v) = q.pop_front() {
            order.push(v);
            for &w in g.out_neighbors(v) {
                if dist[w as usize] == i64::MAX {
                    dist[w as usize] = dist[v as usize] + 1;
                    q.push_back(w);
                }
                if dist[w as usize] == dist[v as usize] + 1 {
                    sigma[w as usize] += sigma[v as usize];
                }
            }
        }
        // Backward dependency accumulation.
        let mut delta = vec![0.0f64; n];
        for &v in order.iter().rev() {
            for &w in g.out_neighbors(v) {
                if dist[w as usize] == dist[v as usize] + 1 && sigma[w as usize] > 0.0 {
                    delta[v as usize] +=
                        sigma[v as usize] / sigma[w as usize] * (1.0 + delta[w as usize]);
                }
            }
            if v != s {
                bc[v as usize] += delta[v as usize];
            }
        }
    }
    bc
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgxd_graph::{builder::graph_from_edges, generate};

    #[test]
    fn pagerank_uniform_on_ring() {
        let g = generate::ring(10);
        let pr = pagerank(&g, 0.85, 50);
        for &p in &pr {
            assert!((p - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn pagerank_prefers_in_hub() {
        // All spokes point at vertex 0; 0 points at 1.
        let g = graph_from_edges(5, vec![(1, 0), (2, 0), (3, 0), (4, 0), (0, 1)]);
        let pr = pagerank(&g, 0.85, 50);
        assert!(pr[0] > pr[2]);
        assert!(pr[1] > pr[2], "vertex 1 inherits hub mass");
    }

    #[test]
    fn wcc_components() {
        let g = graph_from_edges(6, vec![(0, 1), (2, 1), (4, 5)]);
        let c = wcc(&g);
        assert_eq!(c[0], c[1]);
        assert_eq!(c[1], c[2]);
        assert_eq!(c[4], c[5]);
        assert_ne!(c[0], c[4]);
        assert_eq!(c[3], 3);
    }

    #[test]
    fn sssp_simple() {
        let g = generate::path(4);
        assert_eq!(sssp(&g, 0), vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn bfs_tree() {
        let g = generate::binary_tree(7);
        assert_eq!(bfs(&g, 0), vec![0, 1, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn eigenvector_normalized() {
        let g = generate::complete(6);
        let ev = eigenvector(&g, 30);
        let norm: f64 = ev.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn kcore_complete() {
        let (k, cores) = kcore(&generate::complete(5));
        assert_eq!(k, 8);
        assert!(cores.iter().all(|&c| c == 8));
    }

    #[test]
    fn betweenness_path() {
        let g = generate::path(4);
        let bc = betweenness(&g);
        // Through 1: (0,2),(0,3); through 2: (0,3),(1,3).
        assert_eq!(bc, vec![0.0, 2.0, 2.0, 0.0]);
    }

    #[test]
    fn kcore_ring() {
        let (k, _) = kcore(&generate::ring(9));
        assert_eq!(k, 2);
    }
}
