//! A GraphLab-class synchronous vertex-program engine ("GL" in Table 3).
//!
//! Faithful to the overhead profile the paper attributes to GraphLab 2.1's
//! synchronous engine rather than to its exact implementation:
//!
//! * **push-only**: a vertex can only send a value to its neighbors — the
//!   programming-model limitation §2 discusses;
//! * **per-edge message records**: every edge of every scheduled vertex
//!   appends an individual `(dst, msg)` record to a per-destination vector
//!   (no byte-level batching into large wire buffers);
//! * **combiner pass**: received records are folded into one message per
//!   vertex in a separate pass with random access;
//! * **per-superstep scheduling**: machine threads are spawned and joined
//!   every superstep (the framework/task-scheduling overhead of §2).
//!
//! The engine is *correct* — every comparator number in the harness is
//! validated against `seq` — it is just built the way the slower class of
//! systems is built.

use pgxd_graph::{Graph, NodeId};

/// A synchronous vertex program (Pregel/GraphLab-sync style).
pub trait VertexProgram: Sync {
    /// Per-vertex mutable state.
    type State: Send + Sync;
    /// Message value (a combiner keeps one per destination).
    type Msg: Copy + Send + Sync + 'static;

    /// Associative combiner applied to concurrent messages.
    fn combine(a: Self::Msg, b: Self::Msg) -> Self::Msg;

    /// Whether messages flow along out-edges only, or both directions
    /// (WCC/KCore treat the graph as undirected).
    fn both_directions(&self) -> bool {
        false
    }

    /// Computes one scheduled vertex: consumes the combined incoming
    /// message (if any) and optionally emits a message broadcast to the
    /// vertex's neighbors. Returning `None` sends nothing. `step` is the
    /// 1-based superstep number (programs like exact PageRank must not
    /// apply an update during the announce round).
    fn compute(
        &self,
        v: NodeId,
        state: &mut Self::State,
        incoming: Option<Self::Msg>,
        graph: &Graph,
        step: usize,
    ) -> Option<Self::Msg>;
}

/// Contiguous equal-vertex partitioning — deliberately the naive scheme
/// (§2: "naive vertex partitioning may result in severe workload imbalance
/// between machines").
fn machine_ranges(n: usize, machines: usize) -> Vec<std::ops::Range<usize>> {
    (0..machines)
        .map(|m| (n * m / machines)..(n * (m + 1) / machines))
        .collect()
}

/// Runs supersteps until no messages are produced (quiescence), starting
/// from `scheduled`. Returns the executed superstep count.
pub fn run_until_quiescent<P: VertexProgram>(
    g: &Graph,
    machines: usize,
    program: &P,
    states: &mut [P::State],
    scheduled: Vec<bool>,
    max_steps: usize,
) -> usize {
    run_internal(g, machines, program, states, scheduled, max_steps, false)
}

/// Runs exactly `steps` supersteps with every vertex scheduled each step
/// (the exact-PageRank / eigenvector pattern).
pub fn run_fixed<P: VertexProgram>(
    g: &Graph,
    machines: usize,
    program: &P,
    states: &mut [P::State],
    steps: usize,
) -> usize {
    let scheduled = vec![true; g.num_nodes()];
    run_internal(g, machines, program, states, scheduled, steps, true)
}

fn run_internal<P: VertexProgram>(
    g: &Graph,
    machines: usize,
    program: &P,
    states: &mut [P::State],
    mut scheduled: Vec<bool>,
    max_steps: usize,
    always_all: bool,
) -> usize {
    let n = g.num_nodes();
    assert_eq!(states.len(), n);
    let machines = machines.max(1);
    let ranges = machine_ranges(n, machines);
    let mut msgs: Vec<Option<P::Msg>> = (0..n).map(|_| None).collect();
    let mut steps = 0usize;

    while steps < max_steps {
        if !always_all && !scheduled.iter().any(|&s| s) && msgs.iter().all(|m| m.is_none()) {
            break;
        }
        steps += 1;

        // --- compute + scatter: one thread per machine, spawned fresh
        // each superstep (framework scheduling overhead). Every (dst, msg)
        // record is sent through the destination machine's channel
        // individually — the per-element marshalling + shared-buffer cost
        // real GraphLab pays on its send path.
        type Inboxes<M> = (
            Vec<crossbeam::channel::Sender<(u32, M)>>,
            Vec<crossbeam::channel::Receiver<(u32, M)>>,
        );
        let (inbox_tx, inbox_rx): Inboxes<P::Msg> = (0..machines)
            .map(|_| crossbeam::channel::unbounded())
            .unzip();
        {
            let msgs_r = &msgs;
            let scheduled_r = &scheduled;
            let ranges_r = &ranges;
            let inbox_tx_r = &inbox_tx;
            std::thread::scope(|s| {
                let mut rest = &mut *states;
                for m in 0..machines {
                    let range = ranges_r[m].clone();
                    let (chunk, r) = rest.split_at_mut(range.len());
                    rest = r;
                    s.spawn(move || {
                        let owner_of = |t: u32| -> usize {
                            let guess = (machines * t as usize / n.max(1)).min(machines - 1);
                            if ranges_r[guess].contains(&(t as usize)) {
                                guess
                            } else {
                                ranges_r
                                    .iter()
                                    .position(|r| r.contains(&(t as usize)))
                                    .unwrap()
                            }
                        };
                        for (i, v) in range.clone().enumerate() {
                            let incoming = msgs_r[v];
                            if !(always_all || scheduled_r[v] || incoming.is_some()) {
                                continue;
                            }
                            let out =
                                program.compute(v as NodeId, &mut chunk[i], incoming, g, steps);
                            if let Some(msg) = out {
                                for &t in g.out_neighbors(v as NodeId) {
                                    let _ = inbox_tx_r[owner_of(t)].send((t, msg));
                                }
                                if program.both_directions() {
                                    for &t in g.in_neighbors(v as NodeId) {
                                        let _ = inbox_tx_r[owner_of(t)].send((t, msg));
                                    }
                                }
                            }
                        }
                    });
                }
            });
        }
        drop(inbox_tx);

        // --- exchange + combine: each machine folds the records destined
        // for its range (second parallel pass, random access) ---
        let mut next_msgs: Vec<Option<P::Msg>> = (0..n).map(|_| None).collect();
        {
            std::thread::scope(|s| {
                let mut rest = &mut next_msgs[..];
                for (m, range) in ranges.iter().enumerate() {
                    let (chunk, r) = rest.split_at_mut(range.len());
                    rest = r;
                    let base = range.start;
                    let rx = inbox_rx[m].clone();
                    s.spawn(move || {
                        while let Ok((t, msg)) = rx.try_recv() {
                            let slot = &mut chunk[t as usize - base];
                            *slot = Some(match *slot {
                                None => msg,
                                Some(prev) => P::combine(prev, msg),
                            });
                        }
                    });
                }
            });
        }

        msgs = next_msgs;
        // After the first superstep only message-driven scheduling remains.
        scheduled.iter_mut().for_each(|s| *s = false);
    }
    steps
}

/// GL-flavored edge-iteration probe for Figure 5a: one superstep of a
/// program that touches every edge through the engine's scatter path.
pub fn edge_iteration(g: &Graph, machines: usize) -> usize {
    struct Touch;
    impl VertexProgram for Touch {
        type State = ();
        type Msg = u32;
        fn combine(a: u32, b: u32) -> u32 {
            a.wrapping_add(b)
        }
        fn compute(
            &self,
            v: NodeId,
            _s: &mut (),
            _in: Option<u32>,
            _g: &Graph,
            _step: usize,
        ) -> Option<u32> {
            Some(v)
        }
    }
    let mut states = vec![(); g.num_nodes()];
    run_fixed(g, machines, &Touch, &mut states, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgxd_graph::generate;

    /// Min-label propagation as a vertex program (WCC core loop).
    struct MinLabel;
    impl VertexProgram for MinLabel {
        type State = u32;
        type Msg = u32;
        fn combine(a: u32, b: u32) -> u32 {
            a.min(b)
        }
        fn both_directions(&self) -> bool {
            true
        }
        fn compute(
            &self,
            _v: NodeId,
            state: &mut u32,
            incoming: Option<u32>,
            _g: &Graph,
            _step: usize,
        ) -> Option<u32> {
            match incoming {
                None => Some(*state), // first round: announce
                Some(m) if m < *state => {
                    *state = m;
                    Some(m)
                }
                Some(_) => None,
            }
        }
    }

    #[test]
    fn min_label_converges_on_ring() {
        let g = generate::ring(12);
        let mut states: Vec<u32> = (0..12).collect();
        let steps = run_until_quiescent(&g, 3, &MinLabel, &mut states, vec![true; 12], 100);
        assert!(steps > 1 && steps < 100);
        assert!(states.iter().all(|&c| c == 0));
    }

    #[test]
    fn quiescence_on_empty_graph() {
        let g = pgxd_graph::builder::graph_from_edges(4, vec![]);
        let mut states: Vec<u32> = (0..4).collect();
        let steps = run_until_quiescent(&g, 2, &MinLabel, &mut states, vec![true; 4], 100);
        // One round of announcements into the void, then silence.
        assert!(steps <= 2);
        assert_eq!(states, vec![0, 1, 2, 3]);
    }

    #[test]
    fn fixed_steps_run_exactly() {
        let g = generate::ring(8);
        let mut states = vec![0u32; 8];
        struct Count;
        impl VertexProgram for Count {
            type State = u32;
            type Msg = u32;
            fn combine(a: u32, b: u32) -> u32 {
                a + b
            }
            fn compute(
                &self,
                _v: NodeId,
                s: &mut u32,
                _in: Option<u32>,
                _g: &Graph,
                _step: usize,
            ) -> Option<u32> {
                *s += 1;
                None
            }
        }
        let steps = run_fixed(&g, 2, &Count, &mut states, 5);
        assert_eq!(steps, 5);
        assert!(states.iter().all(|&s| s == 5));
    }

    #[test]
    fn edge_iteration_runs() {
        let g = generate::rmat(7, 4, generate::RmatParams::skewed(), 91);
        assert_eq!(edge_iteration(&g, 2), 1);
    }

    #[test]
    fn single_machine_equals_multi() {
        let g = generate::rmat(7, 3, generate::RmatParams::skewed(), 92);
        let n = g.num_nodes();
        let mut s1: Vec<u32> = (0..n as u32).collect();
        let mut s4: Vec<u32> = (0..n as u32).collect();
        run_until_quiescent(&g, 1, &MinLabel, &mut s1, vec![true; n], 1000);
        run_until_quiescent(&g, 4, &MinLabel, &mut s4, vec![true; n], 1000);
        assert_eq!(s1, s4);
    }
}
