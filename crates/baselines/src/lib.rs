//! Comparator systems for the PGX.D evaluation (§5.2).
//!
//! * [`seq`] — plain sequential reference implementations, used as ground
//!   truth by the test suites of every other crate.
//! * [`sa`] — the paper's "SA" baseline: standalone single-machine
//!   implementations "using direct CSR arrays and OpenMP parallel loops",
//!   here hand-rolled parallel loops over scoped threads. No framework
//!   overhead at all; the bar PGX.D must approach.
//! * [`gas`] — a GraphLab-class synchronous vertex-program engine
//!   (push-only messages, per-edge message records, per-superstep thread
//!   scheduling, combiner pass) standing in for GraphLab 2.1.
//! * [`dataflow`] — a GraphX-class engine executing the same vertex
//!   programs through materialized edge-triplet collections and a sort
//!   shuffle per superstep, standing in for Spark/GraphX.
//! * [`programs`] — the Table 2 algorithm suite as vertex programs, shared
//!   by both comparator engines.
//!
//! DESIGN.md documents why these substitutions preserve the performance
//! *classes* the paper compares against.

pub mod dataflow;
pub mod gas;
pub mod programs;
pub mod sa;
pub mod seq;
