//! The Table 2 algorithm suite as vertex programs, shared by the
//! GraphLab-class ([`crate::gas`]) and GraphX-class ([`crate::dataflow`])
//! comparator engines. Only the *push* formulations exist here — these
//! frameworks "only support the data pushing communication pattern" (§2).

use crate::gas::VertexProgram;
use pgxd_graph::{Graph, NodeId};

/// Which comparator engine executes a program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Comparator {
    /// GraphLab-class engine.
    Gas,
    /// GraphX-class engine.
    Dataflow,
}

fn run_fixed<P: VertexProgram>(
    engine: Comparator,
    g: &Graph,
    machines: usize,
    p: &P,
    states: &mut [P::State],
    steps: usize,
) -> usize {
    match engine {
        Comparator::Gas => crate::gas::run_fixed(g, machines, p, states, steps),
        Comparator::Dataflow => crate::dataflow::run_fixed(g, machines, p, states, steps),
    }
}

fn run_quiescent<P: VertexProgram>(
    engine: Comparator,
    g: &Graph,
    machines: usize,
    p: &P,
    states: &mut [P::State],
    scheduled: Vec<bool>,
    max_steps: usize,
) -> usize {
    match engine {
        Comparator::Gas => {
            crate::gas::run_until_quiescent(g, machines, p, states, scheduled, max_steps)
        }
        Comparator::Dataflow => {
            crate::dataflow::run_until_quiescent(g, machines, p, states, scheduled, max_steps)
        }
    }
}

// ---------------------------------------------------------------------
// PageRank (exact, push)
// ---------------------------------------------------------------------

/// State: `(pr, incoming_sum_applied_next_round)` handled via messages.
struct PrPush {
    damping: f64,
    base: f64,
}
impl VertexProgram for PrPush {
    type State = f64;
    type Msg = f64;
    fn combine(a: f64, b: f64) -> f64 {
        a + b
    }
    fn compute(
        &self,
        v: NodeId,
        pr: &mut f64,
        incoming: Option<f64>,
        g: &Graph,
        step: usize,
    ) -> Option<f64> {
        if step > 1 {
            *pr = self.base + self.damping * incoming.unwrap_or(0.0);
        }
        let d = g.out_degree(v);
        if d > 0 {
            Some(*pr / d as f64)
        } else {
            None
        }
    }
}

/// Exact push PageRank on a comparator engine. Runs `iters + 1` supersteps
/// internally (messages land one step after they are sent).
pub fn pagerank(
    engine: Comparator,
    g: &Graph,
    machines: usize,
    damping: f64,
    iters: usize,
) -> Vec<f64> {
    let n = g.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let p = PrPush {
        damping,
        base: (1.0 - damping) / n as f64,
    };
    let mut states = vec![1.0 / n as f64; n];
    run_fixed(engine, g, machines, &p, &mut states, iters + 1);
    states
}

// ---------------------------------------------------------------------
// PageRank (approximate, delta)
// ---------------------------------------------------------------------

struct PrApprox {
    damping: f64,
    threshold: f64,
}
/// State `(pr, delta)`.
impl VertexProgram for PrApprox {
    type State = (f64, f64);
    type Msg = f64;
    fn combine(a: f64, b: f64) -> f64 {
        a + b
    }
    fn compute(
        &self,
        v: NodeId,
        state: &mut (f64, f64),
        incoming: Option<f64>,
        g: &Graph,
        _step: usize,
    ) -> Option<f64> {
        if let Some(sum) = incoming {
            let nd = self.damping * sum;
            state.0 += nd;
            state.1 = nd;
        }
        let d = g.out_degree(v);
        if state.1 >= self.threshold && d > 0 {
            Some(state.1 / d as f64)
        } else {
            None
        }
    }
}

/// Approximate (delta) PageRank on a comparator engine.
pub fn pagerank_approx(
    engine: Comparator,
    g: &Graph,
    machines: usize,
    damping: f64,
    threshold: f64,
    max_steps: usize,
) -> (Vec<f64>, usize) {
    let n = g.num_nodes();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let init = (1.0 - damping) / n as f64;
    let p = PrApprox { damping, threshold };
    let mut states = vec![(init, init); n];
    let steps = run_quiescent(
        engine,
        g,
        machines,
        &p,
        &mut states,
        vec![true; n],
        max_steps,
    );
    (states.into_iter().map(|(pr, _)| pr).collect(), steps)
}

// ---------------------------------------------------------------------
// WCC
// ---------------------------------------------------------------------

struct MinLabel;
impl VertexProgram for MinLabel {
    type State = u32;
    type Msg = u32;
    fn combine(a: u32, b: u32) -> u32 {
        a.min(b)
    }
    fn both_directions(&self) -> bool {
        true
    }
    fn compute(
        &self,
        _v: NodeId,
        comp: &mut u32,
        incoming: Option<u32>,
        _g: &Graph,
        _step: usize,
    ) -> Option<u32> {
        match incoming {
            None => Some(*comp),
            Some(m) if m < *comp => {
                *comp = m;
                Some(m)
            }
            Some(_) => None,
        }
    }
}

/// Weakly connected components on a comparator engine.
pub fn wcc(engine: Comparator, g: &Graph, machines: usize) -> Vec<u32> {
    let n = g.num_nodes();
    let mut states: Vec<u32> = (0..n as u32).collect();
    run_quiescent(
        engine,
        g,
        machines,
        &MinLabel,
        &mut states,
        vec![true; n],
        usize::MAX,
    );
    states
}

// ---------------------------------------------------------------------
// SSSP (weights live in the graph; push dist + w per edge)
// ---------------------------------------------------------------------

/// SSSP on a comparator engine. Messages carry `dist + weight` per edge,
/// so the scatter is edge-aware; each engine pays its characteristic
/// exchange cost — per-record channel sends for the GAS engine,
/// materialize-and-sort for the dataflow engine.
pub fn sssp(engine: Comparator, g: &Graph, machines: usize, root: NodeId) -> (Vec<f64>, usize) {
    let n = g.num_nodes();
    let machines = machines.max(1);
    let mut dist = vec![f64::INFINITY; n];
    dist[root as usize] = 0.0;
    let mut frontier = vec![false; n];
    frontier[root as usize] = true;
    let mut steps = 0usize;
    loop {
        steps += 1;
        let candidates: Vec<(u32, f64)> = match engine {
            Comparator::Gas => {
                // Per-record channel exchange, like the GAS superstep path.
                type Chans = (
                    Vec<crossbeam::channel::Sender<(u32, f64)>>,
                    Vec<crossbeam::channel::Receiver<(u32, f64)>>,
                );
                let (tx, rx): Chans = (0..machines)
                    .map(|_| crossbeam::channel::unbounded())
                    .unzip();
                std::thread::scope(|s| {
                    let dist_r = &dist;
                    let frontier_r = &frontier;
                    let tx_r = &tx;
                    for m in 0..machines {
                        let lo = n * m / machines;
                        let hi = n * (m + 1) / machines;
                        s.spawn(move || {
                            for v in lo..hi {
                                if !frontier_r[v] {
                                    continue;
                                }
                                for (k, &t) in g.out_neighbors(v as NodeId).iter().enumerate() {
                                    let e = g.out_csr().edge_start(v as NodeId) + k;
                                    let owner =
                                        (machines * t as usize / n.max(1)).min(machines - 1);
                                    let _ = tx_r[owner].send((t, dist_r[v] + g.weight(e)));
                                }
                            }
                        });
                    }
                });
                drop(tx);
                rx.into_iter()
                    .flat_map(|r| r.try_iter().collect::<Vec<_>>())
                    .collect()
            }
            Comparator::Dataflow => {
                // Materialize boxed candidate records, then sort by
                // destination (the shuffle).
                let mut recs: Vec<Box<(u32, f64)>> = std::thread::scope(|s| {
                    let dist_r = &dist;
                    let frontier_r = &frontier;
                    (0..machines)
                        .map(|m| {
                            let lo = n * m / machines;
                            let hi = n * (m + 1) / machines;
                            s.spawn(move || {
                                let mut out = Vec::new();
                                for v in lo..hi {
                                    if !frontier_r[v] {
                                        continue;
                                    }
                                    for (k, &t) in g.out_neighbors(v as NodeId).iter().enumerate() {
                                        let e = g.out_csr().edge_start(v as NodeId) + k;
                                        out.push(Box::new((t, dist_r[v] + g.weight(e))));
                                    }
                                }
                                out
                            })
                        })
                        .collect::<Vec<_>>()
                        .into_iter()
                        .flat_map(|h| h.join().unwrap())
                        .collect()
                });
                recs.sort_by_key(|r| r.0);
                recs.into_iter().map(|b| *b).collect()
            }
        };
        // combine + apply
        let mut any = false;
        frontier.iter_mut().for_each(|f| *f = false);
        for (t, cand) in candidates {
            if cand < dist[t as usize] {
                dist[t as usize] = cand;
                frontier[t as usize] = true;
                any = true;
            }
        }
        if !any {
            break;
        }
    }
    (dist, steps)
}

// ---------------------------------------------------------------------
// Hop Dist (BFS)
// ---------------------------------------------------------------------

struct Hop;
/// State: hop count (i64).
impl VertexProgram for Hop {
    type State = i64;
    type Msg = i64;
    fn combine(a: i64, b: i64) -> i64 {
        a.min(b)
    }
    fn compute(
        &self,
        _v: NodeId,
        hops: &mut i64,
        incoming: Option<i64>,
        _g: &Graph,
        _step: usize,
    ) -> Option<i64> {
        match incoming {
            None if *hops == 0 => Some(1), // root announces level 1
            None => None,
            Some(h) if h < *hops => {
                *hops = h;
                Some(h + 1)
            }
            Some(_) => None,
        }
    }
}

/// BFS hop counts on a comparator engine.
pub fn hopdist(engine: Comparator, g: &Graph, machines: usize, root: NodeId) -> (Vec<i64>, usize) {
    let n = g.num_nodes();
    let mut states = vec![i64::MAX; n];
    states[root as usize] = 0;
    let mut scheduled = vec![false; n];
    scheduled[root as usize] = true;
    let steps = run_quiescent(
        engine,
        g,
        machines,
        &Hop,
        &mut states,
        scheduled,
        usize::MAX,
    );
    (states, steps)
}

// ---------------------------------------------------------------------
// EigenVector centrality (push form + periodic driver normalization)
// ---------------------------------------------------------------------

/// Eigenvector centrality on a comparator engine: each superstep pushes
/// the current value along out-edges, then the driver normalizes.
pub fn eigenvector(engine: Comparator, g: &Graph, machines: usize, iters: usize) -> Vec<f64> {
    struct EvPush;
    /// State `(ev, received_sum)`.
    impl VertexProgram for EvPush {
        type State = (f64, f64);
        type Msg = f64;
        fn combine(a: f64, b: f64) -> f64 {
            a + b
        }
        fn compute(
            &self,
            _v: NodeId,
            state: &mut (f64, f64),
            incoming: Option<f64>,
            _g: &Graph,
            step: usize,
        ) -> Option<f64> {
            if step > 1 {
                state.1 = incoming.unwrap_or(0.0);
            }
            Some(state.0)
        }
    }
    let n = g.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let mut states = vec![(1.0 / (n as f64).sqrt(), 0.0); n];
    for _ in 0..iters {
        // Two supersteps move values one hop; normalization between.
        run_fixed(engine, g, machines, &EvPush, &mut states, 2);
        let norm: f64 = states.iter().map(|(_, s)| s * s).sum::<f64>().sqrt();
        let inv = if norm > 0.0 { 1.0 / norm } else { 0.0 };
        for st in states.iter_mut() {
            st.0 = st.1 * inv;
            st.1 = 0.0;
        }
    }
    states.into_iter().map(|(ev, _)| ev).collect()
}

// ---------------------------------------------------------------------
// KCore
// ---------------------------------------------------------------------

struct Peel {
    k: i64,
}
/// State `(degree, alive, core)`.
impl VertexProgram for Peel {
    type State = (i64, bool, i64);
    type Msg = i64;
    fn combine(a: i64, b: i64) -> i64 {
        a + b
    }
    fn both_directions(&self) -> bool {
        true
    }
    fn compute(
        &self,
        _v: NodeId,
        state: &mut (i64, bool, i64),
        incoming: Option<i64>,
        _g: &Graph,
        _step: usize,
    ) -> Option<i64> {
        if let Some(dec) = incoming {
            state.0 += dec; // dec is a (negative) sum of -1s
        }
        if state.1 && state.0 < self.k {
            state.1 = false;
            state.2 = self.k - 1;
            Some(-1)
        } else {
            None
        }
    }
}

/// Biggest k-core number on a comparator engine.
pub fn kcore(engine: Comparator, g: &Graph, machines: usize) -> (i64, Vec<i64>, usize) {
    let n = g.num_nodes();
    let mut states: Vec<(i64, bool, i64)> = (0..n as NodeId)
        .map(|v| ((g.in_degree(v) + g.out_degree(v)) as i64, true, 0))
        .collect();
    let mut total_steps = 0usize;
    let max_core;
    let mut k = 1i64;
    loop {
        let scheduled: Vec<bool> = states.iter().map(|s| s.1).collect();
        if !scheduled.iter().any(|&s| s) {
            max_core = k - 1;
            break;
        }
        let p = Peel { k };
        total_steps += run_quiescent(engine, g, machines, &p, &mut states, scheduled, usize::MAX);
        if states.iter().any(|s| s.1) {
            k += 1;
        } else {
            max_core = k - 1;
            break;
        }
    }
    let core: Vec<i64> = states
        .iter()
        .map(|&(_, alive, c)| if alive { max_core } else { c })
        .collect();
    (max_core, core, total_steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use pgxd_graph::generate;

    fn graph() -> Graph {
        generate::rmat(7, 4, generate::RmatParams::skewed(), 101)
    }

    #[test]
    fn gas_pagerank_matches_seq() {
        let g = graph();
        let reference = seq::pagerank(&g, 0.85, 12);
        let got = pagerank(Comparator::Gas, &g, 3, 0.85, 12);
        for (r, x) in reference.iter().zip(&got) {
            assert!((r - x).abs() < 1e-9, "{r} vs {x}");
        }
    }

    #[test]
    fn dataflow_pagerank_matches_seq() {
        let g = graph();
        let reference = seq::pagerank(&g, 0.85, 8);
        let got = pagerank(Comparator::Dataflow, &g, 2, 0.85, 8);
        for (r, x) in reference.iter().zip(&got) {
            assert!((r - x).abs() < 1e-9);
        }
    }

    #[test]
    fn gas_approx_pagerank_close() {
        let g = graph();
        let reference = seq::pagerank(&g, 0.85, 60);
        let (got, steps) = pagerank_approx(Comparator::Gas, &g, 2, 0.85, 1e-10, 10_000);
        assert!(steps < 10_000);
        for (r, x) in reference.iter().zip(&got) {
            assert!((r - x).abs() < 1e-5);
        }
    }

    #[test]
    fn wcc_matches_seq_on_both_engines() {
        let g = graph();
        let reference = seq::wcc(&g);
        assert_eq!(wcc(Comparator::Gas, &g, 3), reference);
        assert_eq!(wcc(Comparator::Dataflow, &g, 3), reference);
    }

    #[test]
    fn sssp_matches_seq() {
        let g = graph().with_uniform_weights(1.0, 4.0, 5);
        let reference = seq::sssp(&g, 0);
        let (got, _) = sssp(Comparator::Gas, &g, 2, 0);
        for (r, x) in reference.iter().zip(&got) {
            assert!((r - x).abs() < 1e-9 || (r.is_infinite() && x.is_infinite()));
        }
    }

    #[test]
    fn hopdist_matches_seq_on_both_engines() {
        let g = graph();
        let reference = seq::bfs(&g, 0);
        assert_eq!(hopdist(Comparator::Gas, &g, 2, 0).0, reference);
        assert_eq!(hopdist(Comparator::Dataflow, &g, 2, 0).0, reference);
    }

    #[test]
    fn eigenvector_matches_seq() {
        let g = graph();
        let reference = seq::eigenvector(&g, 6);
        let got = eigenvector(Comparator::Gas, &g, 2, 6);
        for (r, x) in reference.iter().zip(&got) {
            assert!((r - x).abs() < 1e-9, "{r} vs {x}");
        }
    }

    #[test]
    fn kcore_matches_seq_on_both_engines() {
        let g = graph();
        let (rk, rc) = seq::kcore(&g);
        let (gk, gc, steps) = kcore(Comparator::Gas, &g, 2);
        assert_eq!(gk, rk);
        assert_eq!(gc, rc);
        assert!(steps > rk as usize, "peeling takes many steps");
        let (dk, dc, _) = kcore(Comparator::Dataflow, &g, 2);
        assert_eq!(dk, rk);
        assert_eq!(dc, rc);
    }
}
