//! Adaptive flush control (§3.4 / Figure 8b).
//!
//! The paper picks one buffer size per experiment and shows the trade-off:
//! small buffers waste bandwidth on per-message overhead, large buffers add
//! latency while requests sit unsealed. The [`FlushController`] closes
//! that loop at run time. Workers seal a request buffer once its payload
//! would exceed the controller's *effective threshold* (never above the
//! allocated `buffer_bytes`); the controller accumulates per-destination
//! fill levels and remote-read round-trip times during a phase, and the
//! driver calls [`FlushController::retune`] between phase barriers:
//!
//! * mostly-full seals (auto-seals at capacity) → the workload is
//!   throughput-bound → grow the threshold toward `max_bytes`;
//! * mostly near-empty seals (phase-end flushes dominate) → the messages
//!   are latency-bound → shrink toward `min_bytes`;
//! * a phase whose mean round trip regressed ≥4× past the best phase seen
//!   → back off to smaller messages regardless.
//!
//! With `adaptive_flush` disabled the controller is inert: the threshold
//! is pinned to `buffer_bytes` and every recording hook is one branch.

use crate::config::AdaptiveFlushConfig;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Per-destination seal accounting (cumulative over the controller's
/// lifetime; used for reporting, not for the control loop).
#[derive(Debug, Default)]
struct DestStat {
    seals: AtomicU64,
    bytes: AtomicU64,
}

/// Shared per-machine flush-threshold controller. See the module docs.
#[derive(Debug)]
pub struct FlushController {
    enabled: bool,
    min_bytes: usize,
    max_bytes: usize,
    /// The effective flush threshold workers compare payload sizes against.
    threshold: AtomicUsize,
    epoch: Instant,
    // Phase accumulators, reset by `retune`.
    seals: AtomicU64,
    seal_bytes: AtomicU64,
    full_seals: AtomicU64,
    rtt_sum_ns: AtomicU64,
    rtt_count: AtomicU64,
    /// Best (lowest) phase-mean round trip observed so far, ns.
    best_rtt_ns: AtomicU64,
    per_dest: Vec<DestStat>,
}

impl FlushController {
    /// An inert controller pinned to `buffer_bytes` (adaptive flush off).
    pub fn fixed(buffer_bytes: usize) -> Self {
        FlushController {
            enabled: false,
            min_bytes: buffer_bytes,
            max_bytes: buffer_bytes,
            threshold: AtomicUsize::new(buffer_bytes),
            epoch: Instant::now(),
            seals: AtomicU64::new(0),
            seal_bytes: AtomicU64::new(0),
            full_seals: AtomicU64::new(0),
            rtt_sum_ns: AtomicU64::new(0),
            rtt_count: AtomicU64::new(0),
            best_rtt_ns: AtomicU64::new(u64::MAX),
            per_dest: Vec::new(),
        }
    }

    /// Builds the controller for one machine. `buffer_bytes` caps the
    /// effective threshold (buffers are still allocated at full size);
    /// the starting threshold is `max_bytes`.
    pub fn new(cfg: &AdaptiveFlushConfig, buffer_bytes: usize, machines: usize) -> Self {
        if !cfg.enabled {
            return Self::fixed(buffer_bytes);
        }
        let max = cfg.max_bytes.min(buffer_bytes);
        let min = cfg.min_bytes.min(max);
        FlushController {
            enabled: true,
            min_bytes: min,
            max_bytes: max,
            threshold: AtomicUsize::new(max),
            per_dest: (0..machines).map(|_| DestStat::default()).collect(),
            ..Self::fixed(buffer_bytes)
        }
    }

    /// Whether the control loop is live.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The current effective flush threshold, in payload bytes.
    #[inline]
    pub fn threshold(&self) -> usize {
        self.threshold.load(Ordering::Relaxed)
    }

    /// The controller's clock (ns since its creation), used by workers to
    /// stamp request send times when telemetry is off.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Records one sealed request buffer: destination, payload bytes, and
    /// whether it sealed at capacity (`full`) or at an explicit flush.
    #[inline]
    pub fn note_seal(&self, dest: usize, bytes: u64, full: bool) {
        if !self.enabled {
            return;
        }
        self.seals.fetch_add(1, Ordering::Relaxed);
        self.seal_bytes.fetch_add(bytes, Ordering::Relaxed);
        if full {
            self.full_seals.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(d) = self.per_dest.get(dest) {
            d.seals.fetch_add(1, Ordering::Relaxed);
            d.bytes.fetch_add(bytes, Ordering::Relaxed);
        }
    }

    /// Records one remote-read round trip.
    #[inline]
    pub fn note_rtt(&self, ns: u64) {
        if !self.enabled {
            return;
        }
        self.rtt_sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.rtt_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Driver-side control step, run between phase barriers. Consumes the
    /// phase accumulators and adjusts the effective threshold; returns
    /// `Some((old, new))` when the threshold moved.
    pub fn retune(&self) -> Option<(usize, usize)> {
        if !self.enabled {
            return None;
        }
        let seals = self.seals.swap(0, Ordering::Relaxed);
        let bytes = self.seal_bytes.swap(0, Ordering::Relaxed);
        let full = self.full_seals.swap(0, Ordering::Relaxed);
        let rtt_n = self.rtt_count.swap(0, Ordering::Relaxed);
        let rtt_sum = self.rtt_sum_ns.swap(0, Ordering::Relaxed);
        if seals == 0 {
            return None;
        }
        let cur = self.threshold();
        let avg_fill = bytes / seals;
        let mut next = cur;
        if full * 2 >= seals {
            // Mostly sealing at capacity: throughput-bound, grow.
            next = (cur * 2).min(self.max_bytes);
        } else if avg_fill * 4 < cur as u64 {
            // Mostly near-empty phase-end flushes: latency-bound, shrink.
            next = (cur / 2).max(self.min_bytes);
        }
        if let Some(avg) = rtt_sum.checked_div(rtt_n) {
            let best = self.best_rtt_ns.fetch_min(avg, Ordering::AcqRel);
            if best != u64::MAX && avg > 4 * best {
                // Round trips regressed badly: prefer smaller messages.
                next = (cur / 2).max(self.min_bytes);
            }
        }
        if next != cur {
            self.threshold.store(next, Ordering::Relaxed);
            Some((cur, next))
        } else {
            None
        }
    }

    /// Cumulative `(seals, bytes)` per destination, for reports.
    pub fn dest_fill_snapshot(&self) -> Vec<(u64, u64)> {
        self.per_dest
            .iter()
            .map(|d| {
                (
                    d.seals.load(Ordering::Relaxed),
                    d.bytes.load(Ordering::Relaxed),
                )
            })
            .collect()
    }

    /// The configured bounds `(min_bytes, max_bytes)` of the threshold.
    pub fn bounds(&self) -> (usize, usize) {
        (self.min_bytes, self.max_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adaptive(min: usize, max: usize, buffer: usize) -> FlushController {
        FlushController::new(
            &AdaptiveFlushConfig {
                enabled: true,
                min_bytes: min,
                max_bytes: max,
            },
            buffer,
            2,
        )
    }

    #[test]
    fn fixed_controller_is_inert() {
        let c = FlushController::fixed(4096);
        assert!(!c.enabled());
        assert_eq!(c.threshold(), 4096);
        c.note_seal(0, 100, true);
        c.note_rtt(5);
        assert_eq!(c.retune(), None);
        assert_eq!(c.threshold(), 4096);
    }

    #[test]
    fn grows_when_seals_are_full() {
        let c = adaptive(256, 4096, 65536);
        assert_eq!(c.threshold(), 4096, "starts at max");
        // Force it down first.
        for _ in 0..10 {
            c.note_seal(0, 10, false);
        }
        assert_eq!(c.retune(), Some((4096, 2048)));
        // Now mostly-full seals grow it back.
        for _ in 0..10 {
            c.note_seal(1, 2048, true);
        }
        assert_eq!(c.retune(), Some((2048, 4096)));
        // Clamped at max.
        for _ in 0..10 {
            c.note_seal(1, 4096, true);
        }
        assert_eq!(c.retune(), None);
    }

    #[test]
    fn shrinks_to_min_on_empty_flushes() {
        let c = adaptive(256, 4096, 65536);
        for _ in 0..8 {
            for _ in 0..10 {
                c.note_seal(0, 1, false);
            }
            c.retune();
        }
        assert_eq!(c.threshold(), 256, "clamped at min");
    }

    #[test]
    fn rtt_regression_forces_shrink() {
        let c = adaptive(256, 4096, 65536);
        // Healthy phase: average fill keeps the threshold where it is.
        c.note_seal(0, 2048, false);
        c.note_rtt(1_000);
        assert_eq!(c.retune(), None);
        // Regressed phase: mean RTT 10× the best seen → shrink even though
        // fill alone wouldn't have.
        c.note_seal(0, 2048, false);
        c.note_rtt(10_000);
        assert_eq!(c.retune(), Some((4096, 2048)));
    }

    #[test]
    fn max_clamped_to_buffer_bytes() {
        let c = adaptive(256, 1 << 20, 4096);
        assert_eq!(c.bounds(), (256, 4096));
        assert_eq!(c.threshold(), 4096);
    }

    #[test]
    fn dest_fill_tracked_per_destination() {
        let c = adaptive(256, 4096, 65536);
        c.note_seal(0, 100, false);
        c.note_seal(1, 300, true);
        c.note_seal(1, 50, false);
        assert_eq!(c.dest_fill_snapshot(), vec![(1, 100), (2, 350)]);
    }
}
