//! Task chunking (§3.3 "Edge Chunking").
//!
//! "The Task Manager creates chunks by edge count, thereby ensuring that
//! each chunk will contain a similar number of edges instead of similar
//! number of nodes. Consequently, workloads between cores are improved,
//! since no worker thread would iterate much more neighbors than others."
//!
//! A chunk is a contiguous range of *local* vertex indices; chunk
//! boundaries always fall between vertices, which is what guarantees the
//! paper's "all the (incoming) edges to the same (current) node are handled
//! by the same worker thread" property.

use crate::config::ChunkingMode;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A contiguous range of local vertex indices.
pub type Chunk = std::ops::Range<usize>;

/// Cuts `num_local` vertices into chunks.
///
/// * [`ChunkingMode::Node`]: fixed vertex count per chunk (`target` nodes),
///   the naive baseline of Figure 6c.
/// * [`ChunkingMode::Edge`]: cut when the cumulative edge count (as given
///   by `row_ptr`) reaches `target` edges — hubs get small chunks, sparse
///   regions get large ones.
pub fn make_chunks(
    row_ptr: &[usize],
    num_local: usize,
    mode: ChunkingMode,
    target: usize,
) -> Vec<Chunk> {
    let mut chunks = Vec::new();
    match mode {
        ChunkingMode::Node => {
            let per = target.max(1);
            let mut v = 0usize;
            while v < num_local {
                let end = (v + per).min(num_local);
                chunks.push(v..end);
                v = end;
            }
        }
        ChunkingMode::Edge => {
            let target = target.max(1);
            let mut v = 0usize;
            while v < num_local {
                let budget = row_ptr[v] + target;
                let mut end = v + 1; // always make progress, even past a hub
                while end < num_local && row_ptr[end + 1] <= budget {
                    end += 1;
                }
                chunks.push(v..end);
                v = end;
            }
        }
    }
    chunks
}

/// For [`ChunkingMode::Node`], derives a node-count target from the edge
/// target and the average degree, so both modes aim at similar chunk
/// *work* and differ only in balance.
pub fn node_target_from_edges(edge_target: usize, num_local: usize, num_edges: usize) -> usize {
    if num_local == 0 || num_edges == 0 {
        return edge_target.max(1);
    }
    let avg_deg = (num_edges as f64 / num_local as f64).max(1.0);
    ((edge_target as f64 / avg_deg) as usize).max(1)
}

/// A work-stealing-free shared chunk queue: workers grab the next chunk
/// with a single fetch-add ("Each worker grabs a chunk of tasks from the
/// task list and executes them one by one").
#[derive(Debug)]
pub struct ChunkQueue {
    chunks: Vec<Chunk>,
    next: AtomicUsize,
}

impl ChunkQueue {
    /// Wraps a chunk list.
    pub fn new(chunks: Vec<Chunk>) -> Self {
        ChunkQueue {
            chunks,
            next: AtomicUsize::new(0),
        }
    }

    /// Pops the next chunk, or `None` when exhausted.
    #[inline]
    pub fn pop(&self) -> Option<Chunk> {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        self.chunks.get(i).cloned()
    }

    /// Total chunks.
    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    /// True when the queue was created empty.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Resets the cursor so the same chunk list can be reused.
    pub fn reset(&self) {
        self.next.store(0, Ordering::Relaxed);
    }

    /// Claims every remaining chunk without returning them and reports how
    /// many were taken. This is the cooperative-cancellation fast path: a
    /// worker that observes a fired
    /// [`CancelToken`](crate::cancel::CancelToken) retires the rest of the
    /// queue unexecuted so the exact-termination counter still reaches
    /// zero and the phase ends at its normal barrier. Safe against
    /// concurrent `pop` calls — every chunk is counted exactly once.
    pub fn drain_remaining(&self) -> usize {
        let total = self.chunks.len();
        let mut claimed = self.next.load(Ordering::Relaxed);
        loop {
            if claimed >= total {
                return 0;
            }
            match self.next.compare_exchange_weak(
                claimed,
                total,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return total - claimed,
                Err(actual) => claimed = actual,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_chunks_cover_everything() {
        let row = vec![0usize; 11];
        let chunks = make_chunks(&row, 10, ChunkingMode::Node, 3);
        assert_eq!(chunks, vec![0..3, 3..6, 6..9, 9..10]);
    }

    #[test]
    fn edge_chunks_split_on_edges() {
        // Degrees: [1, 1, 10, 1, 1] → row_ptr [0,1,2,12,13,14]
        let row = vec![0, 1, 2, 12, 13, 14];
        let chunks = make_chunks(&row, 5, ChunkingMode::Edge, 4);
        // First chunk packs the two 1-degree nodes plus... budget 4 from 0:
        // nodes 0,1 fit (2 edges), node 2 would exceed → cut.
        assert_eq!(chunks[0], 0..2);
        // Hub gets its own chunk.
        assert_eq!(chunks[1], 2..3);
        // Everything covered, in order, no overlap.
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        assert_eq!(total, 5);
        assert_eq!(chunks.last().unwrap().end, 5);
    }

    #[test]
    fn edge_chunks_balanced_on_uniform() {
        let row: Vec<usize> = (0..=100).map(|i| i * 5).collect(); // degree 5 each
        let chunks = make_chunks(&row, 100, ChunkingMode::Edge, 25);
        for c in &chunks {
            let edges = row[c.end] - row[c.start];
            assert!(edges <= 25, "chunk {c:?} has {edges} edges");
        }
        assert_eq!(chunks.iter().map(|c| c.len()).sum::<usize>(), 100);
    }

    #[test]
    fn hub_larger_than_target_still_progresses() {
        let row = vec![0, 1000];
        let chunks = make_chunks(&row, 1, ChunkingMode::Edge, 10);
        assert_eq!(chunks, vec![0..1]);
    }

    #[test]
    fn empty_input() {
        assert!(make_chunks(&[0], 0, ChunkingMode::Edge, 10).is_empty());
        assert!(make_chunks(&[0], 0, ChunkingMode::Node, 10).is_empty());
    }

    #[test]
    fn node_target_derivation() {
        // 1000 edges over 100 nodes = degree 10; edge target 50 → 5 nodes.
        assert_eq!(node_target_from_edges(50, 100, 1000), 5);
        assert_eq!(node_target_from_edges(50, 0, 0), 50);
        // Degree below 1 clamps to avg 1.
        assert_eq!(node_target_from_edges(8, 100, 10), 8);
    }

    #[test]
    fn queue_pops_each_chunk_once() {
        let q = ChunkQueue::new(vec![0..2, 2..4, 4..5]);
        assert_eq!(q.len(), 3);
        let mut seen = Vec::new();
        while let Some(c) = q.pop() {
            seen.push(c);
        }
        assert_eq!(seen, vec![0..2, 2..4, 4..5]);
        assert!(q.pop().is_none());
        q.reset();
        assert_eq!(q.pop(), Some(0..2));
    }

    #[test]
    fn drain_remaining_counts_leftovers_once() {
        let q = ChunkQueue::new((0..10).map(|i| i..i + 1).collect());
        q.pop();
        q.pop();
        q.pop();
        assert_eq!(q.drain_remaining(), 7);
        assert!(q.pop().is_none(), "drained queue yields nothing");
        assert_eq!(q.drain_remaining(), 0, "second drain finds nothing");
    }

    #[test]
    fn drain_remaining_races_with_pop() {
        use std::sync::Arc;
        let q = Arc::new(ChunkQueue::new((0..1000).map(|i| i..i + 1).collect()));
        let popper = {
            let q = q.clone();
            std::thread::spawn(move || {
                let mut popped = 0usize;
                while q.pop().is_some() {
                    popped += 1;
                }
                popped
            })
        };
        let drained = q.drain_remaining();
        let popped = popper.join().unwrap();
        assert_eq!(popped + drained, 1000, "every chunk accounted exactly once");
    }

    #[test]
    fn queue_concurrent_disjoint() {
        use std::sync::Arc;
        let q = Arc::new(ChunkQueue::new((0..100).map(|i| i..i + 1).collect()));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(c) = q.pop() {
                        got.push(c.start);
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }
}
