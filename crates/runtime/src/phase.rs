//! Parallel phases and job completion detection.
//!
//! A PGX.D *job* (one parallel region of the application, §4.2) executes as
//! a short sequence of phases, each ending at a cluster-wide barrier:
//!
//! 1. [`GhostPushPhase`] — only when ghosts exist and the job declares
//!    read/reduce properties: bottom-initializes ghost slots for reduced
//!    properties and broadcasts owner values for read properties.
//! 2. the main phase — defined in the `pgxd` crate, runs the user task over
//!    the chunk queue with the run-to-completion worker loop.
//! 3. [`GhostReducePhase`] — only when reduce properties are declared:
//!    sends each machine's ghost partials back to the owners.
//!
//! Completion of a phase follows §3.2 exactly: "a particular job completes
//! when the task list is empty and there are no unfinished remote
//! requests". [`JobState`] tracks both halves — a producer/chunk counter
//! and the cluster-global `pending` entry counter.

use crate::cancel::CancelToken;
use crate::machine::MachineState;
use crate::message::MsgKind;
use crate::props::{bottom_bits, PropId, ReduceOp};
use crate::stats::WorkerTiming;
use crate::telemetry::EventKind;
use crate::worker::{SideRec, WorkerComm};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Execution context handed to a phase on each worker thread.
pub struct WorkerEnv<'a> {
    /// The worker's machine.
    pub machine: &'a Arc<MachineState>,
    /// Local worker index on this machine.
    pub worker_idx: usize,
    /// The worker's communication state.
    pub comm: &'a mut WorkerComm,
}

/// One parallel phase, executed concurrently by every worker of every
/// machine; the runtime inserts a cluster-wide barrier after `execute`
/// returns on all workers.
pub trait Phase: Send + Sync {
    /// Runs this worker's share of the phase to completion.
    fn execute(&self, env: &mut WorkerEnv<'_>);
}

/// Shared completion state for one phase.
#[derive(Debug)]
pub struct JobState {
    /// Outstanding work units: chunks for main phases, producing workers
    /// for ghost phases. The phase is complete when this reaches zero *and*
    /// `pending` reaches zero.
    outstanding: AtomicUsize,
    /// The cluster-global buffered-entry counter.
    pending: Arc<AtomicI64>,
    /// Phase start, for worker timings.
    start: Instant,
    /// Per-machine, per-worker timing records (Figure 6c).
    timings: Mutex<Vec<Vec<WorkerTiming>>>,
    /// The job's cancellation token (never fires for direct callers).
    /// Workers poll it once per chunk; a fired token makes them retire the
    /// rest of the queue unexecuted, so the phase still terminates at its
    /// barrier with exact accounting.
    cancel: CancelToken,
}

impl JobState {
    /// Creates completion state for `outstanding` initial work units across
    /// a cluster of `machines` with `workers` workers each.
    pub fn new(
        outstanding: usize,
        pending: Arc<AtomicI64>,
        machines: usize,
        workers: usize,
    ) -> Arc<Self> {
        Self::with_cancel(
            outstanding,
            pending,
            machines,
            workers,
            CancelToken::never(),
        )
    }

    /// [`JobState::new`] with an explicit cancellation token — the serving
    /// layer's entry point.
    pub fn with_cancel(
        outstanding: usize,
        pending: Arc<AtomicI64>,
        machines: usize,
        workers: usize,
        cancel: CancelToken,
    ) -> Arc<Self> {
        Arc::new(JobState {
            outstanding: AtomicUsize::new(outstanding),
            pending,
            start: Instant::now(),
            timings: Mutex::new(vec![vec![WorkerTiming::default(); workers]; machines]),
            cancel,
        })
    }

    /// The job's cancellation token.
    #[inline]
    pub fn cancel(&self) -> &CancelToken {
        &self.cancel
    }

    /// Retires one work unit (a finished chunk / a finished producer).
    #[inline]
    pub fn retire(&self) {
        let prev = self.outstanding.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "retired more work units than existed");
    }

    /// Retires `n` work units at once — the cancellation path, where one
    /// worker claims every remaining chunk unexecuted.
    #[inline]
    pub fn retire_many(&self, n: usize) {
        if n == 0 {
            return;
        }
        let prev = self.outstanding.fetch_sub(n, Ordering::AcqRel);
        debug_assert!(prev >= n, "retired more work units than existed");
    }

    /// True when no work unit remains and every buffered entry has been
    /// consumed cluster-wide.
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.outstanding.load(Ordering::Acquire) == 0 && self.pending.load(Ordering::Acquire) == 0
    }

    /// Nanoseconds since the phase was created.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Records that a worker finished its local tasks.
    pub fn mark_tasks_done(&self, machine: usize, worker: usize) {
        let ns = self.elapsed_ns();
        self.timings.lock()[machine][worker].tasks_done_ns = ns;
    }

    /// Records that a worker observed global completion.
    pub fn mark_drained(&self, machine: usize, worker: usize) {
        let ns = self.elapsed_ns();
        self.timings.lock()[machine][worker].drained_ns = ns;
    }

    /// Snapshot of the timing matrix.
    pub fn timings(&self) -> Vec<Vec<WorkerTiming>> {
        self.timings.lock().clone()
    }
}

/// Drains a worker's response queue, invoking `on_value(rec, bits)` for
/// each read-response value, until the job is globally complete. Any
/// entries the callback buffers are flushed between batches.
///
/// This is the post-task half of the run-to-completion loop shared by all
/// phases; the main phase also calls [`drain_once`] opportunistically
/// between chunks.
pub fn drain_until_complete<F>(env: &mut WorkerEnv<'_>, job: &JobState, mut on_value: F)
where
    F: FnMut(&mut WorkerEnv<'_>, SideRec, u64),
{
    loop {
        let worked = drain_once(env, &mut on_value);
        if worked {
            env.comm.flush();
            continue;
        }
        if job.is_complete() {
            return;
        }
        if env.machine.health.is_aborted() {
            // The exact termination counter can never reach zero once
            // envelopes were lost: fail the in-flight continuations and
            // fall through to the phase barrier so every thread joins.
            env.comm.abort_in_flight();
            return;
        }
        std::thread::yield_now();
    }
}

/// Processes all currently queued responses; returns whether any work was
/// done. `on_value` receives each read-response value with its side
/// record; RMI responses surface with the raw response bytes re-encoded as
/// their first 8 bytes (full payload access is available to main phases
/// that pop responses themselves).
pub fn drain_once<F>(env: &mut WorkerEnv<'_>, on_value: &mut F) -> bool
where
    F: FnMut(&mut WorkerEnv<'_>, SideRec, u64),
{
    let mut worked = false;
    while let Some(resp) = env.comm.try_pop_response() {
        worked = true;
        match resp.env.kind {
            MsgKind::ReadResp => {
                for i in 0..resp.recs.len() {
                    // `read_value` maps the record through the combining
                    // entry-index table (identity when combining is off).
                    on_value(env, resp.recs[i], resp.read_value(i));
                }
            }
            MsgKind::RmiResp => {
                for (bytes, rec) in
                    crate::message::rmi_resp_entries(&resp.env.payload).zip(resp.recs.iter())
                {
                    let mut first = [0u8; 8];
                    let n = bytes.len().min(8);
                    first[..n].copy_from_slice(&bytes[..n]);
                    on_value(env, *rec, u64::from_le_bytes(first));
                }
            }
            _ => unreachable!("worker queues only receive responses"),
        }
        env.comm.finish_response(resp);
    }
    worked
}

/// Splits `0..len` into `parts` near-equal ranges and returns range `idx`.
pub fn share(len: usize, parts: usize, idx: usize) -> std::ops::Range<usize> {
    let base = len / parts;
    let extra = len % parts;
    let start = idx * base + idx.min(extra);
    let end = start + base + usize::from(idx < extra);
    start..end
}

/// Pre-synchronization of ghost copies (§3.3): "for properties that are to
/// be read in the parallel region, PGX.D copies the original values into
/// the ghost nodes prior to the execution step. For the properties that are
/// to be written (reduced), the bottom value is set to each ghost copy at
/// the beginning."
pub struct GhostPushPhase {
    /// Properties read in the upcoming region (values broadcast to ghosts).
    pub read_props: Vec<PropId>,
    /// Properties reduced in the upcoming region (ghost slots bottomed).
    pub reduce_props: Vec<(PropId, ReduceOp)>,
    /// Completion state; `outstanding` = total workers (each is a
    /// producer).
    pub job: Arc<JobState>,
}

impl Phase for GhostPushPhase {
    fn execute(&self, env: &mut WorkerEnv<'_>) {
        let m = env.machine.clone();
        let workers = m.config.workers;
        let ghosts = &m.ghosts;
        let num_local = m.graph.num_local();

        // 1. Bottom-initialize this worker's slice of ghost slots for every
        //    reduced property (plain stores; slices are disjoint).
        let slice = share(ghosts.len(), workers, env.worker_idx);
        for &(prop, op) in &self.reduce_props {
            let col = m.props.column(prop);
            let bottom = bottom_bits(col.tag(), op);
            for ord in slice.clone() {
                col.store_bits(num_local + ord, bottom);
            }
        }

        // 2. Broadcast owner values of this machine's ghosted vertices for
        //    every read property. Skipped once the job's token fired: the
        //    results will be discarded, so only the barrier handshake
        //    below still matters.
        env.comm.set_mut_kind(MsgKind::GhostSync);
        if !self.read_props.is_empty() && !ghosts.is_empty() && !self.job.cancel().is_cancelled() {
            let start = m.partition.start(m.id);
            let end = m.partition.end(m.id);
            let owned_lo = ghosts.nodes().partition_point(|&v| v < start);
            let owned_hi = ghosts.nodes().partition_point(|&v| v < end);
            let my_share = share(owned_hi - owned_lo, workers, env.worker_idx);
            m.telemetry
                .trace(env.worker_idx, EventKind::GhostPush, my_share.len() as u64);
            for k in my_share {
                let ord = (owned_lo + k) as u32;
                let v = ghosts.node_at(ord);
                let local = (v - start) as usize;
                for &prop in &self.read_props {
                    let col = m.props.column(prop);
                    let bits = col.load_bits(local);
                    // Also refresh our own ghost slot so reads through the
                    // slot (if any) see the current value.
                    col.store_bits(num_local + ord as usize, bits);
                    for dst in 0..m.config.machines as u16 {
                        if dst != m.id {
                            env.comm.push_mut(dst, prop, ReduceOp::Assign, ord, bits);
                        }
                    }
                }
            }
        }
        env.comm.flush();
        self.job.retire(); // this worker produced everything it will
        drain_until_complete(env, &self.job, |_, _, _| {
            unreachable!("ghost push issues no reads")
        });
        env.comm.set_mut_kind(MsgKind::Write);
    }
}

/// Post-reduction of ghost partials (§3.3): "the partial results from ghost
/// nodes are reduced to the original value at the end of the step."
pub struct GhostReducePhase {
    /// Properties that were reduced in the region.
    pub reduce_props: Vec<(PropId, ReduceOp)>,
    /// Completion state; `outstanding` = total workers.
    pub job: Arc<JobState>,
}

impl Phase for GhostReducePhase {
    fn execute(&self, env: &mut WorkerEnv<'_>) {
        let m = env.machine.clone();
        let workers = m.config.workers;
        let ghosts = &m.ghosts;
        let num_local = m.graph.num_local();
        let start = m.partition.start(m.id);
        let end = m.partition.end(m.id);

        env.comm.set_mut_kind(MsgKind::GhostReduce);
        // A cancelled job's partials will never be read: skip the send
        // loop and go straight to the barrier handshake.
        let my_share = if self.job.cancel().is_cancelled() {
            0..0
        } else {
            share(ghosts.len(), workers, env.worker_idx)
        };
        m.telemetry.trace(
            env.worker_idx,
            EventKind::GhostReduce,
            my_share.len() as u64,
        );
        for ord in my_share {
            let v = ghosts.node_at(ord as u32);
            if v >= start && v < end {
                continue; // we own the original; nothing to send
            }
            let owner = m.partition.owner(v);
            let owner_offset = v - m.partition.start(owner);
            for &(prop, op) in &self.reduce_props {
                let col = m.props.column(prop);
                let bits = col.load_bits(num_local + ord);
                if bits != bottom_bits(col.tag(), op) {
                    env.comm.push_mut(owner, prop, op, owner_offset, bits);
                }
            }
        }
        env.comm.flush();
        self.job.retire();
        drain_until_complete(env, &self.job, |_, _, _| {
            unreachable!("ghost reduce issues no reads")
        });
        env.comm.set_mut_kind(MsgKind::Write);
    }
}

/// A phase that crosses the *message-based* distributed barrier once; used
/// by the Figure 5b measurement and by strict-distributed mode.
pub struct DistBarrierPhase {
    /// Barrier epoch each worker waits for (workers pass epochs 0,1,2,...
    /// across successive phases; the driver supplies the next epoch).
    pub epoch: u64,
}

impl Phase for DistBarrierPhase {
    fn execute(&self, env: &mut WorkerEnv<'_>) {
        let m = env.machine;
        if m.dist_barrier.arrive_local() {
            // Last local worker notifies the coordinator (machine 0).
            let _ = m.outbox_tx.send(crate::message::Envelope {
                src: m.id,
                dst: 0,
                kind: MsgKind::BarrierArrive,
                worker: 0,
                side_id: 0,
                seq: 0,
                payload: Vec::new(),
            });
        }
        m.dist_barrier.wait_release_or_abort(self.epoch, &m.health);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn share_covers_everything() {
        for len in [0usize, 1, 7, 100] {
            for parts in [1usize, 2, 3, 8] {
                let mut total = 0;
                let mut prev_end = 0;
                for idx in 0..parts {
                    let r = share(len, parts, idx);
                    assert_eq!(r.start, prev_end);
                    prev_end = r.end;
                    total += r.len();
                }
                assert_eq!(total, len, "len={len} parts={parts}");
                assert_eq!(prev_end, len);
            }
        }
    }

    #[test]
    fn job_state_completion() {
        let pending = Arc::new(AtomicI64::new(0));
        let job = JobState::new(2, pending.clone(), 1, 1);
        assert!(!job.is_complete());
        job.retire();
        assert!(!job.is_complete());
        pending.fetch_add(1, Ordering::SeqCst);
        job.retire();
        assert!(!job.is_complete(), "pending entry blocks completion");
        pending.fetch_sub(1, Ordering::SeqCst);
        assert!(job.is_complete());
    }

    #[test]
    fn job_state_carries_cancel_token() {
        let pending = Arc::new(AtomicI64::new(0));
        let token = CancelToken::for_job(42);
        let job = JobState::with_cancel(1, pending.clone(), 1, 1, token.clone());
        assert!(!job.cancel().is_cancelled());
        token.cancel();
        assert!(job.cancel().is_cancelled());
        // Default construction never fires.
        let job = JobState::new(1, pending, 1, 1);
        assert!(!job.cancel().is_cancelled());
    }

    #[test]
    fn job_state_timings_recorded() {
        let pending = Arc::new(AtomicI64::new(0));
        let job = JobState::new(0, pending, 2, 2);
        job.mark_tasks_done(1, 0);
        job.mark_drained(1, 0);
        let t = job.timings();
        assert_eq!(t.len(), 2);
        assert!(t[1][0].drained_ns >= t[1][0].tasks_done_ns);
        assert_eq!(t[0][0].tasks_done_ns, 0);
    }
}
