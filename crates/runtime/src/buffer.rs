//! Message buffer pool (§3.4: "Fast, low-overhead implementations were
//! used for queues and buffer pools, while back-pressure mechanisms were
//! induced to avoid deadlocks").
//!
//! The pool hands out `Vec<u8>` payload buffers pre-sized to the configured
//! message size. When the quota is exhausted, `try_acquire` fails and the
//! caller is expected to drain its response queue before retrying — this is
//! the back-pressure path; `acquire_or_alloc` instead falls back to a fresh
//! allocation and bumps the `pool_exhausted` statistic, guaranteeing
//! deadlock freedom even for pathological request patterns.
//!
//! # Sharding
//!
//! The free list is split into power-of-two many lock-free bounded rings
//! (Vyukov MPMC queues) so that workers and copiers recycling buffers
//! concurrently never contend on one lock. Each caller passes a stable
//! *shard hint* (its worker/copier index); hint-less entry points derive
//! one from the current thread id. Acquisition tries the hinted shard
//! first and steals from the others only when it is empty, so in steady
//! state each thread recycles through its own ring.
//!
//! The quota is a single global *soft* budget enforced with one atomic
//! reserve-then-undo (`fetch_add` followed by a corrective `fetch_sub`
//! when the budget was already spent). This closes the window the old
//! two-lock scheme had between the quota check and the free-list pop:
//! reservation and accounting are now one linearization point.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// One slot of a [`Ring`]. The `seq` tag encodes which "lap" of the ring
/// the slot belongs to, which is what makes the scheme ABA-safe without
/// tagged pointers.
struct Slot {
    seq: AtomicUsize,
    val: UnsafeCell<MaybeUninit<Vec<u8>>>,
}

/// A bounded lock-free MPMC ring (Vyukov's array queue). Capacity is a
/// power of two; `push` fails when full, `pop` when empty. Both are
/// wait-free in the absence of contention and lock-free under it.
struct Ring {
    mask: usize,
    slots: Box<[Slot]>,
    enqueue_pos: AtomicUsize,
    dequeue_pos: AtomicUsize,
}

// Slots are only accessed by the thread that won the corresponding
// position CAS, and `Vec<u8>` is Send.
unsafe impl Send for Ring {}
unsafe impl Sync for Ring {}

impl Ring {
    fn new(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(2);
        let slots = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                val: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        Ring {
            mask: cap - 1,
            slots,
            enqueue_pos: AtomicUsize::new(0),
            dequeue_pos: AtomicUsize::new(0),
        }
    }

    fn push(&self, value: Vec<u8>) -> Result<(), Vec<u8>> {
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos as isize;
            if diff == 0 {
                match self.enqueue_pos.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // We own this slot until the seq store below.
                        unsafe { (*slot.val.get()).write(value) };
                        slot.seq.store(pos + 1, Ordering::Release);
                        return Ok(());
                    }
                    Err(p) => pos = p,
                }
            } else if diff < 0 {
                return Err(value); // full
            } else {
                pos = self.enqueue_pos.load(Ordering::Relaxed);
            }
        }
    }

    fn pop(&self) -> Option<Vec<u8>> {
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - (pos + 1) as isize;
            if diff == 0 {
                match self.dequeue_pos.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // We own this slot until the seq store below.
                        let value = unsafe { (*slot.val.get()).assume_init_read() };
                        slot.seq.store(pos + self.mask + 1, Ordering::Release);
                        return Some(value);
                    }
                    Err(p) => pos = p,
                }
            } else if diff < 0 {
                return None; // empty
            } else {
                pos = self.dequeue_pos.load(Ordering::Relaxed);
            }
        }
    }
}

impl Drop for Ring {
    fn drop(&mut self) {
        // Buffers still parked in slots must be dropped, not leaked.
        while self.pop().is_some() {}
    }
}

/// A sharded pool of reusable payload buffers with one global soft quota.
pub struct BufferPool {
    shards: Vec<Ring>,
    shard_mask: usize,
    buffer_bytes: usize,
    /// Number of buffers the pool may hand out before reporting exhaustion.
    quota: usize,
    /// Exact net quota accounting: +1 on every acquisition (including
    /// over-quota fallback allocations), −1 on every release. Signed
    /// because simulated machines recycle each other's payloads (a
    /// response buffer acquired on the responder is released into the
    /// requester's pool), so one pool can be a net donor while a peer is
    /// a net creditor; summed over a quiescent cluster the counters
    /// cancel to exactly the number of in-flight payload buffers — zero.
    outstanding: AtomicI64,
    exhausted_events: AtomicU64,
}

impl BufferPool {
    /// Creates a pool of `quota` buffers of `buffer_bytes` capacity each
    /// with an automatically chosen shard count. Buffers are allocated
    /// lazily on first acquisition.
    pub fn new(quota: usize, buffer_bytes: usize) -> Self {
        Self::with_shards(quota, buffer_bytes, quota.clamp(1, 8))
    }

    /// Creates a pool with an explicit shard count (rounded up to a power
    /// of two). Each shard's ring can park the full quota, so no released
    /// buffer is dropped merely because hints were skewed.
    pub fn with_shards(quota: usize, buffer_bytes: usize, shards: usize) -> Self {
        let n = shards.next_power_of_two().max(1);
        BufferPool {
            shards: (0..n).map(|_| Ring::new(quota.max(1))).collect(),
            shard_mask: n - 1,
            buffer_bytes,
            quota,
            outstanding: AtomicI64::new(0),
            exhausted_events: AtomicU64::new(0),
        }
    }

    /// Capacity of the buffers this pool vends.
    pub fn buffer_bytes(&self) -> usize {
        self.buffer_bytes
    }

    /// Number of free-list shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// A stable shard hint for the current thread, used by the hint-less
    /// entry points.
    fn thread_shard() -> usize {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        h.finish() as usize
    }

    /// Reserves one unit of quota. The `fetch_add` is the single
    /// linearization point: concurrent reservers can never jointly observe
    /// room that isn't there, so `outstanding` never exceeds `quota` from
    /// successful reservations.
    fn reserve(&self) -> bool {
        let prev = self.outstanding.fetch_add(1, Ordering::AcqRel);
        if prev >= self.quota as i64 {
            self.outstanding.fetch_sub(1, Ordering::AcqRel);
            return false;
        }
        true
    }

    /// Records an over-quota fallback allocation: the buffer is physically
    /// handed out, so the net accounting must see it even though no quota
    /// reservation succeeded. Keeping every handed-out buffer in
    /// `outstanding` is what makes the cluster-wide sum an exact leak
    /// detector (and it also makes back-pressure honest: `try_acquire`
    /// keeps failing until the overflow drains back below the quota).
    fn reserve_over_quota(&self) {
        self.outstanding.fetch_add(1, Ordering::AcqRel);
    }

    /// Releases one unit of quota. Deliberately allowed to go negative:
    /// a pool that receives more recycled peer buffers than it handed out
    /// is a net creditor, and clamping here would make the cluster-wide
    /// sum drift away from the true in-flight count.
    fn unreserve(&self) {
        self.outstanding.fetch_sub(1, Ordering::AcqRel);
    }

    /// Pops a recycled buffer, trying the hinted shard first and stealing
    /// from the others only when it is empty.
    fn pop_recycled(&self, hint: usize) -> Option<Vec<u8>> {
        let base = hint & self.shard_mask;
        for i in 0..self.shards.len() {
            let shard = &self.shards[(base + i) & self.shard_mask];
            if let Some(b) = shard.pop() {
                return Some(b);
            }
        }
        None
    }

    /// Tries to acquire a buffer within quota; `None` signals back-pressure.
    pub fn try_acquire(&self) -> Option<Vec<u8>> {
        self.try_acquire_on(Self::thread_shard())
    }

    /// [`Self::try_acquire`] with an explicit shard hint (worker/copier
    /// index); acquire/release with the same hint never touch other shards
    /// in steady state.
    pub fn try_acquire_on(&self, hint: usize) -> Option<Vec<u8>> {
        if !self.reserve() {
            return None;
        }
        match self.pop_recycled(hint) {
            Some(mut b) => {
                b.clear();
                Some(b)
            }
            None => Some(Vec::with_capacity(self.buffer_bytes)),
        }
    }

    /// Acquires a buffer, allocating past the quota if necessary (recording
    /// the back-pressure event). Never blocks, never fails.
    pub fn acquire_or_alloc(&self) -> Vec<u8> {
        self.acquire_or_alloc_on(Self::thread_shard())
    }

    /// [`Self::acquire_or_alloc`] with an explicit shard hint.
    pub fn acquire_or_alloc_on(&self, hint: usize) -> Vec<u8> {
        match self.try_acquire_on(hint) {
            Some(b) => b,
            None => {
                self.exhausted_events.fetch_add(1, Ordering::Relaxed);
                self.reserve_over_quota();
                Vec::with_capacity(self.buffer_bytes)
            }
        }
    }

    /// Like [`Self::acquire_or_alloc`] but *without* clearing the recycled
    /// buffer: the previous contents (and length) are kept. For payloads
    /// whose bytes are opaque (bandwidth probes), this avoids a
    /// memset-per-message that would otherwise dominate the measurement.
    pub fn acquire_or_alloc_dirty(&self) -> Vec<u8> {
        let hint = Self::thread_shard();
        if self.reserve() {
            if let Some(b) = self.pop_recycled(hint) {
                return b;
            }
        } else {
            self.exhausted_events.fetch_add(1, Ordering::Relaxed);
            self.reserve_over_quota();
        }
        Vec::with_capacity(self.buffer_bytes)
    }

    /// Returns a buffer to the pool.
    pub fn release(&self, buf: Vec<u8>) {
        self.release_on(buf, Self::thread_shard());
    }

    /// [`Self::release`] with an explicit shard hint.
    pub fn release_on(&self, buf: Vec<u8>, hint: usize) {
        self.unreserve();
        if buf.capacity() < self.buffer_bytes {
            return; // undersized buffers are simply dropped
        }
        let base = hint & self.shard_mask;
        let mut buf = buf;
        for i in 0..self.shards.len() {
            match self.shards[(base + i) & self.shard_mask].push(buf) {
                Ok(()) => return,
                Err(b) => buf = b,
            }
        }
        // Every ring full: surplus buffer, drop it.
    }

    /// Number of quota-exhaustion (back-pressure) events so far.
    pub fn exhausted_events(&self) -> u64 {
        self.exhausted_events.load(Ordering::Relaxed)
    }

    /// Net quota units held: buffers handed out by this pool minus
    /// buffers released into it. Transiently exceeds the quota while
    /// over-quota fallback allocations are live, and goes *negative* on
    /// pools that net-receive peer-recycled payloads; summed over all
    /// machines of a quiescent cluster it is exactly zero — the soak
    /// harness leans on that to prove full quota reclamation.
    pub fn outstanding(&self) -> i64 {
        self.outstanding.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("shards", &self.shards.len())
            .field("buffer_bytes", &self.buffer_bytes)
            .field("quota", &self.quota)
            .field("outstanding", &self.outstanding())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::{Arc, Mutex};

    #[test]
    fn acquire_release_cycle() {
        let pool = BufferPool::new(2, 128);
        let a = pool.try_acquire().unwrap();
        let b = pool.try_acquire().unwrap();
        assert!(pool.try_acquire().is_none(), "quota enforced");
        pool.release(a);
        let c = pool.try_acquire().unwrap();
        assert_eq!(c.capacity(), 128);
        pool.release(b);
        pool.release(c);
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn reuse_keeps_capacity() {
        let pool = BufferPool::new(1, 64);
        let mut a = pool.try_acquire().unwrap();
        a.extend_from_slice(&[1, 2, 3]);
        let cap = a.capacity();
        pool.release(a);
        let b = pool.try_acquire().unwrap();
        assert!(b.is_empty(), "recycled buffer must be cleared");
        assert_eq!(b.capacity(), cap);
    }

    #[test]
    fn acquire_or_alloc_never_fails() {
        let pool = BufferPool::new(1, 64);
        let _a = pool.acquire_or_alloc();
        let _b = pool.acquire_or_alloc();
        assert_eq!(pool.exhausted_events(), 1);
    }

    #[test]
    fn release_drops_undersized() {
        let pool = BufferPool::new(4, 1024);
        pool.release(Vec::with_capacity(8));
        // The undersized buffer must not be vended later.
        let b = pool.try_acquire().unwrap();
        assert!(b.capacity() >= 1024);
    }

    #[test]
    fn shard_hints_recycle_locally() {
        let pool = BufferPool::with_shards(8, 64, 4);
        let mut a = pool.try_acquire_on(3).unwrap();
        a.extend_from_slice(&[9]);
        let cap = a.capacity();
        pool.release_on(a, 3);
        // Same hint gets the same buffer back; other hints steal it only
        // when their own shard is empty.
        let b = pool.try_acquire_on(3).unwrap();
        assert_eq!(b.capacity(), cap);
        assert!(b.is_empty());
        pool.release_on(b, 3);
        let c = pool.try_acquire_on(1).unwrap();
        assert_eq!(c.capacity(), cap, "cross-shard steal on empty shard");
    }

    #[test]
    fn ring_push_pop_fifo_per_lap() {
        let r = Ring::new(4);
        assert!(r.pop().is_none());
        for i in 0..4u8 {
            r.push(vec![i]).unwrap();
        }
        assert!(r.push(vec![9]).is_err(), "ring is bounded");
        for i in 0..4u8 {
            assert_eq!(r.pop().unwrap(), vec![i]);
        }
        assert!(r.pop().is_none());
        // A second lap exercises the sequence-tag wraparound.
        r.push(vec![7]).unwrap();
        assert_eq!(r.pop().unwrap(), vec![7]);
    }

    /// The ISSUE's loom-style hammer: N threads acquire/release through
    /// random shard hints while asserting (a) the quota reservation count
    /// never exceeds the quota and (b) no buffer is ever vended to two
    /// holders at once (tracked by pointer identity).
    #[test]
    fn concurrent_hammer_respects_quota_and_never_double_vends() {
        const THREADS: usize = 8;
        const ITERS: usize = 2_000;
        const QUOTA: usize = 6;
        let pool = Arc::new(BufferPool::with_shards(QUOTA, 64, 4));
        let held: Arc<Mutex<HashSet<usize>>> = Arc::new(Mutex::new(HashSet::new()));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let pool = pool.clone();
                let held = held.clone();
                std::thread::spawn(move || {
                    for i in 0..ITERS {
                        let hint = (t + i) % 5; // deliberately skewed hints
                        if let Some(buf) = pool.try_acquire_on(hint) {
                            assert!(buf.is_empty(), "vended buffer not cleared");
                            let ptr = buf.as_ptr() as usize;
                            // A fresh zero-capacity Vec has a dangling
                            // (shared) pointer; only track real buffers.
                            if buf.capacity() > 0 {
                                assert!(
                                    held.lock().unwrap().insert(ptr),
                                    "buffer vended to two holders at once"
                                );
                            }
                            let outstanding = pool.outstanding();
                            assert!(
                                outstanding <= QUOTA as i64,
                                "quota exceeded: {outstanding} > {QUOTA}"
                            );
                            if buf.capacity() > 0 {
                                held.lock().unwrap().remove(&ptr);
                            }
                            pool.release_on(buf, hint);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(pool.outstanding(), 0, "all reservations returned");
        assert!(pool.try_acquire().is_some(), "pool still functional");
    }
}
