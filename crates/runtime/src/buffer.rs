//! Message buffer pool (§3.4: "Fast, low-overhead implementations were
//! used for queues and buffer pools, while back-pressure mechanisms were
//! induced to avoid deadlocks").
//!
//! The pool hands out `Vec<u8>` payload buffers pre-sized to the configured
//! message size. When the quota is exhausted, `try_acquire` fails and the
//! caller is expected to drain its response queue before retrying — this is
//! the back-pressure path; `acquire_or_alloc` instead falls back to a fresh
//! allocation and bumps the `pool_exhausted` statistic, guaranteeing
//! deadlock freedom even for pathological request patterns.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// A pool of reusable payload buffers with a soft quota.
#[derive(Debug)]
pub struct BufferPool {
    free: Mutex<Vec<Vec<u8>>>,
    buffer_bytes: usize,
    /// Number of buffers the pool may hand out before reporting exhaustion.
    quota: usize,
    outstanding: Mutex<usize>,
    exhausted_events: AtomicU64,
}

impl BufferPool {
    /// Creates a pool of `quota` buffers of `buffer_bytes` capacity each.
    /// Buffers are allocated lazily on first acquisition.
    pub fn new(quota: usize, buffer_bytes: usize) -> Self {
        BufferPool {
            free: Mutex::new(Vec::with_capacity(quota)),
            buffer_bytes,
            quota,
            outstanding: Mutex::new(0),
            exhausted_events: AtomicU64::new(0),
        }
    }

    /// Capacity of the buffers this pool vends.
    pub fn buffer_bytes(&self) -> usize {
        self.buffer_bytes
    }

    /// Tries to acquire a buffer within quota; `None` signals back-pressure.
    pub fn try_acquire(&self) -> Option<Vec<u8>> {
        let mut outstanding = self.outstanding.lock();
        if *outstanding >= self.quota {
            return None;
        }
        *outstanding += 1;
        drop(outstanding);
        let mut free = self.free.lock();
        match free.pop() {
            Some(mut b) => {
                b.clear();
                Some(b)
            }
            None => Some(Vec::with_capacity(self.buffer_bytes)),
        }
    }

    /// Acquires a buffer, allocating past the quota if necessary (recording
    /// the back-pressure event). Never blocks, never fails.
    pub fn acquire_or_alloc(&self) -> Vec<u8> {
        match self.try_acquire() {
            Some(b) => b,
            None => {
                self.exhausted_events.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(self.buffer_bytes)
            }
        }
    }

    /// Like [`Self::acquire_or_alloc`] but *without* clearing the recycled
    /// buffer: the previous contents (and length) are kept. For payloads
    /// whose bytes are opaque (bandwidth probes), this avoids a
    /// memset-per-message that would otherwise dominate the measurement.
    pub fn acquire_or_alloc_dirty(&self) -> Vec<u8> {
        let mut outstanding = self.outstanding.lock();
        if *outstanding < self.quota {
            *outstanding += 1;
            drop(outstanding);
            if let Some(b) = self.free.lock().pop() {
                return b;
            }
        } else {
            self.exhausted_events.fetch_add(1, Ordering::Relaxed);
        }
        Vec::with_capacity(self.buffer_bytes)
    }

    /// Returns a buffer to the pool.
    pub fn release(&self, buf: Vec<u8>) {
        let mut outstanding = self.outstanding.lock();
        if *outstanding > 0 {
            *outstanding -= 1;
        }
        drop(outstanding);
        let mut free = self.free.lock();
        if free.len() < self.quota && buf.capacity() >= self.buffer_bytes {
            free.push(buf);
        }
        // Undersized or surplus buffers are simply dropped.
    }

    /// Number of quota-exhaustion (back-pressure) events so far.
    pub fn exhausted_events(&self) -> u64 {
        self.exhausted_events.load(Ordering::Relaxed)
    }

    /// Buffers currently handed out (within quota accounting).
    pub fn outstanding(&self) -> usize {
        *self.outstanding.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_cycle() {
        let pool = BufferPool::new(2, 128);
        let a = pool.try_acquire().unwrap();
        let b = pool.try_acquire().unwrap();
        assert!(pool.try_acquire().is_none(), "quota enforced");
        pool.release(a);
        let c = pool.try_acquire().unwrap();
        assert_eq!(c.capacity(), 128);
        pool.release(b);
        pool.release(c);
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn reuse_keeps_capacity() {
        let pool = BufferPool::new(1, 64);
        let mut a = pool.try_acquire().unwrap();
        a.extend_from_slice(&[1, 2, 3]);
        let cap = a.capacity();
        pool.release(a);
        let b = pool.try_acquire().unwrap();
        assert!(b.is_empty(), "recycled buffer must be cleared");
        assert_eq!(b.capacity(), cap);
    }

    #[test]
    fn acquire_or_alloc_never_fails() {
        let pool = BufferPool::new(1, 64);
        let _a = pool.acquire_or_alloc();
        let _b = pool.acquire_or_alloc();
        assert_eq!(pool.exhausted_events(), 1);
    }

    #[test]
    fn release_drops_undersized() {
        let pool = BufferPool::new(4, 1024);
        pool.release(Vec::with_capacity(8));
        // The undersized buffer must not be vended later.
        let b = pool.try_acquire().unwrap();
        assert!(b.capacity() >= 1024);
    }
}
