//! Per-machine engine state: one instance of Figure 1 of the paper.

use crate::barrier::DistBarrier;
use crate::buffer::BufferPool;
use crate::config::Config;
use crate::fabric::MachineReceivers;
use crate::flow::FlushController;
use crate::ghost::GhostTable;
use crate::health::ClusterHealth;
use crate::ids::MachineId;
use crate::localgraph::LocalGraph;
use crate::message::Envelope;
use crate::partition::Partitioning;
use crate::props::PropertyStore;
use crate::reliable::Reliability;
use crate::stats::MachineStats;
use crate::telemetry::Telemetry;
use crossbeam::channel::{Receiver, Sender};
use parking_lot::RwLock;
use std::sync::atomic::AtomicI64;
use std::sync::Arc;

/// A remote method registered with the Communication Manager: executed by
/// copier threads against the local machine state, returning the response
/// bytes (possibly empty).
pub type RmiFn = dyn Fn(&MachineState, &[u8]) -> Vec<u8> + Send + Sync;

/// Everything one simulated machine owns.
pub struct MachineState {
    /// This machine's id.
    pub id: MachineId,
    /// Cluster configuration (identical on every machine).
    pub config: Config,
    /// This machine's fragment of the distributed graph.
    pub graph: Arc<LocalGraph>,
    /// Column-oriented property storage (owned region + ghost slots).
    pub props: PropertyStore,
    /// The cluster-wide vertex partitioning (pivots shared by everyone).
    pub partition: Arc<Partitioning>,
    /// The cluster-wide ghost table.
    pub ghosts: GhostTable,
    /// Send side of this machine's outgoing-traffic queue; the poller
    /// thread drains it into the fabric.
    pub outbox_tx: Sender<Envelope>,
    /// Receive side of the outbox (consumed by the poller thread only).
    pub outbox_rx: Receiver<Envelope>,
    /// Incoming request queue shared by this machine's copier threads.
    pub copier_rx: Receiver<Envelope>,
    /// Incoming response queues, one per worker.
    pub worker_rx: Vec<Receiver<Envelope>>,
    /// Pool for outgoing message payloads (back-pressure accounting).
    pub send_pool: Arc<BufferPool>,
    /// Adaptive flush-threshold controller shared by this machine's workers
    /// (inert unless `config.adaptive_flush.enabled`).
    pub flush: Arc<FlushController>,
    /// Telemetry registry: histograms, per-worker tracers, and the owner of
    /// this machine's [`MachineStats`].
    pub telemetry: Arc<Telemetry>,
    /// Traffic and work counters (a clone of `telemetry.stats()`, kept as a
    /// direct field because the hot paths touch it constantly).
    pub stats: Arc<MachineStats>,
    /// Cluster-global count of buffered-but-unconsumed entries; zero (with
    /// no tasks left) means a parallel region is complete (§3.2: "A
    /// particular job completes when the task list is empty and there are
    /// no unfinished remote requests").
    pub pending: Arc<AtomicI64>,
    /// Message-based barrier state (Figure 5b / strict-distributed mode).
    pub dist_barrier: Arc<DistBarrier>,
    /// Cluster-shared liveness/abort state (reliability layer).
    pub health: Arc<ClusterHealth>,
    /// This machine's reliable-delivery state: sequence allocation,
    /// retransmit store, request-lane dedup windows.
    pub reliability: Arc<Reliability>,
    /// Registered remote methods, indexed by their RMI identifier.
    pub rmi: RwLock<Vec<Arc<RmiFn>>>,
}

impl MachineState {
    /// Assembles a machine from its pre-built parts.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: MachineId,
        config: Config,
        graph: Arc<LocalGraph>,
        partition: Arc<Partitioning>,
        ghosts: GhostTable,
        receivers: MachineReceivers,
        outbox: (Sender<Envelope>, Receiver<Envelope>),
        pending: Arc<AtomicI64>,
        telemetry: Arc<Telemetry>,
        health: Arc<ClusterHealth>,
    ) -> Self {
        let props = PropertyStore::new(graph.num_local(), graph.num_ghosts());
        let send_pool = Arc::new(BufferPool::with_shards(
            config.send_buffers_per_machine,
            config.buffer_bytes,
            config.pool_shards,
        ));
        let flush = Arc::new(FlushController::new(
            &config.adaptive_flush,
            config.buffer_bytes,
            config.machines,
        ));
        let dist_barrier = Arc::new(DistBarrier::new(config.workers, config.machines));
        let stats = telemetry.stats().clone();
        let reliability = Arc::new(Reliability::new(
            config.machines,
            config.workers,
            config.reliability,
            stats.clone(),
        ));
        MachineState {
            id,
            config: config.clone(),
            graph,
            props,
            partition,
            ghosts,
            outbox_tx: outbox.0,
            outbox_rx: outbox.1,
            copier_rx: receivers.copier_rx,
            worker_rx: receivers.worker_rx,
            send_pool,
            flush,
            telemetry,
            stats,
            pending,
            dist_barrier,
            health,
            reliability,
            rmi: RwLock::new(Vec::new()),
        }
    }

    /// Number of vertices this machine owns.
    pub fn num_local(&self) -> usize {
        self.graph.num_local()
    }

    /// Registers an RMI handler at an explicit id (the driver assigns the
    /// same id on every machine). Panics on id collision.
    pub fn register_rmi_at(&self, id: u16, f: Arc<RmiFn>) {
        let mut rmi = self.rmi.write();
        let idx = id as usize;
        if rmi.len() <= idx {
            rmi.resize_with(idx + 1, || {
                Arc::new(|_: &MachineState, _: &[u8]| Vec::new())
            });
        }
        rmi[idx] = f;
    }

    /// Looks up an RMI handler.
    pub fn rmi_fn(&self, id: u16) -> Arc<RmiFn> {
        self.rmi.read()[id as usize].clone()
    }
}

impl std::fmt::Debug for MachineState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MachineState")
            .field("id", &self.id)
            .field("num_local", &self.num_local())
            .field("num_ghosts", &self.graph.num_ghosts())
            .finish_non_exhaustive()
    }
}
