//! Per-machine CSR fragments with pre-resolved ("encoded") edge targets.
//!
//! At loading time the Data Manager resolves, for every edge of every owned
//! vertex, where its other endpoint lives (§3.3). The result is baked into
//! the fragment's column array as an [`EncTarget`]:
//!
//! * **local**  — the endpoint is owned by this machine: plain local index;
//! * **ghost**  — the endpoint is a ghosted hub: index of its local ghost
//!   slot (`len_local + ordinal`), so the edge no longer crosses machines;
//! * **remote** — anything else: the 48-bit [`GlobalId`] (owner machine +
//!   owner-local offset), so no partition lookup is needed at runtime.

use crate::ghost::GhostTable;
use crate::ids::{GlobalId, MachineId};
use crate::partition::Partitioning;
use pgxd_graph::{Graph, NodeId};

/// An encoded edge target. Bit 63 distinguishes remote (set) from local /
/// ghost (clear); local values are direct indices into property columns.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct EncTarget(u64);

const REMOTE_BIT: u64 = 1 << 63;

impl EncTarget {
    /// Encodes a local (owned or ghost-slot) index.
    #[inline]
    pub fn local(index: usize) -> Self {
        debug_assert!((index as u64) & REMOTE_BIT == 0);
        EncTarget(index as u64)
    }

    /// Encodes a remote global id.
    #[inline]
    pub fn remote(gid: GlobalId) -> Self {
        EncTarget(REMOTE_BIT | gid.to_bits())
    }

    /// True if the target lives on another machine (and is not ghosted).
    #[inline]
    pub fn is_remote(self) -> bool {
        self.0 & REMOTE_BIT != 0
    }

    /// The local column index (valid only when `!is_remote()`).
    #[inline]
    pub fn local_index(self) -> usize {
        debug_assert!(!self.is_remote());
        self.0 as usize
    }

    /// The remote global id (valid only when `is_remote()`).
    #[inline]
    pub fn global_id(self) -> GlobalId {
        debug_assert!(self.is_remote());
        GlobalId::from_bits(self.0 & !REMOTE_BIT)
    }
}

impl std::fmt::Debug for EncTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_remote() {
            write!(f, "R({:?})", self.global_id())
        } else {
            write!(f, "L({})", self.local_index())
        }
    }
}

/// One direction (out or in) of a machine's fragment.
#[derive(Debug, Default)]
pub struct FragmentDir {
    /// `len_local + 1` row pointers over owned vertices.
    pub row_ptr: Vec<usize>,
    /// Encoded targets.
    pub targets: Vec<EncTarget>,
    /// Per-edge weights aligned with `targets` (empty when unweighted).
    pub weights: Vec<f64>,
}

impl FragmentDir {
    /// Edges of local node `v` as `(range into targets)`.
    #[inline]
    pub fn edge_range(&self, v: usize) -> std::ops::Range<usize> {
        self.row_ptr[v]..self.row_ptr[v + 1]
    }

    /// Degree of local node `v` in this direction. Because fragments keep
    /// *all* edges of owned vertices (crossing or not), this equals the
    /// vertex's true degree in the global graph.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.row_ptr[v + 1] - self.row_ptr[v]
    }

    /// Number of owned vertices.
    #[inline]
    pub fn num_local(&self) -> usize {
        self.row_ptr.len().saturating_sub(1)
    }

    /// Total edges stored.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }
}

/// A machine's share of the distributed graph.
#[derive(Debug)]
pub struct LocalGraph {
    machine: MachineId,
    /// Global id of local vertex 0.
    start_node: NodeId,
    num_local: usize,
    /// Out-edges of owned vertices.
    pub out: FragmentDir,
    /// In-edges of owned vertices.
    pub inn: FragmentDir,
    ghosts: GhostTable,
}

impl LocalGraph {
    /// Carves machine `m`'s fragment out of the global graph.
    pub fn build(
        graph: &Graph,
        part: &Partitioning,
        ghosts: &GhostTable,
        m: MachineId,
    ) -> LocalGraph {
        let start = part.start(m);
        let end = part.end(m);
        let num_local = (end - start) as usize;

        let encode = |t: NodeId| -> EncTarget {
            let owner = part.owner(t);
            if owner == m {
                EncTarget::local((t - start) as usize)
            } else if let Some(ord) = ghosts.ordinal(t) {
                EncTarget::local(num_local + ord as usize)
            } else {
                EncTarget::remote(GlobalId::new(owner, t - part.start(owner)))
            }
        };

        let build_dir = |csr: &pgxd_graph::Csr, weight_of: &dyn Fn(usize) -> Option<f64>| {
            let mut row_ptr = Vec::with_capacity(num_local + 1);
            row_ptr.push(0);
            let cap = if num_local > 0 {
                csr.edge_end(end - 1) - csr.edge_start(start)
            } else {
                0
            };
            let mut targets = Vec::with_capacity(cap);
            let mut weights = Vec::new();
            let weighted = graph.weights().is_some();
            for v in start..end {
                for e in csr.edge_start(v)..csr.edge_end(v) {
                    targets.push(encode(csr.col_idx()[e]));
                    if weighted {
                        weights.push(weight_of(e).unwrap_or(1.0));
                    }
                }
                row_ptr.push(targets.len());
            }
            FragmentDir {
                row_ptr,
                targets,
                weights,
            }
        };

        let out = build_dir(graph.out_csr(), &|e| graph.weights().map(|w| w[e]));
        let inn = build_dir(graph.in_csr(), &|e| {
            graph.weights().map(|w| w[graph.in_edge_to_out_edge(e)])
        });

        LocalGraph {
            machine: m,
            start_node: start,
            num_local,
            out,
            inn,
            ghosts: ghosts.clone(),
        }
    }

    /// This machine's id.
    #[inline]
    pub fn machine(&self) -> MachineId {
        self.machine
    }

    /// Global id of local vertex 0.
    #[inline]
    pub fn start_node(&self) -> NodeId {
        self.start_node
    }

    /// Number of owned vertices.
    #[inline]
    pub fn num_local(&self) -> usize {
        self.num_local
    }

    /// Number of ghost slots (cluster-wide ghost count).
    #[inline]
    pub fn num_ghosts(&self) -> usize {
        self.ghosts.len()
    }

    /// The shared ghost table.
    #[inline]
    pub fn ghosts(&self) -> &GhostTable {
        &self.ghosts
    }

    /// Maps a local vertex index to its global `0..N` id.
    #[inline]
    pub fn to_global(&self, local: usize) -> NodeId {
        debug_assert!(local < self.num_local);
        self.start_node + local as NodeId
    }

    /// Full out-degree of a *column index*: owned vertices use the
    /// fragment rows; ghost slots use the ghost table's recorded degree.
    #[inline]
    pub fn out_degree_of_index(&self, index: usize) -> usize {
        if index < self.num_local {
            self.out.degree(index)
        } else {
            self.ghosts.degree_at((index - self.num_local) as u32).1 as usize
        }
    }

    /// Full in-degree of a column index (see [`Self::out_degree_of_index`]).
    #[inline]
    pub fn in_degree_of_index(&self, index: usize) -> usize {
        if index < self.num_local {
            self.inn.degree(index)
        } else {
            self.ghosts.degree_at((index - self.num_local) as u32).0 as usize
        }
    }

    /// Whether a column index denotes a ghost slot.
    #[inline]
    pub fn is_ghost_index(&self, index: usize) -> bool {
        index >= self.num_local
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PartitioningMode;
    use pgxd_graph::generate;

    fn setup(n_machines: usize) -> (Graph, Partitioning, GhostTable) {
        let g = generate::ring(8);
        let p = Partitioning::build(&g, n_machines, PartitioningMode::Vertex);
        let t = GhostTable::build(&g, None);
        (g, p, t)
    }

    #[test]
    fn enc_target_roundtrip() {
        let l = EncTarget::local(42);
        assert!(!l.is_remote());
        assert_eq!(l.local_index(), 42);
        let r = EncTarget::remote(GlobalId::new(3, 17));
        assert!(r.is_remote());
        assert_eq!(r.global_id(), GlobalId::new(3, 17));
    }

    #[test]
    fn ring_fragments_cover_all_edges() {
        let (g, p, t) = setup(2);
        let f0 = LocalGraph::build(&g, &p, &t, 0);
        let f1 = LocalGraph::build(&g, &p, &t, 1);
        assert_eq!(f0.num_local(), 4);
        assert_eq!(f1.num_local(), 4);
        assert_eq!(f0.out.num_edges() + f1.out.num_edges(), g.num_edges());
        assert_eq!(f0.inn.num_edges() + f1.inn.num_edges(), g.num_edges());
    }

    #[test]
    fn ring_encoding_local_vs_remote() {
        let (g, p, t) = setup(2);
        let f0 = LocalGraph::build(&g, &p, &t, 0);
        // Node 0's out-edge goes to node 1, owned by machine 0: local.
        let e = f0.out.edge_range(0);
        assert_eq!(f0.out.targets[e.start].local_index(), 1);
        // Node 3's out-edge goes to node 4, owned by machine 1: remote.
        let e = f0.out.edge_range(3);
        let tgt = f0.out.targets[e.start];
        assert!(tgt.is_remote());
        assert_eq!(tgt.global_id(), GlobalId::new(1, 0));
    }

    #[test]
    fn ghosted_hub_becomes_local_slot() {
        let g = generate::star(6); // hub 0, spokes 1..=6
        let p = Partitioning::vertex(7, 2);
        let t = GhostTable::build(&g, Some(3)); // hub only
        assert_eq!(t.nodes(), &[0]);
        let f1 = LocalGraph::build(&g, &p, &t, 1);
        // Machine 1 owns spokes; their edge to the hub must resolve to the
        // ghost slot, i.e. index num_local + 0, not a remote target.
        for v in 0..f1.num_local() {
            let r = f1.out.edge_range(v);
            for &tgt in &f1.out.targets[r] {
                assert!(!tgt.is_remote(), "hub edge should be ghosted");
                assert_eq!(tgt.local_index(), f1.num_local());
            }
        }
        // Degree of the ghost slot resolves through the ghost table.
        assert_eq!(f1.out_degree_of_index(f1.num_local()), 6);
        assert_eq!(f1.in_degree_of_index(f1.num_local()), 6);
        assert!(f1.is_ghost_index(f1.num_local()));
    }

    #[test]
    fn degrees_match_global_graph() {
        let g = generate::rmat(8, 4, generate::RmatParams::skewed(), 13);
        let p = Partitioning::build(&g, 3, PartitioningMode::Edge);
        let t = GhostTable::build(&g, Some(50));
        for m in 0..3 {
            let f = LocalGraph::build(&g, &p, &t, m);
            for v in 0..f.num_local() {
                let global = f.to_global(v);
                assert_eq!(f.out.degree(v), g.out_degree(global), "out {global}");
                assert_eq!(f.inn.degree(v), g.in_degree(global), "in {global}");
            }
        }
    }

    #[test]
    fn weighted_fragments_align() {
        let g = generate::ring(6).with_uniform_weights(1.0, 9.0, 4);
        let p = Partitioning::vertex(6, 2);
        let t = GhostTable::build(&g, None);
        let f0 = LocalGraph::build(&g, &p, &t, 0);
        assert_eq!(f0.out.weights.len(), f0.out.num_edges());
        assert_eq!(f0.inn.weights.len(), f0.inn.num_edges());
        // Out-edge of node 0 is the global edge (0 -> 1).
        assert_eq!(f0.out.weights[0], g.weight(0));
        // In-edge weight of node 1 (from 0) must equal the same edge weight.
        let r = f0.inn.edge_range(1);
        assert_eq!(f0.inn.weights[r.start], g.weight(0));
    }

    #[test]
    fn empty_partition_fragment() {
        let g = generate::ring(2);
        let p = Partitioning::vertex(2, 4); // machines 2,3 own nothing
        let t = GhostTable::build(&g, None);
        let f3 = LocalGraph::build(&g, &p, &t, 3);
        assert_eq!(f3.num_local(), 0);
        assert_eq!(f3.out.num_edges(), 0);
    }
}
