//! Graph partitioning: contiguous vertex ranges identified by pivots.
//!
//! §3.3: "each partition holds consecutive vertices from a numbering
//! perspective, which allows us to identify each partition by its P−1 pivot
//! node numbers. This information is shared by all the machines."

use crate::config::PartitioningMode;
use crate::ids::MachineId;
use pgxd_graph::{Graph, NodeId};

/// A partitioning of vertices `0..n` into `P` contiguous ranges.
///
/// `pivots[i]` is the first vertex of partition `i + 1`; partition `i`
/// covers `start(i)..end(i)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partitioning {
    num_nodes: usize,
    pivots: Vec<NodeId>,
}

impl Partitioning {
    /// Builds a partitioning for `graph` into `p` machines with the chosen
    /// strategy.
    pub fn build(graph: &Graph, p: usize, mode: PartitioningMode) -> Self {
        match mode {
            PartitioningMode::Vertex => Self::vertex(graph.num_nodes(), p),
            PartitioningMode::Edge => {
                let degrees = pgxd_graph::stats::total_degrees(graph);
                Self::edge(&degrees, p)
            }
        }
    }

    /// Naive vertex partitioning: equal node counts.
    pub fn vertex(n: usize, p: usize) -> Self {
        assert!(p >= 1);
        let base = n / p;
        let extra = n % p;
        let mut pivots = Vec::with_capacity(p - 1);
        let mut cursor = 0usize;
        for i in 0..p - 1 {
            cursor += base + usize::from(i < extra);
            pivots.push(cursor as NodeId);
        }
        Partitioning {
            num_nodes: n,
            pivots,
        }
    }

    /// Edge partitioning: "chooses the pivot vertices that result in a
    /// balanced sum of in-degrees and out-degrees for each partition."
    ///
    /// Greedy sweep: cut when the running degree sum reaches the ideal
    /// share of the remaining degree mass, which keeps late partitions from
    /// starving when early ones overshoot on a hub.
    pub fn edge(total_degrees: &[usize], p: usize) -> Self {
        assert!(p >= 1);
        let n = total_degrees.len();
        let total: u64 = total_degrees.iter().map(|&d| d as u64).sum();
        let mut pivots = Vec::with_capacity(p - 1);
        let mut acc = 0u64;
        let mut consumed = 0u64;
        let mut v = 0usize;
        for part in 0..p - 1 {
            let remaining_parts = (p - part) as u64;
            let target = (total - consumed).div_ceil(remaining_parts);
            // Leave enough vertices so every later partition is non-empty
            // when possible (saturating: with more machines than vertices
            // the trailing partitions are legitimately empty).
            let max_v = n.saturating_sub(p - 1 - part);
            while v < max_v && acc < target {
                acc += total_degrees[v] as u64;
                v += 1;
            }
            consumed += acc;
            acc = 0;
            pivots.push(v as NodeId);
        }
        Partitioning {
            num_nodes: n,
            pivots,
        }
    }

    /// Number of partitions.
    #[inline]
    pub fn num_partitions(&self) -> usize {
        self.pivots.len() + 1
    }

    /// Total number of vertices.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The P−1 pivot vertices.
    #[inline]
    pub fn pivots(&self) -> &[NodeId] {
        &self.pivots
    }

    /// First vertex of partition `m`.
    #[inline]
    pub fn start(&self, m: MachineId) -> NodeId {
        if m == 0 {
            0
        } else {
            self.pivots[m as usize - 1]
        }
    }

    /// One past the last vertex of partition `m`.
    #[inline]
    pub fn end(&self, m: MachineId) -> NodeId {
        if (m as usize) < self.pivots.len() {
            self.pivots[m as usize]
        } else {
            self.num_nodes as NodeId
        }
    }

    /// Number of vertices owned by partition `m`.
    #[inline]
    pub fn len(&self, m: MachineId) -> usize {
        (self.end(m) - self.start(m)) as usize
    }

    /// True if partition `m` owns no vertices.
    #[inline]
    pub fn is_empty(&self, m: MachineId) -> bool {
        self.len(m) == 0
    }

    /// The machine owning vertex `v` — binary search over the pivots, the
    /// O(log P) lookup every Data Manager performs on each access.
    #[inline]
    pub fn owner(&self, v: NodeId) -> MachineId {
        debug_assert!((v as usize) < self.num_nodes);
        self.pivots.partition_point(|&pivot| pivot <= v) as MachineId
    }

    /// Local offset of vertex `v` on its owning machine.
    #[inline]
    pub fn local_offset(&self, v: NodeId) -> u32 {
        v - self.start(self.owner(v))
    }

    /// Checks that the ranges tile `0..n` exactly.
    pub fn validate(&self) -> Result<(), String> {
        let p = self.num_partitions();
        let mut prev = 0 as NodeId;
        for m in 0..p as MachineId {
            let (s, e) = (self.start(m), self.end(m));
            if s != prev {
                return Err(format!("partition {m} starts at {s}, expected {prev}"));
            }
            if e < s {
                return Err(format!("partition {m} has negative length"));
            }
            prev = e;
        }
        if prev as usize != self.num_nodes {
            return Err("partitions do not cover all nodes".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgxd_graph::generate;

    #[test]
    fn vertex_partition_even() {
        let p = Partitioning::vertex(10, 2);
        assert_eq!(p.pivots(), &[5]);
        assert_eq!(p.len(0), 5);
        assert_eq!(p.len(1), 5);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn vertex_partition_uneven() {
        let p = Partitioning::vertex(10, 3);
        assert_eq!(p.len(0) + p.len(1) + p.len(2), 10);
        assert!(p.len(0) >= p.len(2));
        assert!(p.validate().is_ok());
    }

    #[test]
    fn vertex_partition_more_machines_than_nodes() {
        let p = Partitioning::vertex(2, 4);
        assert_eq!(p.num_partitions(), 4);
        assert_eq!((0..4).map(|m| p.len(m)).sum::<usize>(), 2);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn owner_matches_ranges() {
        let p = Partitioning::vertex(100, 7);
        for v in 0..100 {
            let m = p.owner(v);
            assert!(p.start(m) <= v && v < p.end(m), "v={v} m={m}");
            assert_eq!(p.local_offset(v), v - p.start(m));
        }
    }

    #[test]
    fn edge_partition_balances_star() {
        // Star with hub 0: hub has degree 200, spokes 2 each. Vertex
        // partitioning would give machine 0 virtually all edges.
        let g = generate::star(100);
        let degrees = pgxd_graph::stats::total_degrees(&g);
        let p = Partitioning::edge(&degrees, 2);
        assert!(p.validate().is_ok());
        let share0: usize = (p.start(0)..p.end(0)).map(|v| degrees[v as usize]).sum();
        let share1: usize = (p.start(1)..p.end(1)).map(|v| degrees[v as usize]).sum();
        // The hub forces partition 0 to hold ~half the mass; partition 1
        // must still get all remaining spokes, not be empty.
        assert!(share1 > 0);
        assert!(share0 as f64 / (share0 + share1) as f64 > 0.4);
    }

    #[test]
    fn edge_partition_balances_rmat() {
        let g = generate::rmat(10, 8, generate::RmatParams::skewed(), 3);
        let degrees = pgxd_graph::stats::total_degrees(&g);
        let total: usize = degrees.iter().sum();
        let p = Partitioning::edge(&degrees, 4);
        assert!(p.validate().is_ok());
        for m in 0..4 {
            let share: usize = (p.start(m)..p.end(m)).map(|v| degrees[v as usize]).sum();
            let frac = share as f64 / total as f64;
            // Each of 4 partitions should hold 10%..45% of the mass
            // (perfect would be 25%; hubs cause slack).
            assert!((0.08..0.5).contains(&frac), "m={m} frac={frac}");
        }
    }

    #[test]
    fn edge_partition_beats_vertex_on_skew() {
        let g = generate::rmat(11, 8, generate::RmatParams::skewed(), 5);
        let degrees = pgxd_graph::stats::total_degrees(&g);
        let imbalance = |p: &Partitioning| -> f64 {
            let shares: Vec<usize> = (0..p.num_partitions() as MachineId)
                .map(|m| (p.start(m)..p.end(m)).map(|v| degrees[v as usize]).sum())
                .collect();
            let max = *shares.iter().max().unwrap() as f64;
            let mean = shares.iter().sum::<usize>() as f64 / shares.len() as f64;
            max / mean
        };
        let ep = Partitioning::edge(&degrees, 8);
        let vp = Partitioning::vertex(degrees.len(), 8);
        assert!(
            imbalance(&ep) <= imbalance(&vp),
            "edge {} vs vertex {}",
            imbalance(&ep),
            imbalance(&vp)
        );
    }

    #[test]
    fn single_partition() {
        let p = Partitioning::vertex(5, 1);
        assert_eq!(p.num_partitions(), 1);
        assert_eq!(p.owner(4), 0);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn build_dispatches_on_mode() {
        let g = generate::ring(12);
        let pv = Partitioning::build(&g, 3, PartitioningMode::Vertex);
        let pe = Partitioning::build(&g, 3, PartitioningMode::Edge);
        assert!(pv.validate().is_ok());
        assert!(pe.validate().is_ok());
        // On a regular ring both strategies give equal splits.
        assert_eq!(pv.len(0), 4);
        assert_eq!(pe.len(0), 4);
    }
}
