//! Reliable delivery over the (possibly faulty) fabric: per-(destination,
//! lane) sequence numbers, duplicate-suppression windows, and an
//! ack/retransmit store with exponential backoff.
//!
//! The protocol piggybacks on the engine's existing buffer granularity —
//! one envelope is one sealed ~buffer-sized batch, so sequencing and
//! acknowledging *envelopes* keeps the reliability layer entirely out of
//! the per-record hot path (the motivation in TaskTorrent-style runtimes).
//!
//! Lanes separate the independently-ordered streams between one pair of
//! machines: lane 0 carries request traffic (consumed by the destination's
//! copiers), lane `1 + w` carries response traffic for the destination's
//! worker `w`. Each hop is acknowledged by its consumer — a request buffer
//! by the copier that dequeues it, a response buffer by the worker it is
//! routed to — so a lost response is retransmitted by the responding
//! machine without the original requester being involved.
//!
//! Sequence numbers start at 1; `seq == 0` marks unsequenced traffic
//! (control messages, or the protocol being disabled).

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::config::ReliabilityConfig;
use crate::health::JobError;
use crate::ids::MachineId;
use crate::message::Envelope;
use crate::stats::MachineStats;

/// The copier (request) lane.
pub const REQUEST_LANE: u32 = 0;

/// The lane an envelope travels on: 0 for requests, `1 + worker` for
/// responses (the worker index is relative to the destination machine).
#[inline]
pub fn lane_of(env: &Envelope) -> u32 {
    if env.kind.is_response() {
        1 + env.worker as u32
    } else {
        REQUEST_LANE
    }
}

/// Sliding duplicate-suppression window for one (source, lane) stream:
/// a cumulative floor plus the set of out-of-order sequence numbers seen
/// above it. Memory stays bounded by the reorder window, not the stream
/// length, because the floor advances over every contiguous prefix.
#[derive(Debug, Default)]
pub struct DedupWindow {
    /// Every `seq <= cum` has been accepted.
    cum: u64,
    /// Accepted sequence numbers above `cum`.
    seen: BTreeSet<u64>,
}

impl DedupWindow {
    /// Returns `true` exactly once per sequence number: the first delivery
    /// is accepted, every replay is rejected.
    pub fn accept(&mut self, seq: u64) -> bool {
        if seq <= self.cum || self.seen.contains(&seq) {
            return false;
        }
        self.seen.insert(seq);
        while self.seen.remove(&(self.cum + 1)) {
            self.cum += 1;
        }
        true
    }
}

struct InFlight {
    env: Envelope,
    due: Instant,
    retries: u32,
}

/// Per-machine reliability state: sequence allocation for outbound
/// traffic, the unacknowledged-envelope store the poller sweeps for
/// retransmission, and the inbound dedup windows for the request lane
/// (workers keep their own response-lane windows, lock-free).
pub struct Reliability {
    enabled: bool,
    lanes: usize,
    /// Next sequence number per `(dst, lane)`, flattened.
    next_seq: Vec<AtomicU64>,
    /// Unacknowledged sequenced envelopes, keyed by `(dst, lane, seq)`.
    in_flight: Mutex<HashMap<(MachineId, u32, u64), InFlight>>,
    /// Request-lane dedup windows, one per source machine (shared by this
    /// machine's copiers).
    req_dedup: Vec<Mutex<DedupWindow>>,
    cfg: ReliabilityConfig,
    stats: Arc<MachineStats>,
}

impl Reliability {
    pub fn new(
        machines: usize,
        workers: usize,
        cfg: ReliabilityConfig,
        stats: Arc<MachineStats>,
    ) -> Self {
        let lanes = 1 + workers;
        Reliability {
            enabled: cfg.enabled,
            lanes,
            next_seq: (0..machines * lanes).map(|_| AtomicU64::new(0)).collect(),
            in_flight: Mutex::new(HashMap::new()),
            req_dedup: (0..machines)
                .map(|_| Mutex::new(DedupWindow::default()))
                .collect(),
            cfg,
            stats,
        }
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    pub fn config(&self) -> &ReliabilityConfig {
        &self.cfg
    }

    /// Stamps a sequence number onto an outbound envelope and files a copy
    /// for retransmission. Called by the sending machine's poller for every
    /// reliable envelope.
    pub fn register(&self, env: &mut Envelope, now: Instant) {
        let lane = lane_of(env);
        let slot = env.dst as usize * self.lanes + lane as usize;
        let seq = self.next_seq[slot].fetch_add(1, Ordering::Relaxed) + 1;
        env.seq = seq;
        let rec = InFlight {
            env: env.clone(),
            due: now + Duration::from_millis(self.cfg.rto_base_ms),
            retries: 0,
        };
        self.in_flight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert((env.dst, lane, seq), rec);
    }

    /// Drops the retransmission copy for an acknowledged envelope.
    pub fn on_ack(&self, peer: MachineId, lane: u32, seq: u64) {
        self.in_flight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&(peer, lane, seq));
    }

    /// First-delivery test for a request-lane envelope from `src`.
    /// Returns `false` for replays (the caller still re-acks them — the
    /// original ack may itself have been lost).
    pub fn accept_request(&self, src: MachineId, seq: u64) -> bool {
        self.req_dedup[src as usize]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .accept(seq)
    }

    /// Collects every unacknowledged envelope whose retransmission timer
    /// expired, doubling its backoff. An envelope that exhausts
    /// `max_retries` condemns its destination.
    pub fn due_retransmits(&self, now: Instant) -> Result<Vec<Envelope>, JobError> {
        let mut store = self.in_flight.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = Vec::new();
        for rec in store.values_mut() {
            if rec.due > now {
                continue;
            }
            if rec.retries >= self.cfg.max_retries {
                return Err(JobError::MachineDown {
                    machine: rec.env.dst,
                });
            }
            rec.retries += 1;
            let backoff = self
                .cfg
                .rto_base_ms
                .saturating_mul(1u64 << rec.retries.min(32))
                .min(self.cfg.rto_max_ms);
            rec.due = now + Duration::from_millis(backoff);
            out.push(rec.env.clone());
        }
        if !out.is_empty() {
            self.stats
                .retransmits
                .fetch_add(out.len() as u64, Ordering::Relaxed);
        }
        Ok(out)
    }

    /// Unacknowledged envelopes currently stored (test/diagnostic hook).
    pub fn in_flight_count(&self) -> usize {
        self.in_flight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// Empties the retransmission store. Called once the cluster aborts:
    /// the job is dead, re-driving its traffic would only churn.
    pub fn clear(&self) {
        self.in_flight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MsgKind;

    fn env(dst: MachineId, kind: MsgKind, worker: u16) -> Envelope {
        Envelope {
            src: 0,
            dst,
            kind,
            worker,
            side_id: 0,
            seq: 0,
            payload: Vec::new(),
        }
    }

    fn rel(machines: usize, workers: usize) -> Reliability {
        Reliability::new(
            machines,
            workers,
            ReliabilityConfig::on(),
            Arc::new(MachineStats::default()),
        )
    }

    #[test]
    fn dedup_window_accepts_once() {
        let mut w = DedupWindow::default();
        assert!(w.accept(1));
        assert!(!w.accept(1));
        assert!(w.accept(3)); // out of order: held above the floor
        assert!(w.accept(2));
        assert!(!w.accept(2));
        assert!(!w.accept(3));
        assert_eq!(w.cum, 3, "floor advanced over the contiguous prefix");
        assert!(w.seen.is_empty(), "no out-of-order residue");
        assert!(w.accept(4));
    }

    #[test]
    fn lanes_are_independent_streams() {
        let r = rel(2, 2);
        let mut a = env(1, MsgKind::Write, 0); // request lane
        let mut b = env(1, MsgKind::ReadResp, 0); // worker-0 lane
        let mut c = env(1, MsgKind::ReadResp, 1); // worker-1 lane
        let now = Instant::now();
        r.register(&mut a, now);
        r.register(&mut b, now);
        r.register(&mut c, now);
        assert_eq!((a.seq, b.seq, c.seq), (1, 1, 1));
        assert_eq!(lane_of(&a), 0);
        assert_eq!(lane_of(&b), 1);
        assert_eq!(lane_of(&c), 2);
        assert_eq!(r.in_flight_count(), 3);
    }

    #[test]
    fn ack_clears_the_store() {
        let r = rel(2, 1);
        let mut e = env(1, MsgKind::Write, 0);
        r.register(&mut e, Instant::now());
        assert_eq!(r.in_flight_count(), 1);
        r.on_ack(1, lane_of(&e), e.seq);
        assert_eq!(r.in_flight_count(), 0);
    }

    #[test]
    fn retransmit_after_rto_with_backoff() {
        let r = rel(2, 1);
        let mut e = env(1, MsgKind::Write, 0);
        let t0 = Instant::now();
        r.register(&mut e, t0);
        // Before the RTO: nothing due.
        assert!(r.due_retransmits(t0).unwrap().is_empty());
        // Just past the base RTO: one retransmit, same sequence number.
        let t1 = t0 + Duration::from_millis(r.config().rto_base_ms + 1);
        let due = r.due_retransmits(t1).unwrap();
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].seq, e.seq);
        // The backoff doubled: not due again at t1.
        assert!(r.due_retransmits(t1).unwrap().is_empty());
    }

    #[test]
    fn retry_exhaustion_condemns_destination() {
        let r = rel(2, 1);
        let mut e = env(1, MsgKind::Write, 0);
        let t0 = Instant::now();
        r.register(&mut e, t0);
        let mut t = t0 + Duration::from_secs(3600);
        for _ in 0..r.config().max_retries {
            assert_eq!(r.due_retransmits(t).unwrap().len(), 1);
            t += Duration::from_secs(3600);
        }
        assert!(matches!(
            r.due_retransmits(t),
            Err(JobError::MachineDown { machine: 1 })
        ));
    }

    #[test]
    fn request_dedup_per_source() {
        let r = rel(3, 1);
        assert!(r.accept_request(1, 1));
        assert!(!r.accept_request(1, 1));
        assert!(r.accept_request(2, 1), "sources have independent windows");
    }
}
