//! Cluster failure detection and structured job failure.
//!
//! One [`ClusterHealth`] is shared by every machine of a cluster. It is the
//! rendezvous point for the reliability layer: copiers refresh the
//! last-heard clock for each peer as traffic (or an explicit heartbeat)
//! arrives, the per-machine poller tick runs the watchdog over those
//! clocks, and any component that detects an unrecoverable condition
//! records a [`JobError`] here. Workers blocked in a drain or barrier wait
//! poll [`ClusterHealth::is_aborted`] from their idle branches, so a single
//! recorded error unwinds every thread of the cluster instead of leaving
//! the exact termination counter deadlocked.
//!
//! The first recorded error wins; an aborted cluster is terminal — stale
//! retransmissions and limbo envelopes may still be in flight, so no
//! further phase is allowed to run on it.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::ids::MachineId;

/// Why a job failed. Returned by the fallible `run` APIs instead of
/// hanging or panicking.
///
/// `#[non_exhaustive]` so recovery-era variants (and future ones) never
/// break downstream matches: callers must keep a wildcard arm.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum JobError {
    /// A machine crashed or was partitioned away: its heartbeats went
    /// silent past the watchdog deadline, or an envelope to it exhausted
    /// its retransmission budget, or its queues were torn down.
    MachineDown {
        /// The machine the failure was attributed to.
        machine: MachineId,
    },
    /// The engine observed a protocol violation it could not recover from
    /// (e.g. an envelope referencing a retired property or side slot while
    /// the reliability protocol is off).
    Protocol(String),
    /// A checkpoint failed verification on restore (checksum mismatch,
    /// shard gap, or layout drift between snapshot and restore cluster).
    CheckpointCorrupt(String),
    /// The recovery driver gave up: every attempt allowed by the
    /// [`RecoveryConfig`](crate::config::RecoveryConfig) budget failed.
    RetriesExhausted {
        /// Attempts made (initial run + retries).
        attempts: u32,
        /// The failure of the final attempt.
        last: Box<JobError>,
    },
    /// The job server's bounded submission queue was full; the submit was
    /// rejected instead of blocking the client.
    QueueFull {
        /// Jobs already queued when the submit arrived.
        queued: usize,
        /// The configured queue depth (`ServeConfig::queue_depth`).
        depth: usize,
    },
    /// Admission control refused to dispatch the job: its memory estimate
    /// would overshoot the configured budget.
    AdmissionDenied {
        /// Estimated bytes the job would pin (property columns +
        /// buffer-pool share + checkpoint overhead).
        estimated_bytes: u64,
        /// The configured budget (`ServeConfig::memory_budget_bytes`).
        budget_bytes: u64,
    },
    /// The job was cancelled (client request or session close). Workers
    /// observed the token cooperatively; the cluster stays healthy.
    Cancelled {
        /// The cancelled job's id.
        job: u64,
    },
    /// The job's deadline passed before it completed (possibly while it
    /// was still queued).
    DeadlineExceeded {
        /// The expired job's id.
        job: u64,
    },
}

impl JobError {
    /// Whether the recovery driver may retry after this failure. Machine
    /// loss is the transient class — the whole point of degraded-mode
    /// recovery; protocol violations and corrupt checkpoints are
    /// deterministic and would only fail again.
    pub fn is_transient(&self) -> bool {
        matches!(self, JobError::MachineDown { .. })
    }

    /// Whether this failure is a cancellation (explicit cancel or missed
    /// deadline). Cancellations are *fatal by design*: the client asked
    /// the job to stop, so the recovery driver's `RetryPolicy` must never
    /// re-run it, even though the cluster itself is still healthy.
    pub fn is_cancellation(&self) -> bool {
        matches!(
            self,
            JobError::Cancelled { .. } | JobError::DeadlineExceeded { .. }
        )
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::MachineDown { machine } => {
                write!(f, "machine {machine} is down (crashed or partitioned)")
            }
            JobError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            JobError::CheckpointCorrupt(msg) => write!(f, "checkpoint corrupt: {msg}"),
            JobError::RetriesExhausted { attempts, last } => {
                write!(
                    f,
                    "job failed after {attempts} attempts; last error: {last}"
                )
            }
            JobError::QueueFull { queued, depth } => {
                write!(
                    f,
                    "job rejected: submission queue is full ({queued} of {depth} slots taken)"
                )
            }
            JobError::AdmissionDenied {
                estimated_bytes,
                budget_bytes,
            } => {
                write!(
                    f,
                    "job denied admission: estimated {estimated_bytes} bytes \
                     exceeds the {budget_bytes}-byte memory budget"
                )
            }
            JobError::Cancelled { job } => {
                write!(f, "job {job} was cancelled")
            }
            JobError::DeadlineExceeded { job } => {
                write!(f, "job {job} exceeded its deadline")
            }
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::RetriesExhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

/// Shared cluster liveness state. See the module docs.
pub struct ClusterHealth {
    aborted: AtomicBool,
    error: Mutex<Option<JobError>>,
    /// Per-machine last-heard timestamps, nanoseconds since `epoch`.
    last_heard: Vec<AtomicU64>,
    epoch: Instant,
}

impl ClusterHealth {
    pub fn new(machines: usize) -> Self {
        ClusterHealth {
            aborted: AtomicBool::new(false),
            error: Mutex::new(None),
            last_heard: (0..machines).map(|_| AtomicU64::new(0)).collect(),
            epoch: Instant::now(),
        }
    }

    pub fn machines(&self) -> usize {
        self.last_heard.len()
    }

    /// Nanoseconds since this cluster's health epoch.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Refreshes the last-heard clock for `src`. Called by copiers on every
    /// received envelope, so any traffic counts as liveness — heartbeats
    /// only matter on otherwise-idle links.
    #[inline]
    pub fn heard(&self, src: MachineId) {
        if let Some(c) = self.last_heard.get(src as usize) {
            c.store(self.now_ns(), Ordering::Relaxed);
        }
    }

    /// Records a failure and flips the cluster into the aborted state.
    /// Only the first error is kept; returns whether this call was first.
    pub fn abort(&self, err: JobError) -> bool {
        let mut slot = self.error.lock().unwrap_or_else(|e| e.into_inner());
        let first = slot.is_none();
        if first {
            *slot = Some(err);
        }
        drop(slot);
        self.aborted.store(true, Ordering::Release);
        first
    }

    #[inline]
    pub fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::Acquire)
    }

    /// The recorded failure, if any.
    pub fn error(&self) -> Option<JobError> {
        self.error.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Watchdog check run from machine `me`'s poller tick: scans peer
    /// last-heard clocks against `deadline_ms` of silence. Returns the
    /// machine to blame, or `None` if all peers are live. When *every*
    /// peer has gone silent simultaneously, the caller itself is the
    /// partitioned one, so the blame lands on `me` — this keeps the error
    /// deterministic under a single-machine crash plan.
    pub fn stale_peer(&self, me: MachineId, deadline_ms: u64) -> Option<MachineId> {
        let machines = self.last_heard.len();
        if machines <= 1 {
            return None;
        }
        let now = self.now_ns();
        let deadline_ns = deadline_ms.saturating_mul(1_000_000);
        let mut first_stale = None;
        let mut stale = 0usize;
        for (p, clock) in self.last_heard.iter().enumerate() {
            if p == me as usize {
                continue;
            }
            let heard = clock.load(Ordering::Relaxed);
            if now.saturating_sub(heard) > deadline_ns {
                stale += 1;
                if first_stale.is_none() {
                    first_stale = Some(p as MachineId);
                }
            }
        }
        if stale == machines - 1 {
            Some(me)
        } else {
            first_stale
        }
    }

    /// Marks every machine as freshly heard. Called once at assembly so the
    /// watchdog grace period starts at cluster birth, not at epoch zero.
    pub fn reset_clocks(&self) {
        let now = self.now_ns();
        for c in &self.last_heard {
            c.store(now, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_error_wins() {
        let h = ClusterHealth::new(3);
        assert!(!h.is_aborted());
        assert!(h.abort(JobError::MachineDown { machine: 2 }));
        assert!(!h.abort(JobError::Protocol("later".into())));
        assert!(h.is_aborted());
        assert_eq!(h.error(), Some(JobError::MachineDown { machine: 2 }));
    }

    #[test]
    fn watchdog_blames_silent_peer() {
        let h = ClusterHealth::new(3);
        h.reset_clocks();
        // Everyone fresh: no blame.
        assert_eq!(h.stale_peer(0, 1_000), None);
        std::thread::sleep(std::time::Duration::from_millis(8));
        // Machines 0 and 1 keep talking; machine 2 goes silent.
        h.heard(0);
        h.heard(1);
        assert_eq!(h.stale_peer(0, 5), Some(2));
        assert_eq!(h.stale_peer(1, 5), Some(2));
    }

    #[test]
    fn watchdog_blames_self_when_fully_partitioned() {
        let h = ClusterHealth::new(4);
        h.reset_clocks();
        std::thread::sleep(std::time::Duration::from_millis(8));
        // Machine 3 heard from nobody: it is the partitioned one.
        h.heard(3);
        assert_eq!(h.stale_peer(3, 5), Some(3));
    }

    #[test]
    fn single_machine_never_trips() {
        let h = ClusterHealth::new(1);
        assert_eq!(h.stale_peer(0, 0), None);
    }

    #[test]
    fn error_display() {
        let e = JobError::MachineDown { machine: 1 };
        assert!(e.to_string().contains("machine 1"));
        let e = JobError::Protocol("bad".into());
        assert!(e.to_string().contains("bad"));
        let e = JobError::CheckpointCorrupt("shard 3".into());
        assert!(e.to_string().contains("shard 3"));
        let e = JobError::RetriesExhausted {
            attempts: 4,
            last: Box::new(JobError::MachineDown { machine: 2 }),
        };
        assert!(e.to_string().contains("4 attempts"));
        assert!(e.to_string().contains("machine 2"));
        let e = JobError::QueueFull {
            queued: 8,
            depth: 8,
        };
        assert!(e.to_string().contains("8 of 8"));
        let e = JobError::AdmissionDenied {
            estimated_bytes: 4096,
            budget_bytes: 1024,
        };
        assert!(e.to_string().contains("4096"));
        assert!(e.to_string().contains("1024"));
        let e = JobError::Cancelled { job: 3 };
        assert!(e.to_string().contains("job 3"));
        let e = JobError::DeadlineExceeded { job: 9 };
        assert!(e.to_string().contains("job 9"));
        assert!(e.to_string().contains("deadline"));
    }

    #[test]
    fn error_classification_and_source() {
        use std::error::Error;
        assert!(JobError::MachineDown { machine: 0 }.is_transient());
        assert!(!JobError::Protocol("x".into()).is_transient());
        assert!(!JobError::CheckpointCorrupt("x".into()).is_transient());
        let e = JobError::RetriesExhausted {
            attempts: 2,
            last: Box::new(JobError::MachineDown { machine: 1 }),
        };
        assert!(!e.is_transient());
        // `?` with Box<dyn Error> works and the chain reaches the cause.
        let cause = e.source().expect("has source");
        assert!(cause.to_string().contains("machine 1"));
    }

    #[test]
    fn cancellation_classification() {
        assert!(JobError::Cancelled { job: 1 }.is_cancellation());
        assert!(JobError::DeadlineExceeded { job: 1 }.is_cancellation());
        assert!(!JobError::MachineDown { machine: 0 }.is_cancellation());
        assert!(!JobError::QueueFull {
            queued: 1,
            depth: 1
        }
        .is_cancellation());
        // Cancellations are never transient: the retry gate must treat
        // them as fatal even though the cluster is healthy.
        assert!(!JobError::Cancelled { job: 1 }.is_transient());
        assert!(!JobError::DeadlineExceeded { job: 1 }.is_transient());
    }
}
