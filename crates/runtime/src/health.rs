//! Cluster failure detection and structured job failure.
//!
//! One [`ClusterHealth`] is shared by every machine of a cluster. It is the
//! rendezvous point for the reliability layer: copiers refresh the
//! last-heard clock for each peer as traffic (or an explicit heartbeat)
//! arrives, the per-machine poller tick runs the watchdog over those
//! clocks, and any component that detects an unrecoverable condition
//! records a [`JobError`] here. Workers blocked in a drain or barrier wait
//! poll [`ClusterHealth::is_aborted`] from their idle branches, so a single
//! recorded error unwinds every thread of the cluster instead of leaving
//! the exact termination counter deadlocked.
//!
//! The first recorded error wins; an aborted cluster is terminal — stale
//! retransmissions and limbo envelopes may still be in flight, so no
//! further phase is allowed to run on it.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::ids::MachineId;

/// Why a job failed. Returned by the fallible `run` APIs instead of
/// hanging or panicking.
///
/// `#[non_exhaustive]` so recovery-era variants (and future ones) never
/// break downstream matches: callers must keep a wildcard arm.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum JobError {
    /// A machine crashed or was partitioned away: its heartbeats went
    /// silent past the watchdog deadline, or an envelope to it exhausted
    /// its retransmission budget, or its queues were torn down.
    MachineDown {
        /// The machine the failure was attributed to.
        machine: MachineId,
    },
    /// The engine observed a protocol violation it could not recover from
    /// (e.g. an envelope referencing a retired property or side slot while
    /// the reliability protocol is off).
    Protocol(String),
    /// A checkpoint failed verification on restore (checksum mismatch,
    /// shard gap, or layout drift between snapshot and restore cluster).
    CheckpointCorrupt(String),
    /// The recovery driver gave up: every attempt allowed by the
    /// [`RecoveryConfig`](crate::config::RecoveryConfig) budget failed.
    RetriesExhausted {
        /// Attempts made (initial run + retries).
        attempts: u32,
        /// The failure of the final attempt.
        last: Box<JobError>,
    },
    /// The job server's bounded submission queue was full; the submit was
    /// rejected instead of blocking the client.
    QueueFull {
        /// Jobs already queued when the submit arrived.
        queued: usize,
        /// The configured queue depth (`ServeConfig::queue_depth`).
        depth: usize,
    },
    /// Admission control refused to dispatch the job: its memory estimate
    /// would overshoot the configured budget.
    AdmissionDenied {
        /// Estimated bytes the job would pin (property columns +
        /// buffer-pool share + checkpoint overhead).
        estimated_bytes: u64,
        /// The configured budget (`ServeConfig::memory_budget_bytes`).
        budget_bytes: u64,
    },
    /// The job was cancelled (client request or session close). Workers
    /// observed the token cooperatively; the cluster stays healthy.
    Cancelled {
        /// The cancelled job's id.
        job: u64,
    },
    /// The job's deadline passed before it completed (possibly while it
    /// was still queued).
    DeadlineExceeded {
        /// The expired job's id.
        job: u64,
    },
    /// The server shed this submit to protect the interactive lane: queue
    /// occupancy crossed the brownout threshold. Transient — retry after
    /// the hinted delay.
    Overloaded {
        /// Suggested client backoff before resubmitting, milliseconds.
        retry_after_ms: u64,
    },
    /// The server-wide retry budget (token bucket shared by every
    /// session) is exhausted: retrying now would join a retry storm
    /// against an already-degraded cluster, so the failure is surfaced
    /// instead.
    RetryBudgetExhausted,
}

impl JobError {
    /// Whether the recovery driver may retry after this failure. The
    /// transient class is machine loss (the whole point of degraded-mode
    /// recovery) plus the serve layer's load rejections — `QueueFull` and
    /// `Overloaded` clear on their own once pressure drains, so a backed-
    /// off retry is the right client response. Protocol violations and
    /// corrupt checkpoints are deterministic and would only fail again;
    /// `AdmissionDenied` is a sizing judgment that no retry changes; and a
    /// spent retry budget is *the* signal to stop retrying.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            JobError::MachineDown { .. } | JobError::QueueFull { .. } | JobError::Overloaded { .. }
        )
    }

    /// Whether this failure is a cancellation (explicit cancel or missed
    /// deadline). Cancellations are *fatal by design*: the client asked
    /// the job to stop, so the recovery driver's `RetryPolicy` must never
    /// re-run it, even though the cluster itself is still healthy.
    pub fn is_cancellation(&self) -> bool {
        matches!(
            self,
            JobError::Cancelled { .. } | JobError::DeadlineExceeded { .. }
        )
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::MachineDown { machine } => {
                write!(f, "machine {machine} is down (crashed or partitioned)")
            }
            JobError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            JobError::CheckpointCorrupt(msg) => write!(f, "checkpoint corrupt: {msg}"),
            JobError::RetriesExhausted { attempts, last } => {
                write!(
                    f,
                    "job failed after {attempts} attempts; last error: {last}"
                )
            }
            JobError::QueueFull { queued, depth } => {
                write!(
                    f,
                    "job rejected: submission queue is full ({queued} of {depth} slots taken)"
                )
            }
            JobError::AdmissionDenied {
                estimated_bytes,
                budget_bytes,
            } => {
                write!(
                    f,
                    "job denied admission: estimated {estimated_bytes} bytes \
                     exceeds the {budget_bytes}-byte memory budget"
                )
            }
            JobError::Cancelled { job } => {
                write!(f, "job {job} was cancelled")
            }
            JobError::DeadlineExceeded { job } => {
                write!(f, "job {job} exceeded its deadline")
            }
            JobError::Overloaded { retry_after_ms } => {
                write!(
                    f,
                    "server overloaded: batch lane shed, retry after {retry_after_ms} ms"
                )
            }
            JobError::RetryBudgetExhausted => {
                write!(f, "server-wide retry budget exhausted; not retrying")
            }
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::RetriesExhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

/// Shared cluster liveness state. See the module docs.
pub struct ClusterHealth {
    aborted: AtomicBool,
    error: Mutex<Option<JobError>>,
    /// Per-machine last-heard timestamps, nanoseconds since `epoch`.
    last_heard: Vec<AtomicU64>,
    epoch: Instant,
}

impl ClusterHealth {
    pub fn new(machines: usize) -> Self {
        ClusterHealth {
            aborted: AtomicBool::new(false),
            error: Mutex::new(None),
            last_heard: (0..machines).map(|_| AtomicU64::new(0)).collect(),
            epoch: Instant::now(),
        }
    }

    pub fn machines(&self) -> usize {
        self.last_heard.len()
    }

    /// Nanoseconds since this cluster's health epoch.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Refreshes the last-heard clock for `src`. Called by copiers on every
    /// received envelope, so any traffic counts as liveness — heartbeats
    /// only matter on otherwise-idle links.
    #[inline]
    pub fn heard(&self, src: MachineId) {
        if let Some(c) = self.last_heard.get(src as usize) {
            c.store(self.now_ns(), Ordering::Relaxed);
        }
    }

    /// Records a failure and flips the cluster into the aborted state.
    /// Only the first error is kept; returns whether this call was first.
    pub fn abort(&self, err: JobError) -> bool {
        let mut slot = self.error.lock().unwrap_or_else(|e| e.into_inner());
        let first = slot.is_none();
        if first {
            *slot = Some(err);
        }
        drop(slot);
        self.aborted.store(true, Ordering::Release);
        first
    }

    #[inline]
    pub fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::Acquire)
    }

    /// The recorded failure, if any.
    pub fn error(&self) -> Option<JobError> {
        self.error.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Watchdog check run from machine `me`'s poller tick: scans peer
    /// last-heard clocks against `deadline_ms` of silence. Returns the
    /// machine to blame, or `None` if all peers are live. When *every*
    /// peer has gone silent simultaneously, the caller itself is the
    /// partitioned one, so the blame lands on `me` — this keeps the error
    /// deterministic under a single-machine crash plan.
    pub fn stale_peer(&self, me: MachineId, deadline_ms: u64) -> Option<MachineId> {
        let machines = self.last_heard.len();
        if machines <= 1 {
            return None;
        }
        let now = self.now_ns();
        let deadline_ns = deadline_ms.saturating_mul(1_000_000);
        let mut first_stale = None;
        let mut stale = 0usize;
        for (p, clock) in self.last_heard.iter().enumerate() {
            if p == me as usize {
                continue;
            }
            let heard = clock.load(Ordering::Relaxed);
            if now.saturating_sub(heard) > deadline_ns {
                stale += 1;
                if first_stale.is_none() {
                    first_stale = Some(p as MachineId);
                }
            }
        }
        if stale == machines - 1 {
            Some(me)
        } else {
            first_stale
        }
    }

    /// Marks every machine as freshly heard. Called once at assembly so the
    /// watchdog grace period starts at cluster birth, not at epoch zero.
    pub fn reset_clocks(&self) {
        let now = self.now_ns();
        for c in &self.last_heard {
            c.store(now, Ordering::Relaxed);
        }
    }
}

/// Server-wide retry budget: a token bucket shared (behind an `Arc`) by
/// every session and recovery driver of one server, so concurrent tenants
/// cannot amplify a degraded cluster's failure into a retry storm. Each
/// retry attempt must first take a token; when the bucket is dry the
/// caller surfaces [`JobError::RetryBudgetExhausted`] instead of retrying.
/// Tokens refill at a fixed rate up to the configured capacity.
///
/// A capacity of `0` means *unbudgeted*: [`RetryBudget::try_acquire`]
/// always succeeds and nothing is counted.
#[derive(Debug)]
pub struct RetryBudget {
    capacity: u32,
    refill_ms: u64,
    state: Mutex<BudgetState>,
    exhausted: AtomicU64,
}

#[derive(Debug)]
struct BudgetState {
    tokens: u32,
    last_refill: Instant,
}

impl RetryBudget {
    /// A bucket holding `capacity` tokens, refilling one token every
    /// `refill_ms` milliseconds. `capacity = 0` disables budgeting.
    pub fn new(capacity: u32, refill_ms: u64) -> Self {
        RetryBudget {
            capacity,
            refill_ms: refill_ms.max(1),
            state: Mutex::new(BudgetState {
                tokens: capacity,
                last_refill: Instant::now(),
            }),
            exhausted: AtomicU64::new(0),
        }
    }

    /// An unbudgeted bucket: every acquire succeeds.
    pub fn unlimited() -> Self {
        RetryBudget::new(0, 1)
    }

    /// Takes one retry token. Returns `false` (and counts an exhaustion)
    /// when the bucket is dry; the caller must then fail with
    /// [`JobError::RetryBudgetExhausted`] rather than retry.
    pub fn try_acquire(&self) -> bool {
        if self.capacity == 0 {
            return true;
        }
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let elapsed_ms = st.last_refill.elapsed().as_millis() as u64;
        let refills = elapsed_ms / self.refill_ms;
        if refills > 0 {
            st.tokens = st
                .tokens
                .saturating_add(refills.min(self.capacity as u64) as u32)
                .min(self.capacity);
            st.last_refill = Instant::now();
        }
        if st.tokens > 0 {
            st.tokens -= 1;
            true
        } else {
            self.exhausted.fetch_add(1, Ordering::Relaxed);
            false
        }
    }

    /// Tokens currently available (refills applied lazily, so this is a
    /// lower bound between acquires).
    pub fn tokens(&self) -> u32 {
        if self.capacity == 0 {
            return u32::MAX;
        }
        self.state.lock().unwrap_or_else(|e| e.into_inner()).tokens
    }

    /// How many acquires were refused because the bucket was dry.
    pub fn exhausted_events(&self) -> u64 {
        self.exhausted.load(Ordering::Relaxed)
    }
}

/// Flap detector: counts watchdog trips per machine across recovery
/// attempts and quarantines a machine once it trips `threshold` times.
/// The recovery driver consults it on every `MachineDown`: below the
/// threshold the machine gets another chance at full cluster size; at the
/// threshold it is quarantined and the driver proactively degrades to a
/// P−1 restore instead of letting the flapper crash the next attempt too.
///
/// `threshold = 1` reproduces the pre-quarantine behavior exactly — the
/// first trip already drops the machine.
#[derive(Debug)]
pub struct FlapDetector {
    threshold: u32,
    trips: Vec<u32>,
    quarantined: Vec<bool>,
}

impl FlapDetector {
    /// Detector over `machines` machines quarantining at `threshold`
    /// trips (clamped to ≥ 1).
    pub fn new(machines: usize, threshold: u32) -> Self {
        FlapDetector {
            threshold: threshold.max(1),
            trips: vec![0; machines],
            quarantined: vec![false; machines],
        }
    }

    /// Records one watchdog trip against `machine`. Returns `true` when
    /// this trip quarantines it (its trip count reached the threshold).
    pub fn record_trip(&mut self, machine: MachineId) -> bool {
        let m = machine as usize;
        if m >= self.trips.len() || self.quarantined[m] {
            return false;
        }
        self.trips[m] += 1;
        if self.trips[m] >= self.threshold {
            self.quarantined[m] = true;
            true
        } else {
            false
        }
    }

    /// Whether `machine` has been quarantined.
    pub fn is_quarantined(&self, machine: MachineId) -> bool {
        self.quarantined
            .get(machine as usize)
            .copied()
            .unwrap_or(false)
    }

    /// Trips recorded against `machine` so far.
    pub fn trips(&self, machine: MachineId) -> u32 {
        self.trips.get(machine as usize).copied().unwrap_or(0)
    }

    /// Machines quarantined so far.
    pub fn quarantined_count(&self) -> usize {
        self.quarantined.iter().filter(|&&q| q).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_error_wins() {
        let h = ClusterHealth::new(3);
        assert!(!h.is_aborted());
        assert!(h.abort(JobError::MachineDown { machine: 2 }));
        assert!(!h.abort(JobError::Protocol("later".into())));
        assert!(h.is_aborted());
        assert_eq!(h.error(), Some(JobError::MachineDown { machine: 2 }));
    }

    #[test]
    fn watchdog_blames_silent_peer() {
        let h = ClusterHealth::new(3);
        h.reset_clocks();
        // Everyone fresh: no blame.
        assert_eq!(h.stale_peer(0, 1_000), None);
        std::thread::sleep(std::time::Duration::from_millis(8));
        // Machines 0 and 1 keep talking; machine 2 goes silent.
        h.heard(0);
        h.heard(1);
        assert_eq!(h.stale_peer(0, 5), Some(2));
        assert_eq!(h.stale_peer(1, 5), Some(2));
    }

    #[test]
    fn watchdog_blames_self_when_fully_partitioned() {
        let h = ClusterHealth::new(4);
        h.reset_clocks();
        std::thread::sleep(std::time::Duration::from_millis(8));
        // Machine 3 heard from nobody: it is the partitioned one.
        h.heard(3);
        assert_eq!(h.stale_peer(3, 5), Some(3));
    }

    #[test]
    fn single_machine_never_trips() {
        let h = ClusterHealth::new(1);
        assert_eq!(h.stale_peer(0, 0), None);
    }

    #[test]
    fn error_display() {
        let e = JobError::MachineDown { machine: 1 };
        assert!(e.to_string().contains("machine 1"));
        let e = JobError::Protocol("bad".into());
        assert!(e.to_string().contains("bad"));
        let e = JobError::CheckpointCorrupt("shard 3".into());
        assert!(e.to_string().contains("shard 3"));
        let e = JobError::RetriesExhausted {
            attempts: 4,
            last: Box::new(JobError::MachineDown { machine: 2 }),
        };
        assert!(e.to_string().contains("4 attempts"));
        assert!(e.to_string().contains("machine 2"));
        let e = JobError::QueueFull {
            queued: 8,
            depth: 8,
        };
        assert!(e.to_string().contains("8 of 8"));
        let e = JobError::AdmissionDenied {
            estimated_bytes: 4096,
            budget_bytes: 1024,
        };
        assert!(e.to_string().contains("4096"));
        assert!(e.to_string().contains("1024"));
        let e = JobError::Cancelled { job: 3 };
        assert!(e.to_string().contains("job 3"));
        let e = JobError::DeadlineExceeded { job: 9 };
        assert!(e.to_string().contains("job 9"));
        assert!(e.to_string().contains("deadline"));
        let e = JobError::Overloaded { retry_after_ms: 40 };
        assert!(e.to_string().contains("40 ms"));
        let e = JobError::RetryBudgetExhausted;
        assert!(e.to_string().contains("retry budget"));
    }

    #[test]
    fn error_classification_and_source() {
        use std::error::Error;
        assert!(JobError::MachineDown { machine: 0 }.is_transient());
        assert!(!JobError::Protocol("x".into()).is_transient());
        assert!(!JobError::CheckpointCorrupt("x".into()).is_transient());
        let e = JobError::RetriesExhausted {
            attempts: 2,
            last: Box::new(JobError::MachineDown { machine: 1 }),
        };
        assert!(!e.is_transient());
        // `?` with Box<dyn Error> works and the chain reaches the cause.
        let cause = e.source().expect("has source");
        assert!(cause.to_string().contains("machine 1"));
    }

    /// Pins the serve-layer retry classification: load rejections
    /// (`QueueFull`, `Overloaded`) clear on their own and are retryable
    /// with backoff; `AdmissionDenied` is a sizing judgment no retry
    /// changes; `RetryBudgetExhausted` is the signal to *stop* retrying.
    #[test]
    fn serve_layer_classification() {
        assert!(JobError::QueueFull {
            queued: 8,
            depth: 8
        }
        .is_transient());
        assert!(JobError::Overloaded { retry_after_ms: 50 }.is_transient());
        assert!(!JobError::AdmissionDenied {
            estimated_bytes: 2,
            budget_bytes: 1
        }
        .is_transient());
        assert!(!JobError::RetryBudgetExhausted.is_transient());
        assert!(!JobError::Overloaded { retry_after_ms: 50 }.is_cancellation());
        assert!(!JobError::RetryBudgetExhausted.is_cancellation());
    }

    #[test]
    fn retry_budget_exhausts_and_refills() {
        let b = RetryBudget::new(2, 10_000); // refill far in the future
        assert!(b.try_acquire());
        assert!(b.try_acquire());
        assert!(!b.try_acquire(), "third acquire must find the bucket dry");
        assert!(!b.try_acquire());
        assert_eq!(b.exhausted_events(), 2);
        assert_eq!(b.tokens(), 0);
        // A fast-refilling bucket recovers.
        let b = RetryBudget::new(1, 1);
        assert!(b.try_acquire());
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(b.try_acquire(), "token refilled after the interval");
        // Capacity 0 = unbudgeted.
        let b = RetryBudget::unlimited();
        for _ in 0..100 {
            assert!(b.try_acquire());
        }
        assert_eq!(b.exhausted_events(), 0);
    }

    #[test]
    fn flap_detector_quarantines_at_threshold() {
        let mut f = FlapDetector::new(4, 2);
        assert!(!f.record_trip(1), "first trip is below the threshold");
        assert!(!f.is_quarantined(1));
        assert!(f.record_trip(1), "second trip quarantines");
        assert!(f.is_quarantined(1));
        assert_eq!(f.trips(1), 2);
        // Further trips on a quarantined machine are no-ops.
        assert!(!f.record_trip(1));
        assert_eq!(f.trips(1), 2);
        assert_eq!(f.quarantined_count(), 1);
        // Threshold 1 = legacy behavior: first trip quarantines.
        let mut f = FlapDetector::new(2, 1);
        assert!(f.record_trip(0));
        assert!(f.is_quarantined(0));
        // Out-of-range machines are ignored.
        assert!(!f.record_trip(9));
    }

    #[test]
    fn cancellation_classification() {
        assert!(JobError::Cancelled { job: 1 }.is_cancellation());
        assert!(JobError::DeadlineExceeded { job: 1 }.is_cancellation());
        assert!(!JobError::MachineDown { machine: 0 }.is_cancellation());
        assert!(!JobError::QueueFull {
            queued: 1,
            depth: 1
        }
        .is_cancellation());
        // Cancellations are never transient: the retry gate must treat
        // them as fatal even though the cluster is healthy.
        assert!(!JobError::Cancelled { job: 1 }.is_transient());
        assert!(!JobError::DeadlineExceeded { job: 1 }.is_transient());
    }
}
