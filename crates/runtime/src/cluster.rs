//! Cluster assembly, thread management, and the driver-side API.
//!
//! A [`Cluster`] instantiates `P` machines (Figure 1: "the same program is
//! instantiated on each machine"), pre-populates worker, copier, and poller
//! threads ("a set of worker threads is initialized by the Task Manager at
//! system start up"), and lets the driver run sequences of [`Phase`]s
//! separated by cluster-wide barriers — the synchronous stepwise execution
//! model of §3.1.

use crate::barrier::CentralBarrier;
use crate::checkpoint::{
    Checkpoint, CheckpointStore, JobProgress, MachineCheckpoint, PropMeta, PropShard, SaveOutcome,
};
use crate::config::Config;
use crate::copier;
use crate::fabric::{make_endpoints, Fabric, MachineEndpoints};
use crate::ghost::GhostTable;
use crate::health::{ClusterHealth, JobError};
use crate::ids::MachineId;
use crate::jobctx::{JobCtx, JobExec, JobOutcome, JobWire, PhaseSpan};
use crate::localgraph::LocalGraph;
use crate::machine::{MachineState, RmiFn};
use crate::message::{Envelope, MsgKind};
use crate::partition::Partitioning;
use crate::phase::{DistBarrierPhase, Phase, WorkerEnv};
use crate::props::{PropId, PropValue, ReduceOp, TypeTag};
use crate::stats::StatsSnapshot;
use crate::telemetry::{export, EventKind, HistogramSnapshot, Telemetry};
use crate::worker::{CommTuning, WorkerComm};
use crossbeam::channel::{unbounded, RecvTimeoutError};
use parking_lot::{Condvar, Mutex};
use pgxd_graph::{Graph, NodeId};
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Broadcast slot through which the driver hands phases to every worker.
struct PhaseControl {
    slot: Mutex<PhaseSlot>,
    workers_cv: Condvar,
    done: Mutex<u64>,
    done_cv: Condvar,
}

struct PhaseSlot {
    epoch: u64,
    phase: Option<Arc<dyn Phase>>,
    shutdown: bool,
}

impl PhaseControl {
    fn new() -> Self {
        PhaseControl {
            slot: Mutex::new(PhaseSlot {
                epoch: 0,
                phase: None,
                shutdown: false,
            }),
            workers_cv: Condvar::new(),
            done: Mutex::new(0),
            done_cv: Condvar::new(),
        }
    }
}

/// The distributed engine: `P` simulated machines plus their threads.
pub struct Cluster {
    machines: Vec<Arc<MachineState>>,
    endpoints: Vec<MachineEndpoints>,
    fabric: Arc<Fabric>,
    partition: Arc<Partitioning>,
    ghosts: GhostTable,
    config: Config,
    pending: Arc<AtomicI64>,
    health: Arc<ClusterHealth>,
    ctl: Arc<PhaseControl>,
    #[allow(dead_code)]
    barrier: Arc<CentralBarrier>,
    threads: Vec<JoinHandle<()>>,
    next_prop: u16,
    next_rmi: u16,
    dist_epoch: u64,
    /// Per-machine durable checkpoint stores (index = machine id).
    stores: Vec<Arc<CheckpointStore>>,
    /// Driver-assembled cluster checkpoints that were *durably complete*
    /// (every machine's shard readable back from its store), newest first,
    /// bounded by `config.recovery.retain`.
    ckpt_ring: VecDeque<Arc<Checkpoint>>,
    ckpt_seq: u64,
    /// Driver-supplied name of each phase run so far, indexed by
    /// `epoch - 1`; resolves trace events back to phase names at export.
    phase_labels: Vec<String>,
    /// The served job currently bracketed by
    /// [`Cluster::begin_job`]/[`Cluster::end_job`], if any.
    active_job: Option<ActiveJob>,
    /// Finished job executions, kept for the Chrome-trace job lanes.
    job_spans: Vec<JobExec>,
}

/// Window state captured at [`Cluster::begin_job`]: baselines the deltas
/// [`Cluster::end_job`] computes.
struct ActiveJob {
    ctx: JobCtx,
    enqueue_ns: u64,
    dispatch_ns: u64,
    /// `phase_labels.len()` at dispatch: epochs above this belong to the job.
    epoch_start: usize,
    stats_before: StatsSnapshot,
    read_rtt_before: HistogramSnapshot,
    flush_fill_before: HistogramSnapshot,
    copier_service_before: HistogramSnapshot,
}

impl Cluster {
    /// Loads `graph` into a simulated cluster: partitions it, selects
    /// ghosts, builds per-machine fragments, and starts all threads.
    pub fn load(graph: &Graph, config: Config) -> Result<Cluster, String> {
        config.validate()?;
        let p = config.machines;

        let partition = Arc::new(Partitioning::build(graph, p, config.partitioning));
        let ghosts = GhostTable::build(graph, config.ghost_threshold);
        Self::assemble(graph, config, partition, ghosts)
    }

    /// Like [`Cluster::load`] but with an explicitly chosen ghost set
    /// (Figure 6a controls the exact ghost count).
    pub fn load_with_ghosts(
        graph: &Graph,
        config: Config,
        ghost_nodes: Vec<NodeId>,
    ) -> Result<Cluster, String> {
        config.validate()?;
        let partition = Arc::new(Partitioning::build(
            graph,
            config.machines,
            config.partitioning,
        ));
        let ghosts = GhostTable::from_nodes(graph, ghost_nodes);
        Self::assemble(graph, config, partition, ghosts)
    }

    fn assemble(
        graph: &Graph,
        config: Config,
        partition: Arc<Partitioning>,
        ghosts: GhostTable,
    ) -> Result<Cluster, String> {
        let p = config.machines;
        let pending = Arc::new(AtomicI64::new(0));
        let health = Arc::new(ClusterHealth::new(p));
        let (endpoints, mut receivers) = make_endpoints(p, config.workers);

        // Build machines. All telemetry registries share one epoch Instant
        // so their timestamps land on a single comparable timeline.
        let epoch = Instant::now();
        let mut machines = Vec::with_capacity(p);
        for m in 0..p {
            let local = Arc::new(LocalGraph::build(
                graph,
                &partition,
                &ghosts,
                m as MachineId,
            ));
            let (out_tx, out_rx) = unbounded();
            let rx = receivers.remove(0);
            machines.push(Arc::new(MachineState::new(
                m as MachineId,
                config.clone(),
                local,
                partition.clone(),
                ghosts.clone(),
                rx,
                (out_tx, out_rx),
                pending.clone(),
                Telemetry::new(m as u16, &config, epoch),
                health.clone(),
            )));
        }

        let telemetry = machines.iter().map(|m| m.telemetry.clone()).collect();
        let fabric = Arc::new(Fabric::with_faults(
            endpoints.clone(),
            telemetry,
            config.net,
            config.fault,
        ));

        let ctl = Arc::new(PhaseControl::new());
        let barrier = Arc::new(CentralBarrier::new(p * config.workers));

        // The watchdog grace period starts at cluster birth, not epoch zero.
        health.reset_clocks();

        let mut threads = Vec::new();
        // Pollers: one per machine.
        for m in &machines {
            let m = m.clone();
            let fabric = fabric.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("pgxd-poller-{}", m.id))
                    .spawn(move || poller_loop(m, fabric))
                    .map_err(|e| e.to_string())?,
            );
        }
        // Copiers.
        for m in &machines {
            for c in 0..config.copiers {
                let m = m.clone();
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("pgxd-copier-{}-{}", m.id, c))
                        .spawn(move || copier::copier_loop(m))
                        .map_err(|e| e.to_string())?,
                );
            }
        }
        // Workers.
        for m in &machines {
            for w in 0..config.workers {
                let m = m.clone();
                let ctl = ctl.clone();
                let barrier = barrier.clone();
                let pending = pending.clone();
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("pgxd-worker-{}-{}", m.id, w))
                        .spawn(move || worker_loop(m, w, ctl, barrier, pending))
                        .map_err(|e| e.to_string())?,
                );
            }
        }

        let retain = config.recovery.retain;
        let storage_plan = config.storage_fault;
        Ok(Cluster {
            machines,
            endpoints,
            fabric,
            partition,
            ghosts,
            config,
            pending,
            health,
            ctl,
            barrier,
            threads,
            next_prop: 0,
            next_rmi: 0,
            dist_epoch: 0,
            stores: (0..p)
                .map(|_| Arc::new(CheckpointStore::with_plan(retain, storage_plan)))
                .collect(),
            ckpt_ring: VecDeque::new(),
            ckpt_seq: 0,
            phase_labels: Vec::new(),
            active_job: None,
            job_spans: Vec::new(),
        })
    }

    /// The cluster configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Number of machines.
    pub fn num_machines(&self) -> usize {
        self.config.machines
    }

    /// Total vertices in the distributed graph.
    pub fn num_nodes(&self) -> usize {
        self.partition.num_nodes()
    }

    /// The shared partitioning.
    pub fn partition(&self) -> &Arc<Partitioning> {
        &self.partition
    }

    /// The shared ghost table.
    pub fn ghosts(&self) -> &GhostTable {
        &self.ghosts
    }

    /// Machine `m`'s state (driver-side sequential access between jobs).
    pub fn machine(&self, m: usize) -> &Arc<MachineState> {
        &self.machines[m]
    }

    /// All machines.
    pub fn machines(&self) -> &[Arc<MachineState>] {
        &self.machines
    }

    /// The interconnect (for traffic statistics).
    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// The cluster-global pending-entry counter.
    pub fn pending(&self) -> &Arc<AtomicI64> {
        &self.pending
    }

    /// The shared liveness/abort state.
    pub fn health(&self) -> &Arc<ClusterHealth> {
        &self.health
    }

    /// Sum of all machines' traffic counters (buffer-pool back-pressure
    /// events are folded in from the pools).
    pub fn total_stats(&self) -> StatsSnapshot {
        let mut total = self
            .machines
            .iter()
            .map(|m| m.stats.snapshot())
            .fold(StatsSnapshot::default(), |a, b| a + b);
        total.pool_exhausted += self
            .machines
            .iter()
            .map(|m| m.send_pool.exhausted_events())
            .sum::<u64>();
        total
    }

    // -----------------------------------------------------------------
    // Properties (driver side)
    // -----------------------------------------------------------------

    /// Registers a typed node property on every machine and returns its id.
    pub fn add_prop<T: PropValue>(&mut self, name: &str, default: T) -> PropId {
        self.add_prop_raw(name, T::TAG, default.to_bits())
    }

    /// Registers a property from raw parts.
    pub fn add_prop_raw(&mut self, name: &str, tag: TypeTag, default_bits: u64) -> PropId {
        let id = PropId(self.next_prop);
        self.next_prop = self
            .next_prop
            .checked_add(1)
            .expect("property ids exhausted");
        for m in &self.machines {
            m.props.register_at(id, name, tag, default_bits);
        }
        id
    }

    /// Drops a property on every machine. Ids are never reused.
    pub fn drop_prop(&mut self, id: PropId) {
        for m in &self.machines {
            m.props.drop_prop(id);
        }
    }

    /// Reads a property value of a global vertex (driver-side).
    pub fn get<T: PropValue>(&self, id: PropId, v: NodeId) -> T {
        let owner = self.partition.owner(v);
        let off = (v - self.partition.start(owner)) as usize;
        self.machines[owner as usize].props.column(id).get(off)
    }

    /// Writes a property value of a global vertex (driver-side; only legal
    /// between parallel regions).
    pub fn set<T: PropValue>(&self, id: PropId, v: NodeId, value: T) {
        let owner = self.partition.owner(v);
        let off = (v - self.partition.start(owner)) as usize;
        self.machines[owner as usize]
            .props
            .column(id)
            .set(off, value);
    }

    /// Fills a property (owned cells and ghost slots) on every machine.
    pub fn fill<T: PropValue>(&self, id: PropId, value: T) {
        for m in &self.machines {
            m.props.column(id).fill(value.to_bits());
        }
    }

    /// Gathers a property into a `Vec` indexed by global vertex id.
    pub fn gather<T: PropValue>(&self, id: PropId) -> Vec<T> {
        let mut out = Vec::with_capacity(self.num_nodes());
        for m in &self.machines {
            let col = m.props.column(id);
            for i in 0..m.num_local() {
                out.push(col.get::<T>(i));
            }
        }
        out
    }

    /// Reduces a property over all owned cells (driver-side sequential
    /// region helper, e.g. convergence checks).
    pub fn reduce<T: PropValue>(&self, id: PropId, op: ReduceOp) -> T {
        let mut acc: Option<u64> = None;
        for m in &self.machines {
            let col = m.props.column(id);
            for i in 0..m.num_local() {
                let bits = col.load_bits(i);
                acc = Some(match acc {
                    None => bits,
                    Some(a) => crate::props::reduce_bits(T::TAG, op, a, bits),
                });
            }
        }
        T::from_bits(acc.unwrap_or_else(|| crate::props::bottom_bits(T::TAG, op)))
    }

    /// Counts owned vertices whose `bool` property is true.
    pub fn count_true(&self, id: PropId) -> usize {
        let mut n = 0usize;
        for m in &self.machines {
            let col = m.props.column(id);
            for i in 0..m.num_local() {
                if col.load_bits(i) != 0 {
                    n += 1;
                }
            }
        }
        n
    }

    // -----------------------------------------------------------------
    // Checkpoint / restore
    // -----------------------------------------------------------------

    /// Machine `m`'s checkpoint store.
    pub fn checkpoint_store(&self, m: usize) -> &Arc<CheckpointStore> {
        &self.stores[m]
    }

    /// The newest durably-complete checkpoint, if any. The recovery driver
    /// extracts this *before* dropping a failed engine — the checkpoint is
    /// plain copied memory, never a view into the dead cluster.
    pub fn last_checkpoint(&self) -> Option<Arc<Checkpoint>> {
        self.ckpt_ring.front().cloned()
    }

    /// The retained checkpoints, newest first. A corrupt newest entry is
    /// only discovered at restore-time verification; the older entries are
    /// what the recovery driver falls back to.
    pub fn checkpoint_ring(&self) -> Vec<Arc<Checkpoint>> {
        self.ckpt_ring.iter().cloned().collect()
    }

    /// Takes a barrier-consistent snapshot of every live property plus job
    /// progress. Legal only between `try_run_*` calls: the cluster is then
    /// quiescent (the pending-entry counter has drained to zero), so no
    /// in-flight read or write can straddle the copy — the trailing phase
    /// barrier *is* the consistency point. Each machine's shard is written
    /// through its [`CheckpointStore`] (where storage faults may lose,
    /// corrupt, or delay it); the driver then assembles the cluster
    /// checkpoint from what each store *durably holds* for this sequence —
    /// a read-after-write — so a lost or still-delayed shard makes the
    /// sequence incomplete and it never enters the retention ring, while a
    /// corrupted shard does enter and is caught by restore-time checksums.
    pub fn take_checkpoint(
        &mut self,
        iteration: u64,
        scalars: Vec<u64>,
    ) -> Result<Arc<Checkpoint>, JobError> {
        if let Some(err) = self.health.error() {
            return Err(err);
        }
        debug_assert_eq!(
            self.pending.load(Ordering::SeqCst),
            0,
            "checkpoint taken while entries are in flight"
        );
        let t0 = Instant::now();
        let metas: Vec<PropMeta> = self.machines[0]
            .props
            .live()
            .into_iter()
            .map(|(id, e)| PropMeta {
                id,
                name: e.name.clone(),
                tag: e.column.tag(),
                default_bits: e.default_bits,
            })
            .collect();
        self.ckpt_seq += 1;
        let seq = self.ckpt_seq;
        let mut shards_by_machine = Vec::with_capacity(self.machines.len());
        let mut total_bytes = 0u64;
        for m in &self.machines {
            let mut shards = Vec::with_capacity(metas.len());
            for meta in &metas {
                let col = m.props.column(meta.id);
                let owned: Vec<u64> = (0..col.len_local()).map(|i| col.load_bits(i)).collect();
                let ghost: Vec<u64> = (col.len_local()..col.len_total())
                    .map(|i| col.load_bits(i))
                    .collect();
                shards.push(PropShard::new(meta.id, owned, ghost));
            }
            let mc = Arc::new(MachineCheckpoint {
                machine: m.id,
                start: self.partition.start(m.id),
                shards,
            });
            let bytes = mc.bytes() as u64;
            total_bytes += bytes;
            m.stats.checkpoints_taken.fetch_add(1, Ordering::Relaxed);
            m.stats.checkpoint_bytes.fetch_add(bytes, Ordering::Relaxed);
            m.telemetry.record_checkpoint_bytes(bytes);
            match self.stores[m.id as usize].save(seq, mc.clone()) {
                SaveOutcome::Stored => {}
                SaveOutcome::Lost => {
                    m.stats.ckpt_shards_lost.fetch_add(1, Ordering::Relaxed);
                }
                SaveOutcome::Corrupted => {
                    m.stats
                        .ckpt_shards_corrupted
                        .fetch_add(1, Ordering::Relaxed);
                }
                SaveOutcome::Delayed => {
                    m.stats.ckpt_shards_delayed.fetch_add(1, Ordering::Relaxed);
                }
            }
            shards_by_machine.push(mc);
        }
        // Assemble the cluster checkpoint from what each store durably
        // holds (read-after-write through the fault plan), not from the
        // in-memory shards we just built.
        let durable: Option<Vec<Arc<MachineCheckpoint>>> = self
            .machines
            .iter()
            .map(|m| self.stores[m.id as usize].get(seq))
            .collect();
        let make_ckpt = |machines: Vec<Arc<MachineCheckpoint>>| {
            Arc::new(Checkpoint {
                seq,
                num_nodes: self.num_nodes(),
                progress: JobProgress {
                    iteration,
                    phase_epoch: self.phase_labels.len() as u64,
                    scalars: scalars.clone(),
                },
                props: metas.clone(),
                machines,
            })
        };
        if let Some(m0) = self.machines.first() {
            m0.telemetry
                .record_checkpoint_ns(t0.elapsed().as_nanos() as u64);
            m0.telemetry
                .trace(0, EventKind::CheckpointTaken, total_bytes);
        }
        match durable {
            Some(machines) => {
                // Durably complete (possibly with silently corrupted shards
                // — restore-time checksums are the detector): retain it.
                let ckpt = make_ckpt(machines);
                self.ckpt_ring.push_front(ckpt.clone());
                self.ckpt_ring.truncate(self.config.recovery.retain.max(1));
                Ok(ckpt)
            }
            None => {
                // A shard was lost or is still write-behind: this sequence
                // is not restorable, so it never enters the ring. Hand the
                // caller the in-memory assembly for inspection only.
                Ok(make_ckpt(shards_by_machine))
            }
        }
    }

    /// Restores property state from `ckpt`, verifying every shard checksum
    /// first. Every checkpointed property must already be registered with
    /// the same id and type (the resuming algorithm re-runs its setup,
    /// which re-registers properties in the same order).
    ///
    /// Two shapes are supported: a cluster *identical* to the snapshot's
    /// (same machine count, partition, ghost set) gets a bit-exact restore
    /// of owned and ghost regions; any other shape — the degraded P−1
    /// survivor cluster after a crash — gets each property's reassembled
    /// global column re-scattered under *this* cluster's partitioning, with
    /// ghost replicas re-primed from owner values (the next job's ghost
    /// push / bottom-init overwrites them before any read).
    ///
    /// Health clocks are reset on success so a recovered run does not
    /// immediately re-trip the crash watchdog.
    pub fn restore_checkpoint(&mut self, ckpt: &Checkpoint) -> Result<(), JobError> {
        if let Some(err) = self.health.error() {
            return Err(err);
        }
        ckpt.verify()?;
        if ckpt.num_nodes != self.num_nodes() {
            return Err(JobError::CheckpointCorrupt(format!(
                "checkpoint covers {} nodes but the cluster holds {}",
                ckpt.num_nodes,
                self.num_nodes()
            )));
        }
        for meta in &ckpt.props {
            for m in &self.machines {
                let col = m.props.try_column(meta.id).ok_or_else(|| {
                    JobError::CheckpointCorrupt(format!(
                        "property {:?} ({}) is not registered on machine {}",
                        meta.id, meta.name, m.id
                    ))
                })?;
                if col.tag() != meta.tag {
                    return Err(JobError::CheckpointCorrupt(format!(
                        "property {} changed type between snapshot and restore",
                        meta.name
                    )));
                }
            }
        }
        let same_shape = ckpt.machines.len() == self.machines.len()
            && ckpt.machines.iter().all(|mc| {
                let m = &self.machines[mc.machine as usize];
                mc.start == self.partition.start(mc.machine)
                    && mc.owned_len() == m.num_local()
                    && mc.shards.iter().all(|s| s.ghost.len() == self.ghosts.len())
            });
        if same_shape {
            for mc in &ckpt.machines {
                let m = &self.machines[mc.machine as usize];
                for shard in &mc.shards {
                    let col = m.props.column(shard.id);
                    for (i, &bits) in shard.owned.iter().enumerate() {
                        col.store_bits(i, bits);
                    }
                    let base = col.len_local();
                    for (i, &bits) in shard.ghost.iter().enumerate() {
                        col.store_bits(base + i, bits);
                    }
                }
            }
        } else {
            for meta in &ckpt.props {
                let global = ckpt.global_bits(meta.id)?;
                for m in &self.machines {
                    let col = m.props.column(meta.id);
                    let start = self.partition.start(m.id) as usize;
                    for i in 0..m.num_local() {
                        col.store_bits(i, global[start + i]);
                    }
                    let base = col.len_local();
                    for ord in 0..self.ghosts.len() {
                        let v = self.ghosts.node_at(ord as u32);
                        col.store_bits(base + ord, global[v as usize]);
                    }
                }
            }
        }
        for m in &self.machines {
            m.stats.restores_applied.fetch_add(1, Ordering::Relaxed);
        }
        self.health.reset_clocks();
        Ok(())
    }

    /// Records a driver-side trace event (recovery lifecycle markers) on
    /// machine 0's worker-0 ring.
    pub fn trace_driver_event(&self, kind: EventKind, arg: u64) {
        if let Some(m0) = self.machines.first() {
            m0.telemetry.trace(0, kind, arg);
        }
    }

    // -----------------------------------------------------------------
    // Job-scoped attribution (serve layer)
    // -----------------------------------------------------------------

    /// Opens a per-job attribution window: every machine's telemetry
    /// starts charging wire traffic to `ctx`, and counter/histogram
    /// baselines are captured for the window deltas. Called by the job
    /// dispatcher right before it runs the job body; jobs serialize on
    /// the dispatcher thread, so at most one window is open.
    pub fn begin_job(&mut self, ctx: JobCtx, enqueue_ns: u64) {
        for m in &self.machines {
            m.telemetry.begin_job(ctx);
        }
        let dispatch_ns = self
            .machines
            .first()
            .map(|m| m.telemetry.now_ns())
            .unwrap_or(0);
        self.active_job = Some(ActiveJob {
            ctx,
            enqueue_ns,
            dispatch_ns,
            epoch_start: self.phase_labels.len(),
            stats_before: self.total_stats(),
            read_rtt_before: self.merged_hist(|t| t.read_rtt_snapshot()),
            flush_fill_before: self.merged_hist(|t| t.flush_fill_snapshot()),
            copier_service_before: self.merged_hist(|t| t.copier_service_snapshot()),
        });
    }

    /// Closes the attribution window opened by [`Cluster::begin_job`] and
    /// assembles the [`JobExec`]: job-charged wire traffic summed across
    /// machines, cluster-wide counter and histogram deltas, tracer-derived
    /// phase/barrier spans, and recovery retries observed in the window.
    /// Engine-level compute/comm/drain seconds are filled in by the caller
    /// (the `pgxd` crate), which owns the per-phase timing breakdowns.
    pub fn end_job(&mut self, outcome: JobOutcome) -> Option<JobExec> {
        let aj = self.active_job.take()?;
        let mut wire = JobWire::default();
        for m in &self.machines {
            wire += m.telemetry.end_job();
        }
        let done_ns = self
            .machines
            .first()
            .map(|m| m.telemetry.now_ns())
            .unwrap_or(0);
        let (phases, retry_ns) = self.scan_job_events(aj.epoch_start, aj.dispatch_ns, done_ns);
        Some(JobExec {
            ctx: aj.ctx,
            outcome,
            enqueue_ns: aj.enqueue_ns,
            dispatch_ns: aj.dispatch_ns,
            done_ns,
            traffic: self.total_stats() - aj.stats_before,
            wire,
            read_rtt: self.merged_hist(|t| t.read_rtt_snapshot()) - aj.read_rtt_before,
            flush_fill: self.merged_hist(|t| t.flush_fill_snapshot()) - aj.flush_fill_before,
            copier_service: self.merged_hist(|t| t.copier_service_snapshot())
                - aj.copier_service_before,
            retries: retry_ns.len() as u64,
            retry_ns,
            phases,
            compute_s: 0.0,
            comm_s: 0.0,
            drain_s: 0.0,
            checkpoint_s: 0.0,
            engine_jobs: 0,
        })
    }

    /// Appends a finished job execution to the trace export's job lanes.
    pub fn push_job_span(&mut self, exec: JobExec) {
        self.job_spans.push(exec);
    }

    /// Executions recorded via [`Cluster::push_job_span`], oldest first.
    pub fn job_spans(&self) -> &[JobExec] {
        &self.job_spans
    }

    fn merged_hist(&self, pick: fn(&Telemetry) -> HistogramSnapshot) -> HistogramSnapshot {
        self.machines.iter().map(|m| pick(&m.telemetry)).sum()
    }

    /// Reconstructs the job's phase spans (and recovery-retry timestamps)
    /// from the worker tracer rings: for each epoch the job ran, the wall
    /// is earliest `PhaseStart` → latest `PhaseEnd` across all machines,
    /// and barrier residence is the mean per-worker `BarrierExit` −
    /// `BarrierEnter`. Phases whose events were evicted from a ring are
    /// reported from whatever survives; fully evicted epochs are skipped.
    fn scan_job_events(
        &self,
        epoch_start: usize,
        from_ns: u64,
        to_ns: u64,
    ) -> (Vec<PhaseSpan>, Vec<u64>) {
        let count = self.phase_labels.len().saturating_sub(epoch_start);
        let mut start: Vec<Option<u64>> = vec![None; count];
        let mut end: Vec<Option<u64>> = vec![None; count];
        let mut barrier_sum = vec![0u64; count];
        let mut barrier_pairs = vec![0u64; count];
        let mut retry_ns = Vec::new();
        for m in &self.machines {
            let t = &m.telemetry;
            for w in 0..t.workers() {
                // Per-worker open barrier timestamps, indexed like `start`.
                let mut entered: Vec<Option<u64>> = vec![None; count];
                for e in t.worker_events(w) {
                    if e.kind == EventKind::RecoveryStart && e.ts_ns >= from_ns && e.ts_ns <= to_ns
                    {
                        retry_ns.push(e.ts_ns);
                        continue;
                    }
                    let idx = match (e.arg as usize).checked_sub(epoch_start + 1) {
                        Some(i) if i < count => i,
                        _ => continue,
                    };
                    match e.kind {
                        EventKind::PhaseStart => {
                            start[idx] = Some(start[idx].map_or(e.ts_ns, |s| s.min(e.ts_ns)));
                        }
                        EventKind::PhaseEnd => {
                            end[idx] = Some(end[idx].map_or(e.ts_ns, |s| s.max(e.ts_ns)));
                        }
                        EventKind::BarrierEnter => entered[idx] = Some(e.ts_ns),
                        EventKind::BarrierExit => {
                            if let Some(enter) = entered[idx].take() {
                                barrier_sum[idx] += e.ts_ns.saturating_sub(enter);
                                barrier_pairs[idx] += 1;
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        retry_ns.sort_unstable();
        retry_ns.dedup();
        let phases = (0..count)
            .filter_map(|i| {
                let (s, e) = (start[i]?, end[i]?);
                Some(PhaseSpan {
                    label: self.phase_labels[epoch_start + i].clone(),
                    epoch: (epoch_start + i + 1) as u64,
                    start_ns: s,
                    end_ns: e.max(s),
                    barrier_ns: barrier_sum[i].checked_div(barrier_pairs[i]).unwrap_or(0),
                })
            })
            .collect();
        (phases, retry_ns)
    }

    // -----------------------------------------------------------------
    // RMI
    // -----------------------------------------------------------------

    /// Registers a remote method on every machine; returns its RMI id.
    pub fn register_rmi(&mut self, f: Arc<RmiFn>) -> u16 {
        let id = self.next_rmi;
        self.next_rmi += 1;
        for m in &self.machines {
            m.register_rmi_at(id, f.clone());
        }
        id
    }

    // -----------------------------------------------------------------
    // Phase execution
    // -----------------------------------------------------------------

    /// Runs one phase on every worker of every machine and waits for the
    /// trailing cluster barrier. Under `Config::strict_distributed`, every
    /// phase is additionally fenced by the *message-based* barrier, so
    /// inter-phase synchronization goes through the fabric exactly as on a
    /// real cluster.
    ///
    /// **Deprecated:** panics on cluster abort. New code should call
    /// [`Cluster::try_run_phase`]; this wrapper exists only for callers
    /// that genuinely cannot recover.
    pub fn run_phase(&mut self, phase: Arc<dyn Phase>) {
        self.try_run_phase(phase).expect("cluster job failed");
    }

    /// Like [`Cluster::run_phase`] but names the phase; the label shows up
    /// in exported traces and reports.
    ///
    /// **Deprecated:** panics on cluster abort. New code should call
    /// [`Cluster::try_run_labeled_phase`].
    pub fn run_labeled_phase(&mut self, label: &str, phase: Arc<dyn Phase>) {
        self.try_run_labeled_phase(label, phase)
            .expect("cluster job failed");
    }

    /// Fallible [`Cluster::run_phase`]: returns the recorded [`JobError`]
    /// if the cluster aborted during (or before) the phase instead of
    /// panicking. An aborted cluster is terminal — every subsequent call
    /// reports the same error without running anything.
    pub fn try_run_phase(&mut self, phase: Arc<dyn Phase>) -> Result<(), JobError> {
        self.try_run_labeled_phase("phase", phase)
    }

    /// Fallible [`Cluster::run_labeled_phase`].
    pub fn try_run_labeled_phase(
        &mut self,
        label: &str,
        phase: Arc<dyn Phase>,
    ) -> Result<(), JobError> {
        if let Some(err) = self.health.error() {
            return Err(err);
        }
        self.run_phase_inner(phase, label);
        self.reap_abort()?;
        if self.config.strict_distributed {
            let epoch = self.dist_epoch;
            self.dist_epoch += 1;
            self.run_phase_inner(Arc::new(DistBarrierPhase { epoch }), "dist_barrier");
            self.reap_abort()?;
        }
        self.retune_flush();
        Ok(())
    }

    /// Adaptive-flush control step: every machine's controller digests the
    /// finished phase's fill/round-trip observations and may move its
    /// effective flush threshold. Runs between phase barriers, so no worker
    /// observes the threshold moving mid-buffer. One branch per machine
    /// when `adaptive_flush` is off.
    fn retune_flush(&mut self) {
        for m in &self.machines {
            if let Some((_, new)) = m.flush.retune() {
                m.telemetry.trace(0, EventKind::FlushRetune, new as u64);
            }
        }
    }

    /// Converts a recorded abort into an error, resetting the pending
    /// counter: once envelopes were lost or abandoned, its accounting is
    /// unrecoverable and it must not poison the leak assertion.
    fn reap_abort(&mut self) -> Result<(), JobError> {
        match self.health.error() {
            Some(err) => {
                self.pending.store(0, Ordering::SeqCst);
                Err(err)
            }
            None => Ok(()),
        }
    }

    fn run_phase_inner(&mut self, phase: Arc<dyn Phase>, label: &str) {
        self.phase_labels.push(label.to_string());
        debug_assert_eq!(
            self.pending.load(Ordering::SeqCst),
            0,
            "pending entries leaked from a previous phase"
        );
        let epoch = {
            let mut slot = self.ctl.slot.lock();
            slot.epoch += 1;
            slot.phase = Some(phase);
            self.ctl.workers_cv.notify_all();
            slot.epoch
        };
        let mut done = self.ctl.done.lock();
        while *done < epoch {
            self.ctl.done_cv.wait(&mut done);
        }
    }

    /// Runs a sequence of phases back to back.
    ///
    /// **Deprecated:** panics on cluster abort; prefer
    /// [`Cluster::try_run_phases`].
    pub fn run_phases(&mut self, phases: Vec<Arc<dyn Phase>>) {
        self.try_run_phases(phases).expect("cluster job failed");
    }

    /// Fallible [`Cluster::run_phases`]: stops at the first failing phase.
    pub fn try_run_phases(&mut self, phases: Vec<Arc<dyn Phase>>) -> Result<(), JobError> {
        for p in phases {
            self.try_run_phase(p)?;
        }
        Ok(())
    }

    /// Crosses the message-based distributed barrier once (Figure 5b).
    pub fn run_dist_barrier(&mut self) {
        let epoch = self.dist_epoch;
        self.dist_epoch += 1;
        self.run_phase_inner(Arc::new(DistBarrierPhase { epoch }), "dist_barrier");
    }

    // -----------------------------------------------------------------
    // Telemetry export
    // -----------------------------------------------------------------

    /// Whether histogram/tracer telemetry is being recorded.
    pub fn telemetry_enabled(&self) -> bool {
        self.machines
            .first()
            .map(|m| m.telemetry.enabled())
            .unwrap_or(false)
    }

    /// Labels of the phases run so far (index = epoch − 1).
    pub fn phase_labels(&self) -> &[String] {
        &self.phase_labels
    }

    /// Per-machine telemetry registries.
    pub fn telemetries(&self) -> Vec<Arc<Telemetry>> {
        self.machines.iter().map(|m| m.telemetry.clone()).collect()
    }

    /// Renders the run so far as a Chrome `trace_event` JSON document
    /// (open in Perfetto or chrome://tracing). Call between phases — the
    /// tracers must be quiescent.
    pub fn trace_json(&self) -> String {
        export::chrome_trace_with_jobs(&self.telemetries(), &self.phase_labels, &self.job_spans)
            .to_pretty()
    }

    /// Renders the metrics report (stats, histograms, traffic matrix) as
    /// JSON, with `extra` driver-supplied top-level fields appended.
    pub fn report_json(&self, extra: Vec<(String, export::json::Value)>) -> String {
        export::metrics_report(&self.telemetries(), &self.phase_labels, extra).to_pretty()
    }

    /// Writes `trace.json` and `report.json` into `dir` (created if
    /// needed); returns their paths.
    pub fn export_telemetry(&self, dir: &Path) -> std::io::Result<(PathBuf, PathBuf)> {
        self.export_telemetry_with(dir, Vec::new())
    }

    /// [`Cluster::export_telemetry`] with extra report fields.
    pub fn export_telemetry_with(
        &self,
        dir: &Path,
        extra: Vec<(String, export::json::Value)>,
    ) -> std::io::Result<(PathBuf, PathBuf)> {
        std::fs::create_dir_all(dir)?;
        let trace_path = dir.join("trace.json");
        let report_path = dir.join("report.json");
        std::fs::write(&trace_path, self.trace_json())?;
        std::fs::write(&report_path, self.report_json(extra))?;
        Ok((trace_path, report_path))
    }

    fn shutdown(&mut self) {
        // Workers first: no more phases will run.
        {
            let mut slot = self.ctl.slot.lock();
            slot.shutdown = true;
            self.ctl.workers_cv.notify_all();
        }
        // Copiers: one shutdown envelope per copier thread, delivered
        // directly to the copier queues.
        for (m, ep) in self.endpoints.iter().enumerate() {
            for _ in 0..self.config.copiers {
                let _ = ep.copier_tx.send(Envelope {
                    src: m as MachineId,
                    dst: m as MachineId,
                    kind: MsgKind::Shutdown,
                    worker: 0,
                    side_id: 0,
                    seq: 0,
                    payload: Vec::new(),
                });
            }
        }
        // Pollers: shutdown sentinel through each outbox.
        for m in &self.machines {
            let _ = m.outbox_tx.send(Envelope {
                src: m.id,
                dst: m.id,
                kind: MsgKind::Shutdown,
                worker: 0,
                side_id: 0,
                seq: 0,
                payload: Vec::new(),
            });
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("machines", &self.config.machines)
            .field("workers", &self.config.workers)
            .field("copiers", &self.config.copiers)
            .field("nodes", &self.num_nodes())
            .field("ghosts", &self.ghosts.len())
            .finish()
    }
}

/// Poller thread: drains the machine's outbox into the fabric ("PGX.D
/// maintains a dedicated thread for traffic control, namely the poller
/// thread", §3.4). With the reliability protocol disabled this is a plain
/// drain; enabled, the poller also stamps sequence numbers, emits
/// heartbeats, sweeps the retransmission store, and runs the watchdog.
fn poller_loop(m: Arc<MachineState>, fabric: Arc<Fabric>) {
    if m.reliability.enabled() {
        reliable_poller_loop(&m, &fabric);
    } else {
        while let Ok(env) = m.outbox_rx.recv() {
            if env.kind == MsgKind::Shutdown && env.dst == m.id {
                break;
            }
            if let Err(err) = fabric.send(env) {
                m.health.abort(err);
            }
        }
    }
}

fn reliable_poller_loop(m: &MachineState, fabric: &Fabric) {
    let tick = Duration::from_millis(m.reliability.config().tick_ms);
    let watchdog_ms = m.reliability.config().watchdog_ms;
    let mut last_tick = Instant::now();
    loop {
        match m.outbox_rx.recv_timeout(tick) {
            Ok(mut env) => {
                if env.kind == MsgKind::Shutdown && env.dst == m.id {
                    return;
                }
                // Retransmissions re-enter through the fabric directly, so
                // anything in the outbox with seq != 0 cannot occur; fresh
                // reliable envelopes get their sequence number here.
                if env.kind.is_reliable() {
                    m.reliability.register(&mut env, Instant::now());
                }
                if let Err(err) = fabric.send(env) {
                    m.health.abort(err);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
        let now = Instant::now();
        if now.duration_since(last_tick) >= tick {
            last_tick = now;
            poller_tick(m, fabric, watchdog_ms);
        }
    }
}

/// One reliability maintenance tick: heartbeats, retransmit sweep,
/// watchdog. Skipped (and the retransmission store drained) once the
/// cluster has aborted — the job is dead, re-driving its traffic would
/// only churn.
fn poller_tick(m: &MachineState, fabric: &Fabric, watchdog_ms: u64) {
    if m.health.is_aborted() {
        m.reliability.clear();
        return;
    }
    // Heartbeats keep peers' watchdogs quiet on otherwise-idle links (and
    // advance the fault injector's virtual clock, so held envelopes are
    // eventually released).
    for dst in 0..m.config.machines as MachineId {
        if dst != m.id {
            let _ = fabric.send(Envelope {
                src: m.id,
                dst,
                kind: MsgKind::Heartbeat,
                worker: 0,
                side_id: 0,
                seq: 0,
                payload: Vec::new(),
            });
        }
    }
    match m.reliability.due_retransmits(Instant::now()) {
        Ok(due) => {
            if !due.is_empty() {
                m.telemetry
                    .trace(0, EventKind::Retransmit, due.len() as u64);
                for env in due {
                    if let Err(err) = fabric.send(env) {
                        m.health.abort(err);
                        return;
                    }
                }
            }
        }
        Err(err) => {
            m.health.abort(err);
            m.reliability.clear();
            return;
        }
    }
    if let Some(peer) = m.health.stale_peer(m.id, watchdog_ms) {
        m.health.abort(JobError::MachineDown { machine: peer });
        m.reliability.clear();
    }
}

/// Worker thread: waits for phases, executes them, and synchronizes at the
/// cluster barrier. The worker's [`WorkerComm`] persists across phases.
fn worker_loop(
    m: Arc<MachineState>,
    worker_idx: usize,
    ctl: Arc<PhaseControl>,
    #[allow(dead_code)] barrier: Arc<CentralBarrier>,
    pending: Arc<AtomicI64>,
) {
    let mut comm = WorkerComm::new(
        m.id,
        worker_idx as u16,
        m.config.machines,
        CommTuning {
            buffer_bytes: m.config.buffer_bytes,
            read_combining: m.config.read_combining,
            flush: m.flush.clone(),
            pool_shard: worker_idx,
        },
        m.worker_rx[worker_idx].clone(),
        m.outbox_tx.clone(),
        m.send_pool.clone(),
        pending,
        m.telemetry.clone(),
        m.health.clone(),
        m.reliability.enabled(),
    );
    let tele = m.telemetry.clone();
    let mut my_epoch = 0u64;
    loop {
        let phase = {
            let mut slot = ctl.slot.lock();
            loop {
                if slot.shutdown {
                    return;
                }
                if slot.epoch > my_epoch {
                    my_epoch = slot.epoch;
                    break slot.phase.as_ref().expect("phase must be set").clone();
                }
                ctl.workers_cv.wait(&mut slot);
            }
        };
        tele.trace(worker_idx, EventKind::PhaseStart, my_epoch);
        {
            let mut env = WorkerEnv {
                machine: &m,
                worker_idx,
                comm: &mut comm,
            };
            phase.execute(&mut env);
        }
        tele.trace(worker_idx, EventKind::PhaseEnd, my_epoch);
        tele.trace(worker_idx, EventKind::BarrierEnter, my_epoch);
        if barrier.wait() {
            // Leader: tell the driver this phase is complete.
            let mut done = ctl.done.lock();
            *done = my_epoch;
            ctl.done_cv.notify_all();
        }
        tele.trace(worker_idx, EventKind::BarrierExit, my_epoch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::JobState;
    use pgxd_graph::generate;

    struct NoopPhase;
    impl Phase for NoopPhase {
        fn execute(&self, _env: &mut WorkerEnv<'_>) {}
    }

    /// A phase where every worker reduces +1 into vertex 0's property via
    /// the full remote-write path.
    struct PokePhase {
        prop: PropId,
        job: Arc<JobState>,
    }
    impl Phase for PokePhase {
        fn execute(&self, env: &mut WorkerEnv<'_>) {
            let owner = env.machine.partition.owner(0);
            if env.machine.id == owner {
                // Owner applies locally, like the Data Manager fast path.
                env.machine
                    .props
                    .column(self.prop)
                    .reduce_bits_atomic(0, ReduceOp::Sum, 1);
            } else {
                env.comm.push_mut(owner, self.prop, ReduceOp::Sum, 0, 1);
            }
            env.comm.flush();
            self.job.retire();
            crate::phase::drain_until_complete(env, &self.job, |_, _, _| unreachable!());
        }
    }

    fn ring_cluster(machines: usize) -> Cluster {
        let g = generate::ring(16);
        Cluster::load(&g, Config::test(machines)).unwrap()
    }

    #[test]
    fn cluster_starts_and_shuts_down() {
        let c = ring_cluster(2);
        assert_eq!(c.num_machines(), 2);
        assert_eq!(c.num_nodes(), 16);
        drop(c);
    }

    #[test]
    fn noop_phases_run() {
        let mut c = ring_cluster(3);
        for _ in 0..5 {
            c.try_run_phase(Arc::new(NoopPhase)).unwrap();
        }
    }

    #[test]
    fn prop_roundtrip_via_driver() {
        let mut c = ring_cluster(2);
        let p = c.add_prop::<f64>("x", 1.5);
        assert_eq!(c.get::<f64>(p, 0), 1.5);
        assert_eq!(c.get::<f64>(p, 15), 1.5);
        c.set(p, 9, 4.25);
        assert_eq!(c.get::<f64>(p, 9), 4.25);
        let g = c.gather::<f64>(p);
        assert_eq!(g.len(), 16);
        assert_eq!(g[9], 4.25);
        assert_eq!(g[0], 1.5);
    }

    #[test]
    fn reduce_over_machines() {
        let mut c = ring_cluster(4);
        let p = c.add_prop::<i64>("v", 1);
        c.set(p, 3, 10i64);
        assert_eq!(c.reduce::<i64>(p, ReduceOp::Sum), 25);
        assert_eq!(c.reduce::<i64>(p, ReduceOp::Max), 10);
    }

    #[test]
    fn remote_writes_reach_owner() {
        let mut c = ring_cluster(4);
        let p = c.add_prop::<i64>("cnt", 0);
        let workers_total = c.num_machines() * c.config().workers;
        let job = JobState::new(
            workers_total,
            c.pending().clone(),
            c.num_machines(),
            c.config().workers,
        );
        c.try_run_phase(Arc::new(PokePhase { prop: p, job }))
            .unwrap();
        // Every worker contributed exactly +1.
        assert_eq!(c.get::<i64>(p, 0), workers_total as i64);
        assert_eq!(c.pending().load(Ordering::SeqCst), 0);
    }

    #[test]
    fn reliable_cluster_delivers_exactly_once() {
        // Reliability on, no faults: sequencing/ack/dedup must be invisible.
        let g = generate::ring(16);
        let mut config = Config::test(3);
        config.reliability = crate::config::ReliabilityConfig::on();
        let mut c = Cluster::load(&g, config).unwrap();
        let p = c.add_prop::<i64>("cnt", 0);
        let workers_total = c.num_machines() * c.config().workers;
        let job = JobState::new(
            workers_total,
            c.pending().clone(),
            c.num_machines(),
            c.config().workers,
        );
        c.try_run_phase(Arc::new(PokePhase { prop: p, job }))
            .unwrap();
        assert_eq!(c.get::<i64>(p, 0), workers_total as i64);
        assert!(
            c.total_stats().acks_sent > 0,
            "sequenced envelopes were acknowledged"
        );
        assert_eq!(c.pending().load(Ordering::SeqCst), 0);
    }

    #[test]
    fn lossy_fabric_still_delivers_exactly_once() {
        // 10% drop + 5% dup + 5% reorder: retransmission and dedup must
        // reconstruct exactly-once delivery, bit-identically.
        let g = generate::ring(16);
        let config = Config::test(4).with_fault(crate::config::FaultPlan::lossy(42, 100, 50, 50));
        let mut c = Cluster::load(&g, config).unwrap();
        let p = c.add_prop::<i64>("cnt", 0);
        let workers_total = c.num_machines() * c.config().workers;
        for _ in 0..3 {
            let job = JobState::new(
                workers_total,
                c.pending().clone(),
                c.num_machines(),
                c.config().workers,
            );
            c.try_run_phase(Arc::new(PokePhase { prop: p, job }))
                .unwrap();
        }
        assert_eq!(
            c.get::<i64>(p, 0),
            3 * workers_total as i64,
            "every +1 applied exactly once despite drops and dups"
        );
        assert_eq!(c.pending().load(Ordering::SeqCst), 0);
    }

    #[test]
    fn aborted_cluster_is_terminal() {
        let mut c = ring_cluster(2);
        c.health()
            .abort(crate::health::JobError::MachineDown { machine: 1 });
        let err = c.try_run_phase(Arc::new(NoopPhase)).unwrap_err();
        assert_eq!(err, crate::health::JobError::MachineDown { machine: 1 });
        // Still terminal on the next attempt, and shutdown joins cleanly.
        assert!(c.try_run_phase(Arc::new(NoopPhase)).is_err());
    }

    #[test]
    fn dist_barrier_completes() {
        let mut c = ring_cluster(3);
        for _ in 0..4 {
            c.run_dist_barrier();
        }
    }

    #[test]
    fn rmi_dispatch() {
        let mut c = ring_cluster(2);
        let p = c.add_prop::<i64>("r", 0);
        let id = c.register_rmi(Arc::new(move |m: &MachineState, args: &[u8]| {
            // Add args[0] to local cell 0 and echo it back.
            m.props
                .column(p)
                .reduce_bits_atomic(0, ReduceOp::Sum, args[0] as u64);
            vec![args[0]]
        }));
        assert_eq!(id, 0);
        // Drive an RMI through machine 1's copier by sending directly.
        struct RmiPhase {
            job: Arc<JobState>,
            got: Arc<AtomicI64>,
        }
        impl Phase for RmiPhase {
            fn execute(&self, env: &mut WorkerEnv<'_>) {
                if env.machine.id == 0 && env.comm.worker() == 0 {
                    env.comm
                        .push_rmi(1, 0, &[5u8], crate::worker::SideRec { node: 0, aux: 0 });
                    env.comm.flush();
                }
                self.job.retire();
                let got = self.got.clone();
                crate::phase::drain_until_complete(env, &self.job, move |_, _, bits| {
                    got.store(bits as i64, Ordering::SeqCst);
                });
            }
        }
        let got = Arc::new(AtomicI64::new(-1));
        let workers_total = c.num_machines() * c.config().workers;
        let job = JobState::new(workers_total, c.pending().clone(), 2, c.config().workers);
        c.try_run_phase(Arc::new(RmiPhase {
            job,
            got: got.clone(),
        }))
        .unwrap();
        assert_eq!(got.load(Ordering::SeqCst), 5, "RMI response delivered");
        // The handler ran on machine 1 and mutated its local cell.
        let m1_first = c.partition().start(1);
        assert_eq!(c.get::<i64>(p, m1_first), 5);
    }
}
