//! Distributed engine runtime for the PGX.D reproduction.
//!
//! This crate implements the three layers of Figure 1 of the paper as an
//! *in-process simulated cluster*: every "machine" of the cluster is a
//! [`machine::MachineState`] with its own worker, copier, and poller
//! threads, and machines exchange serialized byte buffers over a
//! [`fabric::Fabric`] exactly as the real system exchanges InfiniBand
//! messages. All code paths the paper describes — message buffering, side
//! structures for run-to-completion continuations, copier-side atomic
//! application of write reductions, ghost synchronization, back-pressure,
//! barriers and termination detection — run unchanged; only the wire is a
//! memcpy.
//!
//! Layer map (paper § → module):
//!
//! * Task Manager (§3.2): [`chunk`] (edge chunking), [`phase`] (the
//!   run-to-completion worker loop contract), [`worker`] (request buffers +
//!   side structures).
//! * Data Manager (§3.3): [`partition`] (vertex/edge partitioning),
//!   [`ghost`] (selective ghost nodes), [`localgraph`] (per-machine CSR
//!   fragments with encoded remote targets), [`props`] (column-oriented
//!   property storage with atomic reductions).
//! * Communication Manager (§3.4): [`message`] (wire format), [`buffer`]
//!   (buffer pool with back-pressure), [`fabric`] (links + traffic
//!   accounting + optional bandwidth model), [`copier`] (request
//!   processing and RMI dispatch), poller threads in [`machine`].
//!
//! The user-facing programming model (§4) lives in the `pgxd` crate on top
//! of this one.

pub mod barrier;
pub mod buffer;
pub mod cancel;
pub mod checkpoint;
pub mod chunk;
pub mod cluster;
pub mod config;
pub mod copier;
pub mod fabric;
pub mod fault;
pub mod flow;
pub mod ghost;
pub mod health;
pub mod ids;
pub mod jobctx;
pub mod localgraph;
pub mod machine;
pub mod message;
pub mod partition;
pub mod phase;
pub mod props;
pub mod reliable;
pub mod stats;
pub mod telemetry;
pub mod worker;

pub use cancel::{CancelReason, CancelToken};
pub use checkpoint::{Checkpoint, CheckpointStore, JobProgress};
pub use cluster::Cluster;
pub use config::{
    AdaptiveFlushConfig, ChunkingMode, Config, ConfigBuilder, CrashPlan, FaultPlan, NetConfig,
    PartitioningMode, RecoveryConfig, ReliabilityConfig, ServeConfig, SlowPlan, TelemetryConfig,
};
pub use flow::FlushController;
pub use health::{ClusterHealth, JobError};
pub use ids::{GlobalId, MachineId};
pub use jobctx::{JobCtx, JobExec, JobOutcome, JobWire, PhaseSpan};
pub use props::{PropId, PropValue, ReduceOp};
pub use telemetry::Telemetry;
