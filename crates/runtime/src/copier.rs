//! Copier threads (§3.4).
//!
//! "The Communication Manager controls the copier threads which process
//! incoming request messages. As for write (reduction) requests, the copier
//! applies them directly with atomic instructions. As for read requests,
//! the copier creates a corresponding response message and sends it back to
//! the originating machine. The remote method invocation (RMI) is also
//! handled by the copier threads."

use crate::machine::MachineState;
use crate::message::{
    mut_entry, mut_entry_count, push_resp_entry, push_rmi_resp_entry, read_entry, read_entry_count,
    rmi_entries, Envelope, MsgKind,
};
use crate::props::{Column, PropId};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// A tiny property-column cache so copiers don't take the registry lock
/// per entry. Invalidation is unnecessary: property ids are never reused.
#[derive(Default)]
pub struct ColCache {
    slots: Vec<Option<Arc<Column>>>,
}

impl ColCache {
    fn get(&mut self, m: &MachineState, prop: u16) -> &Arc<Column> {
        let idx = prop as usize;
        if self.slots.len() <= idx {
            self.slots.resize_with(idx + 1, || None);
        }
        if self.slots[idx].is_none() {
            self.slots[idx] = Some(m.props.column(PropId(prop)));
        }
        self.slots[idx].as_ref().unwrap()
    }
}

/// Runs one copier thread until a `Shutdown` envelope arrives.
pub fn copier_loop(m: Arc<MachineState>) {
    let mut cache = ColCache::default();
    let tele = m.telemetry.clone();
    while let Ok(env) = m.copier_rx.recv() {
        if env.kind == MsgKind::Shutdown {
            break;
        }
        if tele.enabled() {
            let t0 = tele.now_ns();
            process_request(&m, &mut cache, env);
            tele.record_copier_service(tele.now_ns().saturating_sub(t0));
        } else {
            process_request(&m, &mut cache, env);
        }
    }
}

/// Processes a single incoming request envelope. Public so tests (and the
/// bandwidth microbenchmarks) can drive a copier synchronously.
pub fn process_request(m: &MachineState, cache: &mut ColCache, env: Envelope) {
    m.stats.msgs_processed.fetch_add(1, Ordering::Relaxed);
    match env.kind {
        MsgKind::ReadReq => {
            let n = read_entry_count(&env.payload);
            let mut payload = m.send_pool.acquire_or_alloc();
            for i in 0..n {
                let (prop, offset) = read_entry(&env.payload, i);
                let col = cache.get(m, prop);
                push_resp_entry(&mut payload, col.load_bits(offset as usize));
            }
            let _ = m.outbox_tx.send(Envelope {
                src: m.id,
                dst: env.src,
                kind: MsgKind::ReadResp,
                worker: env.worker,
                side_id: env.side_id,
                payload,
            });
        }
        MsgKind::Write => {
            let n = mut_entry_count(&env.payload);
            for i in 0..n {
                let (prop, op, offset, bits) = mut_entry(&env.payload, i);
                let col = cache.get(m, prop);
                col.reduce_bits_atomic(offset as usize, op, bits);
            }
            m.pending.fetch_sub(n as i64, Ordering::AcqRel);
        }
        MsgKind::GhostSync => {
            // offset field = global ghost ordinal; value is stored into
            // this machine's ghost slot for that vertex.
            let n = mut_entry_count(&env.payload);
            let base = m.graph.num_local();
            for i in 0..n {
                let (prop, _op, ordinal, bits) = mut_entry(&env.payload, i);
                let col = cache.get(m, prop);
                col.store_bits(base + ordinal as usize, bits);
            }
            m.pending.fetch_sub(n as i64, Ordering::AcqRel);
        }
        MsgKind::GhostReduce => {
            // offset field = owner-local vertex offset; reduce the partial
            // into the authoritative cell.
            let n = mut_entry_count(&env.payload);
            for i in 0..n {
                let (prop, op, offset, bits) = mut_entry(&env.payload, i);
                let col = cache.get(m, prop);
                col.reduce_bits_atomic(offset as usize, op, bits);
            }
            m.pending.fetch_sub(n as i64, Ordering::AcqRel);
        }
        MsgKind::Rmi => {
            let mut payload = m.send_pool.acquire_or_alloc();
            for (fn_id, args) in rmi_entries(&env.payload) {
                let f = m.rmi_fn(fn_id);
                let result = f(m, args);
                push_rmi_resp_entry(&mut payload, &result);
            }
            let _ = m.outbox_tx.send(Envelope {
                src: m.id,
                dst: env.src,
                kind: MsgKind::RmiResp,
                worker: env.worker,
                side_id: env.side_id,
                payload,
            });
        }
        MsgKind::BarrierArrive => {
            // Coordinator only (machine 0): when the last machine arrives,
            // broadcast the release to every machine including ourselves.
            if m.dist_barrier.on_arrive() {
                for dst in 0..m.config.machines as u16 {
                    let _ = m.outbox_tx.send(Envelope {
                        src: m.id,
                        dst,
                        kind: MsgKind::BarrierRelease,
                        worker: 0,
                        side_id: 0,
                        payload: Vec::new(),
                    });
                }
            }
        }
        MsgKind::BarrierRelease => {
            m.dist_barrier.on_release();
        }
        MsgKind::Ping => {
            // Bandwidth probe: payload already counted by the fabric; the
            // single pending entry is retired here. The payload is recycled
            // into this machine's pool — in a symmetric N:N flood every
            // machine receives as much as it sends, so pools stay balanced
            // and senders avoid fresh allocations (real NICs post recycled
            // registered buffers the same way).
            m.send_pool.release(env.payload);
            m.pending.fetch_sub(1, Ordering::AcqRel);
        }
        MsgKind::ReadResp | MsgKind::RmiResp | MsgKind::Shutdown => {
            unreachable!("response/shutdown kinds are not routed to copiers")
        }
    }
}

/// Convenience constructor for a fresh column cache (used by benches that
/// call [`process_request`] directly).
pub fn new_cache() -> ColCache {
    ColCache::default()
}
