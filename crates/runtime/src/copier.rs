//! Copier threads (§3.4).
//!
//! "The Communication Manager controls the copier threads which process
//! incoming request messages. As for write (reduction) requests, the copier
//! applies them directly with atomic instructions. As for read requests,
//! the copier creates a corresponding response message and sends it back to
//! the originating machine. The remote method invocation (RMI) is also
//! handled by the copier threads."
//!
//! When the reliability protocol is enabled the copier is also the
//! request-lane endpoint of it: every received envelope refreshes the
//! sender's liveness clock, sequenced requests are acknowledged and
//! dedup-filtered before processing, and `Ack`/`Heartbeat` control
//! messages are consumed here without touching the data path.

use crate::health::JobError;
use crate::ids::MachineId;
use crate::machine::MachineState;
use crate::message::{
    ack_entries, mut_entry, mut_entry_count, push_ack_entry, push_resp_entry, push_rmi_resp_entry,
    read_entry, read_entry_count, rmi_entries, Envelope, MsgKind, ACK_ENTRY_BYTES,
};
use crate::props::{Column, PropId};
use crate::reliable::REQUEST_LANE;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// A tiny property-column cache so copiers don't take the registry lock
/// per entry. Invalidation is unnecessary: property ids are never reused.
#[derive(Default)]
pub struct ColCache {
    slots: Vec<Option<Arc<Column>>>,
}

impl ColCache {
    /// Resolves a property id to its column, caching the lookup. A request
    /// naming a dropped (or never-registered) property is a protocol
    /// violation — the classic symptom is a duplicated request replayed
    /// after the driver retired the property — and surfaces as a
    /// descriptive error instead of a panic.
    fn get(&mut self, m: &MachineState, prop: u16) -> Result<&Arc<Column>, String> {
        let idx = prop as usize;
        if self.slots.len() <= idx {
            self.slots.resize_with(idx + 1, || None);
        }
        if self.slots[idx].is_none() {
            match m.props.try_column(PropId(prop)) {
                Some(col) => self.slots[idx] = Some(col),
                None => {
                    return Err(format!(
                        "machine {}: request entry names property {} which is not \
                         registered (dropped or never created) — stale or duplicated \
                         request",
                        m.id, prop
                    ))
                }
            }
        }
        Ok(self.slots[idx].as_ref().unwrap())
    }
}

/// Sends a single-entry acknowledgement for `(lane, seq)` back to `dst`.
fn send_ack(m: &MachineState, dst: MachineId, lane: u32, seq: u64) {
    let mut payload = Vec::with_capacity(ACK_ENTRY_BYTES);
    push_ack_entry(&mut payload, lane, seq);
    let _ = m.outbox_tx.send(Envelope {
        src: m.id,
        dst,
        kind: MsgKind::Ack,
        worker: 0,
        side_id: 0,
        seq: 0,
        payload,
    });
    m.stats.acks_sent.fetch_add(1, Ordering::Relaxed);
}

/// Runs one copier thread until a `Shutdown` envelope arrives.
pub fn copier_loop(m: Arc<MachineState>) {
    let mut cache = ColCache::default();
    let tele = m.telemetry.clone();
    let reliable = m.reliability.enabled();
    while let Ok(env) = m.copier_rx.recv() {
        match env.kind {
            MsgKind::Shutdown => break,
            MsgKind::Ack => {
                m.health.heard(env.src);
                for (lane, seq) in ack_entries(&env.payload) {
                    m.reliability.on_ack(env.src, lane, seq);
                }
                continue;
            }
            MsgKind::Heartbeat => {
                m.health.heard(env.src);
                continue;
            }
            _ => {}
        }
        if reliable {
            m.health.heard(env.src);
            if env.seq != 0 {
                // Always re-ack: the original ack may itself have been lost.
                send_ack(&m, env.src, REQUEST_LANE, env.seq);
                if !m.reliability.accept_request(env.src, env.seq) {
                    m.stats.dup_suppressed.fetch_add(1, Ordering::Relaxed);
                    m.send_pool.release(env.payload);
                    continue;
                }
            }
        }
        let result = if tele.enabled() {
            let t0 = tele.now_ns();
            let r = process_request(&m, &mut cache, env);
            tele.record_copier_service(tele.now_ns().saturating_sub(t0));
            // Receive-side half of per-job wire attribution.
            tele.record_job_recv();
            r
        } else {
            process_request(&m, &mut cache, env)
        };
        if let Err(msg) = result {
            m.health.abort(JobError::Protocol(msg));
        }
    }
}

/// Processes a single incoming request envelope. Public so tests (and the
/// bandwidth microbenchmarks) can drive a copier synchronously. Errors
/// describe protocol violations (stale property ids, misrouted kinds) the
/// caller should surface through [`crate::health::ClusterHealth::abort`].
pub fn process_request(
    m: &MachineState,
    cache: &mut ColCache,
    env: Envelope,
) -> Result<(), String> {
    m.stats.msgs_processed.fetch_add(1, Ordering::Relaxed);
    match env.kind {
        MsgKind::ReadReq => {
            let n = read_entry_count(&env.payload);
            let mut payload = m.send_pool.acquire_or_alloc();
            for i in 0..n {
                let (prop, offset) = read_entry(&env.payload, i);
                let col = cache.get(m, prop)?;
                push_resp_entry(&mut payload, col.load_bits(offset as usize));
            }
            let _ = m.outbox_tx.send(Envelope {
                src: m.id,
                dst: env.src,
                kind: MsgKind::ReadResp,
                worker: env.worker,
                side_id: env.side_id,
                seq: 0,
                payload,
            });
            m.send_pool.release(env.payload);
        }
        MsgKind::Write => {
            let n = mut_entry_count(&env.payload);
            for i in 0..n {
                let (prop, op, offset, bits) = mut_entry(&env.payload, i);
                let col = cache.get(m, prop)?;
                col.reduce_bits_atomic(offset as usize, op, bits);
            }
            m.pending.fetch_sub(n as i64, Ordering::AcqRel);
            // One-way payloads are recycled into the *receiver's* pool
            // (same rationale as Ping below): traffic is symmetric enough
            // that pools stay balanced, and every pool-acquired buffer is
            // released exactly once, which keeps the cluster-wide
            // `outstanding` sum an exact in-flight count.
            m.send_pool.release(env.payload);
        }
        MsgKind::GhostSync => {
            // offset field = global ghost ordinal; value is stored into
            // this machine's ghost slot for that vertex.
            let n = mut_entry_count(&env.payload);
            let base = m.graph.num_local();
            for i in 0..n {
                let (prop, _op, ordinal, bits) = mut_entry(&env.payload, i);
                let col = cache.get(m, prop)?;
                col.store_bits(base + ordinal as usize, bits);
            }
            m.pending.fetch_sub(n as i64, Ordering::AcqRel);
            m.send_pool.release(env.payload);
        }
        MsgKind::GhostReduce => {
            // offset field = owner-local vertex offset; reduce the partial
            // into the authoritative cell.
            let n = mut_entry_count(&env.payload);
            for i in 0..n {
                let (prop, op, offset, bits) = mut_entry(&env.payload, i);
                let col = cache.get(m, prop)?;
                col.reduce_bits_atomic(offset as usize, op, bits);
            }
            m.pending.fetch_sub(n as i64, Ordering::AcqRel);
            m.send_pool.release(env.payload);
        }
        MsgKind::Rmi => {
            let mut payload = m.send_pool.acquire_or_alloc();
            for (fn_id, args) in rmi_entries(&env.payload) {
                let f = m.rmi_fn(fn_id);
                let result = f(m, args);
                push_rmi_resp_entry(&mut payload, &result);
            }
            let _ = m.outbox_tx.send(Envelope {
                src: m.id,
                dst: env.src,
                kind: MsgKind::RmiResp,
                worker: env.worker,
                side_id: env.side_id,
                seq: 0,
                payload,
            });
            m.send_pool.release(env.payload);
        }
        MsgKind::BarrierArrive => {
            // Coordinator only (machine 0): when the last machine arrives,
            // broadcast the release to every machine including ourselves.
            if m.dist_barrier.on_arrive() {
                for dst in 0..m.config.machines as u16 {
                    let _ = m.outbox_tx.send(Envelope {
                        src: m.id,
                        dst,
                        kind: MsgKind::BarrierRelease,
                        worker: 0,
                        side_id: 0,
                        seq: 0,
                        payload: Vec::new(),
                    });
                }
            }
        }
        MsgKind::BarrierRelease => {
            m.dist_barrier.on_release();
        }
        MsgKind::Ping => {
            // Bandwidth probe: payload already counted by the fabric; the
            // single pending entry is retired here. The payload is recycled
            // into this machine's pool — in a symmetric N:N flood every
            // machine receives as much as it sends, so pools stay balanced
            // and senders avoid fresh allocations (real NICs post recycled
            // registered buffers the same way).
            m.send_pool.release(env.payload);
            m.pending.fetch_sub(1, Ordering::AcqRel);
        }
        MsgKind::ReadResp
        | MsgKind::RmiResp
        | MsgKind::Shutdown
        | MsgKind::Ack
        | MsgKind::Heartbeat => {
            return Err(format!(
                "machine {}: {:?} envelope routed into request processing",
                m.id, env.kind
            ));
        }
    }
    Ok(())
}

/// Convenience constructor for a fresh column cache (used by benches that
/// call [`process_request`] directly).
pub fn new_cache() -> ColCache {
    ColCache::default()
}
