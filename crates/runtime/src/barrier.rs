//! Barriers between parallel phases.
//!
//! Iterative graph algorithms execute one barrier per step, so barrier
//! latency directly bounds the per-iteration floor (§5.3.1, Figure 5b).
//! Two implementations are provided:
//!
//! * [`CentralBarrier`] — shared-memory sense-reversing barrier: the fast
//!   path used by default (the simulated cluster shares an address space).
//! * [`DistBarrier`] — a message-based coordinator barrier that mirrors
//!   what a real deployment pays: the last worker of each machine sends a
//!   `BarrierArrive` to machine 0; machine 0's copier broadcasts
//!   `BarrierRelease` once all machines arrived. Enabled by
//!   `Config::strict_distributed` and measured by the Figure 5b bench.

use crate::health::ClusterHealth;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Shared-memory sense-reversing barrier for `n` participants.
#[derive(Debug)]
pub struct CentralBarrier {
    n: usize,
    state: Mutex<BarrierState>,
    cvar: Condvar,
}

#[derive(Debug)]
struct BarrierState {
    count: usize,
    generation: u64,
}

impl CentralBarrier {
    /// A barrier for `n` participants.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        CentralBarrier {
            n,
            state: Mutex::new(BarrierState {
                count: 0,
                generation: 0,
            }),
            cvar: Condvar::new(),
        }
    }

    /// Blocks until all `n` participants have arrived. Returns `true` for
    /// exactly one participant per generation (the "leader").
    pub fn wait(&self) -> bool {
        let mut s = self.state.lock();
        let gen = s.generation;
        s.count += 1;
        if s.count == self.n {
            s.count = 0;
            s.generation += 1;
            self.cvar.notify_all();
            true
        } else {
            while s.generation == gen {
                self.cvar.wait(&mut s);
            }
            false
        }
    }

    /// Number of participants.
    pub fn participants(&self) -> usize {
        self.n
    }
}

/// The per-machine shared state of the message-based barrier.
///
/// Workers interact through [`DistBarrier::arrive_local`]; the machine's
/// copier thread drives the protocol by calling [`DistBarrier::on_arrive`]
/// (coordinator only) and [`DistBarrier::on_release`] when the respective
/// control messages come in. The caller supplies the actual message
/// transmission, keeping this type transport-agnostic.
#[derive(Debug)]
pub struct DistBarrier {
    /// Workers on this machine.
    local_workers: usize,
    /// Machines in the cluster (coordinator state).
    machines: usize,
    /// Local arrivals in the current epoch.
    local_arrived: AtomicUsize,
    /// Machine arrivals at the coordinator in the current epoch.
    coord_arrived: AtomicUsize,
    /// Released epoch counter; workers wait for this to pass their epoch.
    released_epoch: AtomicU64,
    mutex: Mutex<()>,
    cvar: Condvar,
}

impl DistBarrier {
    /// State for one machine of a `machines`-wide cluster with
    /// `local_workers` workers on this machine.
    pub fn new(local_workers: usize, machines: usize) -> Self {
        DistBarrier {
            local_workers,
            machines,
            local_arrived: AtomicUsize::new(0),
            coord_arrived: AtomicUsize::new(0),
            released_epoch: AtomicU64::new(0),
            mutex: Mutex::new(()),
            cvar: Condvar::new(),
        }
    }

    /// Called by each worker when it reaches the barrier. Returns `true`
    /// for the last local worker, which must then send `BarrierArrive` to
    /// the coordinator.
    pub fn arrive_local(&self) -> bool {
        let prev = self.local_arrived.fetch_add(1, Ordering::AcqRel);
        if prev + 1 == self.local_workers {
            self.local_arrived.store(0, Ordering::Release);
            true
        } else {
            false
        }
    }

    /// Coordinator side: records one machine's arrival. Returns `true`
    /// when every machine has arrived — the caller must then broadcast
    /// `BarrierRelease` (including to itself).
    pub fn on_arrive(&self) -> bool {
        let prev = self.coord_arrived.fetch_add(1, Ordering::AcqRel);
        if prev + 1 == self.machines {
            self.coord_arrived.store(0, Ordering::Release);
            true
        } else {
            false
        }
    }

    /// Member side: a release broadcast arrived; wakes local waiters.
    pub fn on_release(&self) {
        let _g = self.mutex.lock();
        self.released_epoch.fetch_add(1, Ordering::AcqRel);
        self.cvar.notify_all();
    }

    /// Blocks the calling worker until epoch `epoch` has been released.
    /// Workers track their own epoch (starting at 0, incrementing per
    /// barrier crossing).
    pub fn wait_release(&self, epoch: u64) {
        let mut g = self.mutex.lock();
        while self.released_epoch.load(Ordering::Acquire) <= epoch {
            self.cvar.wait(&mut g);
        }
    }

    /// Like [`wait_release`](DistBarrier::wait_release), but gives up once
    /// the cluster aborts — a crashed machine's `BarrierArrive` will never
    /// come, so an unconditional wait would hang forever. Returns `true`
    /// if the epoch was actually released, `false` on abort.
    pub fn wait_release_or_abort(&self, epoch: u64, health: &ClusterHealth) -> bool {
        let mut g = self.mutex.lock();
        loop {
            if self.released_epoch.load(Ordering::Acquire) > epoch {
                return true;
            }
            if health.is_aborted() {
                return false;
            }
            self.cvar.wait_for(&mut g, Duration::from_millis(5));
        }
    }

    /// Current released epoch (for diagnostics/tests).
    pub fn released(&self) -> u64 {
        self.released_epoch.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn central_barrier_synchronizes() {
        let b = Arc::new(CentralBarrier::new(4));
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let b = b.clone();
                let c = counter.clone();
                std::thread::spawn(move || {
                    for round in 0..10 {
                        c.fetch_add(1, Ordering::SeqCst);
                        b.wait();
                        // After the barrier, all 4 increments of this round
                        // must be visible.
                        assert!(c.load(Ordering::SeqCst) >= (round + 1) * 4);
                        b.wait();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 40);
    }

    #[test]
    fn central_barrier_single_leader() {
        let b = Arc::new(CentralBarrier::new(3));
        let leaders = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let b = b.clone();
                let l = leaders.clone();
                std::thread::spawn(move || {
                    if b.wait() {
                        l.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(leaders.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn central_barrier_one_participant() {
        let b = CentralBarrier::new(1);
        assert!(b.wait());
        assert!(b.wait());
    }

    #[test]
    fn dist_barrier_local_election() {
        let d = DistBarrier::new(3, 2);
        assert!(!d.arrive_local());
        assert!(!d.arrive_local());
        assert!(d.arrive_local());
        // Counter reset for the next epoch.
        assert!(!d.arrive_local());
    }

    #[test]
    fn dist_barrier_coordinator_counts() {
        let d = DistBarrier::new(1, 3);
        assert!(!d.on_arrive());
        assert!(!d.on_arrive());
        assert!(d.on_arrive());
        assert!(!d.on_arrive());
    }

    #[test]
    fn dist_barrier_release_wakes_waiter() {
        let d = Arc::new(DistBarrier::new(1, 1));
        let d2 = d.clone();
        let h = std::thread::spawn(move || {
            d2.wait_release(0);
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        d.on_release();
        h.join().unwrap();
        assert_eq!(d.released(), 1);
    }

    #[test]
    fn dist_barrier_abort_unblocks_waiter() {
        use crate::health::{ClusterHealth, JobError};
        let d = Arc::new(DistBarrier::new(1, 2));
        let health = Arc::new(ClusterHealth::new(2));
        let d2 = d.clone();
        let h2 = health.clone();
        let t = std::thread::spawn(move || d2.wait_release_or_abort(0, &h2));
        std::thread::sleep(std::time::Duration::from_millis(20));
        health.abort(JobError::MachineDown { machine: 1 });
        assert!(!t.join().unwrap(), "abort path reports no release");
        // A normally-released wait still reports success.
        d.on_release();
        assert!(d.wait_release_or_abort(0, &health));
    }
}
