//! Cooperative per-job cancellation.
//!
//! A [`CancelToken`] is the serving layer's kill switch for *one* job. It
//! is deliberately separate from [`ClusterHealth`](crate::health): an
//! aborted cluster is terminal (stale traffic may still be in flight),
//! while a cancelled job must leave the shared cluster healthy so the next
//! queued job can run on it. Workers therefore never unwind on a token —
//! they stop *starting* chunks, retire the remainder unexecuted, and let
//! the phase run to its normal barrier, keeping the exact-termination
//! accounting (outstanding chunks + cluster-global pending entries)
//! intact.
//!
//! A token optionally carries a deadline; [`CancelToken::fired`] reports
//! which of the two trips first, so the driver can map the outcome to
//! [`JobError::Cancelled`](crate::health::JobError::Cancelled) versus
//! [`JobError::DeadlineExceeded`](crate::health::JobError::DeadlineExceeded).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a token fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelReason {
    /// [`CancelToken::cancel`] was called (client request, session close).
    Explicit,
    /// The job's deadline passed before it completed.
    Deadline,
}

struct Inner {
    cancelled: AtomicBool,
    /// Deadline in nanoseconds since `epoch`; 0 = no deadline.
    deadline_ns: AtomicU64,
    epoch: Instant,
    job: u64,
}

/// Cloneable cancellation handle threaded from the job server through the
/// driver into every worker's chunk-claim loop. See the module docs.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A fresh token for job `job` (the id only flavors error messages).
    pub fn for_job(job: u64) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline_ns: AtomicU64::new(0),
                epoch: Instant::now(),
                job,
            }),
        }
    }

    /// A token that can never fire — the default for direct `try_run_*`
    /// callers that predate the serving layer.
    pub fn never() -> Self {
        Self::for_job(0)
    }

    /// The job id this token belongs to.
    pub fn job(&self) -> u64 {
        self.inner.job
    }

    /// Arms a deadline `after` from now. A zero duration fires
    /// immediately.
    pub fn set_deadline(&self, after: Duration) {
        let ns = self.inner.epoch.elapsed().as_nanos() as u64 + after.as_nanos() as u64;
        // 0 means "no deadline", so an immediate deadline still stores 1.
        self.inner.deadline_ns.store(ns.max(1), Ordering::Release);
    }

    /// Builder-style [`CancelToken::set_deadline`].
    pub fn with_deadline(self, after: Duration) -> Self {
        self.set_deadline(after);
        self
    }

    /// Requests cancellation. Idempotent; workers observe it within one
    /// chunk.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether the deadline (if any) has passed.
    pub fn deadline_expired(&self) -> bool {
        let d = self.inner.deadline_ns.load(Ordering::Acquire);
        d != 0 && self.inner.epoch.elapsed().as_nanos() as u64 >= d
    }

    /// Whether the job should stop: explicitly cancelled *or* past its
    /// deadline. This is the poll workers run per chunk — two relaxed-ish
    /// atomic loads and a monotonic clock read.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire) || self.deadline_expired()
    }

    /// Which trigger fired, if any. An explicit cancel wins over a
    /// deadline that passed while the cancel was being delivered.
    pub fn fired(&self) -> Option<CancelReason> {
        if self.inner.cancelled.load(Ordering::Acquire) {
            Some(CancelReason::Explicit)
        } else if self.deadline_expired() {
            Some(CancelReason::Deadline)
        } else {
            None
        }
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("job", &self.inner.job)
            .field("fired", &self.fired())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_quiet() {
        let t = CancelToken::for_job(7);
        assert!(!t.is_cancelled());
        assert_eq!(t.fired(), None);
        assert_eq!(t.job(), 7);
    }

    #[test]
    fn explicit_cancel_fires_and_clones_observe_it() {
        let t = CancelToken::never();
        let c = t.clone();
        t.cancel();
        assert!(c.is_cancelled());
        assert_eq!(c.fired(), Some(CancelReason::Explicit));
    }

    #[test]
    fn deadline_fires_after_elapsing() {
        let t = CancelToken::for_job(1).with_deadline(Duration::from_millis(5));
        assert!(!t.is_cancelled());
        std::thread::sleep(Duration::from_millis(10));
        assert!(t.is_cancelled());
        assert_eq!(t.fired(), Some(CancelReason::Deadline));
    }

    #[test]
    fn zero_deadline_fires_immediately() {
        let t = CancelToken::never().with_deadline(Duration::ZERO);
        assert!(t.deadline_expired());
        assert_eq!(t.fired(), Some(CancelReason::Deadline));
    }

    #[test]
    fn explicit_cancel_wins_over_deadline() {
        let t = CancelToken::never().with_deadline(Duration::ZERO);
        t.cancel();
        assert_eq!(t.fired(), Some(CancelReason::Explicit));
    }
}
