//! Job-scoped cost attribution: the identity of the job a cluster is
//! currently executing, and the per-job execution record assembled when
//! it finishes.
//!
//! The serving layer (crate `pgxd-sched`) runs jobs one at a time on the
//! shared cluster — jobs are barrier-delimited, so the dispatcher never
//! interleaves two parallel regions. That serialization is what makes
//! exact per-job attribution possible: the dispatcher brackets each job
//! with [`Cluster::begin_job`]/[`Cluster::end_job`], every machine's
//! [`Telemetry`] remembers the active [`JobCtx`], and the hot paths that
//! already count wire traffic (worker buffer seals, copier request
//! processing) additionally charge the active job. When the job ends the
//! cluster folds the charged counters, windowed histogram deltas, and the
//! tracer-derived phase/barrier spans into one [`JobExec`].
//!
//! Everything in this module is always compiled (no `telemetry` feature
//! gate): [`JobExec`] is part of the serve-layer API surface. With the
//! feature off the instrumented fields simply come back zero/empty while
//! the always-on [`StatsSnapshot`] window delta stays live.
//!
//! [`Cluster::begin_job`]: crate::cluster::Cluster::begin_job
//! [`Cluster::end_job`]: crate::cluster::Cluster::end_job
//! [`Telemetry`]: crate::telemetry::Telemetry

use crate::stats::StatsSnapshot;
use crate::telemetry::HistogramSnapshot;

/// Identity of one served job, threaded from the scheduler through the
/// cluster into workers and copiers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct JobCtx {
    /// Server-assigned job id.
    pub job: u64,
    /// Owning session id.
    pub session: u64,
    /// Scheduler lane discriminant (0 = interactive, 1 = batch).
    pub lane: u8,
}

impl JobCtx {
    /// Packs the context into 56 bits so it fits a tracer event argument
    /// and (plus one, so zero can mean "idle") an `AtomicU64` cell:
    /// lane in bits 0..8, session in bits 8..24, job in bits 24..56.
    /// Sessions and jobs beyond the field width wrap, which only affects
    /// display, never attribution (the cell is compared for zero/nonzero).
    pub fn pack(self) -> u64 {
        (self.lane as u64) | ((self.session & 0xFFFF) << 8) | ((self.job & 0xFFFF_FFFF) << 24)
    }

    /// Inverse of [`JobCtx::pack`].
    pub fn unpack(v: u64) -> JobCtx {
        JobCtx {
            job: (v >> 24) & 0xFFFF_FFFF,
            session: (v >> 8) & 0xFFFF,
            lane: (v & 0xFF) as u8,
        }
    }

    /// Human-readable lane name for reports and trace lanes.
    pub fn lane_name(&self) -> &'static str {
        match self.lane {
            0 => "interactive",
            _ => "batch",
        }
    }
}

/// How a served job left the cluster.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum JobOutcome {
    /// Ran to completion.
    #[default]
    Done,
    /// Cooperatively cancelled (or deadline exceeded) mid-run.
    Cancelled,
    /// Returned an error other than cancellation.
    Failed,
}

impl JobOutcome {
    pub fn name(&self) -> &'static str {
        match self {
            JobOutcome::Done => "done",
            JobOutcome::Cancelled => "cancelled",
            JobOutcome::Failed => "failed",
        }
    }
}

/// Wire traffic charged to one job by the send/receive hot paths
/// (worker buffer seals and copier request processing) while it was the
/// cluster's active job. Summed across machines by
/// [`Cluster::end_job`](crate::cluster::Cluster::end_job).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JobWire {
    /// Sealed message buffers sent on behalf of the job.
    pub msgs_sent: u64,
    /// Payload bytes in those buffers.
    pub bytes_sent: u64,
    /// Inbound message buffers copiers processed while the job was active.
    pub msgs_processed: u64,
}

impl std::ops::AddAssign for JobWire {
    fn add_assign(&mut self, rhs: JobWire) {
        self.msgs_sent += rhs.msgs_sent;
        self.bytes_sent += rhs.bytes_sent;
        self.msgs_processed += rhs.msgs_processed;
    }
}

/// One named parallel region the job ran, reconstructed from tracer
/// events across all machines and workers.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PhaseSpan {
    /// Phase label (`"main"`, `"ghost_push"`, …).
    pub label: String,
    /// 1-based cluster phase epoch (the tracer event argument).
    pub epoch: u64,
    /// Earliest `PhaseStart` timestamp across machines, ns since the
    /// cluster epoch.
    pub start_ns: u64,
    /// Latest `PhaseEnd` timestamp across machines.
    pub end_ns: u64,
    /// Mean per-worker barrier residence (`BarrierExit` − `BarrierEnter`)
    /// for this epoch, ns. Zero when the phase ran without a distributed
    /// barrier or tracing was off.
    pub barrier_ns: u64,
}

/// Everything the cluster attributes to one served job. Surfaced to
/// clients inside the serve layer's `JobReport`.
#[derive(Clone, Debug, Default)]
pub struct JobExec {
    pub ctx: JobCtx,
    pub outcome: JobOutcome,
    /// Server enqueue timestamp, ns since the cluster epoch (0 with
    /// telemetry off).
    pub enqueue_ns: u64,
    /// Dispatch timestamp — the job left the queue and took the cluster.
    pub dispatch_ns: u64,
    /// Completion timestamp.
    pub done_ns: u64,
    /// Cluster-wide counter delta over the job's window (always live,
    /// even without the `telemetry` feature). Includes background traffic
    /// such as heartbeats and acks, so it upper-bounds [`JobExec::wire`].
    pub traffic: StatsSnapshot,
    /// Wire traffic charged directly to this job by workers and copiers.
    pub wire: JobWire,
    /// Windowed histogram deltas over the job's run.
    pub read_rtt: HistogramSnapshot,
    pub flush_fill: HistogramSnapshot,
    pub copier_service: HistogramSnapshot,
    /// Phase spans with barrier residence, in execution order.
    pub phases: Vec<PhaseSpan>,
    /// Recovery attempts (machine-loss retries) observed during the job.
    pub retries: u64,
    /// Timestamps of those recovery attempts, for trace instants.
    pub retry_ns: Vec<u64>,
    /// Seconds of fully-parallel compute, summed over the engine-level
    /// jobs this served job ran.
    pub compute_s: f64,
    /// Seconds of communication (intra- + inter-machine message work).
    pub comm_s: f64,
    /// Seconds draining buffered messages after the last task.
    pub drain_s: f64,
    /// Seconds taking checkpoints inside the job.
    pub checkpoint_s: f64,
    /// Engine-level parallel jobs (barrier-delimited regions) executed.
    pub engine_jobs: u64,
}

impl JobExec {
    /// Queue wait in nanoseconds (dispatch − enqueue).
    pub fn queue_wait_ns(&self) -> u64 {
        self.dispatch_ns.saturating_sub(self.enqueue_ns)
    }

    /// Wall time the job held the cluster, nanoseconds.
    pub fn run_ns(&self) -> u64 {
        self.done_ns.saturating_sub(self.dispatch_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip() {
        let ctx = JobCtx {
            job: 12345,
            session: 77,
            lane: 1,
        };
        assert_eq!(JobCtx::unpack(ctx.pack()), ctx);
        assert_eq!(JobCtx::unpack(0), JobCtx::default());
    }

    #[test]
    fn pack_fits_56_bits() {
        let ctx = JobCtx {
            job: u64::MAX,
            session: u64::MAX,
            lane: u8::MAX,
        };
        assert!(ctx.pack() < (1u64 << 56));
    }

    #[test]
    fn queue_wait_saturates() {
        let exec = JobExec {
            enqueue_ns: 10,
            dispatch_ns: 5,
            ..JobExec::default()
        };
        assert_eq!(exec.queue_wait_ns(), 0);
    }
}
