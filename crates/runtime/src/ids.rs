//! Global node identifiers.
//!
//! The paper (§3.3): "we assign a global id to each node, a 64-bit number
//! which concatenates the machine number and the local offset for that
//! particular node. Using this representation, the Data Manager is able to
//! quickly identify the location of a node. This also allows us to only
//! transfer local offsets when sending remote addresses."

use std::fmt;

/// Index of a machine in the cluster (0-based).
pub type MachineId = u16;

/// Local offset of a node within its owning machine's partition.
pub type LocalOffset = u32;

/// 64-bit global node id: machine number in the high bits, local offset in
/// the low bits.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalId(u64);

const OFFSET_BITS: u32 = 32;
const OFFSET_MASK: u64 = (1 << OFFSET_BITS) - 1;

impl GlobalId {
    /// Concatenates machine number and local offset.
    #[inline]
    pub fn new(machine: MachineId, offset: LocalOffset) -> Self {
        GlobalId(((machine as u64) << OFFSET_BITS) | offset as u64)
    }

    /// The owning machine.
    #[inline]
    pub fn machine(self) -> MachineId {
        (self.0 >> OFFSET_BITS) as MachineId
    }

    /// The local offset on the owning machine.
    #[inline]
    pub fn offset(self) -> LocalOffset {
        (self.0 & OFFSET_MASK) as LocalOffset
    }

    /// Raw 64-bit representation (what travels in messages).
    #[inline]
    pub fn to_bits(self) -> u64 {
        self.0
    }

    /// Reconstructs from the raw representation.
    #[inline]
    pub fn from_bits(bits: u64) -> Self {
        GlobalId(bits)
    }
}

impl fmt::Debug for GlobalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}:{}", self.machine(), self.offset())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let g = GlobalId::new(7, 123_456);
        assert_eq!(g.machine(), 7);
        assert_eq!(g.offset(), 123_456);
        assert_eq!(GlobalId::from_bits(g.to_bits()), g);
    }

    #[test]
    fn extremes() {
        let g = GlobalId::new(u16::MAX, u32::MAX);
        assert_eq!(g.machine(), u16::MAX);
        assert_eq!(g.offset(), u32::MAX);
        let z = GlobalId::new(0, 0);
        assert_eq!(z.to_bits(), 0);
    }

    #[test]
    fn ordering_is_machine_major() {
        assert!(GlobalId::new(1, 0) > GlobalId::new(0, u32::MAX));
        assert!(GlobalId::new(2, 5) < GlobalId::new(2, 6));
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", GlobalId::new(3, 9)), "g3:9");
    }
}
