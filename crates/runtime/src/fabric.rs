//! The simulated interconnect.
//!
//! [`Fabric::send`] is the single point every envelope passes through. It
//! charges traffic statistics to the sending machine, applies the optional
//! [`NetConfig`] cost model, and routes the envelope to the destination
//! machine's copier queue (requests) or to the originating worker's
//! response queue (responses) — the dispatch the paper's poller thread
//! performs against the real NIC driver (§3.4).

use crate::config::{FaultPlan, NetConfig};
use crate::fault::{FaultCounters, FaultInjector};
use crate::health::JobError;
use crate::ids::MachineId;
use crate::message::Envelope;
use crate::stats::MachineStats;
use crate::telemetry::Telemetry;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Receiving endpoints of one machine.
#[derive(Debug, Clone)]
pub struct MachineEndpoints {
    /// Request queue consumed by the machine's copier threads.
    pub copier_tx: Sender<Envelope>,
    /// Response queues, one per worker thread.
    pub worker_tx: Vec<Sender<Envelope>>,
}

/// The cluster-wide message switch.
pub struct Fabric {
    endpoints: Vec<MachineEndpoints>,
    stats: Vec<Arc<MachineStats>>,
    /// Per-source telemetry registries (per-destination traffic matrix).
    telemetry: Vec<Arc<Telemetry>>,
    net: NetConfig,
    /// Modeled (virtual) wire-busy nanoseconds per source machine —
    /// accumulated even when the model also spins, so benches can report
    /// modeled bandwidth independent of host jitter.
    virtual_busy_ns: Vec<AtomicU64>,
    /// Optional fault-injection schedule (chaos testing).
    chaos: Option<FaultInjector>,
}

impl Fabric {
    /// Builds a fabric over the given endpoints; `telemetry[m]` receives the
    /// send-side accounting for machine `m`.
    pub fn new(
        endpoints: Vec<MachineEndpoints>,
        telemetry: Vec<Arc<Telemetry>>,
        net: NetConfig,
    ) -> Self {
        Fabric::with_faults(endpoints, telemetry, net, FaultPlan::none())
    }

    /// Builds a fabric with an active fault-injection plan. An inert plan
    /// costs nothing: the chaos path is skipped entirely.
    pub fn with_faults(
        endpoints: Vec<MachineEndpoints>,
        telemetry: Vec<Arc<Telemetry>>,
        net: NetConfig,
        plan: FaultPlan,
    ) -> Self {
        assert_eq!(endpoints.len(), telemetry.len());
        let stats = telemetry.iter().map(|t| t.stats().clone()).collect();
        let virtual_busy_ns = (0..endpoints.len()).map(|_| AtomicU64::new(0)).collect();
        Fabric {
            endpoints,
            stats,
            telemetry,
            net,
            virtual_busy_ns,
            chaos: plan.is_active().then(|| FaultInjector::new(plan)),
        }
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.endpoints.len()
    }

    /// The configured network model.
    pub fn net(&self) -> &NetConfig {
        &self.net
    }

    /// Modeled wire-busy time charged to machine `m` so far.
    pub fn virtual_busy_ns(&self, m: usize) -> u64 {
        self.virtual_busy_ns[m].load(Ordering::Relaxed)
    }

    /// The machine the fault plan has crashed so far, if any.
    pub fn crashed_machine(&self) -> Option<MachineId> {
        self.chaos.as_ref().and_then(|c| c.crashed_machine())
    }

    /// Fault-injection totals, if a plan is active.
    pub fn fault_counters(&self) -> Option<FaultCounters> {
        self.chaos.as_ref().map(|c| c.counters())
    }

    /// Sends an envelope: account, model, inject faults, route.
    ///
    /// `Err(JobError::MachineDown)` means the destination's queues are
    /// gone — its threads exited. Delivery of the envelope itself is still
    /// only as reliable as the fault plan allows; `Ok` is *not* an
    /// acknowledgement.
    pub fn send(&self, env: Envelope) -> Result<(), JobError> {
        let src = env.src as usize;
        let dst = env.dst as usize;
        debug_assert!(dst < self.endpoints.len(), "bad destination machine");

        let stats = &self.stats[src];
        stats.msgs_sent.fetch_add(1, Ordering::Relaxed);
        stats
            .bytes_sent
            .fetch_add(env.payload.len() as u64, Ordering::Relaxed);
        stats
            .header_bytes_sent
            .fetch_add(crate::message::HEADER_BYTES, Ordering::Relaxed);
        self.telemetry[src].record_dest_bytes(dst, env.wire_bytes());

        if !self.net.is_null() {
            self.apply_net_model(src, env.wire_bytes());
        }

        match &self.chaos {
            None => self.route(env),
            Some(inj) => {
                let mut out = Vec::with_capacity(2);
                inj.process(env, &mut out);
                for e in out {
                    self.route(e)?;
                }
                Ok(())
            }
        }
    }

    /// Hands an envelope to the destination machine's queue.
    fn route(&self, env: Envelope) -> Result<(), JobError> {
        let dst = env.dst as usize;
        let ep = &self.endpoints[dst];
        let sent = if env.kind.is_response() {
            let w = env.worker as usize;
            debug_assert!(w < ep.worker_tx.len(), "bad worker index in response");
            ep.worker_tx[w].send(env).is_ok()
        } else {
            ep.copier_tx.send(env).is_ok()
        };
        if sent {
            Ok(())
        } else {
            // The receiving threads dropped their queue: the machine is
            // torn down. Surface it instead of silently losing traffic.
            Err(JobError::MachineDown {
                machine: dst as MachineId,
            })
        }
    }

    /// Charges the modeled wire time for a message of `bytes` and delays
    /// the sender accordingly (spin below ~100µs, sleep above).
    fn apply_net_model(&self, src: usize, bytes: u64) {
        let mut cost_ns = self.net.per_message_ns + self.net.latency_ns;
        if let Some(per_byte) = bytes
            .saturating_mul(1_000_000_000)
            .checked_div(self.net.bandwidth_bytes_per_sec)
        {
            cost_ns += per_byte;
        }
        self.virtual_busy_ns[src].fetch_add(cost_ns, Ordering::Relaxed);
        if cost_ns == 0 {
            return;
        }
        if cost_ns > 100_000 {
            std::thread::sleep(std::time::Duration::from_nanos(cost_ns));
        } else {
            let start = Instant::now();
            while (start.elapsed().as_nanos() as u64) < cost_ns {
                std::hint::spin_loop();
            }
        }
    }
}

/// Creates the per-machine queue set: returns the endpoints (senders, for
/// the fabric) and the matching receivers (for the machine's threads).
pub fn make_endpoints(
    machines: usize,
    workers: usize,
) -> (Vec<MachineEndpoints>, Vec<MachineReceivers>) {
    let mut eps = Vec::with_capacity(machines);
    let mut rxs = Vec::with_capacity(machines);
    for _ in 0..machines {
        let (ctx, crx) = unbounded();
        let mut wtx = Vec::with_capacity(workers);
        let mut wrx = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (t, r) = unbounded();
            wtx.push(t);
            wrx.push(r);
        }
        eps.push(MachineEndpoints {
            copier_tx: ctx,
            worker_tx: wtx,
        });
        rxs.push(MachineReceivers {
            copier_rx: crx,
            worker_rx: wrx,
        });
    }
    (eps, rxs)
}

/// Receiving ends corresponding to a [`MachineEndpoints`].
#[derive(Debug)]
pub struct MachineReceivers {
    /// Consumed by copier threads (shared work queue).
    pub copier_rx: Receiver<Envelope>,
    /// One response queue per worker.
    pub worker_rx: Vec<Receiver<Envelope>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MsgKind;

    fn test_telemetry(machines: usize) -> Vec<Arc<Telemetry>> {
        (0..machines)
            .map(|_| Telemetry::detached(machines, true))
            .collect()
    }

    fn test_fabric(machines: usize, workers: usize) -> (Fabric, Vec<MachineReceivers>) {
        let (eps, rxs) = make_endpoints(machines, workers);
        (
            Fabric::new(eps, test_telemetry(machines), NetConfig::null()),
            rxs,
        )
    }

    fn env(src: u16, dst: u16, kind: MsgKind, worker: u16, len: usize) -> Envelope {
        Envelope {
            src,
            dst,
            kind,
            worker,
            side_id: 0,
            seq: 0,
            payload: vec![0u8; len],
        }
    }

    #[test]
    fn routes_requests_to_copier() {
        let (f, rxs) = test_fabric(2, 2);
        f.send(env(0, 1, MsgKind::Write, 0, 16)).unwrap();
        let got = rxs[1].copier_rx.try_recv().unwrap();
        assert_eq!(got.kind, MsgKind::Write);
        assert!(rxs[1].worker_rx[0].try_recv().is_err());
    }

    #[test]
    fn routes_responses_to_worker() {
        let (f, rxs) = test_fabric(2, 2);
        f.send(env(1, 0, MsgKind::ReadResp, 1, 8)).unwrap();
        let got = rxs[0].worker_rx[1].try_recv().unwrap();
        assert_eq!(got.kind, MsgKind::ReadResp);
        assert!(rxs[0].copier_rx.try_recv().is_err());
    }

    #[test]
    fn self_send_allowed() {
        let (f, rxs) = test_fabric(1, 1);
        f.send(env(0, 0, MsgKind::BarrierArrive, 0, 0)).unwrap();
        assert!(rxs[0].copier_rx.try_recv().is_ok());
    }

    #[test]
    fn torn_down_machine_surfaces_as_machine_down() {
        let (f, mut rxs) = test_fabric(2, 1);
        // Simulate machine 1's threads exiting: its receivers are dropped.
        rxs.remove(1);
        let err = f.send(env(0, 1, MsgKind::Write, 0, 8)).unwrap_err();
        assert_eq!(err, JobError::MachineDown { machine: 1 });
    }

    #[test]
    fn fault_plan_drops_and_duplicates_deterministically() {
        let plan = FaultPlan::lossy(0xC0FFEE, 100, 100, 0);
        let run = || {
            let (eps, rxs) = make_endpoints(2, 1);
            let f = Fabric::with_faults(eps, test_telemetry(2), NetConfig::null(), plan);
            for _ in 0..500 {
                f.send(env(0, 1, MsgKind::Write, 0, 8)).unwrap();
            }
            let delivered = rxs[1].copier_rx.len();
            (delivered, f.fault_counters().unwrap())
        };
        let (d1, c1) = run();
        let (d2, c2) = run();
        assert_eq!((d1, c1), (d2, c2), "schedule replays identically");
        assert!(c1.dropped > 0 && c1.duplicated > 0);
        assert_eq!(d1 as u64, 500 - c1.dropped + c1.duplicated);
    }

    #[test]
    fn crashed_machine_stops_receiving() {
        let plan = FaultPlan::crash(1, 10);
        let (eps, rxs) = make_endpoints(3, 1);
        let f = Fabric::with_faults(eps, test_telemetry(3), NetConfig::null(), plan);
        for _ in 0..50 {
            f.send(env(0, 1, MsgKind::Write, 0, 8)).unwrap();
        }
        assert_eq!(f.crashed_machine(), Some(1));
        assert_eq!(rxs[1].copier_rx.len(), 10, "only pre-crash sends landed");
        // Uninvolved machines still reachable.
        f.send(env(0, 2, MsgKind::Write, 0, 8)).unwrap();
        assert_eq!(rxs[2].copier_rx.len(), 1);
    }

    #[test]
    fn accounting_charged_to_sender() {
        let (eps, _rxs) = make_endpoints(2, 1);
        let tele = test_telemetry(2);
        let stats: Vec<Arc<MachineStats>> = tele.iter().map(|t| t.stats().clone()).collect();
        let f = Fabric::new(eps, tele.clone(), NetConfig::null());
        f.send(env(0, 1, MsgKind::Write, 0, 100)).unwrap();
        f.send(env(0, 1, MsgKind::Write, 0, 50)).unwrap();
        let s0 = stats[0].snapshot();
        assert_eq!(s0.msgs_sent, 2);
        assert_eq!(s0.bytes_sent, 150);
        assert_eq!(s0.header_bytes_sent, 32);
        assert_eq!(stats[1].snapshot().msgs_sent, 0);
        // Per-destination traffic lands on the source's telemetry.
        #[cfg(feature = "telemetry")]
        assert_eq!(tele[0].dest_bytes_snapshot(), vec![0, 150 + 32]);
    }

    #[test]
    fn net_model_accumulates_virtual_time() {
        let (eps, _rxs) = make_endpoints(2, 1);
        let stats = test_telemetry(2);
        let net = NetConfig {
            per_message_ns: 1_000,
            bandwidth_bytes_per_sec: 1_000_000_000, // 1 GB/s → 1 ns/byte
            latency_ns: 0,
        };
        let f = Fabric::new(eps, stats, net);
        // 984 + 16 header = 1000 bytes
        f.send(env(0, 1, MsgKind::Write, 0, 984)).unwrap();
        assert_eq!(f.virtual_busy_ns(0), 1_000 + 1_000);
        assert_eq!(f.virtual_busy_ns(1), 0);
    }
}
