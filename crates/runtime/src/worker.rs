//! Per-worker communication state: request buffers and side structures.
//!
//! §3.2: "request messages are accumulated separately by each worker.
//! While buffering up the remote requests into a message, the Data Manager
//! maintains a corresponding side data structure that logs the tasks the
//! requests originated from, in the same order. [...] When the response
//! message is received [...] using the side structure, the worker can
//! iterate over the payload of the received message and invoke continuation
//! methods on the corresponding task object."
//!
//! [`WorkerComm`] owns, for one worker thread:
//! * one read-request buffer and one mutation buffer per destination
//!   machine, sealed into envelopes when full or at flush;
//! * the side-structure slab mapping in-flight `side_id`s to their
//!   continuation records;
//! * the worker's response receive queue.

use crate::buffer::BufferPool;
use crate::health::{ClusterHealth, JobError};
use crate::ids::MachineId;
use crate::message::{
    mut_entry_count, push_ack_entry, push_mut_entry, push_read_entry, push_rmi_entry, Envelope,
    MsgKind, ACK_ENTRY_BYTES, MUT_ENTRY_BYTES, READ_ENTRY_BYTES,
};
use crate::props::{PropId, ReduceOp};
use crate::reliable::DedupWindow;
use crate::stats::MachineStats;
use crate::telemetry::{EventKind, Telemetry};
use crossbeam::channel::{Receiver, Sender};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// One continuation record: which task (node) the request belongs to plus a
/// free-form tag the task can use to disambiguate multiple callbacks
/// ("the user can implement a state machine to distinguish multiple
/// callbacks").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SideRec {
    /// Local index of the current node of the originating task.
    pub node: u32,
    /// User tag (edge index, state-machine step, ...).
    pub aux: u64,
}

/// Slab of in-flight side structures, indexed by the `side_id` echoed
/// through request/response headers.
#[derive(Debug, Default)]
struct SideSlab {
    slots: Vec<Option<Vec<SideRec>>>,
    free: Vec<u32>,
}

impl SideSlab {
    fn insert(&mut self, recs: Vec<SideRec>) -> u32 {
        match self.free.pop() {
            Some(id) => {
                debug_assert!(self.slots[id as usize].is_none());
                self.slots[id as usize] = Some(recs);
                id
            }
            None => {
                self.slots.push(Some(recs));
                (self.slots.len() - 1) as u32
            }
        }
    }

    /// Retires slot `id`, returning its records — or `None` when the slot
    /// is not in flight (out-of-range, never issued, or already consumed
    /// by an earlier response: the duplicated-response symptom).
    fn take(&mut self, id: u32) -> Option<Vec<SideRec>> {
        let recs = self.slots.get_mut(id as usize)?.take()?;
        self.free.push(id);
        Some(recs)
    }

    /// Abandons every in-flight slot, returning the total record count.
    fn abandon(&mut self) -> usize {
        let mut n = 0;
        for (id, slot) in self.slots.iter_mut().enumerate() {
            if let Some(recs) = slot.take() {
                n += recs.len();
                self.free.push(id as u32);
            }
        }
        n
    }

    fn in_flight(&self) -> usize {
        self.slots.len() - self.free.len()
    }
}

/// A sealed response ready for continuation processing.
#[derive(Debug)]
pub struct Response {
    /// The envelope as received (`ReadResp` or `RmiResp`).
    pub env: Envelope,
    /// The continuation records logged when the requests were buffered,
    /// in request order.
    pub recs: Vec<SideRec>,
}

/// Per-worker communication endpoint.
pub struct WorkerComm {
    machine: MachineId,
    worker: u16,
    buffer_bytes: usize,
    read_payloads: Vec<Option<(Vec<u8>, Vec<SideRec>)>>,
    mut_payloads: Vec<Option<Vec<u8>>>,
    mut_kind: MsgKind,
    rmi_payloads: Vec<Option<(Vec<u8>, Vec<SideRec>)>>,
    slab: SideSlab,
    resp_rx: Receiver<Envelope>,
    outbox: Sender<Envelope>,
    pool: Arc<BufferPool>,
    pending: Arc<AtomicI64>,
    telemetry: Arc<Telemetry>,
    stats: Arc<MachineStats>,
    health: Arc<ClusterHealth>,
    /// Whether the reliability protocol is on: responses are then acked
    /// and dedup-filtered before their continuations run.
    reliable: bool,
    /// Response-lane duplicate-suppression windows, one per source
    /// machine. Worker-owned, hence lock-free.
    resp_dedup: Vec<DedupWindow>,
    /// Send timestamps per `side_id` (ns since the telemetry epoch) for
    /// remote-read round-trip measurement. Only written when telemetry is
    /// enabled.
    sent_at: Vec<u64>,
    /// Pool-exhaustion count already traced, to report only deltas.
    last_exhausted: u64,
    rec_pool: Vec<Vec<SideRec>>,
    // Entry statistics are batched locally and published at flush time so
    // the per-edge hot path touches no shared counters.
    stat_reads: u64,
    stat_writes: u64,
    stat_ghosts: u64,
    stat_rmis: u64,
}

impl WorkerComm {
    /// Creates the communication state for worker `worker` of `machine` in
    /// a cluster of `num_machines`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        machine: MachineId,
        worker: u16,
        num_machines: usize,
        buffer_bytes: usize,
        resp_rx: Receiver<Envelope>,
        outbox: Sender<Envelope>,
        pool: Arc<BufferPool>,
        pending: Arc<AtomicI64>,
        telemetry: Arc<Telemetry>,
        health: Arc<ClusterHealth>,
        reliable: bool,
    ) -> Self {
        let stats = telemetry.stats().clone();
        WorkerComm {
            machine,
            worker,
            buffer_bytes,
            read_payloads: (0..num_machines).map(|_| None).collect(),
            mut_payloads: (0..num_machines).map(|_| None).collect(),
            mut_kind: MsgKind::Write,
            rmi_payloads: (0..num_machines).map(|_| None).collect(),
            slab: SideSlab::default(),
            resp_rx,
            outbox,
            pool,
            pending,
            telemetry,
            stats,
            health,
            reliable,
            resp_dedup: (0..num_machines).map(|_| DedupWindow::default()).collect(),
            sent_at: Vec::new(),
            last_exhausted: 0,
            rec_pool: Vec::new(),
            stat_reads: 0,
            stat_writes: 0,
            stat_ghosts: 0,
            stat_rmis: 0,
        }
    }

    /// This worker's machine.
    pub fn machine(&self) -> MachineId {
        self.machine
    }

    /// This worker's index on its machine.
    pub fn worker(&self) -> u16 {
        self.worker
    }

    /// Selects the message kind mutation entries are sent under. Only
    /// valid while all mutation buffers are empty (phases switch between
    /// `Write`, `GhostSync` and `GhostReduce`).
    pub fn set_mut_kind(&mut self, kind: MsgKind) {
        debug_assert!(
            self.mut_payloads.iter().all(|p| p.is_none()),
            "cannot switch mutation kind with entries buffered"
        );
        self.mut_kind = kind;
    }

    fn take_recs(&mut self) -> Vec<SideRec> {
        self.rec_pool.pop().unwrap_or_default()
    }

    /// Buffers a remote read request to `dst` and logs the continuation
    /// record. Flushes automatically when the buffer reaches capacity.
    pub fn push_read(&mut self, dst: MachineId, prop: PropId, offset: u32, rec: SideRec) {
        self.pending.fetch_add(1, Ordering::AcqRel);
        self.stat_reads += 1;
        let slot = dst as usize;
        if self.read_payloads[slot].is_none() {
            let buf = self.pool.acquire_or_alloc();
            let recs = self.take_recs();
            self.read_payloads[slot] = Some((buf, recs));
        }
        {
            let (buf, recs) = self.read_payloads[slot].as_mut().unwrap();
            push_read_entry(buf, prop.0, offset);
            recs.push(rec);
        }
        if self.read_payloads[slot].as_ref().unwrap().0.len() + READ_ENTRY_BYTES > self.buffer_bytes
        {
            self.seal_read(dst);
        }
    }

    /// Buffers a remote mutation (write reduction / ghost sync entry).
    pub fn push_mut(&mut self, dst: MachineId, prop: PropId, op: ReduceOp, offset: u32, bits: u64) {
        self.pending.fetch_add(1, Ordering::AcqRel);
        match self.mut_kind {
            MsgKind::Write => self.stat_writes += 1,
            _ => self.stat_ghosts += 1,
        }
        let slot = dst as usize;
        if self.mut_payloads[slot].is_none() {
            self.mut_payloads[slot] = Some(self.pool.acquire_or_alloc());
        }
        {
            let buf = self.mut_payloads[slot].as_mut().unwrap();
            push_mut_entry(buf, prop.0, op, offset, bits);
        }
        if self.mut_payloads[slot].as_ref().unwrap().len() + MUT_ENTRY_BYTES > self.buffer_bytes {
            self.seal_mut(dst);
        }
    }

    /// Buffers a remote method invocation; the response will surface as an
    /// `RmiResp` [`Response`] whose records carry `rec`.
    pub fn push_rmi(&mut self, dst: MachineId, fn_id: u16, args: &[u8], rec: SideRec) {
        self.pending.fetch_add(1, Ordering::AcqRel);
        self.stat_rmis += 1;
        let slot = dst as usize;
        if self.rmi_payloads[slot].is_none() {
            let buf = self.pool.acquire_or_alloc();
            let recs = self.take_recs();
            self.rmi_payloads[slot] = Some((buf, recs));
        }
        {
            let (buf, recs) = self.rmi_payloads[slot].as_mut().unwrap();
            push_rmi_entry(buf, fn_id, args);
            recs.push(rec);
        }
        if self.rmi_payloads[slot].as_ref().unwrap().0.len() + 4 + args.len() > self.buffer_bytes {
            self.seal_rmi(dst);
        }
    }

    /// Telemetry for one sealed buffer: fill ratio, a flush trace event,
    /// and optionally (for request kinds expecting a response) the send
    /// timestamp for round-trip measurement plus side-slab occupancy.
    fn note_seal(&mut self, payload_len: usize, side_id: Option<u32>) {
        if !self.telemetry.enabled() {
            return;
        }
        self.telemetry
            .record_flush_fill((payload_len * 100 / self.buffer_bytes.max(1)) as u64);
        self.telemetry.trace(
            self.worker as usize,
            EventKind::BufferFlush,
            payload_len as u64,
        );
        if let Some(id) = side_id {
            self.telemetry
                .record_side_occupancy(self.slab.in_flight() as u64);
            let i = id as usize;
            if self.sent_at.len() <= i {
                self.sent_at.resize(i + 1, 0);
            }
            self.sent_at[i] = self.telemetry.now_ns();
        }
    }

    fn seal_read(&mut self, dst: MachineId) {
        if let Some((payload, recs)) = self.read_payloads[dst as usize].take() {
            let side_id = self.slab.insert(recs);
            self.note_seal(payload.len(), Some(side_id));
            let _ = self.outbox.send(Envelope {
                src: self.machine,
                dst,
                kind: MsgKind::ReadReq,
                worker: self.worker,
                side_id,
                seq: 0,
                payload,
            });
        }
    }

    fn seal_mut(&mut self, dst: MachineId) {
        if let Some(payload) = self.mut_payloads[dst as usize].take() {
            self.note_seal(payload.len(), None);
            let _ = self.outbox.send(Envelope {
                src: self.machine,
                dst,
                kind: self.mut_kind,
                worker: self.worker,
                side_id: 0,
                seq: 0,
                payload,
            });
        }
    }

    fn seal_rmi(&mut self, dst: MachineId) {
        if let Some((payload, recs)) = self.rmi_payloads[dst as usize].take() {
            let side_id = self.slab.insert(recs);
            self.note_seal(payload.len(), Some(side_id));
            let _ = self.outbox.send(Envelope {
                src: self.machine,
                dst,
                kind: MsgKind::Rmi,
                worker: self.worker,
                side_id,
                seq: 0,
                payload,
            });
        }
    }

    /// Seals and sends every non-empty buffer ("when the worker thread has
    /// completed all tasks, the message is sent to the remote machine").
    pub fn flush(&mut self) {
        for dst in 0..self.read_payloads.len() as MachineId {
            self.seal_read(dst);
            self.seal_mut(dst);
            self.seal_rmi(dst);
        }
        if self.telemetry.enabled() {
            let exhausted = self.pool.exhausted_events();
            if exhausted > self.last_exhausted {
                self.telemetry.trace(
                    self.worker as usize,
                    EventKind::PoolStall,
                    exhausted - self.last_exhausted,
                );
                self.last_exhausted = exhausted;
            }
        }
        self.publish_stats();
    }

    /// Publishes the batched entry counters to the machine statistics.
    pub fn publish_stats(&mut self) {
        if self.stat_reads > 0 {
            self.stats
                .read_entries
                .fetch_add(self.stat_reads, Ordering::Relaxed);
            self.stat_reads = 0;
        }
        if self.stat_writes > 0 {
            self.stats
                .write_entries
                .fetch_add(self.stat_writes, Ordering::Relaxed);
            self.stat_writes = 0;
        }
        if self.stat_ghosts > 0 {
            self.stats
                .ghost_entries
                .fetch_add(self.stat_ghosts, Ordering::Relaxed);
            self.stat_ghosts = 0;
        }
        if self.stat_rmis > 0 {
            self.stats
                .rmi_entries
                .fetch_add(self.stat_rmis, Ordering::Relaxed);
            self.stat_rmis = 0;
        }
    }

    /// Acknowledges a sequenced response envelope on this worker's lane.
    fn send_ack(&self, peer: MachineId, seq: u64) {
        let mut payload = Vec::with_capacity(ACK_ENTRY_BYTES);
        push_ack_entry(&mut payload, 1 + self.worker as u32, seq);
        let _ = self.outbox.send(Envelope {
            src: self.machine,
            dst: peer,
            kind: MsgKind::Ack,
            worker: 0,
            side_id: 0,
            seq: 0,
            payload,
        });
        self.stats.acks_sent.fetch_add(1, Ordering::Relaxed);
    }

    /// Pops one response if available, pairing it with its side structure.
    /// Under the reliability protocol, sequenced responses are acked and
    /// duplicates suppressed here; a response whose side structure is not
    /// in flight (a duplicate that slipped in unsequenced) aborts the
    /// cluster with a descriptive protocol error rather than panicking.
    pub fn try_pop_response(&mut self) -> Option<Response> {
        loop {
            let env = self.resp_rx.try_recv().ok()?;
            debug_assert!(env.kind.is_response());
            if self.reliable && env.seq != 0 {
                // Always re-ack: the original ack may itself have been lost.
                self.send_ack(env.src, env.seq);
                if !self.resp_dedup[env.src as usize].accept(env.seq) {
                    self.stats.dup_suppressed.fetch_add(1, Ordering::Relaxed);
                    self.telemetry
                        .trace(self.worker as usize, EventKind::DupDrop, env.seq);
                    self.pool.release(env.payload);
                    continue;
                }
            }
            if self.telemetry.enabled() {
                if let Some(&sent) = self.sent_at.get(env.side_id as usize) {
                    if sent > 0 {
                        self.telemetry
                            .record_read_rtt(self.telemetry.now_ns().saturating_sub(sent));
                    }
                }
            }
            let Some(recs) = self.slab.take(env.side_id) else {
                self.health.abort(JobError::Protocol(format!(
                    "machine {} worker {}: {:?} response names side structure {} which is \
                     not in flight (duplicated or stale response)",
                    self.machine, self.worker, env.kind, env.side_id
                )));
                self.pool.release(env.payload);
                return None;
            };
            return Some(Response { env, recs });
        }
    }

    /// Returns a processed response's resources to the pools and retires
    /// its `pending` entries. Must be called exactly once per popped
    /// [`Response`], after the continuations have run.
    pub fn finish_response(&mut self, resp: Response) {
        let n = resp.recs.len() as i64;
        self.pending.fetch_sub(n, Ordering::AcqRel);
        let mut recs = resp.recs;
        recs.clear();
        self.rec_pool.push(recs);
        self.pool.release(resp.env.payload);
    }

    /// Abandons all in-flight communication after a cluster abort: unsealed
    /// request buffers are returned to the pool, outstanding side
    /// structures are dropped, and queued responses are drained. The
    /// cluster-global `pending` counter is deliberately left untouched —
    /// its accounting is unrecoverable once envelopes were lost, so the
    /// driver resets it when it reaps the abort.
    pub fn abort_in_flight(&mut self) {
        let mut failed = 0u64;
        for slot in self.read_payloads.iter_mut() {
            if let Some((buf, recs)) = slot.take() {
                failed += recs.len() as u64;
                self.pool.release(buf);
            }
        }
        for slot in self.mut_payloads.iter_mut() {
            if let Some(buf) = slot.take() {
                failed += mut_entry_count(&buf) as u64;
                self.pool.release(buf);
            }
        }
        for slot in self.rmi_payloads.iter_mut() {
            if let Some((buf, recs)) = slot.take() {
                failed += recs.len() as u64;
                self.pool.release(buf);
            }
        }
        failed += self.slab.abandon() as u64;
        while let Ok(env) = self.resp_rx.try_recv() {
            self.pool.release(env.payload);
        }
        if failed > 0 {
            self.stats
                .failed_entries
                .fetch_add(failed, Ordering::Relaxed);
            self.telemetry
                .trace(self.worker as usize, EventKind::AbortSweep, failed);
        }
        self.publish_stats();
    }

    /// Number of side structures awaiting responses.
    pub fn in_flight_sides(&self) -> usize {
        self.slab.in_flight()
    }

    /// True if all request buffers are empty (everything sealed).
    pub fn is_flushed(&self) -> bool {
        self.read_payloads.iter().all(|p| p.is_none())
            && self.mut_payloads.iter().all(|p| p.is_none())
            && self.rmi_payloads.iter().all(|p| p.is_none())
    }

    /// The cluster-wide pending-entry counter (for completion checks).
    pub fn pending(&self) -> &Arc<AtomicI64> {
        &self.pending
    }

    /// The machine's statistics block.
    pub fn stats(&self) -> &Arc<MachineStats> {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    fn make_comm(buffer_bytes: usize) -> (WorkerComm, Receiver<Envelope>, Sender<Envelope>) {
        let (out_tx, out_rx) = unbounded();
        let (resp_tx, resp_rx) = unbounded();
        let comm = WorkerComm::new(
            0,
            0,
            2,
            buffer_bytes,
            resp_rx,
            out_tx,
            Arc::new(BufferPool::new(8, buffer_bytes)),
            Arc::new(AtomicI64::new(0)),
            Telemetry::detached(2, true),
            Arc::new(ClusterHealth::new(2)),
            false,
        );
        (comm, out_rx, resp_tx)
    }

    #[test]
    fn reads_buffer_until_flush() {
        let (mut comm, out, _resp) = make_comm(1024);
        comm.push_read(1, PropId(0), 5, SideRec { node: 2, aux: 0 });
        comm.push_read(1, PropId(0), 6, SideRec { node: 3, aux: 0 });
        assert!(out.try_recv().is_err(), "nothing sent before flush");
        assert_eq!(comm.pending().load(Ordering::SeqCst), 2);
        comm.flush();
        let env = out.try_recv().unwrap();
        assert_eq!(env.kind, MsgKind::ReadReq);
        assert_eq!(crate::message::read_entry_count(&env.payload), 2);
        assert_eq!(comm.in_flight_sides(), 1);
        assert!(comm.is_flushed());
    }

    #[test]
    fn reads_auto_seal_at_capacity() {
        // Buffer fits exactly 2 read entries.
        let (mut comm, out, _resp) = make_comm(2 * READ_ENTRY_BYTES);
        for i in 0..5u32 {
            comm.push_read(1, PropId(0), i, SideRec { node: i, aux: 0 });
        }
        // 5 entries → two sealed envelopes of 2, one buffered entry left.
        assert_eq!(out.try_iter().count(), 2);
        assert!(!comm.is_flushed());
        comm.flush();
        assert_eq!(out.try_iter().count(), 1);
    }

    #[test]
    fn response_roundtrip_decrements_pending() {
        let (mut comm, out, resp_tx) = make_comm(1024);
        comm.push_read(1, PropId(3), 9, SideRec { node: 7, aux: 42 });
        comm.flush();
        let req = out.try_recv().unwrap();
        // Fake the remote copier's answer.
        let mut payload = Vec::new();
        crate::message::push_resp_entry(&mut payload, 0xDEAD);
        resp_tx
            .send(Envelope {
                src: 1,
                dst: 0,
                kind: MsgKind::ReadResp,
                worker: req.worker,
                side_id: req.side_id,
                seq: 0,
                payload,
            })
            .unwrap();
        let r = comm.try_pop_response().unwrap();
        assert_eq!(r.recs, vec![SideRec { node: 7, aux: 42 }]);
        assert_eq!(crate::message::resp_entry(&r.env.payload, 0), 0xDEAD);
        comm.finish_response(r);
        assert_eq!(comm.pending().load(Ordering::SeqCst), 0);
        assert_eq!(comm.in_flight_sides(), 0);
    }

    #[test]
    fn mutations_roundtrip() {
        let (mut comm, out, _resp) = make_comm(1024);
        comm.push_mut(1, PropId(2), ReduceOp::Sum, 11, 99);
        comm.flush();
        let env = out.try_recv().unwrap();
        assert_eq!(env.kind, MsgKind::Write);
        let (p, op, off, bits) = crate::message::mut_entry(&env.payload, 0);
        assert_eq!((p, op, off, bits), (2, ReduceOp::Sum, 11, 99));
        // Writes stay pending until the copier applies them.
        assert_eq!(comm.pending().load(Ordering::SeqCst), 1);
    }

    #[test]
    fn mut_kind_switches_for_ghost_phases() {
        let (mut comm, out, _resp) = make_comm(1024);
        comm.set_mut_kind(MsgKind::GhostSync);
        comm.push_mut(1, PropId(0), ReduceOp::Assign, 0, 7);
        comm.flush();
        assert_eq!(out.try_recv().unwrap().kind, MsgKind::GhostSync);
        comm.set_mut_kind(MsgKind::Write);
    }

    #[test]
    fn rmi_roundtrip() {
        let (mut comm, out, resp_tx) = make_comm(1024);
        comm.push_rmi(1, 4, b"args", SideRec { node: 0, aux: 1 });
        comm.flush();
        let req = out.try_recv().unwrap();
        assert_eq!(req.kind, MsgKind::Rmi);
        let entries: Vec<_> = crate::message::rmi_entries(&req.payload).collect();
        assert_eq!(entries, vec![(4u16, &b"args"[..])]);
        let mut payload = Vec::new();
        crate::message::push_rmi_resp_entry(&mut payload, b"ok");
        resp_tx
            .send(Envelope {
                src: 1,
                dst: 0,
                kind: MsgKind::RmiResp,
                worker: req.worker,
                side_id: req.side_id,
                seq: 0,
                payload,
            })
            .unwrap();
        let r = comm.try_pop_response().unwrap();
        assert_eq!(r.env.kind, MsgKind::RmiResp);
        assert_eq!(r.recs[0].aux, 1);
        comm.finish_response(r);
        assert_eq!(comm.pending().load(Ordering::SeqCst), 0);
    }

    #[test]
    fn side_slab_recycles_ids() {
        let (mut comm, out, resp_tx) = make_comm(READ_ENTRY_BYTES);
        for round in 0..3 {
            comm.push_read(
                1,
                PropId(0),
                round,
                SideRec {
                    node: round,
                    aux: 0,
                },
            );
            let req = out.try_recv().unwrap();
            assert_eq!(req.side_id, 0, "slab should recycle slot 0");
            let mut payload = Vec::new();
            crate::message::push_resp_entry(&mut payload, round as u64);
            resp_tx
                .send(Envelope {
                    src: 1,
                    dst: 0,
                    kind: MsgKind::ReadResp,
                    worker: 0,
                    side_id: req.side_id,
                    seq: 0,
                    payload,
                })
                .unwrap();
            let r = comm.try_pop_response().unwrap();
            comm.finish_response(r);
        }
    }

    fn make_reliable_comm(
        buffer_bytes: usize,
    ) -> (
        WorkerComm,
        Receiver<Envelope>,
        Sender<Envelope>,
        Arc<ClusterHealth>,
    ) {
        let (out_tx, out_rx) = unbounded();
        let (resp_tx, resp_rx) = unbounded();
        let health = Arc::new(ClusterHealth::new(2));
        let comm = WorkerComm::new(
            0,
            0,
            2,
            buffer_bytes,
            resp_rx,
            out_tx,
            Arc::new(BufferPool::new(8, buffer_bytes)),
            Arc::new(AtomicI64::new(0)),
            Telemetry::detached(2, true),
            health.clone(),
            true,
        );
        (comm, out_rx, resp_tx, health)
    }

    #[test]
    fn duplicate_response_suppressed_and_acked() {
        let (mut comm, out, resp_tx, health) = make_reliable_comm(1024);
        comm.push_read(1, PropId(0), 3, SideRec { node: 1, aux: 0 });
        comm.flush();
        let req = out.try_recv().unwrap();
        let mut payload = Vec::new();
        crate::message::push_resp_entry(&mut payload, 7);
        let resp = Envelope {
            src: 1,
            dst: 0,
            kind: MsgKind::ReadResp,
            worker: req.worker,
            side_id: req.side_id,
            seq: 9,
            payload,
        };
        resp_tx.send(resp.clone()).unwrap();
        resp_tx.send(resp).unwrap(); // the wire duplicated it
        let r = comm.try_pop_response().expect("first delivery accepted");
        comm.finish_response(r);
        assert!(
            comm.try_pop_response().is_none(),
            "replay suppressed without touching the slab"
        );
        assert!(!health.is_aborted(), "a suppressed dup is not an error");
        assert_eq!(comm.stats().dup_suppressed.load(Ordering::Relaxed), 1);
        // Both deliveries were acked (the first ack may have been lost).
        let acks: Vec<_> = out.try_iter().filter(|e| e.kind == MsgKind::Ack).collect();
        assert_eq!(acks.len(), 2);
        let (lane, seq) = crate::message::ack_entries(&acks[0].payload)
            .next()
            .unwrap();
        assert_eq!((lane, seq), (1, 9), "worker 0 acks on lane 1");
    }

    #[test]
    fn unknown_side_structure_aborts_instead_of_panicking() {
        let (mut comm, _out, resp_tx, health) = make_reliable_comm(1024);
        resp_tx
            .send(Envelope {
                src: 1,
                dst: 0,
                kind: MsgKind::ReadResp,
                worker: 0,
                side_id: 42,
                seq: 0,
                payload: Vec::new(),
            })
            .unwrap();
        assert!(comm.try_pop_response().is_none());
        assert!(health.is_aborted());
        match health.error() {
            Some(JobError::Protocol(msg)) => {
                assert!(msg.contains("side structure 42"), "got: {msg}")
            }
            other => panic!("expected protocol error, got {other:?}"),
        }
    }

    #[test]
    fn abort_sweep_releases_in_flight_state() {
        let (mut comm, out, _resp, _health) = make_reliable_comm(1024);
        // One unsealed read buffer + one sealed (slab-held) request.
        comm.push_read(1, PropId(0), 0, SideRec { node: 0, aux: 0 });
        comm.flush();
        let _ = out.try_recv().unwrap();
        comm.push_read(1, PropId(0), 1, SideRec { node: 1, aux: 0 });
        comm.push_mut(1, PropId(0), ReduceOp::Sum, 2, 5);
        assert_eq!(comm.in_flight_sides(), 1);
        assert!(!comm.is_flushed());
        comm.abort_in_flight();
        assert!(comm.is_flushed(), "unsealed buffers were abandoned");
        assert_eq!(comm.in_flight_sides(), 0, "side slab was abandoned");
        assert_eq!(comm.stats().failed_entries.load(Ordering::Relaxed), 3);
    }
}
