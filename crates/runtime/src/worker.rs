//! Per-worker communication state: request buffers and side structures.
//!
//! §3.2: "request messages are accumulated separately by each worker.
//! While buffering up the remote requests into a message, the Data Manager
//! maintains a corresponding side data structure that logs the tasks the
//! requests originated from, in the same order. [...] When the response
//! message is received [...] using the side structure, the worker can
//! iterate over the payload of the received message and invoke continuation
//! methods on the corresponding task object."
//!
//! [`WorkerComm`] owns, for one worker thread:
//! * one read-request buffer and one mutation buffer per destination
//!   machine, sealed into envelopes when full or at flush;
//! * the side-structure slab mapping in-flight `side_id`s to their
//!   continuation records;
//! * the worker's response receive queue.

use crate::buffer::BufferPool;
use crate::flow::FlushController;
use crate::health::{ClusterHealth, JobError};
use crate::ids::MachineId;
use crate::message::{
    mut_entry_count, push_ack_entry, push_mut_entry, push_read_entry, push_rmi_entry, Envelope,
    MsgKind, ACK_ENTRY_BYTES, MUT_ENTRY_BYTES, READ_ENTRY_BYTES,
};
use crate::props::{PropId, ReduceOp};
use crate::reliable::DedupWindow;
use crate::stats::MachineStats;
use crate::telemetry::{EventKind, Telemetry};
use crossbeam::channel::{Receiver, Sender};
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// Communication tuning for one worker: the knobs that shape the fast
/// path, bundled so [`WorkerComm::new`] doesn't accumulate loose scalar
/// arguments. Built by the cluster from the validated [`Config`]
/// (`buffer_bytes`, `read_combining`, `adaptive_flush`, `pool_shards`).
///
/// [`Config`]: crate::config::Config
#[derive(Clone)]
pub struct CommTuning {
    /// Allocated bytes per message buffer (the hard capacity; the flush
    /// controller's threshold never exceeds it).
    pub buffer_bytes: usize,
    /// Combine duplicate in-flight reads of the same `(property, vertex)`
    /// into one wire entry.
    pub read_combining: bool,
    /// The machine's shared flush-threshold controller.
    pub flush: Arc<FlushController>,
    /// Buffer-pool shard hint for this worker (its worker index).
    pub pool_shard: usize,
}

impl CommTuning {
    /// Fixed flush threshold at `buffer_bytes`, combining on, shard 0 —
    /// mirrors the production defaults for tests and detached endpoints.
    pub fn fixed(buffer_bytes: usize) -> Self {
        CommTuning {
            buffer_bytes,
            read_combining: true,
            flush: Arc::new(FlushController::fixed(buffer_bytes)),
            pool_shard: 0,
        }
    }
}

/// One continuation record: which task (node) the request belongs to plus a
/// free-form tag the task can use to disambiguate multiple callbacks
/// ("the user can implement a state machine to distinguish multiple
/// callbacks").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SideRec {
    /// Local index of the current node of the originating task.
    pub node: u32,
    /// User tag (edge index, state-machine step, ...).
    pub aux: u64,
}

/// One in-flight side structure: the continuation records logged while the
/// request buffer filled, plus (under read combining) the wire entry index
/// each record's value lives at.
#[derive(Debug, Default)]
struct SideEntry {
    recs: Vec<SideRec>,
    /// Wire entry index per record. Empty means the identity mapping
    /// (record `i` ↔ entry `i`) — the only shape produced with combining
    /// off, so the common path carries no per-record cost.
    entry_idx: Vec<u32>,
}

/// Slab of in-flight side structures, indexed by the `side_id` echoed
/// through request/response headers.
#[derive(Debug, Default)]
struct SideSlab {
    slots: Vec<Option<SideEntry>>,
    free: Vec<u32>,
}

impl SideSlab {
    fn insert(&mut self, entry: SideEntry) -> u32 {
        match self.free.pop() {
            Some(id) => {
                debug_assert!(self.slots[id as usize].is_none());
                self.slots[id as usize] = Some(entry);
                id
            }
            None => {
                self.slots.push(Some(entry));
                (self.slots.len() - 1) as u32
            }
        }
    }

    /// Retires slot `id`, returning its records — or `None` when the slot
    /// is not in flight (out-of-range, never issued, or already consumed
    /// by an earlier response: the duplicated-response symptom).
    fn take(&mut self, id: u32) -> Option<SideEntry> {
        let entry = self.slots.get_mut(id as usize)?.take()?;
        self.free.push(id);
        Some(entry)
    }

    /// Abandons every in-flight slot, returning the total record count.
    fn abandon(&mut self) -> usize {
        let mut n = 0;
        for (id, slot) in self.slots.iter_mut().enumerate() {
            if let Some(entry) = slot.take() {
                n += entry.recs.len();
                self.free.push(id as u32);
            }
        }
        n
    }

    fn in_flight(&self) -> usize {
        self.slots.len() - self.free.len()
    }
}

/// A sealed response ready for continuation processing.
#[derive(Debug)]
pub struct Response {
    /// The envelope as received (`ReadResp` or `RmiResp`).
    pub env: Envelope,
    /// The continuation records logged when the requests were buffered,
    /// in request order.
    pub recs: Vec<SideRec>,
    /// Wire entry index per record (empty = identity; see read combining).
    entry_idx: Vec<u32>,
}

impl Response {
    /// The wire entry holding record `i`'s value. Identity unless read
    /// combining folded several records onto one request entry.
    #[inline]
    pub fn entry_index(&self, i: usize) -> usize {
        match self.entry_idx.get(i) {
            Some(&e) => e as usize,
            None => i,
        }
    }

    /// The read-response value for record `i` (a `ReadResp` payload).
    #[inline]
    pub fn read_value(&self, i: usize) -> u64 {
        crate::message::resp_entry(&self.env.payload, self.entry_index(i))
    }
}

/// An open per-destination read buffer: wire payload, the continuation
/// records awaiting its responses, and the wire-entry index each record
/// fans out from (empty = identity mapping, i.e. no combining hits).
type ReadBuffer = (Vec<u8>, Vec<SideRec>, Vec<u32>);

/// Per-worker communication endpoint.
pub struct WorkerComm {
    machine: MachineId,
    worker: u16,
    buffer_bytes: usize,
    /// Combine duplicate in-flight reads (see [`CommTuning`]).
    read_combining: bool,
    /// Shared flush-threshold controller; `flush.threshold()` is where
    /// buffers seal (pinned to `buffer_bytes` unless adaptive flush is on).
    flush: Arc<FlushController>,
    /// Buffer-pool shard this worker recycles through.
    pool_shard: usize,
    read_payloads: Vec<Option<ReadBuffer>>,
    /// Per-destination combining table over the *current unsealed* read
    /// buffer: `(property, vertex) → wire entry index`. Cleared at seal, so
    /// combined records always share one request message and therefore see
    /// the same copier-read instant (bit-identical to combining off).
    combine: Vec<HashMap<u64, u32>>,
    mut_payloads: Vec<Option<Vec<u8>>>,
    mut_kind: MsgKind,
    rmi_payloads: Vec<Option<(Vec<u8>, Vec<SideRec>)>>,
    slab: SideSlab,
    resp_rx: Receiver<Envelope>,
    outbox: Sender<Envelope>,
    pool: Arc<BufferPool>,
    pending: Arc<AtomicI64>,
    telemetry: Arc<Telemetry>,
    stats: Arc<MachineStats>,
    health: Arc<ClusterHealth>,
    /// Whether the reliability protocol is on: responses are then acked
    /// and dedup-filtered before their continuations run.
    reliable: bool,
    /// Response-lane duplicate-suppression windows, one per source
    /// machine. Worker-owned, hence lock-free.
    resp_dedup: Vec<DedupWindow>,
    /// Send timestamps per `side_id` (ns since the telemetry epoch) for
    /// remote-read round-trip measurement. Only written when telemetry is
    /// enabled.
    sent_at: Vec<u64>,
    /// Pool-exhaustion count already traced, to report only deltas.
    last_exhausted: u64,
    rec_pool: Vec<Vec<SideRec>>,
    idx_pool: Vec<Vec<u32>>,
    // Entry statistics are batched locally and published at flush time so
    // the per-edge hot path touches no shared counters.
    stat_reads: u64,
    stat_writes: u64,
    stat_ghosts: u64,
    stat_rmis: u64,
    stat_combined: u64,
}

impl WorkerComm {
    /// Creates the communication state for worker `worker` of `machine` in
    /// a cluster of `num_machines`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        machine: MachineId,
        worker: u16,
        num_machines: usize,
        tuning: CommTuning,
        resp_rx: Receiver<Envelope>,
        outbox: Sender<Envelope>,
        pool: Arc<BufferPool>,
        pending: Arc<AtomicI64>,
        telemetry: Arc<Telemetry>,
        health: Arc<ClusterHealth>,
        reliable: bool,
    ) -> Self {
        let stats = telemetry.stats().clone();
        WorkerComm {
            machine,
            worker,
            buffer_bytes: tuning.buffer_bytes,
            read_combining: tuning.read_combining,
            flush: tuning.flush,
            pool_shard: tuning.pool_shard,
            read_payloads: (0..num_machines).map(|_| None).collect(),
            combine: (0..num_machines).map(|_| HashMap::new()).collect(),
            mut_payloads: (0..num_machines).map(|_| None).collect(),
            mut_kind: MsgKind::Write,
            rmi_payloads: (0..num_machines).map(|_| None).collect(),
            slab: SideSlab::default(),
            resp_rx,
            outbox,
            pool,
            pending,
            telemetry,
            stats,
            health,
            reliable,
            resp_dedup: (0..num_machines).map(|_| DedupWindow::default()).collect(),
            sent_at: Vec::new(),
            last_exhausted: 0,
            rec_pool: Vec::new(),
            idx_pool: Vec::new(),
            stat_reads: 0,
            stat_writes: 0,
            stat_ghosts: 0,
            stat_rmis: 0,
            stat_combined: 0,
        }
    }

    /// This worker's machine.
    pub fn machine(&self) -> MachineId {
        self.machine
    }

    /// This worker's index on its machine.
    pub fn worker(&self) -> u16 {
        self.worker
    }

    /// Selects the message kind mutation entries are sent under. Only
    /// valid while all mutation buffers are empty (phases switch between
    /// `Write`, `GhostSync` and `GhostReduce`).
    pub fn set_mut_kind(&mut self, kind: MsgKind) {
        debug_assert!(
            self.mut_payloads.iter().all(|p| p.is_none()),
            "cannot switch mutation kind with entries buffered"
        );
        self.mut_kind = kind;
    }

    fn take_recs(&mut self) -> Vec<SideRec> {
        self.rec_pool.pop().unwrap_or_default()
    }

    fn take_idx(&mut self) -> Vec<u32> {
        self.idx_pool.pop().unwrap_or_default()
    }

    /// Buffers a remote read request to `dst` and logs the continuation
    /// record. Under read combining, a second read of the same
    /// `(property, vertex)` while the buffer is unsealed piggybacks on the
    /// existing wire entry instead of adding one; the response value fans
    /// out to every logged record. Flushes automatically when the buffer
    /// reaches the effective flush threshold.
    pub fn push_read(&mut self, dst: MachineId, prop: PropId, offset: u32, rec: SideRec) {
        self.pending.fetch_add(1, Ordering::AcqRel);
        let slot = dst as usize;
        if self.read_payloads[slot].is_none() {
            let buf = self.pool.acquire_or_alloc_on(self.pool_shard);
            let recs = self.take_recs();
            let idx = self.take_idx();
            self.read_payloads[slot] = Some((buf, recs, idx));
        }
        {
            let (buf, recs, idx) = self.read_payloads[slot].as_mut().unwrap();
            if self.read_combining {
                let entry = (buf.len() / READ_ENTRY_BYTES) as u32;
                let key = ((prop.0 as u64) << 32) | offset as u64;
                match self.combine[slot].entry(key) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        // Hit: the value is already on the wire; no new
                        // entry, no capacity check needed.
                        recs.push(rec);
                        idx.push(*e.get());
                        self.stat_combined += 1;
                        return;
                    }
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(entry);
                    }
                }
                idx.push(entry);
            }
            push_read_entry(buf, prop.0, offset);
            recs.push(rec);
            self.stat_reads += 1;
        }
        if self.read_payloads[slot].as_ref().unwrap().0.len() + READ_ENTRY_BYTES
            > self.flush.threshold()
        {
            self.seal_read(dst);
        }
    }

    /// Buffers a remote mutation (write reduction / ghost sync entry).
    pub fn push_mut(&mut self, dst: MachineId, prop: PropId, op: ReduceOp, offset: u32, bits: u64) {
        self.pending.fetch_add(1, Ordering::AcqRel);
        match self.mut_kind {
            MsgKind::Write => self.stat_writes += 1,
            _ => self.stat_ghosts += 1,
        }
        let slot = dst as usize;
        if self.mut_payloads[slot].is_none() {
            self.mut_payloads[slot] = Some(self.pool.acquire_or_alloc_on(self.pool_shard));
        }
        {
            let buf = self.mut_payloads[slot].as_mut().unwrap();
            push_mut_entry(buf, prop.0, op, offset, bits);
        }
        if self.mut_payloads[slot].as_ref().unwrap().len() + MUT_ENTRY_BYTES
            > self.flush.threshold()
        {
            self.seal_mut(dst);
        }
    }

    /// Buffers a remote method invocation; the response will surface as an
    /// `RmiResp` [`Response`] whose records carry `rec`.
    pub fn push_rmi(&mut self, dst: MachineId, fn_id: u16, args: &[u8], rec: SideRec) {
        self.pending.fetch_add(1, Ordering::AcqRel);
        self.stat_rmis += 1;
        let slot = dst as usize;
        if self.rmi_payloads[slot].is_none() {
            let buf = self.pool.acquire_or_alloc_on(self.pool_shard);
            let recs = self.take_recs();
            self.rmi_payloads[slot] = Some((buf, recs));
        }
        {
            let (buf, recs) = self.rmi_payloads[slot].as_mut().unwrap();
            push_rmi_entry(buf, fn_id, args);
            recs.push(rec);
        }
        if self.rmi_payloads[slot].as_ref().unwrap().0.len() + 4 + args.len()
            > self.flush.threshold()
        {
            self.seal_rmi(dst);
        }
    }

    /// Accounting for one sealed buffer: the flush controller's fill/seal
    /// feed, telemetry (fill ratio, flush trace event), and — for request
    /// kinds expecting a response — the send timestamp for round-trip
    /// measurement plus side-slab occupancy. `entry_bytes` is the size one
    /// more entry would have needed, to classify the seal as at-capacity
    /// vs. explicit-flush.
    fn note_seal(
        &mut self,
        dst: MachineId,
        payload_len: usize,
        side_id: Option<u32>,
        entry_bytes: usize,
    ) {
        let flow = self.flush.enabled();
        if flow {
            let full = payload_len + entry_bytes > self.flush.threshold();
            self.flush.note_seal(dst as usize, payload_len as u64, full);
        }
        let telem = self.telemetry.enabled();
        if !telem && !flow {
            return;
        }
        if telem {
            self.telemetry
                .record_flush_fill((payload_len * 100 / self.buffer_bytes.max(1)) as u64);
            // Charge the sealed buffer to the cluster's active job — this
            // is the send-side half of per-job wire attribution.
            self.telemetry.record_job_send(payload_len as u64);
            self.telemetry.trace(
                self.worker as usize,
                EventKind::BufferFlush,
                payload_len as u64,
            );
            if side_id.is_some() {
                self.telemetry
                    .record_side_occupancy(self.slab.in_flight() as u64);
            }
        }
        if let Some(id) = side_id {
            let i = id as usize;
            if self.sent_at.len() <= i {
                self.sent_at.resize(i + 1, 0);
            }
            // One clock per run: telemetry's when tracing, else the flush
            // controller's (the RTT consumer must subtract consistently).
            self.sent_at[i] = if telem {
                self.telemetry.now_ns()
            } else {
                self.flush.now_ns()
            };
        }
    }

    fn seal_read(&mut self, dst: MachineId) {
        if let Some((payload, recs, entry_idx)) = self.read_payloads[dst as usize].take() {
            if self.read_combining {
                self.combine[dst as usize].clear();
            }
            let side_id = self.slab.insert(SideEntry { recs, entry_idx });
            self.note_seal(dst, payload.len(), Some(side_id), READ_ENTRY_BYTES);
            let _ = self.outbox.send(Envelope {
                src: self.machine,
                dst,
                kind: MsgKind::ReadReq,
                worker: self.worker,
                side_id,
                seq: 0,
                payload,
            });
        }
    }

    fn seal_mut(&mut self, dst: MachineId) {
        if let Some(payload) = self.mut_payloads[dst as usize].take() {
            self.note_seal(dst, payload.len(), None, MUT_ENTRY_BYTES);
            let _ = self.outbox.send(Envelope {
                src: self.machine,
                dst,
                kind: self.mut_kind,
                worker: self.worker,
                side_id: 0,
                seq: 0,
                payload,
            });
        }
    }

    fn seal_rmi(&mut self, dst: MachineId) {
        if let Some((payload, recs)) = self.rmi_payloads[dst as usize].take() {
            let side_id = self.slab.insert(SideEntry {
                recs,
                entry_idx: Vec::new(),
            });
            self.note_seal(dst, payload.len(), Some(side_id), 4);
            let _ = self.outbox.send(Envelope {
                src: self.machine,
                dst,
                kind: MsgKind::Rmi,
                worker: self.worker,
                side_id,
                seq: 0,
                payload,
            });
        }
    }

    /// Seals and sends every non-empty buffer ("when the worker thread has
    /// completed all tasks, the message is sent to the remote machine").
    pub fn flush(&mut self) {
        for dst in 0..self.read_payloads.len() as MachineId {
            self.seal_read(dst);
            self.seal_mut(dst);
            self.seal_rmi(dst);
        }
        if self.telemetry.enabled() {
            let exhausted = self.pool.exhausted_events();
            if exhausted > self.last_exhausted {
                self.telemetry.trace(
                    self.worker as usize,
                    EventKind::PoolStall,
                    exhausted - self.last_exhausted,
                );
                self.last_exhausted = exhausted;
            }
        }
        self.publish_stats();
    }

    /// Publishes the batched entry counters to the machine statistics.
    pub fn publish_stats(&mut self) {
        if self.stat_reads > 0 {
            self.stats
                .read_entries
                .fetch_add(self.stat_reads, Ordering::Relaxed);
            self.stat_reads = 0;
        }
        if self.stat_writes > 0 {
            self.stats
                .write_entries
                .fetch_add(self.stat_writes, Ordering::Relaxed);
            self.stat_writes = 0;
        }
        if self.stat_ghosts > 0 {
            self.stats
                .ghost_entries
                .fetch_add(self.stat_ghosts, Ordering::Relaxed);
            self.stat_ghosts = 0;
        }
        if self.stat_rmis > 0 {
            self.stats
                .rmi_entries
                .fetch_add(self.stat_rmis, Ordering::Relaxed);
            self.stat_rmis = 0;
        }
        if self.stat_combined > 0 {
            self.stats
                .combined_read_hits
                .fetch_add(self.stat_combined, Ordering::Relaxed);
            self.stat_combined = 0;
        }
    }

    /// Acknowledges a sequenced response envelope on this worker's lane.
    fn send_ack(&self, peer: MachineId, seq: u64) {
        let mut payload = Vec::with_capacity(ACK_ENTRY_BYTES);
        push_ack_entry(&mut payload, 1 + self.worker as u32, seq);
        let _ = self.outbox.send(Envelope {
            src: self.machine,
            dst: peer,
            kind: MsgKind::Ack,
            worker: 0,
            side_id: 0,
            seq: 0,
            payload,
        });
        self.stats.acks_sent.fetch_add(1, Ordering::Relaxed);
    }

    /// Pops one response if available, pairing it with its side structure.
    /// Under the reliability protocol, sequenced responses are acked and
    /// duplicates suppressed here; a response whose side structure is not
    /// in flight (a duplicate that slipped in unsequenced) aborts the
    /// cluster with a descriptive protocol error rather than panicking.
    pub fn try_pop_response(&mut self) -> Option<Response> {
        loop {
            let env = self.resp_rx.try_recv().ok()?;
            debug_assert!(env.kind.is_response());
            if self.reliable && env.seq != 0 {
                // Always re-ack: the original ack may itself have been lost.
                self.send_ack(env.src, env.seq);
                if !self.resp_dedup[env.src as usize].accept(env.seq) {
                    self.stats.dup_suppressed.fetch_add(1, Ordering::Relaxed);
                    self.telemetry
                        .trace(self.worker as usize, EventKind::DupDrop, env.seq);
                    self.pool.release_on(env.payload, self.pool_shard);
                    continue;
                }
            }
            let telem = self.telemetry.enabled();
            if telem || self.flush.enabled() {
                if let Some(&sent) = self.sent_at.get(env.side_id as usize) {
                    if sent > 0 {
                        // Same clock note_seal stamped with.
                        let now = if telem {
                            self.telemetry.now_ns()
                        } else {
                            self.flush.now_ns()
                        };
                        let rtt = now.saturating_sub(sent);
                        if telem {
                            self.telemetry.record_read_rtt(rtt);
                        }
                        self.flush.note_rtt(rtt);
                    }
                }
            }
            let Some(entry) = self.slab.take(env.side_id) else {
                self.health.abort(JobError::Protocol(format!(
                    "machine {} worker {}: {:?} response names side structure {} which is \
                     not in flight (duplicated or stale response)",
                    self.machine, self.worker, env.kind, env.side_id
                )));
                self.pool.release_on(env.payload, self.pool_shard);
                return None;
            };
            return Some(Response {
                env,
                recs: entry.recs,
                entry_idx: entry.entry_idx,
            });
        }
    }

    /// Returns a processed response's resources to the pools and retires
    /// its `pending` entries. Must be called exactly once per popped
    /// [`Response`], after the continuations have run.
    pub fn finish_response(&mut self, resp: Response) {
        let n = resp.recs.len() as i64;
        self.pending.fetch_sub(n, Ordering::AcqRel);
        let mut recs = resp.recs;
        recs.clear();
        self.rec_pool.push(recs);
        let mut idx = resp.entry_idx;
        idx.clear();
        self.idx_pool.push(idx);
        self.pool.release_on(resp.env.payload, self.pool_shard);
    }

    /// Abandons all in-flight communication after a cluster abort: unsealed
    /// request buffers are returned to the pool, outstanding side
    /// structures are dropped, and queued responses are drained. The
    /// cluster-global `pending` counter is deliberately left untouched —
    /// its accounting is unrecoverable once envelopes were lost, so the
    /// driver resets it when it reaps the abort.
    pub fn abort_in_flight(&mut self) {
        let mut failed = 0u64;
        for slot in self.read_payloads.iter_mut() {
            if let Some((buf, recs, _idx)) = slot.take() {
                failed += recs.len() as u64;
                self.pool.release_on(buf, self.pool_shard);
            }
        }
        for map in self.combine.iter_mut() {
            map.clear();
        }
        for slot in self.mut_payloads.iter_mut() {
            if let Some(buf) = slot.take() {
                failed += mut_entry_count(&buf) as u64;
                self.pool.release_on(buf, self.pool_shard);
            }
        }
        for slot in self.rmi_payloads.iter_mut() {
            if let Some((buf, recs)) = slot.take() {
                failed += recs.len() as u64;
                self.pool.release_on(buf, self.pool_shard);
            }
        }
        failed += self.slab.abandon() as u64;
        while let Ok(env) = self.resp_rx.try_recv() {
            self.pool.release_on(env.payload, self.pool_shard);
        }
        if failed > 0 {
            self.stats
                .failed_entries
                .fetch_add(failed, Ordering::Relaxed);
            self.telemetry
                .trace(self.worker as usize, EventKind::AbortSweep, failed);
        }
        self.publish_stats();
    }

    /// Number of side structures awaiting responses.
    pub fn in_flight_sides(&self) -> usize {
        self.slab.in_flight()
    }

    /// True if all request buffers are empty (everything sealed).
    pub fn is_flushed(&self) -> bool {
        self.read_payloads.iter().all(|p| p.is_none())
            && self.mut_payloads.iter().all(|p| p.is_none())
            && self.rmi_payloads.iter().all(|p| p.is_none())
    }

    /// The cluster-wide pending-entry counter (for completion checks).
    pub fn pending(&self) -> &Arc<AtomicI64> {
        &self.pending
    }

    /// The machine's statistics block.
    pub fn stats(&self) -> &Arc<MachineStats> {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    fn make_comm_tuned(tuning: CommTuning) -> (WorkerComm, Receiver<Envelope>, Sender<Envelope>) {
        let (out_tx, out_rx) = unbounded();
        let (resp_tx, resp_rx) = unbounded();
        let buffer_bytes = tuning.buffer_bytes;
        let comm = WorkerComm::new(
            0,
            0,
            2,
            tuning,
            resp_rx,
            out_tx,
            Arc::new(BufferPool::new(8, buffer_bytes)),
            Arc::new(AtomicI64::new(0)),
            Telemetry::detached(2, true),
            Arc::new(ClusterHealth::new(2)),
            false,
        );
        (comm, out_rx, resp_tx)
    }

    fn make_comm(buffer_bytes: usize) -> (WorkerComm, Receiver<Envelope>, Sender<Envelope>) {
        make_comm_tuned(CommTuning::fixed(buffer_bytes))
    }

    #[test]
    fn reads_buffer_until_flush() {
        let (mut comm, out, _resp) = make_comm(1024);
        comm.push_read(1, PropId(0), 5, SideRec { node: 2, aux: 0 });
        comm.push_read(1, PropId(0), 6, SideRec { node: 3, aux: 0 });
        assert!(out.try_recv().is_err(), "nothing sent before flush");
        assert_eq!(comm.pending().load(Ordering::SeqCst), 2);
        comm.flush();
        let env = out.try_recv().unwrap();
        assert_eq!(env.kind, MsgKind::ReadReq);
        assert_eq!(crate::message::read_entry_count(&env.payload), 2);
        assert_eq!(comm.in_flight_sides(), 1);
        assert!(comm.is_flushed());
    }

    #[test]
    fn reads_auto_seal_at_capacity() {
        // Buffer fits exactly 2 read entries.
        let (mut comm, out, _resp) = make_comm(2 * READ_ENTRY_BYTES);
        for i in 0..5u32 {
            comm.push_read(1, PropId(0), i, SideRec { node: i, aux: 0 });
        }
        // 5 entries → two sealed envelopes of 2, one buffered entry left.
        assert_eq!(out.try_iter().count(), 2);
        assert!(!comm.is_flushed());
        comm.flush();
        assert_eq!(out.try_iter().count(), 1);
    }

    #[test]
    fn response_roundtrip_decrements_pending() {
        let (mut comm, out, resp_tx) = make_comm(1024);
        comm.push_read(1, PropId(3), 9, SideRec { node: 7, aux: 42 });
        comm.flush();
        let req = out.try_recv().unwrap();
        // Fake the remote copier's answer.
        let mut payload = Vec::new();
        crate::message::push_resp_entry(&mut payload, 0xDEAD);
        resp_tx
            .send(Envelope {
                src: 1,
                dst: 0,
                kind: MsgKind::ReadResp,
                worker: req.worker,
                side_id: req.side_id,
                seq: 0,
                payload,
            })
            .unwrap();
        let r = comm.try_pop_response().unwrap();
        assert_eq!(r.recs, vec![SideRec { node: 7, aux: 42 }]);
        assert_eq!(crate::message::resp_entry(&r.env.payload, 0), 0xDEAD);
        comm.finish_response(r);
        assert_eq!(comm.pending().load(Ordering::SeqCst), 0);
        assert_eq!(comm.in_flight_sides(), 0);
    }

    #[test]
    fn mutations_roundtrip() {
        let (mut comm, out, _resp) = make_comm(1024);
        comm.push_mut(1, PropId(2), ReduceOp::Sum, 11, 99);
        comm.flush();
        let env = out.try_recv().unwrap();
        assert_eq!(env.kind, MsgKind::Write);
        let (p, op, off, bits) = crate::message::mut_entry(&env.payload, 0);
        assert_eq!((p, op, off, bits), (2, ReduceOp::Sum, 11, 99));
        // Writes stay pending until the copier applies them.
        assert_eq!(comm.pending().load(Ordering::SeqCst), 1);
    }

    #[test]
    fn mut_kind_switches_for_ghost_phases() {
        let (mut comm, out, _resp) = make_comm(1024);
        comm.set_mut_kind(MsgKind::GhostSync);
        comm.push_mut(1, PropId(0), ReduceOp::Assign, 0, 7);
        comm.flush();
        assert_eq!(out.try_recv().unwrap().kind, MsgKind::GhostSync);
        comm.set_mut_kind(MsgKind::Write);
    }

    #[test]
    fn rmi_roundtrip() {
        let (mut comm, out, resp_tx) = make_comm(1024);
        comm.push_rmi(1, 4, b"args", SideRec { node: 0, aux: 1 });
        comm.flush();
        let req = out.try_recv().unwrap();
        assert_eq!(req.kind, MsgKind::Rmi);
        let entries: Vec<_> = crate::message::rmi_entries(&req.payload).collect();
        assert_eq!(entries, vec![(4u16, &b"args"[..])]);
        let mut payload = Vec::new();
        crate::message::push_rmi_resp_entry(&mut payload, b"ok");
        resp_tx
            .send(Envelope {
                src: 1,
                dst: 0,
                kind: MsgKind::RmiResp,
                worker: req.worker,
                side_id: req.side_id,
                seq: 0,
                payload,
            })
            .unwrap();
        let r = comm.try_pop_response().unwrap();
        assert_eq!(r.env.kind, MsgKind::RmiResp);
        assert_eq!(r.recs[0].aux, 1);
        comm.finish_response(r);
        assert_eq!(comm.pending().load(Ordering::SeqCst), 0);
    }

    #[test]
    fn combining_dedups_in_flight_reads_and_fans_out() {
        let (mut comm, out, resp_tx) = make_comm(1024);
        // Three reads of vertex 5, one of vertex 6, one more of vertex 5:
        // only two wire entries should go out.
        comm.push_read(1, PropId(0), 5, SideRec { node: 10, aux: 0 });
        comm.push_read(1, PropId(0), 5, SideRec { node: 11, aux: 1 });
        comm.push_read(1, PropId(0), 6, SideRec { node: 12, aux: 2 });
        comm.push_read(1, PropId(0), 5, SideRec { node: 13, aux: 3 });
        assert_eq!(comm.pending().load(Ordering::SeqCst), 4);
        comm.flush();
        let req = out.try_recv().unwrap();
        assert_eq!(
            crate::message::read_entry_count(&req.payload),
            2,
            "duplicates share one wire entry"
        );
        assert_eq!(comm.stats().combined_read_hits.load(Ordering::Relaxed), 2);
        // Copier answers the two entries in wire order: v5 → 500, v6 → 600.
        let mut payload = Vec::new();
        crate::message::push_resp_entry(&mut payload, 500);
        crate::message::push_resp_entry(&mut payload, 600);
        resp_tx
            .send(Envelope {
                src: 1,
                dst: 0,
                kind: MsgKind::ReadResp,
                worker: req.worker,
                side_id: req.side_id,
                seq: 0,
                payload,
            })
            .unwrap();
        let r = comm.try_pop_response().unwrap();
        assert_eq!(r.recs.len(), 4, "every continuation record survives");
        let values: Vec<u64> = (0..r.recs.len()).map(|i| r.read_value(i)).collect();
        assert_eq!(values, vec![500, 500, 600, 500]);
        comm.finish_response(r);
        assert_eq!(comm.pending().load(Ordering::SeqCst), 0);
    }

    #[test]
    fn combining_table_clears_at_seal() {
        // Buffer fits exactly 2 read entries; a third distinct read seals.
        let (mut comm, out, _resp) = make_comm(2 * READ_ENTRY_BYTES);
        comm.push_read(1, PropId(0), 5, SideRec { node: 0, aux: 0 });
        comm.push_read(1, PropId(0), 6, SideRec { node: 1, aux: 0 });
        // Sealed at capacity. The same vertex again must be a fresh wire
        // entry (its response will come from a later copier read).
        comm.push_read(1, PropId(0), 5, SideRec { node: 2, aux: 0 });
        comm.flush();
        let envs: Vec<_> = out.try_iter().collect();
        assert_eq!(envs.len(), 2);
        assert_eq!(crate::message::read_entry_count(&envs[0].payload), 2);
        assert_eq!(crate::message::read_entry_count(&envs[1].payload), 1);
        assert_eq!(comm.stats().combined_read_hits.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn combining_disabled_keeps_duplicate_entries() {
        let mut tuning = CommTuning::fixed(1024);
        tuning.read_combining = false;
        let (mut comm, out, _resp) = make_comm_tuned(tuning);
        comm.push_read(1, PropId(0), 5, SideRec { node: 0, aux: 0 });
        comm.push_read(1, PropId(0), 5, SideRec { node: 1, aux: 0 });
        comm.flush();
        let req = out.try_recv().unwrap();
        assert_eq!(crate::message::read_entry_count(&req.payload), 2);
        assert_eq!(comm.stats().combined_read_hits.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn adaptive_threshold_seals_early() {
        // Controller pinned far below the allocation: buffers must seal at
        // the controller's threshold, not at buffer_bytes.
        let tuning = CommTuning {
            buffer_bytes: 1024,
            read_combining: true,
            flush: Arc::new(FlushController::new(
                &crate::config::AdaptiveFlushConfig::bounds(
                    2 * READ_ENTRY_BYTES,
                    2 * READ_ENTRY_BYTES,
                ),
                1024,
                2,
            )),
            pool_shard: 0,
        };
        let (mut comm, out, _resp) = make_comm_tuned(tuning);
        for i in 0..5u32 {
            comm.push_read(1, PropId(0), i, SideRec { node: i, aux: 0 });
        }
        assert_eq!(out.try_iter().count(), 2, "sealed twice at the threshold");
    }

    #[test]
    fn side_slab_recycles_ids() {
        let (mut comm, out, resp_tx) = make_comm(READ_ENTRY_BYTES);
        for round in 0..3 {
            comm.push_read(
                1,
                PropId(0),
                round,
                SideRec {
                    node: round,
                    aux: 0,
                },
            );
            let req = out.try_recv().unwrap();
            assert_eq!(req.side_id, 0, "slab should recycle slot 0");
            let mut payload = Vec::new();
            crate::message::push_resp_entry(&mut payload, round as u64);
            resp_tx
                .send(Envelope {
                    src: 1,
                    dst: 0,
                    kind: MsgKind::ReadResp,
                    worker: 0,
                    side_id: req.side_id,
                    seq: 0,
                    payload,
                })
                .unwrap();
            let r = comm.try_pop_response().unwrap();
            comm.finish_response(r);
        }
    }

    fn make_reliable_comm(
        buffer_bytes: usize,
    ) -> (
        WorkerComm,
        Receiver<Envelope>,
        Sender<Envelope>,
        Arc<ClusterHealth>,
    ) {
        let (out_tx, out_rx) = unbounded();
        let (resp_tx, resp_rx) = unbounded();
        let health = Arc::new(ClusterHealth::new(2));
        let comm = WorkerComm::new(
            0,
            0,
            2,
            CommTuning::fixed(buffer_bytes),
            resp_rx,
            out_tx,
            Arc::new(BufferPool::new(8, buffer_bytes)),
            Arc::new(AtomicI64::new(0)),
            Telemetry::detached(2, true),
            health.clone(),
            true,
        );
        (comm, out_rx, resp_tx, health)
    }

    #[test]
    fn duplicate_response_suppressed_and_acked() {
        let (mut comm, out, resp_tx, health) = make_reliable_comm(1024);
        comm.push_read(1, PropId(0), 3, SideRec { node: 1, aux: 0 });
        comm.flush();
        let req = out.try_recv().unwrap();
        let mut payload = Vec::new();
        crate::message::push_resp_entry(&mut payload, 7);
        let resp = Envelope {
            src: 1,
            dst: 0,
            kind: MsgKind::ReadResp,
            worker: req.worker,
            side_id: req.side_id,
            seq: 9,
            payload,
        };
        resp_tx.send(resp.clone()).unwrap();
        resp_tx.send(resp).unwrap(); // the wire duplicated it
        let r = comm.try_pop_response().expect("first delivery accepted");
        comm.finish_response(r);
        assert!(
            comm.try_pop_response().is_none(),
            "replay suppressed without touching the slab"
        );
        assert!(!health.is_aborted(), "a suppressed dup is not an error");
        assert_eq!(comm.stats().dup_suppressed.load(Ordering::Relaxed), 1);
        // Both deliveries were acked (the first ack may have been lost).
        let acks: Vec<_> = out.try_iter().filter(|e| e.kind == MsgKind::Ack).collect();
        assert_eq!(acks.len(), 2);
        let (lane, seq) = crate::message::ack_entries(&acks[0].payload)
            .next()
            .unwrap();
        assert_eq!((lane, seq), (1, 9), "worker 0 acks on lane 1");
    }

    #[test]
    fn unknown_side_structure_aborts_instead_of_panicking() {
        let (mut comm, _out, resp_tx, health) = make_reliable_comm(1024);
        resp_tx
            .send(Envelope {
                src: 1,
                dst: 0,
                kind: MsgKind::ReadResp,
                worker: 0,
                side_id: 42,
                seq: 0,
                payload: Vec::new(),
            })
            .unwrap();
        assert!(comm.try_pop_response().is_none());
        assert!(health.is_aborted());
        match health.error() {
            Some(JobError::Protocol(msg)) => {
                assert!(msg.contains("side structure 42"), "got: {msg}")
            }
            other => panic!("expected protocol error, got {other:?}"),
        }
    }

    #[test]
    fn abort_sweep_releases_in_flight_state() {
        let (mut comm, out, _resp, _health) = make_reliable_comm(1024);
        // One unsealed read buffer + one sealed (slab-held) request.
        comm.push_read(1, PropId(0), 0, SideRec { node: 0, aux: 0 });
        comm.flush();
        let _ = out.try_recv().unwrap();
        comm.push_read(1, PropId(0), 1, SideRec { node: 1, aux: 0 });
        comm.push_mut(1, PropId(0), ReduceOp::Sum, 2, 5);
        assert_eq!(comm.in_flight_sides(), 1);
        assert!(!comm.is_flushed());
        comm.abort_in_flight();
        assert!(comm.is_flushed(), "unsealed buffers were abandoned");
        assert_eq!(comm.in_flight_sides(), 0, "side slab was abandoned");
        assert_eq!(comm.stats().failed_entries.load(Ordering::Relaxed), 3);
    }
}
