//! Wire format: envelopes and the flat little-endian entry encodings that
//! fill their payloads.
//!
//! Small per-edge operations are never sent individually: they are appended
//! to a per-(worker, destination) payload buffer and the whole buffer
//! travels as one [`Envelope`] once full or at flush time (§2, "the system
//! can buffer up many small messages and create a large network packet out
//! of them").

use crate::ids::MachineId;
use crate::props::ReduceOp;

/// Message kinds. The numeric values are stable and travel on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum MsgKind {
    /// Batched remote read requests; answered with `ReadResp`.
    ReadReq = 0,
    /// Values answering a `ReadReq`, in request order.
    ReadResp = 1,
    /// Batched remote write (reduction) requests; fire-and-forget.
    Write = 2,
    /// Ghost pre-synchronization: owner broadcasts property values of its
    /// ghosted nodes (offset field = global ghost ordinal).
    GhostSync = 3,
    /// Ghost post-reduction: partial values flowing back to the owner
    /// (offset field = owner-local node offset).
    GhostReduce = 4,
    /// Batched remote method invocations.
    Rmi = 5,
    /// Responses to `Rmi`, in request order.
    RmiResp = 6,
    /// Distributed-barrier arrival notification (machine → coordinator).
    BarrierArrive = 7,
    /// Distributed-barrier release broadcast (coordinator → machines).
    BarrierRelease = 8,
    /// Orders a copier or poller thread to exit.
    Shutdown = 9,
    /// Dummy payload for bandwidth microbenchmarks (Figure 8): counted and
    /// discarded by the receiving copier.
    Ping = 10,
    /// Cumulative/selective acknowledgement of sequenced envelopes
    /// (reliability protocol): payload is a list of `(lane, seq)` entries.
    /// Unsequenced itself — a lost ack only costs a spurious retransmit.
    Ack = 11,
    /// Liveness beacon for the crash watchdog. Unsequenced; its only effect
    /// is refreshing the receiver's last-heard clock for the source.
    Heartbeat = 12,
}

impl MsgKind {
    /// Parses the wire value.
    pub fn from_u8(v: u8) -> Option<MsgKind> {
        Some(match v {
            0 => MsgKind::ReadReq,
            1 => MsgKind::ReadResp,
            2 => MsgKind::Write,
            3 => MsgKind::GhostSync,
            4 => MsgKind::GhostReduce,
            5 => MsgKind::Rmi,
            6 => MsgKind::RmiResp,
            7 => MsgKind::BarrierArrive,
            8 => MsgKind::BarrierRelease,
            9 => MsgKind::Shutdown,
            10 => MsgKind::Ping,
            11 => MsgKind::Ack,
            12 => MsgKind::Heartbeat,
            _ => return None,
        })
    }

    /// True for kinds processed by copier threads (request side).
    pub fn is_request(self) -> bool {
        matches!(
            self,
            MsgKind::ReadReq
                | MsgKind::Write
                | MsgKind::GhostSync
                | MsgKind::GhostReduce
                | MsgKind::Rmi
                | MsgKind::BarrierArrive
                | MsgKind::BarrierRelease
                | MsgKind::Ping
        )
    }

    /// True for kinds routed back to the originating worker thread.
    pub fn is_response(self) -> bool {
        matches!(self, MsgKind::ReadResp | MsgKind::RmiResp)
    }

    /// True for kinds covered by the reliability protocol (sequenced,
    /// acknowledged, retransmitted). Control traffic — `Shutdown`, `Ack`,
    /// `Heartbeat` — rides outside it: acks acknowledge, they are not
    /// themselves acknowledged, and heartbeats are periodic by nature.
    pub fn is_reliable(self) -> bool {
        !matches!(self, MsgKind::Shutdown | MsgKind::Ack | MsgKind::Heartbeat)
    }
}

/// Fixed-size envelope header accounted as wire overhead (the real system
/// pays a verb/packet header per message; we charge 16 bytes).
pub const HEADER_BYTES: u64 = 16;

/// A message in flight between two machines.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// Sending machine.
    pub src: MachineId,
    /// Destination machine.
    pub dst: MachineId,
    /// Payload interpretation.
    pub kind: MsgKind,
    /// Originating worker thread (for response routing) — for `ReadResp` /
    /// `RmiResp` this is the worker *on the destination machine*.
    pub worker: u16,
    /// Identifier of the side structure holding the continuation records
    /// for this message's requests (echoed verbatim into the response).
    pub side_id: u32,
    /// Per-(destination, lane) sequence number assigned by the sending
    /// machine's poller when the reliability protocol is on. `0` means
    /// unsequenced (protocol off, or control traffic); real numbering
    /// starts at 1.
    pub seq: u64,
    /// Entry bytes.
    pub payload: Vec<u8>,
}

impl Envelope {
    /// Total accounted wire bytes.
    pub fn wire_bytes(&self) -> u64 {
        HEADER_BYTES + self.payload.len() as u64
    }
}

// ---------------------------------------------------------------------------
// Entry encodings
// ---------------------------------------------------------------------------

/// Read-request entry: 8 bytes. The paper's §5.3.4 microbenchmark uses
/// "8 byte addresses to get 8 bytes worth of data", so utilized bandwidth
/// is exactly twice effective bandwidth — this layout preserves that.
pub const READ_ENTRY_BYTES: usize = 8;

/// Appends a read-request entry `{prop:u16, pad:u16, offset:u32}`.
#[inline]
pub fn push_read_entry(buf: &mut Vec<u8>, prop: u16, offset: u32) {
    buf.extend_from_slice(&prop.to_le_bytes());
    buf.extend_from_slice(&[0u8; 2]);
    buf.extend_from_slice(&offset.to_le_bytes());
}

/// Decodes the `i`-th read-request entry.
#[inline]
pub fn read_entry(payload: &[u8], i: usize) -> (u16, u32) {
    let o = i * READ_ENTRY_BYTES;
    let prop = u16::from_le_bytes([payload[o], payload[o + 1]]);
    let offset = u32::from_le_bytes([
        payload[o + 4],
        payload[o + 5],
        payload[o + 6],
        payload[o + 7],
    ]);
    (prop, offset)
}

/// Number of read entries in a payload.
#[inline]
pub fn read_entry_count(payload: &[u8]) -> usize {
    payload.len() / READ_ENTRY_BYTES
}

/// Mutation entry (Write / GhostSync / GhostReduce): 16 bytes.
pub const MUT_ENTRY_BYTES: usize = 16;

/// Appends a mutation entry `{prop:u16, op:u8, pad:u8, offset:u32, bits:u64}`.
#[inline]
pub fn push_mut_entry(buf: &mut Vec<u8>, prop: u16, op: ReduceOp, offset: u32, bits: u64) {
    buf.extend_from_slice(&prop.to_le_bytes());
    buf.push(op.to_u8());
    buf.push(0);
    buf.extend_from_slice(&offset.to_le_bytes());
    buf.extend_from_slice(&bits.to_le_bytes());
}

/// Decodes the `i`-th mutation entry as `(prop, op, offset, bits)`.
#[inline]
pub fn mut_entry(payload: &[u8], i: usize) -> (u16, ReduceOp, u32, u64) {
    let o = i * MUT_ENTRY_BYTES;
    let prop = u16::from_le_bytes([payload[o], payload[o + 1]]);
    let op = ReduceOp::from_u8(payload[o + 2]).expect("invalid reduce op on wire");
    let offset = u32::from_le_bytes([
        payload[o + 4],
        payload[o + 5],
        payload[o + 6],
        payload[o + 7],
    ]);
    let bits = u64::from_le_bytes(payload[o + 8..o + 16].try_into().unwrap());
    (prop, op, offset, bits)
}

/// Number of mutation entries in a payload.
#[inline]
pub fn mut_entry_count(payload: &[u8]) -> usize {
    payload.len() / MUT_ENTRY_BYTES
}

/// Response value entry: 8 bytes of property bits.
pub const RESP_ENTRY_BYTES: usize = 8;

/// Appends a response value.
#[inline]
pub fn push_resp_entry(buf: &mut Vec<u8>, bits: u64) {
    buf.extend_from_slice(&bits.to_le_bytes());
}

/// Decodes the `i`-th response value.
#[inline]
pub fn resp_entry(payload: &[u8], i: usize) -> u64 {
    let o = i * RESP_ENTRY_BYTES;
    u64::from_le_bytes(payload[o..o + 8].try_into().unwrap())
}

/// Acknowledgement entry: 12 bytes `{lane:u32, seq:u64}`.
pub const ACK_ENTRY_BYTES: usize = 12;

/// Appends an ack entry.
#[inline]
pub fn push_ack_entry(buf: &mut Vec<u8>, lane: u32, seq: u64) {
    buf.extend_from_slice(&lane.to_le_bytes());
    buf.extend_from_slice(&seq.to_le_bytes());
}

/// Iterates ack entries as `(lane, seq)`.
pub fn ack_entries(payload: &[u8]) -> impl Iterator<Item = (u32, u64)> + '_ {
    payload.chunks_exact(ACK_ENTRY_BYTES).map(|c| {
        let lane = u32::from_le_bytes(c[0..4].try_into().unwrap());
        let seq = u64::from_le_bytes(c[4..12].try_into().unwrap());
        (lane, seq)
    })
}

/// Appends an RMI entry `{fn_id:u16, len:u16, args:[u8; len]}`.
#[inline]
pub fn push_rmi_entry(buf: &mut Vec<u8>, fn_id: u16, args: &[u8]) {
    assert!(args.len() <= u16::MAX as usize, "RMI args too large");
    buf.extend_from_slice(&fn_id.to_le_bytes());
    buf.extend_from_slice(&(args.len() as u16).to_le_bytes());
    buf.extend_from_slice(args);
}

/// Iterates RMI entries as `(fn_id, args)`.
pub fn rmi_entries(payload: &[u8]) -> impl Iterator<Item = (u16, &[u8])> + '_ {
    let mut o = 0usize;
    std::iter::from_fn(move || {
        if o + 4 > payload.len() {
            return None;
        }
        let fn_id = u16::from_le_bytes([payload[o], payload[o + 1]]);
        let len = u16::from_le_bytes([payload[o + 2], payload[o + 3]]) as usize;
        let args = &payload[o + 4..o + 4 + len];
        o += 4 + len;
        Some((fn_id, args))
    })
}

/// Appends an RMI response entry `{len:u16, bytes:[u8; len]}`.
#[inline]
pub fn push_rmi_resp_entry(buf: &mut Vec<u8>, bytes: &[u8]) {
    assert!(bytes.len() <= u16::MAX as usize, "RMI response too large");
    buf.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
    buf.extend_from_slice(bytes);
}

/// Iterates RMI response entries.
pub fn rmi_resp_entries(payload: &[u8]) -> impl Iterator<Item = &[u8]> + '_ {
    let mut o = 0usize;
    std::iter::from_fn(move || {
        if o + 2 > payload.len() {
            return None;
        }
        let len = u16::from_le_bytes([payload[o], payload[o + 1]]) as usize;
        let bytes = &payload[o + 2..o + 2 + len];
        o += 2 + len;
        Some(bytes)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_roundtrip() {
        for v in 0..13u8 {
            let k = MsgKind::from_u8(v).unwrap();
            assert_eq!(k as u8, v);
        }
        assert!(MsgKind::from_u8(99).is_none());
    }

    #[test]
    fn request_response_classification() {
        assert!(MsgKind::ReadReq.is_request());
        assert!(MsgKind::Write.is_request());
        assert!(MsgKind::ReadResp.is_response());
        assert!(MsgKind::RmiResp.is_response());
        assert!(!MsgKind::ReadResp.is_request());
        assert!(!MsgKind::Shutdown.is_request());
        assert!(!MsgKind::Shutdown.is_response());
        // Reliability coverage: data kinds are sequenced, control is not.
        assert!(MsgKind::ReadReq.is_reliable());
        assert!(MsgKind::ReadResp.is_reliable());
        assert!(MsgKind::BarrierArrive.is_reliable());
        assert!(!MsgKind::Ack.is_reliable());
        assert!(!MsgKind::Heartbeat.is_reliable());
        assert!(!MsgKind::Shutdown.is_reliable());
        assert!(!MsgKind::Ack.is_response());
        assert!(!MsgKind::Heartbeat.is_response());
    }

    #[test]
    fn ack_entry_roundtrip() {
        let mut buf = Vec::new();
        push_ack_entry(&mut buf, 0, 1);
        push_ack_entry(&mut buf, 3, u64::MAX);
        assert_eq!(buf.len(), 2 * ACK_ENTRY_BYTES);
        let got: Vec<(u32, u64)> = ack_entries(&buf).collect();
        assert_eq!(got, vec![(0, 1), (3, u64::MAX)]);
    }

    #[test]
    fn read_entry_roundtrip() {
        let mut buf = Vec::new();
        push_read_entry(&mut buf, 7, 123_456);
        push_read_entry(&mut buf, 9, 42);
        assert_eq!(buf.len(), 2 * READ_ENTRY_BYTES);
        assert_eq!(read_entry_count(&buf), 2);
        assert_eq!(read_entry(&buf, 0), (7, 123_456));
        assert_eq!(read_entry(&buf, 1), (9, 42));
    }

    #[test]
    fn mut_entry_roundtrip() {
        let mut buf = Vec::new();
        push_mut_entry(&mut buf, 3, ReduceOp::Sum, 55, f64::to_bits(1.5));
        push_mut_entry(&mut buf, 4, ReduceOp::Min, 66, 77);
        assert_eq!(mut_entry_count(&buf), 2);
        let (p, op, off, bits) = mut_entry(&buf, 0);
        assert_eq!((p, op, off), (3, ReduceOp::Sum, 55));
        assert_eq!(f64::from_bits(bits), 1.5);
        assert_eq!(mut_entry(&buf, 1), (4, ReduceOp::Min, 66, 77));
    }

    #[test]
    fn resp_entry_roundtrip() {
        let mut buf = Vec::new();
        push_resp_entry(&mut buf, u64::MAX);
        push_resp_entry(&mut buf, 0);
        assert_eq!(resp_entry(&buf, 0), u64::MAX);
        assert_eq!(resp_entry(&buf, 1), 0);
    }

    #[test]
    fn rmi_roundtrip() {
        let mut buf = Vec::new();
        push_rmi_entry(&mut buf, 1, b"hello");
        push_rmi_entry(&mut buf, 2, b"");
        push_rmi_entry(&mut buf, 3, &[9u8; 300]);
        let got: Vec<(u16, Vec<u8>)> = rmi_entries(&buf).map(|(f, a)| (f, a.to_vec())).collect();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0], (1, b"hello".to_vec()));
        assert_eq!(got[1], (2, Vec::new()));
        assert_eq!(got[2].1.len(), 300);
    }

    #[test]
    fn rmi_resp_roundtrip() {
        let mut buf = Vec::new();
        push_rmi_resp_entry(&mut buf, b"abc");
        push_rmi_resp_entry(&mut buf, b"");
        let got: Vec<Vec<u8>> = rmi_resp_entries(&buf).map(|b| b.to_vec()).collect();
        assert_eq!(got, vec![b"abc".to_vec(), Vec::new()]);
    }

    #[test]
    fn envelope_wire_bytes() {
        let e = Envelope {
            src: 0,
            dst: 1,
            kind: MsgKind::Write,
            worker: 0,
            side_id: 0,
            seq: 0,
            payload: vec![0u8; 32],
        };
        assert_eq!(e.wire_bytes(), 48);
    }
}
