//! Cluster configuration: thread counts, buffer sizes, partitioning and
//! chunking strategies, ghost threshold, and the simulated-network model.

/// How vertices are assigned to machines (§3.3, Figure 6b).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitioningMode {
    /// Each machine gets an equal number of *vertices* (the naive baseline
    /// the paper compares against).
    Vertex,
    /// Each machine gets an equal share of `in-degree + out-degree` — the
    /// paper's edge partitioning. Partitions remain contiguous vertex
    /// ranges identified by P−1 pivots.
    Edge,
}

/// How a parallel region's tasks are cut into worker chunks (§3.3,
/// Figure 6c).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChunkingMode {
    /// Chunks contain an equal number of nodes (baseline).
    Node,
    /// Chunks contain an approximately equal number of edges — the paper's
    /// edge chunking, essential for core-level balance on skewed graphs.
    Edge,
}

/// Simulated interconnect model applied by the poller threads.
///
/// With the default null model, a message costs only its memcpy — the right
/// setting for system-vs-system comparisons on one host. The Figure 8
/// experiments enable the cost terms to expose the buffer-size and
/// bandwidth shapes the paper measures on InfiniBand.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetConfig {
    /// Fixed per-envelope processing cost, in nanoseconds (models per-packet
    /// driver/NIC overhead; what makes small buffers slow in Fig 8b).
    pub per_message_ns: u64,
    /// Link bandwidth in bytes/second; 0 disables bandwidth modeling.
    pub bandwidth_bytes_per_sec: u64,
    /// One-way latency per envelope in nanoseconds.
    pub latency_ns: u64,
}

impl NetConfig {
    /// Pure memcpy wire: no modeled costs.
    pub const fn null() -> Self {
        NetConfig {
            per_message_ns: 0,
            bandwidth_bytes_per_sec: 0,
            latency_ns: 0,
        }
    }

    /// A model loosely shaped like the paper's 56 Gb/s InfiniBand FDR link,
    /// scaled down so that modeled time is visible next to single-host
    /// compute: ~2 µs per message, ~6 GB/s per link.
    pub const fn infiniband_like() -> Self {
        NetConfig {
            per_message_ns: 2_000,
            bandwidth_bytes_per_sec: 6_000_000_000,
            latency_ns: 1_000,
        }
    }

    /// Whether any cost term is active.
    pub fn is_null(&self) -> bool {
        self.per_message_ns == 0 && self.bandwidth_bytes_per_sec == 0 && self.latency_ns == 0
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig::null()
    }
}

/// Crash a machine at a deterministic point in virtual time.
///
/// Virtual time is the fabric's global send counter, so "after N sends"
/// names the same instant on every run with the same seed and workload.
/// A crash is modeled as a permanent partition: once triggered, the fabric
/// silently swallows every envelope to or from the machine (its threads
/// keep running — exactly what a surviving peer observes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashPlan {
    /// Machine to partition away.
    pub machine: u16,
    /// Trigger after this many envelopes have entered the fabric.
    pub after_sends: u64,
}

/// Slow a machine down from a chosen virtual time: every send it performs
/// afterwards spins for `extra_ns` before hitting the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlowPlan {
    /// Machine to degrade.
    pub machine: u16,
    /// Trigger after this many envelopes have entered the fabric.
    pub after_sends: u64,
    /// Extra per-send stall, nanoseconds.
    pub extra_ns: u64,
}

/// Deterministic fault-injection schedule applied inside `Fabric::send`.
///
/// Every per-envelope decision (drop / duplicate / reorder / delay) is a
/// pure function of `seed` and the global send counter, so a given plan
/// replays identically run after run. Rates are per-mille (‰): `10` means
/// 1% of envelopes. Reordered envelopes are held in a limbo buffer and
/// released after 1..=`reorder_depth` further sends; delayed envelopes use
/// the same mechanism with the fixed horizon `delay_sends`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the per-envelope fault dice.
    pub seed: u64,
    /// Probability (‰) of silently dropping an envelope.
    pub drop_per_mille: u16,
    /// Probability (‰) of delivering an envelope twice.
    pub dup_per_mille: u16,
    /// Probability (‰) of holding an envelope back so later traffic
    /// overtakes it.
    pub reorder_per_mille: u16,
    /// Maximum number of subsequent sends a reordered envelope is held for.
    pub reorder_depth: u32,
    /// Probability (‰) of delaying an envelope by `delay_sends` sends.
    pub delay_per_mille: u16,
    /// Hold horizon for delayed envelopes, in global sends.
    pub delay_sends: u64,
    /// Optional machine crash (permanent partition).
    pub crash: Option<CrashPlan>,
    /// When true, the crash plan re-fires on every recovery attempt (a
    /// *flapping* machine) until the recovery driver quarantines it; when
    /// false (default) the crash is one-shot and cleared on retry, as a
    /// transient partition would be.
    pub crash_recurring: bool,
    /// Optional machine slowdown.
    pub slow: Option<SlowPlan>,
}

impl FaultPlan {
    /// The inert plan: no faults, zero overhead in the fabric.
    pub const fn none() -> Self {
        FaultPlan {
            seed: 0,
            drop_per_mille: 0,
            dup_per_mille: 0,
            reorder_per_mille: 0,
            reorder_depth: 4,
            delay_per_mille: 0,
            delay_sends: 64,
            crash: None,
            crash_recurring: false,
            slow: None,
        }
    }

    /// A message-level plan: drop / duplicate / reorder rates in ‰.
    pub const fn lossy(seed: u64, drop: u16, dup: u16, reorder: u16) -> Self {
        FaultPlan {
            seed,
            drop_per_mille: drop,
            dup_per_mille: dup,
            reorder_per_mille: reorder,
            ..FaultPlan::none()
        }
    }

    /// A plan whose only fault is crashing `machine` after `after_sends`
    /// envelopes.
    pub const fn crash(machine: u16, after_sends: u64) -> Self {
        FaultPlan {
            crash: Some(CrashPlan {
                machine,
                after_sends,
            }),
            ..FaultPlan::none()
        }
    }

    /// Whether any fault can ever fire under this plan.
    pub fn is_active(&self) -> bool {
        self.drop_per_mille > 0
            || self.dup_per_mille > 0
            || self.reorder_per_mille > 0
            || self.delay_per_mille > 0
            || self.crash.is_some()
            || self.slow.is_some()
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Deterministic fault-injection schedule for *checkpoint storage*,
/// applied inside [`CheckpointStore::save`](crate::checkpoint::CheckpointStore).
///
/// Where [`FaultPlan`] breaks the wire, this breaks the durable layer
/// underneath recovery: a shard write can be **lost** (the store never
/// records it), **corrupted** (a word is flipped after the checksum was
/// computed, so verification fails at restore time), or **delayed** (the
/// shard becomes durable only when the *next* save lands, like a lagging
/// flush). Every decision is a pure function of `seed` and the store's
/// monotonic save counter, so a plan replays identically run after run.
/// Rates are per-mille (‰).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StorageFaultPlan {
    /// Seed for the per-save fault dice.
    pub seed: u64,
    /// Probability (‰) that a shard save is silently lost.
    pub lose_per_mille: u16,
    /// Probability (‰) that a stored shard is corrupted (one word flipped
    /// after checksumming — caught by `verify()` at restore).
    pub corrupt_per_mille: u16,
    /// Probability (‰) that a shard save becomes durable only at the next
    /// save on the same store.
    pub delay_per_mille: u16,
}

impl StorageFaultPlan {
    /// The inert plan: storage is perfectly durable.
    pub const fn none() -> Self {
        StorageFaultPlan {
            seed: 0,
            lose_per_mille: 0,
            corrupt_per_mille: 0,
            delay_per_mille: 0,
        }
    }

    /// A plan with explicit lose / corrupt / delay rates in ‰.
    pub const fn faulty(seed: u64, lose: u16, corrupt: u16, delay: u16) -> Self {
        StorageFaultPlan {
            seed,
            lose_per_mille: lose,
            corrupt_per_mille: corrupt,
            delay_per_mille: delay,
        }
    }

    /// Whether any storage fault can ever fire under this plan.
    pub fn is_active(&self) -> bool {
        self.lose_per_mille > 0 || self.corrupt_per_mille > 0 || self.delay_per_mille > 0
    }

    /// What the seeded dice decide for the `counter`-th save on a store.
    /// This is a pure function of `(seed, counter)` — `CheckpointStore`
    /// consults exactly this, so tests and harnesses can precompute a
    /// plan's entire fault schedule (e.g. pick a seed whose corruption
    /// pattern guarantees a ring-fallback restore) instead of hoping a
    /// rate fires.
    pub fn draw(&self, counter: u64) -> StorageFaultKind {
        let h = crate::fault::mix(self.seed, counter);
        if self.lose_per_mille > 0 && (h % 1000) < u64::from(self.lose_per_mille) {
            StorageFaultKind::Lose
        } else if self.corrupt_per_mille > 0
            && ((h >> 10) % 1000) < u64::from(self.corrupt_per_mille)
        {
            StorageFaultKind::Corrupt
        } else if self.delay_per_mille > 0 && ((h >> 20) % 1000) < u64::from(self.delay_per_mille) {
            StorageFaultKind::Delay
        } else {
            StorageFaultKind::Store
        }
    }
}

/// Dice outcome for one shard save under a [`StorageFaultPlan`] — see
/// [`StorageFaultPlan::draw`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StorageFaultKind {
    /// The save lands durably and verifiably.
    Store,
    /// The save is silently dropped.
    Lose,
    /// The save lands with one flipped bit and a stale checksum.
    Corrupt,
    /// The save becomes durable only at the next save on the same store.
    Delay,
}

impl Default for StorageFaultPlan {
    fn default() -> Self {
        StorageFaultPlan::none()
    }
}

/// Reliable-delivery protocol knobs (sequence numbers, ack/retransmit,
/// heartbeats, crash watchdog). Off by default: the fault-free hot path
/// pays nothing. Any active [`FaultPlan`] requires `enabled = true` —
/// [`Config::validate`] enforces this, because the exact pending-entry
/// termination counter deadlocks forever on a single lost envelope.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReliabilityConfig {
    /// Master switch for sequencing, acks, retransmits, heartbeats, and the
    /// watchdog.
    pub enabled: bool,
    /// Poller housekeeping interval (heartbeats, retransmit sweep,
    /// watchdog check), milliseconds.
    pub tick_ms: u64,
    /// Initial retransmission timeout, milliseconds; doubles per retry.
    pub rto_base_ms: u64,
    /// Ceiling on the backed-off retransmission timeout, milliseconds.
    pub rto_max_ms: u64,
    /// Retransmissions of one envelope before the destination is declared
    /// dead.
    pub max_retries: u32,
    /// Silence threshold after which the watchdog declares a peer machine
    /// crashed, milliseconds.
    pub watchdog_ms: u64,
}

impl ReliabilityConfig {
    pub const fn off() -> Self {
        ReliabilityConfig {
            enabled: false,
            tick_ms: 5,
            rto_base_ms: 25,
            rto_max_ms: 200,
            max_retries: 12,
            watchdog_ms: 500,
        }
    }

    pub const fn on() -> Self {
        ReliabilityConfig {
            enabled: true,
            ..ReliabilityConfig::off()
        }
    }
}

impl Default for ReliabilityConfig {
    fn default() -> Self {
        ReliabilityConfig::off()
    }
}

/// Checkpoint/restore and automatic retry knobs (see
/// [`crate::checkpoint`] and the `RecoveryDriver` in the `pgxd` crate).
/// Off by default: no snapshots are taken and a `JobError` surfaces to the
/// caller exactly as before recovery existed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Master switch for checkpointing and automatic retry.
    pub enabled: bool,
    /// Snapshot every N completed algorithm iterations (phase-barrier
    /// cadence — snapshots are only ever taken at a quiescent barrier).
    pub checkpoint_every: u64,
    /// Retry attempts after the initial run before giving up with
    /// [`JobError::RetriesExhausted`](crate::health::JobError).
    pub max_retries: u32,
    /// First retry backoff, milliseconds; doubles per attempt.
    pub backoff_base_ms: u64,
    /// Ceiling on the backed-off retry delay, milliseconds.
    pub backoff_max_ms: u64,
    /// Checkpoints retained per store (a small ring, newest first): when
    /// the latest snapshot fails verification the driver falls back to an
    /// older ring entry before resorting to a cold restart.
    pub retain: usize,
    /// Watchdog trips by one machine before the recovery driver
    /// quarantines it and proactively degrades to a P−1 restore. `1`
    /// reproduces the pre-quarantine behavior: the first trip already
    /// drops the machine.
    pub flap_threshold: u32,
}

impl RecoveryConfig {
    pub const fn off() -> Self {
        RecoveryConfig {
            enabled: false,
            checkpoint_every: 1,
            max_retries: 3,
            backoff_base_ms: 10,
            backoff_max_ms: 200,
            retain: 2,
            flap_threshold: 1,
        }
    }

    pub const fn on() -> Self {
        RecoveryConfig {
            enabled: true,
            ..RecoveryConfig::off()
        }
    }
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig::off()
    }
}

/// Telemetry switches (see [`crate::telemetry`]).
///
/// The always-on [`crate::stats::MachineStats`] counters are unaffected by
/// these settings; `enabled` gates the histograms and per-worker event
/// tracers, whose hot-path cost when off is one branch per hook.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Record histograms and trace events.
    pub enabled: bool,
    /// Trace-ring slots per worker (rounded up to a power of two; the ring
    /// overwrites oldest events on overflow).
    pub ring_capacity: usize,
}

impl TelemetryConfig {
    pub const fn off() -> Self {
        TelemetryConfig {
            enabled: false,
            ring_capacity: 4096,
        }
    }

    pub const fn on() -> Self {
        TelemetryConfig {
            enabled: true,
            ring_capacity: 4096,
        }
    }
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig::off()
    }
}

/// Job-server (serving layer) knobs: submission queue depth, admission
/// memory budget, lane weights, and the default per-job deadline. Used by
/// the `pgxd::serve` subsystem; inert for direct `try_run_*` callers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeConfig {
    /// Bounded submission-queue depth across all lanes; a submit beyond
    /// this is rejected with `JobError::QueueFull` instead of blocking.
    pub queue_depth: usize,
    /// Admission-control memory budget in bytes; a job whose estimate
    /// (property columns + buffer-pool share + checkpoint overhead) would
    /// overshoot it is rejected with `JobError::AdmissionDenied`.
    /// `0` disables admission control.
    pub memory_budget_bytes: u64,
    /// Weighted-fair dispatch weights for the `[interactive, batch]`
    /// lanes; `[3, 1]` drains roughly three interactive jobs per batch
    /// job. Both weights must be >= 1.
    pub lane_weights: [u32; 2],
    /// Default per-job deadline in milliseconds, applied when a submit
    /// does not set its own; `0` means no default deadline.
    pub default_deadline_ms: u64,
    /// Maximum jobs one session may have in flight (dispatched, not yet
    /// completed); a queued job whose session is at the cap is skipped —
    /// not dropped — until a slot frees up.
    pub session_cap: usize,
    /// Brownout shed threshold as queue occupancy in ‰ of `queue_depth`:
    /// when total queued jobs cross it, batch-lane submits are rejected
    /// with `JobError::Overloaded` until occupancy falls back below the
    /// reopen threshold. `0` disables brownout.
    pub brownout_shed_per_mille: u16,
    /// Brownout reopen threshold (‰ of `queue_depth`); must be below the
    /// shed threshold so the gate has hysteresis and re-opens cleanly
    /// instead of flapping at the boundary.
    pub brownout_reopen_per_mille: u16,
    /// Retry-after hint carried by `JobError::Overloaded` rejections,
    /// milliseconds.
    pub brownout_retry_after_ms: u64,
    /// Server-wide retry-budget capacity (token bucket shared across all
    /// sessions): concurrent tenants draw retry tokens from one pool so a
    /// degraded cluster cannot be retry-stormed. `0` disables the budget
    /// (unlimited retries).
    pub retry_budget_tokens: u32,
    /// One retry token is refilled every this-many milliseconds.
    pub retry_budget_refill_ms: u64,
}

impl ServeConfig {
    pub const fn default_const() -> Self {
        ServeConfig {
            queue_depth: 64,
            memory_budget_bytes: 0,
            lane_weights: [3, 1],
            default_deadline_ms: 0,
            session_cap: 16,
            brownout_shed_per_mille: 0,
            brownout_reopen_per_mille: 0,
            brownout_retry_after_ms: 50,
            retry_budget_tokens: 0,
            retry_budget_refill_ms: 100,
        }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig::default_const()
    }
}

/// Adaptive flush-threshold bounds (§3.4 / Figure 8b). When enabled, the
/// per-machine [`FlushController`](crate::flow::FlushController) moves the
/// effective flush threshold within `[min_bytes, max_bytes]` between phase
/// barriers, based on observed buffer fill levels and read round trips.
/// Buffers are always *allocated* at `buffer_bytes`; only the seal point
/// moves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdaptiveFlushConfig {
    /// Master switch for the control loop.
    pub enabled: bool,
    /// Smallest effective flush threshold, bytes (≥ 64).
    pub min_bytes: usize,
    /// Largest effective flush threshold, bytes (≤ `buffer_bytes`); also
    /// the starting threshold.
    pub max_bytes: usize,
}

impl AdaptiveFlushConfig {
    /// Control loop off: the flush threshold is pinned to `buffer_bytes`.
    pub const fn off() -> Self {
        AdaptiveFlushConfig {
            enabled: false,
            min_bytes: 1 << 8,
            max_bytes: 1 << 16,
        }
    }

    /// Control loop on with explicit `[min, max]` bounds.
    pub const fn bounds(min_bytes: usize, max_bytes: usize) -> Self {
        AdaptiveFlushConfig {
            enabled: true,
            min_bytes,
            max_bytes,
        }
    }
}

impl Default for AdaptiveFlushConfig {
    fn default() -> Self {
        AdaptiveFlushConfig::off()
    }
}

/// Full cluster configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of simulated machines (PGX.D processes).
    pub machines: usize,
    /// Worker threads per machine (paper default: 16 on 32-HT machines).
    pub workers: usize,
    /// Copier threads per machine (paper default: 8).
    pub copiers: usize,
    /// Maximum payload bytes per message buffer (paper: 256 KB; scaled
    /// default 64 KB keeps latency reasonable at simulation scale).
    pub buffer_bytes: usize,
    /// Buffers available per machine before senders experience
    /// back-pressure.
    pub send_buffers_per_machine: usize,
    /// Ghost-node degree threshold: nodes whose in- or out-degree exceeds
    /// this are replicated on every machine. `None` disables ghosts.
    pub ghost_threshold: Option<usize>,
    /// Vertex or edge partitioning.
    pub partitioning: PartitioningMode,
    /// Node or edge chunking.
    pub chunking: ChunkingMode,
    /// Target edges per chunk when edge chunking (nodes per chunk when node
    /// chunking is derived from this divided by the average degree).
    pub chunk_edges: usize,
    /// Create thread-private ghost copies for reduced properties (§3.3
    /// "Ghost Privatization").
    pub ghost_privatization: bool,
    /// Use the message-based (four-counter / coordinator) barrier and
    /// termination protocols instead of the shared-memory fast path.
    pub strict_distributed: bool,
    /// Simulated network model.
    pub net: NetConfig,
    /// Histogram/tracer switches.
    pub telemetry: TelemetryConfig,
    /// Deterministic fault-injection schedule (inert by default).
    pub fault: FaultPlan,
    /// Deterministic checkpoint-storage fault schedule (inert by default).
    pub storage_fault: StorageFaultPlan,
    /// Reliable-delivery protocol (off by default).
    pub reliability: ReliabilityConfig,
    /// Checkpoint/restore and automatic retry (off by default).
    pub recovery: RecoveryConfig,
    /// Free-list shards in each machine's send-buffer pool (rounded up to
    /// a power of two). Workers and copiers recycle buffers through their
    /// own shard, so acquire/release never contend across threads.
    pub pool_shards: usize,
    /// Combine repeated in-flight remote reads of the same
    /// `(property, vertex)` into one wire entry, fanning the single
    /// response value out to every logged continuation.
    pub read_combining: bool,
    /// Adaptive flush-threshold control loop (off by default).
    pub adaptive_flush: AdaptiveFlushConfig,
    /// Job-server knobs (queue depth, memory budget, lane weights,
    /// default deadline); only read by the serving layer.
    pub serve: ServeConfig,
}

impl Config {
    /// Starts a validated builder seeded with the benchmark defaults; see
    /// [`ConfigBuilder`].
    pub fn builder() -> ConfigBuilder {
        ConfigBuilder {
            config: Config::default(),
        }
    }
    /// A small configuration suitable for unit tests: 2 machines, 1 worker
    /// and 1 copier each, tiny buffers so that buffering/flushing paths are
    /// exercised even by small graphs.
    pub fn test(machines: usize) -> Self {
        Config {
            machines,
            workers: 1,
            copiers: 1,
            buffer_bytes: 1 << 10,
            send_buffers_per_machine: 16,
            ghost_threshold: None,
            partitioning: PartitioningMode::Edge,
            chunking: ChunkingMode::Edge,
            chunk_edges: 256,
            ghost_privatization: true,
            strict_distributed: false,
            net: NetConfig::null(),
            telemetry: TelemetryConfig::off(),
            fault: FaultPlan::none(),
            storage_fault: StorageFaultPlan::none(),
            reliability: ReliabilityConfig::off(),
            recovery: RecoveryConfig::off(),
            pool_shards: 2,
            read_combining: true,
            adaptive_flush: AdaptiveFlushConfig::off(),
            serve: ServeConfig::default_const(),
        }
    }

    /// The benchmark default: mirrors the paper's 16-worker / 8-copier
    /// setting scaled to a single host.
    pub fn bench(machines: usize) -> Self {
        Config {
            machines,
            workers: 2,
            copiers: 1,
            buffer_bytes: 64 << 10,
            send_buffers_per_machine: 64,
            ghost_threshold: Some(1024),
            partitioning: PartitioningMode::Edge,
            chunking: ChunkingMode::Edge,
            chunk_edges: 16 * 1024,
            ghost_privatization: true,
            strict_distributed: false,
            net: NetConfig::null(),
            telemetry: TelemetryConfig::off(),
            fault: FaultPlan::none(),
            storage_fault: StorageFaultPlan::none(),
            reliability: ReliabilityConfig::off(),
            recovery: RecoveryConfig::off(),
            pool_shards: 4,
            read_combining: true,
            adaptive_flush: AdaptiveFlushConfig::off(),
            serve: ServeConfig::default_const(),
        }
    }

    /// Installs a fault plan and switches the reliability protocol on —
    /// the only configuration in which active faults are survivable.
    pub fn with_fault(mut self, plan: FaultPlan) -> Self {
        self.fault = plan;
        if plan.is_active() {
            self.reliability.enabled = true;
        }
        self
    }

    /// Installs a storage fault plan and switches recovery on — only the
    /// recovery driver can route around bad checkpoint storage.
    pub fn with_storage_fault(mut self, plan: StorageFaultPlan) -> Self {
        self.storage_fault = plan;
        if plan.is_active() {
            self.recovery.enabled = true;
        }
        self
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.machines == 0 {
            return Err("machines must be >= 1".into());
        }
        if self.machines > u16::MAX as usize {
            return Err("machines must fit in a u16".into());
        }
        if self.workers == 0 {
            return Err("workers must be >= 1".into());
        }
        if self.copiers == 0 {
            return Err("copiers must be >= 1".into());
        }
        if self.buffer_bytes < 64 {
            return Err("buffer_bytes must be >= 64".into());
        }
        if self.send_buffers_per_machine < 2 {
            return Err("need at least 2 send buffers per machine".into());
        }
        if self.chunk_edges == 0 {
            return Err("chunk_edges must be >= 1".into());
        }
        if self.pool_shards == 0 {
            return Err("pool_shards must be >= 1".into());
        }
        if self.pool_shards > 1024 {
            return Err("pool_shards must be <= 1024".into());
        }
        if self.adaptive_flush.enabled {
            let f = &self.adaptive_flush;
            if f.min_bytes < 64 {
                return Err("adaptive_flush.min_bytes must be >= 64".into());
            }
            if f.min_bytes > f.max_bytes {
                return Err("adaptive_flush bounds inverted (min_bytes > max_bytes)".into());
            }
            if f.max_bytes > self.buffer_bytes {
                return Err("adaptive_flush.max_bytes must be <= buffer_bytes".into());
            }
        }
        if self.telemetry.enabled && self.telemetry.ring_capacity == 0 {
            return Err("telemetry ring_capacity must be >= 1 when enabled".into());
        }
        if self.fault.is_active() && !self.reliability.enabled {
            return Err(
                "an active FaultPlan requires reliability.enabled (lost envelopes \
                 deadlock the termination counter otherwise)"
                    .into(),
            );
        }
        for (name, rate) in [
            ("fault.drop_per_mille", self.fault.drop_per_mille),
            ("fault.dup_per_mille", self.fault.dup_per_mille),
            ("fault.reorder_per_mille", self.fault.reorder_per_mille),
            ("fault.delay_per_mille", self.fault.delay_per_mille),
            (
                "storage_fault.lose_per_mille",
                self.storage_fault.lose_per_mille,
            ),
            (
                "storage_fault.corrupt_per_mille",
                self.storage_fault.corrupt_per_mille,
            ),
            (
                "storage_fault.delay_per_mille",
                self.storage_fault.delay_per_mille,
            ),
        ] {
            if rate > 1000 {
                return Err(format!("{name} is a per-mille rate and must be <= 1000"));
            }
        }
        if self.fault.reorder_per_mille > 0 && self.fault.reorder_depth == 0 {
            return Err("fault.reorder_depth must be >= 1 when reordering".into());
        }
        if self.storage_fault.is_active() && !self.recovery.enabled {
            return Err(
                "an active StorageFaultPlan requires recovery.enabled (only the \
                 recovery driver can fall back past a damaged checkpoint)"
                    .into(),
            );
        }
        if let Some(c) = self.fault.crash {
            if (c.machine as usize) >= self.machines {
                return Err("fault.crash.machine out of range".into());
            }
        }
        if let Some(s) = self.fault.slow {
            if (s.machine as usize) >= self.machines {
                return Err("fault.slow.machine out of range".into());
            }
        }
        if self.reliability.enabled {
            let r = &self.reliability;
            if r.tick_ms == 0 || r.rto_base_ms == 0 || r.max_retries == 0 {
                return Err("reliability tick_ms/rto_base_ms/max_retries must be >= 1".into());
            }
            if r.rto_max_ms < r.rto_base_ms {
                return Err("reliability rto_max_ms must be >= rto_base_ms".into());
            }
            if r.watchdog_ms < 2 * r.tick_ms {
                return Err("reliability watchdog_ms must be >= 2 * tick_ms".into());
            }
        }
        if self.serve.queue_depth == 0 {
            return Err("serve.queue_depth must be >= 1".into());
        }
        if self.serve.lane_weights.contains(&0) {
            return Err("serve.lane_weights must both be >= 1".into());
        }
        if self.serve.session_cap == 0 {
            return Err("serve.session_cap must be >= 1".into());
        }
        if self.serve.brownout_shed_per_mille > 0 {
            let s = &self.serve;
            if s.brownout_shed_per_mille > 1000 {
                return Err("serve.brownout_shed_per_mille must be <= 1000".into());
            }
            if s.brownout_reopen_per_mille >= s.brownout_shed_per_mille {
                return Err(
                    "serve.brownout_reopen_per_mille must be < brownout_shed_per_mille \
                     (the gate needs hysteresis to re-open cleanly)"
                        .into(),
                );
            }
        }
        if self.serve.retry_budget_tokens > 0 && self.serve.retry_budget_refill_ms == 0 {
            return Err("serve.retry_budget_refill_ms must be >= 1 when budgeted".into());
        }
        if self.recovery.enabled {
            let rc = &self.recovery;
            if rc.checkpoint_every == 0 {
                return Err("recovery.checkpoint_every must be >= 1".into());
            }
            if rc.max_retries == 0 {
                return Err("recovery.max_retries must be >= 1 when enabled".into());
            }
            if rc.backoff_max_ms < rc.backoff_base_ms {
                return Err("recovery backoff_max_ms must be >= backoff_base_ms".into());
            }
            if rc.retain == 0 {
                return Err("recovery.retain must be >= 1 when enabled".into());
            }
            if rc.flap_threshold == 0 {
                return Err("recovery.flap_threshold must be >= 1 when enabled".into());
            }
        }
        Ok(())
    }
}

impl Default for Config {
    fn default() -> Self {
        Config::bench(4)
    }
}

/// Validated builder for [`Config`] — the single front door for tuning
/// knobs. Every setter is loose; [`ConfigBuilder::build`] runs
/// [`Config::validate`] so invalid combinations (zero quotas, inverted
/// flush bounds, active faults without reliability, ...) are rejected in
/// one place instead of panicking deep inside the engine.
#[derive(Clone, Debug)]
pub struct ConfigBuilder {
    config: Config,
}

impl ConfigBuilder {
    /// Number of simulated machines.
    pub fn machines(mut self, n: usize) -> Self {
        self.config.machines = n;
        self
    }

    /// Worker threads per machine.
    pub fn workers(mut self, n: usize) -> Self {
        self.config.workers = n;
        self
    }

    /// Copier threads per machine.
    pub fn copiers(mut self, n: usize) -> Self {
        self.config.copiers = n;
        self
    }

    /// Message-buffer capacity in bytes.
    pub fn buffer_bytes(mut self, n: usize) -> Self {
        self.config.buffer_bytes = n;
        self
    }

    /// Send-buffer quota per machine (back-pressure budget).
    pub fn send_buffers_per_machine(mut self, n: usize) -> Self {
        self.config.send_buffers_per_machine = n;
        self
    }

    /// Ghost-node degree threshold (`None` disables ghosts).
    pub fn ghost_threshold(mut self, t: Option<usize>) -> Self {
        self.config.ghost_threshold = t;
        self
    }

    /// Vertex or edge partitioning.
    pub fn partitioning(mut self, p: PartitioningMode) -> Self {
        self.config.partitioning = p;
        self
    }

    /// Node or edge chunking.
    pub fn chunking(mut self, c: ChunkingMode) -> Self {
        self.config.chunking = c;
        self
    }

    /// Target edges per chunk.
    pub fn chunk_edges(mut self, n: usize) -> Self {
        self.config.chunk_edges = n;
        self
    }

    /// Thread-private ghost copies for reduced properties.
    pub fn ghost_privatization(mut self, on: bool) -> Self {
        self.config.ghost_privatization = on;
        self
    }

    /// Message-based barrier / termination protocols.
    pub fn strict_distributed(mut self, on: bool) -> Self {
        self.config.strict_distributed = on;
        self
    }

    /// Simulated network model.
    pub fn net(mut self, net: NetConfig) -> Self {
        self.config.net = net;
        self
    }

    /// Histogram/tracer switches.
    pub fn telemetry(mut self, t: TelemetryConfig) -> Self {
        self.config.telemetry = t;
        self
    }

    /// Fault-injection schedule; an active plan auto-enables reliability.
    pub fn fault(mut self, plan: FaultPlan) -> Self {
        self.config = self.config.with_fault(plan);
        self
    }

    /// Checkpoint-storage fault schedule; an active plan auto-enables
    /// recovery (only the recovery driver can route around bad storage).
    pub fn storage_fault(mut self, plan: StorageFaultPlan) -> Self {
        self.config.storage_fault = plan;
        if plan.is_active() {
            self.config.recovery.enabled = true;
        }
        self
    }

    /// Reliable-delivery protocol knobs.
    pub fn reliability(mut self, r: ReliabilityConfig) -> Self {
        self.config.reliability = r;
        self
    }

    /// Checkpoint/restore and automatic-retry knobs.
    pub fn recovery(mut self, r: RecoveryConfig) -> Self {
        self.config.recovery = r;
        self
    }

    /// Snapshot cadence in completed iterations; enables recovery.
    pub fn checkpoint_every(mut self, every: u64) -> Self {
        self.config.recovery.enabled = true;
        self.config.recovery.checkpoint_every = every;
        self
    }

    /// Retry budget after the initial attempt; enables recovery.
    pub fn max_retries(mut self, retries: u32) -> Self {
        self.config.recovery.enabled = true;
        self.config.recovery.max_retries = retries;
        self
    }

    /// Checkpoints retained per store (fallback ring depth); enables
    /// recovery.
    pub fn checkpoint_retain(mut self, n: usize) -> Self {
        self.config.recovery.enabled = true;
        self.config.recovery.retain = n;
        self
    }

    /// Watchdog trips before a machine is quarantined; enables recovery.
    pub fn flap_threshold(mut self, trips: u32) -> Self {
        self.config.recovery.enabled = true;
        self.config.recovery.flap_threshold = trips;
        self
    }

    /// Crash-watchdog silence threshold
    /// ([`ClusterHealth::stale_peer`](crate::health::ClusterHealth::stale_peer)
    /// deadline), milliseconds. Replaces the previously hardcoded value.
    pub fn heartbeat_deadline_ms(mut self, ms: u64) -> Self {
        self.config.reliability.watchdog_ms = ms;
        self
    }

    /// Send-pool free-list shard count.
    pub fn pool_shards(mut self, n: usize) -> Self {
        self.config.pool_shards = n;
        self
    }

    /// In-flight remote-read combining.
    pub fn read_combining(mut self, on: bool) -> Self {
        self.config.read_combining = on;
        self
    }

    /// Adaptive flush-threshold control loop.
    pub fn adaptive_flush(mut self, f: AdaptiveFlushConfig) -> Self {
        self.config.adaptive_flush = f;
        self
    }

    /// Full job-server configuration block.
    pub fn serve(mut self, s: ServeConfig) -> Self {
        self.config.serve = s;
        self
    }

    /// Job-server submission-queue depth (bounded; overflow is rejected
    /// with `JobError::QueueFull`).
    pub fn queue_depth(mut self, n: usize) -> Self {
        self.config.serve.queue_depth = n;
        self
    }

    /// Job-server admission memory budget in bytes (`0` = unlimited).
    pub fn memory_budget(mut self, bytes: u64) -> Self {
        self.config.serve.memory_budget_bytes = bytes;
        self
    }

    /// Weighted-fair dispatch weights for the `[interactive, batch]`
    /// lanes.
    pub fn lane_weights(mut self, weights: [u32; 2]) -> Self {
        self.config.serve.lane_weights = weights;
        self
    }

    /// Default per-job deadline in milliseconds (`0` = none).
    pub fn default_deadline_ms(mut self, ms: u64) -> Self {
        self.config.serve.default_deadline_ms = ms;
        self
    }

    /// Brownout thresholds as queue occupancy in ‰ of `queue_depth`
    /// (`shed` closes the batch lane, `reopen` re-opens it; `shed = 0`
    /// disables brownout).
    pub fn brownout(mut self, shed_per_mille: u16, reopen_per_mille: u16) -> Self {
        self.config.serve.brownout_shed_per_mille = shed_per_mille;
        self.config.serve.brownout_reopen_per_mille = reopen_per_mille;
        self
    }

    /// Server-wide retry-budget token bucket (`tokens = 0` disables it).
    pub fn retry_budget(mut self, tokens: u32, refill_ms: u64) -> Self {
        self.config.serve.retry_budget_tokens = tokens;
        self.config.serve.retry_budget_refill_ms = refill_ms;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<Config, String> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(Config::default().validate().is_ok());
        assert!(Config::test(2).validate().is_ok());
        assert!(Config::bench(8).validate().is_ok());
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = Config::test(2);
        c.machines = 0;
        assert!(c.validate().is_err());
        let mut c = Config::test(2);
        c.workers = 0;
        assert!(c.validate().is_err());
        let mut c = Config::test(2);
        c.copiers = 0;
        assert!(c.validate().is_err());
        let mut c = Config::test(2);
        c.buffer_bytes = 8;
        assert!(c.validate().is_err());
        let mut c = Config::test(2);
        c.chunk_edges = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn net_null_detection() {
        assert!(NetConfig::null().is_null());
        assert!(!NetConfig::infiniband_like().is_null());
    }

    #[test]
    fn active_fault_requires_reliability() {
        let mut c = Config::test(2);
        c.fault = FaultPlan::lossy(1, 10, 10, 0);
        assert!(c.validate().is_err());
        c.reliability.enabled = true;
        assert!(c.validate().is_ok());
        // with_fault enables reliability automatically.
        let c = Config::test(2).with_fault(FaultPlan::crash(1, 100));
        assert!(c.validate().is_ok());
        assert!(c.reliability.enabled);
    }

    #[test]
    fn fault_plan_bounds_checked() {
        let mut c = Config::test(2).with_fault(FaultPlan::crash(5, 1));
        assert!(c.validate().is_err());
        c.fault.crash = None;
        c.fault.slow = Some(SlowPlan {
            machine: 9,
            after_sends: 0,
            extra_ns: 100,
        });
        assert!(c.validate().is_err());
        let mut c = Config::test(2).with_fault(FaultPlan::lossy(7, 0, 0, 5));
        c.fault.reorder_depth = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn reliability_knobs_validated() {
        let mut c = Config::test(2);
        c.reliability = ReliabilityConfig::on();
        assert!(c.validate().is_ok());
        c.reliability.rto_max_ms = 1;
        assert!(c.validate().is_err());
        c.reliability = ReliabilityConfig::on();
        c.reliability.watchdog_ms = c.reliability.tick_ms;
        assert!(c.validate().is_err());
        c.reliability = ReliabilityConfig::on();
        c.reliability.max_retries = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn recovery_knobs_validated() {
        let mut c = Config::test(2);
        c.recovery = RecoveryConfig::on();
        assert!(c.validate().is_ok());
        c.recovery.checkpoint_every = 0;
        assert!(c.validate().is_err());
        c.recovery = RecoveryConfig::on();
        c.recovery.max_retries = 0;
        assert!(c.validate().is_err());
        c.recovery = RecoveryConfig::on();
        c.recovery.backoff_max_ms = c.recovery.backoff_base_ms - 1;
        assert!(c.validate().is_err());
        // Disabled recovery skips the knob checks entirely.
        c.recovery = RecoveryConfig::off();
        c.recovery.checkpoint_every = 0;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_recovery_setters_enable_recovery() {
        let c = Config::builder()
            .checkpoint_every(4)
            .max_retries(2)
            .build()
            .expect("valid recovery config");
        assert!(c.recovery.enabled);
        assert_eq!(c.recovery.checkpoint_every, 4);
        assert_eq!(c.recovery.max_retries, 2);
        assert!(Config::builder().checkpoint_every(0).build().is_err());
    }

    #[test]
    fn builder_heartbeat_deadline_sets_watchdog() {
        let mut b = Config::builder().heartbeat_deadline_ms(120);
        b = b
            .reliability(ReliabilityConfig::on())
            .heartbeat_deadline_ms(120);
        let c = b.build().expect("valid");
        assert_eq!(c.reliability.watchdog_ms, 120);
        // The deadline is still validated against the tick interval.
        assert!(Config::builder()
            .reliability(ReliabilityConfig::on())
            .heartbeat_deadline_ms(1)
            .build()
            .is_err());
    }

    #[test]
    fn builder_accepts_valid_tuning() {
        let c = Config::builder()
            .machines(3)
            .workers(2)
            .buffer_bytes(8 << 10)
            .pool_shards(8)
            .read_combining(false)
            .adaptive_flush(AdaptiveFlushConfig::bounds(256, 4096))
            .build()
            .expect("valid config");
        assert_eq!(c.machines, 3);
        assert_eq!(c.pool_shards, 8);
        assert!(!c.read_combining);
        assert!(c.adaptive_flush.enabled);
    }

    #[test]
    fn builder_rejects_zero_quotas() {
        assert!(Config::builder().workers(0).build().is_err());
        assert!(Config::builder().copiers(0).build().is_err());
        assert!(Config::builder()
            .send_buffers_per_machine(0)
            .build()
            .is_err());
        assert!(Config::builder().pool_shards(0).build().is_err());
        assert!(Config::builder().pool_shards(4096).build().is_err());
    }

    #[test]
    fn builder_rejects_inverted_flush_bounds() {
        let err = Config::builder()
            .adaptive_flush(AdaptiveFlushConfig::bounds(4096, 256))
            .build()
            .unwrap_err();
        assert!(err.contains("inverted"), "unexpected error: {err}");
        // Bounds above the allocated buffer size are also rejected.
        assert!(Config::builder()
            .buffer_bytes(1 << 10)
            .adaptive_flush(AdaptiveFlushConfig::bounds(256, 1 << 20))
            .build()
            .is_err());
        // min below the wire-entry floor is rejected.
        assert!(Config::builder()
            .adaptive_flush(AdaptiveFlushConfig::bounds(8, 4096))
            .build()
            .is_err());
    }

    #[test]
    fn builder_fault_setter_enables_reliability() {
        let c = Config::builder()
            .fault(FaultPlan::lossy(9, 5, 0, 0))
            .build()
            .expect("fault() auto-enables reliability");
        assert!(c.reliability.enabled);
    }

    #[test]
    fn serve_knobs_validated_and_built() {
        let c = Config::builder()
            .queue_depth(8)
            .memory_budget(1 << 20)
            .lane_weights([4, 1])
            .default_deadline_ms(250)
            .build()
            .expect("valid serve config");
        assert_eq!(c.serve.queue_depth, 8);
        assert_eq!(c.serve.memory_budget_bytes, 1 << 20);
        assert_eq!(c.serve.lane_weights, [4, 1]);
        assert_eq!(c.serve.default_deadline_ms, 250);
        assert!(Config::builder().queue_depth(0).build().is_err());
        assert!(Config::builder().lane_weights([0, 1]).build().is_err());
        let mut c = Config::test(2);
        c.serve.session_cap = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn inert_fault_plan_is_inactive() {
        assert!(!FaultPlan::none().is_active());
        assert!(FaultPlan::lossy(3, 1, 0, 0).is_active());
        assert!(FaultPlan::crash(0, 10).is_active());
    }

    #[test]
    fn per_mille_rates_capped_at_1000() {
        // Wire plan: each rate field individually rejected above 1000‰.
        let mut c = Config::test(2).with_fault(FaultPlan::lossy(1, 1001, 0, 0));
        assert!(c.validate().unwrap_err().contains("per-mille"));
        c.fault = FaultPlan::lossy(1, 0, 1001, 0);
        assert!(c.validate().is_err());
        c.fault = FaultPlan::lossy(1, 0, 0, 1001);
        assert!(c.validate().is_err());
        c.fault = FaultPlan::lossy(1, 1000, 1000, 1000);
        assert!(c.validate().is_ok(), "1000‰ (always) is a legal rate");
        // Storage plan: same cap.
        let mut c = Config::test(2);
        c.recovery = RecoveryConfig::on();
        c.storage_fault = StorageFaultPlan::faulty(9, 1001, 0, 0);
        assert!(c.validate().unwrap_err().contains("per-mille"));
        c.storage_fault = StorageFaultPlan::faulty(9, 0, 2000, 0);
        assert!(c.validate().is_err());
        c.storage_fault = StorageFaultPlan::faulty(9, 100, 100, 100);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn active_storage_fault_requires_recovery() {
        let mut c = Config::test(2);
        c.storage_fault = StorageFaultPlan::faulty(5, 100, 0, 0);
        assert!(c.validate().unwrap_err().contains("recovery"));
        c.recovery = RecoveryConfig::on();
        assert!(c.validate().is_ok());
        // The builder setter auto-enables recovery.
        let c = Config::builder()
            .storage_fault(StorageFaultPlan::faulty(5, 0, 100, 0))
            .build()
            .expect("storage_fault() auto-enables recovery");
        assert!(c.recovery.enabled);
        assert!(!StorageFaultPlan::none().is_active());
    }

    #[test]
    fn retention_and_flap_knobs_validated() {
        let mut c = Config::test(2);
        c.recovery = RecoveryConfig::on();
        c.recovery.retain = 0;
        assert!(c.validate().is_err());
        c.recovery = RecoveryConfig::on();
        c.recovery.flap_threshold = 0;
        assert!(c.validate().is_err());
        let c = Config::builder()
            .checkpoint_retain(3)
            .flap_threshold(2)
            .build()
            .expect("valid retention config");
        assert!(c.recovery.enabled);
        assert_eq!(c.recovery.retain, 3);
        assert_eq!(c.recovery.flap_threshold, 2);
    }

    #[test]
    fn brownout_and_retry_budget_validated() {
        let c = Config::builder()
            .brownout(750, 250)
            .retry_budget(4, 100)
            .build()
            .expect("valid brownout config");
        assert_eq!(c.serve.brownout_shed_per_mille, 750);
        assert_eq!(c.serve.brownout_reopen_per_mille, 250);
        assert_eq!(c.serve.retry_budget_tokens, 4);
        // No hysteresis (reopen >= shed) is rejected.
        assert!(Config::builder().brownout(500, 500).build().is_err());
        assert!(Config::builder().brownout(1500, 100).build().is_err());
        assert!(Config::builder().retry_budget(4, 0).build().is_err());
        // Defaults stay inert.
        let d = ServeConfig::default_const();
        assert_eq!(d.brownout_shed_per_mille, 0);
        assert_eq!(d.retry_budget_tokens, 0);
    }
}
