//! Cluster configuration: thread counts, buffer sizes, partitioning and
//! chunking strategies, ghost threshold, and the simulated-network model.

/// How vertices are assigned to machines (§3.3, Figure 6b).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitioningMode {
    /// Each machine gets an equal number of *vertices* (the naive baseline
    /// the paper compares against).
    Vertex,
    /// Each machine gets an equal share of `in-degree + out-degree` — the
    /// paper's edge partitioning. Partitions remain contiguous vertex
    /// ranges identified by P−1 pivots.
    Edge,
}

/// How a parallel region's tasks are cut into worker chunks (§3.3,
/// Figure 6c).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChunkingMode {
    /// Chunks contain an equal number of nodes (baseline).
    Node,
    /// Chunks contain an approximately equal number of edges — the paper's
    /// edge chunking, essential for core-level balance on skewed graphs.
    Edge,
}

/// Simulated interconnect model applied by the poller threads.
///
/// With the default null model, a message costs only its memcpy — the right
/// setting for system-vs-system comparisons on one host. The Figure 8
/// experiments enable the cost terms to expose the buffer-size and
/// bandwidth shapes the paper measures on InfiniBand.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetConfig {
    /// Fixed per-envelope processing cost, in nanoseconds (models per-packet
    /// driver/NIC overhead; what makes small buffers slow in Fig 8b).
    pub per_message_ns: u64,
    /// Link bandwidth in bytes/second; 0 disables bandwidth modeling.
    pub bandwidth_bytes_per_sec: u64,
    /// One-way latency per envelope in nanoseconds.
    pub latency_ns: u64,
}

impl NetConfig {
    /// Pure memcpy wire: no modeled costs.
    pub const fn null() -> Self {
        NetConfig {
            per_message_ns: 0,
            bandwidth_bytes_per_sec: 0,
            latency_ns: 0,
        }
    }

    /// A model loosely shaped like the paper's 56 Gb/s InfiniBand FDR link,
    /// scaled down so that modeled time is visible next to single-host
    /// compute: ~2 µs per message, ~6 GB/s per link.
    pub const fn infiniband_like() -> Self {
        NetConfig {
            per_message_ns: 2_000,
            bandwidth_bytes_per_sec: 6_000_000_000,
            latency_ns: 1_000,
        }
    }

    /// Whether any cost term is active.
    pub fn is_null(&self) -> bool {
        self.per_message_ns == 0 && self.bandwidth_bytes_per_sec == 0 && self.latency_ns == 0
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig::null()
    }
}

/// Crash a machine at a deterministic point in virtual time.
///
/// Virtual time is the fabric's global send counter, so "after N sends"
/// names the same instant on every run with the same seed and workload.
/// A crash is modeled as a permanent partition: once triggered, the fabric
/// silently swallows every envelope to or from the machine (its threads
/// keep running — exactly what a surviving peer observes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashPlan {
    /// Machine to partition away.
    pub machine: u16,
    /// Trigger after this many envelopes have entered the fabric.
    pub after_sends: u64,
}

/// Slow a machine down from a chosen virtual time: every send it performs
/// afterwards spins for `extra_ns` before hitting the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlowPlan {
    /// Machine to degrade.
    pub machine: u16,
    /// Trigger after this many envelopes have entered the fabric.
    pub after_sends: u64,
    /// Extra per-send stall, nanoseconds.
    pub extra_ns: u64,
}

/// Deterministic fault-injection schedule applied inside `Fabric::send`.
///
/// Every per-envelope decision (drop / duplicate / reorder / delay) is a
/// pure function of `seed` and the global send counter, so a given plan
/// replays identically run after run. Rates are per-mille (‰): `10` means
/// 1% of envelopes. Reordered envelopes are held in a limbo buffer and
/// released after 1..=`reorder_depth` further sends; delayed envelopes use
/// the same mechanism with the fixed horizon `delay_sends`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the per-envelope fault dice.
    pub seed: u64,
    /// Probability (‰) of silently dropping an envelope.
    pub drop_per_mille: u16,
    /// Probability (‰) of delivering an envelope twice.
    pub dup_per_mille: u16,
    /// Probability (‰) of holding an envelope back so later traffic
    /// overtakes it.
    pub reorder_per_mille: u16,
    /// Maximum number of subsequent sends a reordered envelope is held for.
    pub reorder_depth: u32,
    /// Probability (‰) of delaying an envelope by `delay_sends` sends.
    pub delay_per_mille: u16,
    /// Hold horizon for delayed envelopes, in global sends.
    pub delay_sends: u64,
    /// Optional machine crash (permanent partition).
    pub crash: Option<CrashPlan>,
    /// Optional machine slowdown.
    pub slow: Option<SlowPlan>,
}

impl FaultPlan {
    /// The inert plan: no faults, zero overhead in the fabric.
    pub const fn none() -> Self {
        FaultPlan {
            seed: 0,
            drop_per_mille: 0,
            dup_per_mille: 0,
            reorder_per_mille: 0,
            reorder_depth: 4,
            delay_per_mille: 0,
            delay_sends: 64,
            crash: None,
            slow: None,
        }
    }

    /// A message-level plan: drop / duplicate / reorder rates in ‰.
    pub const fn lossy(seed: u64, drop: u16, dup: u16, reorder: u16) -> Self {
        FaultPlan {
            seed,
            drop_per_mille: drop,
            dup_per_mille: dup,
            reorder_per_mille: reorder,
            ..FaultPlan::none()
        }
    }

    /// A plan whose only fault is crashing `machine` after `after_sends`
    /// envelopes.
    pub const fn crash(machine: u16, after_sends: u64) -> Self {
        FaultPlan {
            crash: Some(CrashPlan {
                machine,
                after_sends,
            }),
            ..FaultPlan::none()
        }
    }

    /// Whether any fault can ever fire under this plan.
    pub fn is_active(&self) -> bool {
        self.drop_per_mille > 0
            || self.dup_per_mille > 0
            || self.reorder_per_mille > 0
            || self.delay_per_mille > 0
            || self.crash.is_some()
            || self.slow.is_some()
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Reliable-delivery protocol knobs (sequence numbers, ack/retransmit,
/// heartbeats, crash watchdog). Off by default: the fault-free hot path
/// pays nothing. Any active [`FaultPlan`] requires `enabled = true` —
/// [`Config::validate`] enforces this, because the exact pending-entry
/// termination counter deadlocks forever on a single lost envelope.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReliabilityConfig {
    /// Master switch for sequencing, acks, retransmits, heartbeats, and the
    /// watchdog.
    pub enabled: bool,
    /// Poller housekeeping interval (heartbeats, retransmit sweep,
    /// watchdog check), milliseconds.
    pub tick_ms: u64,
    /// Initial retransmission timeout, milliseconds; doubles per retry.
    pub rto_base_ms: u64,
    /// Ceiling on the backed-off retransmission timeout, milliseconds.
    pub rto_max_ms: u64,
    /// Retransmissions of one envelope before the destination is declared
    /// dead.
    pub max_retries: u32,
    /// Silence threshold after which the watchdog declares a peer machine
    /// crashed, milliseconds.
    pub watchdog_ms: u64,
}

impl ReliabilityConfig {
    pub const fn off() -> Self {
        ReliabilityConfig {
            enabled: false,
            tick_ms: 5,
            rto_base_ms: 25,
            rto_max_ms: 200,
            max_retries: 12,
            watchdog_ms: 500,
        }
    }

    pub const fn on() -> Self {
        ReliabilityConfig {
            enabled: true,
            ..ReliabilityConfig::off()
        }
    }
}

impl Default for ReliabilityConfig {
    fn default() -> Self {
        ReliabilityConfig::off()
    }
}

/// Telemetry switches (see [`crate::telemetry`]).
///
/// The always-on [`crate::stats::MachineStats`] counters are unaffected by
/// these settings; `enabled` gates the histograms and per-worker event
/// tracers, whose hot-path cost when off is one branch per hook.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Record histograms and trace events.
    pub enabled: bool,
    /// Trace-ring slots per worker (rounded up to a power of two; the ring
    /// overwrites oldest events on overflow).
    pub ring_capacity: usize,
}

impl TelemetryConfig {
    pub const fn off() -> Self {
        TelemetryConfig {
            enabled: false,
            ring_capacity: 4096,
        }
    }

    pub const fn on() -> Self {
        TelemetryConfig {
            enabled: true,
            ring_capacity: 4096,
        }
    }
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig::off()
    }
}

/// Full cluster configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of simulated machines (PGX.D processes).
    pub machines: usize,
    /// Worker threads per machine (paper default: 16 on 32-HT machines).
    pub workers: usize,
    /// Copier threads per machine (paper default: 8).
    pub copiers: usize,
    /// Maximum payload bytes per message buffer (paper: 256 KB; scaled
    /// default 64 KB keeps latency reasonable at simulation scale).
    pub buffer_bytes: usize,
    /// Buffers available per machine before senders experience
    /// back-pressure.
    pub send_buffers_per_machine: usize,
    /// Ghost-node degree threshold: nodes whose in- or out-degree exceeds
    /// this are replicated on every machine. `None` disables ghosts.
    pub ghost_threshold: Option<usize>,
    /// Vertex or edge partitioning.
    pub partitioning: PartitioningMode,
    /// Node or edge chunking.
    pub chunking: ChunkingMode,
    /// Target edges per chunk when edge chunking (nodes per chunk when node
    /// chunking is derived from this divided by the average degree).
    pub chunk_edges: usize,
    /// Create thread-private ghost copies for reduced properties (§3.3
    /// "Ghost Privatization").
    pub ghost_privatization: bool,
    /// Use the message-based (four-counter / coordinator) barrier and
    /// termination protocols instead of the shared-memory fast path.
    pub strict_distributed: bool,
    /// Simulated network model.
    pub net: NetConfig,
    /// Histogram/tracer switches.
    pub telemetry: TelemetryConfig,
    /// Deterministic fault-injection schedule (inert by default).
    pub fault: FaultPlan,
    /// Reliable-delivery protocol (off by default).
    pub reliability: ReliabilityConfig,
}

impl Config {
    /// A small configuration suitable for unit tests: 2 machines, 1 worker
    /// and 1 copier each, tiny buffers so that buffering/flushing paths are
    /// exercised even by small graphs.
    pub fn test(machines: usize) -> Self {
        Config {
            machines,
            workers: 1,
            copiers: 1,
            buffer_bytes: 1 << 10,
            send_buffers_per_machine: 16,
            ghost_threshold: None,
            partitioning: PartitioningMode::Edge,
            chunking: ChunkingMode::Edge,
            chunk_edges: 256,
            ghost_privatization: true,
            strict_distributed: false,
            net: NetConfig::null(),
            telemetry: TelemetryConfig::off(),
            fault: FaultPlan::none(),
            reliability: ReliabilityConfig::off(),
        }
    }

    /// The benchmark default: mirrors the paper's 16-worker / 8-copier
    /// setting scaled to a single host.
    pub fn bench(machines: usize) -> Self {
        Config {
            machines,
            workers: 2,
            copiers: 1,
            buffer_bytes: 64 << 10,
            send_buffers_per_machine: 64,
            ghost_threshold: Some(1024),
            partitioning: PartitioningMode::Edge,
            chunking: ChunkingMode::Edge,
            chunk_edges: 16 * 1024,
            ghost_privatization: true,
            strict_distributed: false,
            net: NetConfig::null(),
            telemetry: TelemetryConfig::off(),
            fault: FaultPlan::none(),
            reliability: ReliabilityConfig::off(),
        }
    }

    /// Installs a fault plan and switches the reliability protocol on —
    /// the only configuration in which active faults are survivable.
    pub fn with_fault(mut self, plan: FaultPlan) -> Self {
        self.fault = plan;
        if plan.is_active() {
            self.reliability.enabled = true;
        }
        self
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.machines == 0 {
            return Err("machines must be >= 1".into());
        }
        if self.machines > u16::MAX as usize {
            return Err("machines must fit in a u16".into());
        }
        if self.workers == 0 {
            return Err("workers must be >= 1".into());
        }
        if self.copiers == 0 {
            return Err("copiers must be >= 1".into());
        }
        if self.buffer_bytes < 64 {
            return Err("buffer_bytes must be >= 64".into());
        }
        if self.send_buffers_per_machine < 2 {
            return Err("need at least 2 send buffers per machine".into());
        }
        if self.chunk_edges == 0 {
            return Err("chunk_edges must be >= 1".into());
        }
        if self.telemetry.enabled && self.telemetry.ring_capacity == 0 {
            return Err("telemetry ring_capacity must be >= 1 when enabled".into());
        }
        if self.fault.is_active() && !self.reliability.enabled {
            return Err(
                "an active FaultPlan requires reliability.enabled (lost envelopes \
                 deadlock the termination counter otherwise)"
                    .into(),
            );
        }
        if self.fault.reorder_per_mille > 0 && self.fault.reorder_depth == 0 {
            return Err("fault.reorder_depth must be >= 1 when reordering".into());
        }
        if let Some(c) = self.fault.crash {
            if (c.machine as usize) >= self.machines {
                return Err("fault.crash.machine out of range".into());
            }
        }
        if let Some(s) = self.fault.slow {
            if (s.machine as usize) >= self.machines {
                return Err("fault.slow.machine out of range".into());
            }
        }
        if self.reliability.enabled {
            let r = &self.reliability;
            if r.tick_ms == 0 || r.rto_base_ms == 0 || r.max_retries == 0 {
                return Err("reliability tick_ms/rto_base_ms/max_retries must be >= 1".into());
            }
            if r.rto_max_ms < r.rto_base_ms {
                return Err("reliability rto_max_ms must be >= rto_base_ms".into());
            }
            if r.watchdog_ms < 2 * r.tick_ms {
                return Err("reliability watchdog_ms must be >= 2 * tick_ms".into());
            }
        }
        Ok(())
    }
}

impl Default for Config {
    fn default() -> Self {
        Config::bench(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(Config::default().validate().is_ok());
        assert!(Config::test(2).validate().is_ok());
        assert!(Config::bench(8).validate().is_ok());
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = Config::test(2);
        c.machines = 0;
        assert!(c.validate().is_err());
        let mut c = Config::test(2);
        c.workers = 0;
        assert!(c.validate().is_err());
        let mut c = Config::test(2);
        c.copiers = 0;
        assert!(c.validate().is_err());
        let mut c = Config::test(2);
        c.buffer_bytes = 8;
        assert!(c.validate().is_err());
        let mut c = Config::test(2);
        c.chunk_edges = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn net_null_detection() {
        assert!(NetConfig::null().is_null());
        assert!(!NetConfig::infiniband_like().is_null());
    }

    #[test]
    fn active_fault_requires_reliability() {
        let mut c = Config::test(2);
        c.fault = FaultPlan::lossy(1, 10, 10, 0);
        assert!(c.validate().is_err());
        c.reliability.enabled = true;
        assert!(c.validate().is_ok());
        // with_fault enables reliability automatically.
        let c = Config::test(2).with_fault(FaultPlan::crash(1, 100));
        assert!(c.validate().is_ok());
        assert!(c.reliability.enabled);
    }

    #[test]
    fn fault_plan_bounds_checked() {
        let mut c = Config::test(2).with_fault(FaultPlan::crash(5, 1));
        assert!(c.validate().is_err());
        c.fault.crash = None;
        c.fault.slow = Some(SlowPlan {
            machine: 9,
            after_sends: 0,
            extra_ns: 100,
        });
        assert!(c.validate().is_err());
        let mut c = Config::test(2).with_fault(FaultPlan::lossy(7, 0, 0, 5));
        c.fault.reorder_depth = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn reliability_knobs_validated() {
        let mut c = Config::test(2);
        c.reliability = ReliabilityConfig::on();
        assert!(c.validate().is_ok());
        c.reliability.rto_max_ms = 1;
        assert!(c.validate().is_err());
        c.reliability = ReliabilityConfig::on();
        c.reliability.watchdog_ms = c.reliability.tick_ms;
        assert!(c.validate().is_err());
        c.reliability = ReliabilityConfig::on();
        c.reliability.max_retries = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn inert_fault_plan_is_inactive() {
        assert!(!FaultPlan::none().is_active());
        assert!(FaultPlan::lossy(3, 1, 0, 0).is_active());
        assert!(FaultPlan::crash(0, 10).is_active());
    }
}
