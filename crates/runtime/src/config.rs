//! Cluster configuration: thread counts, buffer sizes, partitioning and
//! chunking strategies, ghost threshold, and the simulated-network model.

/// How vertices are assigned to machines (§3.3, Figure 6b).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitioningMode {
    /// Each machine gets an equal number of *vertices* (the naive baseline
    /// the paper compares against).
    Vertex,
    /// Each machine gets an equal share of `in-degree + out-degree` — the
    /// paper's edge partitioning. Partitions remain contiguous vertex
    /// ranges identified by P−1 pivots.
    Edge,
}

/// How a parallel region's tasks are cut into worker chunks (§3.3,
/// Figure 6c).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChunkingMode {
    /// Chunks contain an equal number of nodes (baseline).
    Node,
    /// Chunks contain an approximately equal number of edges — the paper's
    /// edge chunking, essential for core-level balance on skewed graphs.
    Edge,
}

/// Simulated interconnect model applied by the poller threads.
///
/// With the default null model, a message costs only its memcpy — the right
/// setting for system-vs-system comparisons on one host. The Figure 8
/// experiments enable the cost terms to expose the buffer-size and
/// bandwidth shapes the paper measures on InfiniBand.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetConfig {
    /// Fixed per-envelope processing cost, in nanoseconds (models per-packet
    /// driver/NIC overhead; what makes small buffers slow in Fig 8b).
    pub per_message_ns: u64,
    /// Link bandwidth in bytes/second; 0 disables bandwidth modeling.
    pub bandwidth_bytes_per_sec: u64,
    /// One-way latency per envelope in nanoseconds.
    pub latency_ns: u64,
}

impl NetConfig {
    /// Pure memcpy wire: no modeled costs.
    pub const fn null() -> Self {
        NetConfig {
            per_message_ns: 0,
            bandwidth_bytes_per_sec: 0,
            latency_ns: 0,
        }
    }

    /// A model loosely shaped like the paper's 56 Gb/s InfiniBand FDR link,
    /// scaled down so that modeled time is visible next to single-host
    /// compute: ~2 µs per message, ~6 GB/s per link.
    pub const fn infiniband_like() -> Self {
        NetConfig {
            per_message_ns: 2_000,
            bandwidth_bytes_per_sec: 6_000_000_000,
            latency_ns: 1_000,
        }
    }

    /// Whether any cost term is active.
    pub fn is_null(&self) -> bool {
        self.per_message_ns == 0 && self.bandwidth_bytes_per_sec == 0 && self.latency_ns == 0
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig::null()
    }
}

/// Telemetry switches (see [`crate::telemetry`]).
///
/// The always-on [`crate::stats::MachineStats`] counters are unaffected by
/// these settings; `enabled` gates the histograms and per-worker event
/// tracers, whose hot-path cost when off is one branch per hook.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Record histograms and trace events.
    pub enabled: bool,
    /// Trace-ring slots per worker (rounded up to a power of two; the ring
    /// overwrites oldest events on overflow).
    pub ring_capacity: usize,
}

impl TelemetryConfig {
    pub const fn off() -> Self {
        TelemetryConfig {
            enabled: false,
            ring_capacity: 4096,
        }
    }

    pub const fn on() -> Self {
        TelemetryConfig {
            enabled: true,
            ring_capacity: 4096,
        }
    }
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig::off()
    }
}

/// Full cluster configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of simulated machines (PGX.D processes).
    pub machines: usize,
    /// Worker threads per machine (paper default: 16 on 32-HT machines).
    pub workers: usize,
    /// Copier threads per machine (paper default: 8).
    pub copiers: usize,
    /// Maximum payload bytes per message buffer (paper: 256 KB; scaled
    /// default 64 KB keeps latency reasonable at simulation scale).
    pub buffer_bytes: usize,
    /// Buffers available per machine before senders experience
    /// back-pressure.
    pub send_buffers_per_machine: usize,
    /// Ghost-node degree threshold: nodes whose in- or out-degree exceeds
    /// this are replicated on every machine. `None` disables ghosts.
    pub ghost_threshold: Option<usize>,
    /// Vertex or edge partitioning.
    pub partitioning: PartitioningMode,
    /// Node or edge chunking.
    pub chunking: ChunkingMode,
    /// Target edges per chunk when edge chunking (nodes per chunk when node
    /// chunking is derived from this divided by the average degree).
    pub chunk_edges: usize,
    /// Create thread-private ghost copies for reduced properties (§3.3
    /// "Ghost Privatization").
    pub ghost_privatization: bool,
    /// Use the message-based (four-counter / coordinator) barrier and
    /// termination protocols instead of the shared-memory fast path.
    pub strict_distributed: bool,
    /// Simulated network model.
    pub net: NetConfig,
    /// Histogram/tracer switches.
    pub telemetry: TelemetryConfig,
}

impl Config {
    /// A small configuration suitable for unit tests: 2 machines, 1 worker
    /// and 1 copier each, tiny buffers so that buffering/flushing paths are
    /// exercised even by small graphs.
    pub fn test(machines: usize) -> Self {
        Config {
            machines,
            workers: 1,
            copiers: 1,
            buffer_bytes: 1 << 10,
            send_buffers_per_machine: 16,
            ghost_threshold: None,
            partitioning: PartitioningMode::Edge,
            chunking: ChunkingMode::Edge,
            chunk_edges: 256,
            ghost_privatization: true,
            strict_distributed: false,
            net: NetConfig::null(),
            telemetry: TelemetryConfig::off(),
        }
    }

    /// The benchmark default: mirrors the paper's 16-worker / 8-copier
    /// setting scaled to a single host.
    pub fn bench(machines: usize) -> Self {
        Config {
            machines,
            workers: 2,
            copiers: 1,
            buffer_bytes: 64 << 10,
            send_buffers_per_machine: 64,
            ghost_threshold: Some(1024),
            partitioning: PartitioningMode::Edge,
            chunking: ChunkingMode::Edge,
            chunk_edges: 16 * 1024,
            ghost_privatization: true,
            strict_distributed: false,
            net: NetConfig::null(),
            telemetry: TelemetryConfig::off(),
        }
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.machines == 0 {
            return Err("machines must be >= 1".into());
        }
        if self.machines > u16::MAX as usize {
            return Err("machines must fit in a u16".into());
        }
        if self.workers == 0 {
            return Err("workers must be >= 1".into());
        }
        if self.copiers == 0 {
            return Err("copiers must be >= 1".into());
        }
        if self.buffer_bytes < 64 {
            return Err("buffer_bytes must be >= 64".into());
        }
        if self.send_buffers_per_machine < 2 {
            return Err("need at least 2 send buffers per machine".into());
        }
        if self.chunk_edges == 0 {
            return Err("chunk_edges must be >= 1".into());
        }
        if self.telemetry.enabled && self.telemetry.ring_capacity == 0 {
            return Err("telemetry ring_capacity must be >= 1 when enabled".into());
        }
        Ok(())
    }
}

impl Default for Config {
    fn default() -> Self {
        Config::bench(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(Config::default().validate().is_ok());
        assert!(Config::test(2).validate().is_ok());
        assert!(Config::bench(8).validate().is_ok());
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = Config::test(2);
        c.machines = 0;
        assert!(c.validate().is_err());
        let mut c = Config::test(2);
        c.workers = 0;
        assert!(c.validate().is_err());
        let mut c = Config::test(2);
        c.copiers = 0;
        assert!(c.validate().is_err());
        let mut c = Config::test(2);
        c.buffer_bytes = 8;
        assert!(c.validate().is_err());
        let mut c = Config::test(2);
        c.chunk_edges = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn net_null_detection() {
        assert!(NetConfig::null().is_null());
        assert!(!NetConfig::infiniband_like().is_null());
    }
}
