//! Deterministic fault injection for the simulated fabric.
//!
//! A [`FaultInjector`] sits inside `Fabric::send` and perturbs delivery
//! according to a [`FaultPlan`]: dropping, duplicating, reordering, or
//! delaying envelopes, crashing (permanently partitioning) a machine, or
//! slowing one down. Every decision is a pure function of the plan's seed
//! and the fabric's global send counter — the injector's *virtual clock* —
//! so a plan fires the same schedule of faults at the same virtual times on
//! every run.
//!
//! Reordered and delayed envelopes sit in a limbo buffer keyed by a
//! release deadline on the same counter; any later send (data, ack, or
//! heartbeat — the poller tick guarantees a steady trickle) flushes the
//! limbo entries that have come due, so nothing is held forever.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::config::FaultPlan;
use crate::ids::MachineId;
use crate::message::Envelope;

/// Injection totals, for experiments and assertions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Envelopes silently dropped by the dice.
    pub dropped: u64,
    /// Dropped envelopes of reliable kinds — the ones the protocol is
    /// obliged to repair (so `dropped_reliable > 0` implies retransmits).
    pub dropped_reliable: u64,
    /// Envelopes delivered twice.
    pub duplicated: u64,
    /// Duplicated envelopes of reliable kinds — the ones the dedup
    /// windows must filter (so `duplicated_reliable > 0` implies
    /// duplicate suppressions).
    pub duplicated_reliable: u64,
    /// Envelopes held in limbo (reordered or delayed).
    pub held: u64,
    /// Envelopes swallowed because an endpoint was crashed.
    pub crash_swallowed: u64,
}

/// Seed-driven fault schedule. See the module docs.
pub struct FaultInjector {
    plan: FaultPlan,
    /// Global send counter — the virtual clock.
    counter: AtomicU64,
    /// Envelopes held back, with the counter value that releases them.
    limbo: Mutex<Vec<(u64, Envelope)>>,
    crashed: AtomicBool,
    dropped: AtomicU64,
    dropped_reliable: AtomicU64,
    duplicated: AtomicU64,
    duplicated_reliable: AtomicU64,
    held: AtomicU64,
    crash_swallowed: AtomicU64,
}

/// splitmix64: independent 64-bit hash per (seed, event) pair.
///
/// Shared with the storage fault injector in [`crate::checkpoint`] so both
/// layers draw from the same deterministic dice family.
#[inline]
pub(crate) fn mix(seed: u64, n: u64) -> u64 {
    let mut z = seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultInjector {
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            counter: AtomicU64::new(0),
            limbo: Mutex::new(Vec::new()),
            crashed: AtomicBool::new(false),
            dropped: AtomicU64::new(0),
            dropped_reliable: AtomicU64::new(0),
            duplicated: AtomicU64::new(0),
            duplicated_reliable: AtomicU64::new(0),
            held: AtomicU64::new(0),
            crash_swallowed: AtomicU64::new(0),
        }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The machine the plan has crashed so far, if any.
    pub fn crashed_machine(&self) -> Option<MachineId> {
        if self.crashed.load(Ordering::Acquire) {
            self.plan.crash.map(|c| c.machine)
        } else {
            None
        }
    }

    pub fn counters(&self) -> FaultCounters {
        FaultCounters {
            dropped: self.dropped.load(Ordering::Relaxed),
            dropped_reliable: self.dropped_reliable.load(Ordering::Relaxed),
            duplicated: self.duplicated.load(Ordering::Relaxed),
            duplicated_reliable: self.duplicated_reliable.load(Ordering::Relaxed),
            held: self.held.load(Ordering::Relaxed),
            crash_swallowed: self.crash_swallowed.load(Ordering::Relaxed),
        }
    }

    #[inline]
    fn is_dead(&self, m: MachineId) -> bool {
        self.crashed.load(Ordering::Acquire) && self.plan.crash.map(|c| c.machine) == Some(m)
    }

    /// Runs one envelope through the fault schedule. Deliverable envelopes
    /// (possibly none, possibly several: duplicates and released limbo
    /// traffic) are appended to `out`.
    pub fn process(&self, env: Envelope, out: &mut Vec<Envelope>) {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);

        if let Some(c) = self.plan.crash {
            if n >= c.after_sends {
                self.crashed.store(true, Ordering::Release);
            }
        }
        if let Some(s) = self.plan.slow {
            if n >= s.after_sends && env.src == s.machine && s.extra_ns > 0 {
                let start = Instant::now();
                while (start.elapsed().as_nanos() as u64) < s.extra_ns {
                    std::hint::spin_loop();
                }
            }
        }

        // Release limbo traffic that has come due on the virtual clock.
        {
            let mut limbo = self.limbo.lock().unwrap_or_else(|e| e.into_inner());
            let mut i = 0;
            while i < limbo.len() {
                if limbo[i].0 <= n {
                    let (_, e) = limbo.swap_remove(i);
                    self.deliver(e, out);
                } else {
                    i += 1;
                }
            }
        }

        let h = mix(self.plan.seed, n);
        if (h % 1000) < self.plan.drop_per_mille as u64 {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            if env.kind.is_reliable() {
                self.dropped_reliable.fetch_add(1, Ordering::Relaxed);
            }
            return;
        }
        if ((h >> 10) % 1000) < self.plan.dup_per_mille as u64 {
            self.duplicated.fetch_add(1, Ordering::Relaxed);
            if env.kind.is_reliable() {
                self.duplicated_reliable.fetch_add(1, Ordering::Relaxed);
            }
            self.deliver(env.clone(), out);
            self.deliver(env, out);
            return;
        }
        if ((h >> 20) % 1000) < self.plan.reorder_per_mille as u64 {
            let hold = 1 + (h >> 40) % self.plan.reorder_depth.max(1) as u64;
            self.held.fetch_add(1, Ordering::Relaxed);
            self.limbo
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push((n + hold, env));
            return;
        }
        if ((h >> 30) % 1000) < self.plan.delay_per_mille as u64 {
            self.held.fetch_add(1, Ordering::Relaxed);
            self.limbo
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push((n + self.plan.delay_sends.max(1), env));
            return;
        }
        self.deliver(env, out);
    }

    /// Final delivery gate: a crashed machine neither sends nor receives.
    fn deliver(&self, env: Envelope, out: &mut Vec<Envelope>) {
        if self.is_dead(env.src) || self.is_dead(env.dst) {
            self.crash_swallowed.fetch_add(1, Ordering::Relaxed);
            return;
        }
        out.push(env);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MsgKind;

    fn env(src: MachineId, dst: MachineId) -> Envelope {
        Envelope {
            src,
            dst,
            kind: MsgKind::Write,
            worker: 0,
            side_id: 0,
            seq: 0,
            payload: Vec::new(),
        }
    }

    fn run_plan(plan: FaultPlan, sends: u64) -> (Vec<usize>, FaultCounters) {
        let inj = FaultInjector::new(plan);
        let mut deliveries = Vec::new();
        let mut out = Vec::new();
        for _ in 0..sends {
            out.clear();
            inj.process(env(0, 1), &mut out);
            deliveries.push(out.len());
        }
        (deliveries, inj.counters())
    }

    #[test]
    fn inert_plan_delivers_everything_once() {
        let (d, c) = run_plan(FaultPlan::none(), 500);
        assert!(d.iter().all(|&n| n == 1));
        assert_eq!(c, FaultCounters::default());
    }

    #[test]
    fn schedule_is_deterministic() {
        let plan = FaultPlan::lossy(42, 50, 50, 50);
        let (a, ca) = run_plan(plan, 1000);
        let (b, cb) = run_plan(plan, 1000);
        assert_eq!(a, b);
        assert_eq!(ca, cb);
        assert!(ca.dropped > 0 && ca.duplicated > 0 && ca.held > 0);
    }

    #[test]
    fn different_seeds_differ() {
        let (a, _) = run_plan(FaultPlan::lossy(1, 100, 0, 0), 1000);
        let (b, _) = run_plan(FaultPlan::lossy(2, 100, 0, 0), 1000);
        assert_ne!(a, b);
    }

    #[test]
    fn reordered_traffic_is_released_not_lost() {
        let mut plan = FaultPlan::lossy(7, 0, 0, 200);
        plan.reorder_depth = 4;
        let (d, c) = run_plan(plan, 2000);
        let delivered: usize = d.iter().sum();
        assert!(c.held > 0);
        // Only envelopes held within the last `reorder_depth` sends can
        // still sit in limbo; everything else must have been released.
        assert!(delivered >= 2000 - plan.reorder_depth as usize);
        assert_eq!(c.dropped, 0);
    }

    #[test]
    fn crash_partitions_both_directions() {
        let inj = FaultInjector::new(FaultPlan::crash(1, 3));
        let mut out = Vec::new();
        for i in 0..10u64 {
            out.clear();
            inj.process(env(0, 1), &mut out);
            if i < 3 {
                assert_eq!(out.len(), 1, "send {i} precedes the crash");
            } else {
                assert!(out.is_empty(), "send {i} follows the crash");
            }
        }
        // Traffic *from* the crashed machine is swallowed too.
        out.clear();
        inj.process(env(1, 0), &mut out);
        assert!(out.is_empty());
        // Unrelated pairs still communicate.
        out.clear();
        inj.process(env(0, 2), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(inj.crashed_machine(), Some(1));
        assert!(inj.counters().crash_swallowed >= 8);
    }
}
