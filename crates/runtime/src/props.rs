//! Column-oriented property storage (§3.3, §4.2).
//!
//! "Node and edge properties are represented in column-oriented ways.
//! Consequently, each property can be referenced as a separate entity, and
//! it is trivial to create or delete temporary properties."
//!
//! Every value is stored as 64 raw bits inside an `AtomicU64` cell so that
//! *plain* accesses (the worker-thread fast path) are relaxed loads/stores
//! while copier threads can apply remote reductions "directly with atomic
//! instructions" — a CAS loop generic over the value type.

use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identifier of a registered property on a machine/cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PropId(pub u16);

/// Value type of a property column, used by copiers to interpret raw bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum TypeTag {
    F64 = 0,
    I64 = 1,
    U64 = 2,
    U32 = 3,
    Bool = 4,
}

/// Reduction operators available for remote writes and ghost merging.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ReduceOp {
    /// Additive reduction (bottom = 0).
    Sum = 0,
    /// Minimum (bottom = type maximum).
    Min = 1,
    /// Maximum (bottom = type minimum).
    Max = 2,
    /// Logical/bitwise OR (bottom = false/0).
    Or = 3,
    /// Logical/bitwise AND (bottom = true/!0).
    And = 4,
    /// Plain overwrite, last writer wins (bottom = unchanged). Used for
    /// ghost pre-synchronization.
    Assign = 5,
}

impl ReduceOp {
    /// Wire encoding.
    pub fn to_u8(self) -> u8 {
        self as u8
    }

    /// Parses the wire encoding.
    pub fn from_u8(v: u8) -> Option<ReduceOp> {
        Some(match v {
            0 => ReduceOp::Sum,
            1 => ReduceOp::Min,
            2 => ReduceOp::Max,
            3 => ReduceOp::Or,
            4 => ReduceOp::And,
            5 => ReduceOp::Assign,
            _ => return None,
        })
    }
}

/// Applies `op` to raw bits according to the column type.
#[inline]
pub fn reduce_bits(tag: TypeTag, op: ReduceOp, cur: u64, new: u64) -> u64 {
    match tag {
        TypeTag::F64 => {
            let (a, b) = (f64::from_bits(cur), f64::from_bits(new));
            let r = match op {
                ReduceOp::Sum => a + b,
                ReduceOp::Min => a.min(b),
                ReduceOp::Max => a.max(b),
                ReduceOp::Or | ReduceOp::And => {
                    panic!("logical reduction on f64 property")
                }
                ReduceOp::Assign => b,
            };
            r.to_bits()
        }
        TypeTag::I64 => {
            let (a, b) = (cur as i64, new as i64);
            (match op {
                ReduceOp::Sum => a.wrapping_add(b),
                ReduceOp::Min => a.min(b),
                ReduceOp::Max => a.max(b),
                ReduceOp::Or => a | b,
                ReduceOp::And => a & b,
                ReduceOp::Assign => b,
            }) as u64
        }
        TypeTag::U64 => match op {
            ReduceOp::Sum => cur.wrapping_add(new),
            ReduceOp::Min => cur.min(new),
            ReduceOp::Max => cur.max(new),
            ReduceOp::Or => cur | new,
            ReduceOp::And => cur & new,
            ReduceOp::Assign => new,
        },
        TypeTag::U32 => {
            let (a, b) = (cur as u32, new as u32);
            (match op {
                ReduceOp::Sum => a.wrapping_add(b),
                ReduceOp::Min => a.min(b),
                ReduceOp::Max => a.max(b),
                ReduceOp::Or => a | b,
                ReduceOp::And => a & b,
                ReduceOp::Assign => b,
            }) as u64
        }
        TypeTag::Bool => {
            let (a, b) = (cur != 0, new != 0);
            (match op {
                ReduceOp::Or | ReduceOp::Sum => a || b,
                ReduceOp::And => a && b,
                ReduceOp::Min => a && b,
                ReduceOp::Max => a || b,
                ReduceOp::Assign => b,
            }) as u64
        }
    }
}

/// The identity ("bottom") value of `op` for the column type — what ghost
/// copies are initialized to before a reducing parallel region ("the
/// *bottom* value is set to each ghost copy at the beginning — e.g. 0 for
/// additive reduction").
#[inline]
pub fn bottom_bits(tag: TypeTag, op: ReduceOp) -> u64 {
    match tag {
        TypeTag::F64 => match op {
            ReduceOp::Sum => 0f64.to_bits(),
            ReduceOp::Min => f64::INFINITY.to_bits(),
            ReduceOp::Max => f64::NEG_INFINITY.to_bits(),
            ReduceOp::Or | ReduceOp::And => panic!("logical reduction on f64"),
            ReduceOp::Assign => 0,
        },
        TypeTag::I64 => match op {
            ReduceOp::Sum => 0,
            ReduceOp::Min => i64::MAX as u64,
            ReduceOp::Max => i64::MIN as u64,
            ReduceOp::Or => 0,
            ReduceOp::And => u64::MAX,
            ReduceOp::Assign => 0,
        },
        TypeTag::U64 => match op {
            ReduceOp::Sum => 0,
            ReduceOp::Min => u64::MAX,
            ReduceOp::Max => 0,
            ReduceOp::Or => 0,
            ReduceOp::And => u64::MAX,
            ReduceOp::Assign => 0,
        },
        TypeTag::U32 => match op {
            ReduceOp::Sum => 0,
            ReduceOp::Min => u32::MAX as u64,
            ReduceOp::Max => 0,
            ReduceOp::Or => 0,
            ReduceOp::And => u32::MAX as u64,
            ReduceOp::Assign => 0,
        },
        TypeTag::Bool => match op {
            ReduceOp::Sum | ReduceOp::Or | ReduceOp::Max => 0,
            ReduceOp::And | ReduceOp::Min => 1,
            ReduceOp::Assign => 0,
        },
    }
}

/// Types that can live in a property column (8-byte bit patterns).
pub trait PropValue: Copy + Send + Sync + 'static {
    /// The runtime tag matching this type.
    const TAG: TypeTag;
    /// Encodes to raw column bits.
    fn to_bits(self) -> u64;
    /// Decodes from raw column bits.
    fn from_bits(bits: u64) -> Self;
}

impl PropValue for f64 {
    const TAG: TypeTag = TypeTag::F64;
    fn to_bits(self) -> u64 {
        f64::to_bits(self)
    }
    fn from_bits(bits: u64) -> Self {
        f64::from_bits(bits)
    }
}

impl PropValue for i64 {
    const TAG: TypeTag = TypeTag::I64;
    fn to_bits(self) -> u64 {
        self as u64
    }
    fn from_bits(bits: u64) -> Self {
        bits as i64
    }
}

impl PropValue for u64 {
    const TAG: TypeTag = TypeTag::U64;
    fn to_bits(self) -> u64 {
        self
    }
    fn from_bits(bits: u64) -> Self {
        bits
    }
}

impl PropValue for u32 {
    const TAG: TypeTag = TypeTag::U32;
    fn to_bits(self) -> u64 {
        self as u64
    }
    fn from_bits(bits: u64) -> Self {
        bits as u32
    }
}

impl PropValue for bool {
    const TAG: TypeTag = TypeTag::Bool;
    fn to_bits(self) -> u64 {
        self as u64
    }
    fn from_bits(bits: u64) -> Self {
        bits != 0
    }
}

/// One property column on one machine: `len_local` owned cells followed by
/// `len_ghost` ghost cells.
#[derive(Debug)]
pub struct Column {
    tag: TypeTag,
    cells: Box<[AtomicU64]>,
    len_local: usize,
}

impl Column {
    /// Allocates a column of `len_local + len_ghost` cells filled with
    /// `default_bits`.
    pub fn new(tag: TypeTag, len_local: usize, len_ghost: usize, default_bits: u64) -> Self {
        let cells = (0..len_local + len_ghost)
            .map(|_| AtomicU64::new(default_bits))
            .collect();
        Column {
            tag,
            cells,
            len_local,
        }
    }

    /// Value type of the column.
    #[inline]
    pub fn tag(&self) -> TypeTag {
        self.tag
    }

    /// Owned (non-ghost) length.
    #[inline]
    pub fn len_local(&self) -> usize {
        self.len_local
    }

    /// Total length including ghost cells.
    #[inline]
    pub fn len_total(&self) -> usize {
        self.cells.len()
    }

    /// Plain (relaxed) load of raw bits.
    #[inline]
    pub fn load_bits(&self, i: usize) -> u64 {
        self.cells[i].load(Ordering::Relaxed)
    }

    /// Plain (relaxed) store of raw bits.
    #[inline]
    pub fn store_bits(&self, i: usize, bits: u64) {
        self.cells[i].store(bits, Ordering::Relaxed);
    }

    /// Typed load.
    #[inline]
    pub fn get<T: PropValue>(&self, i: usize) -> T {
        debug_assert_eq!(T::TAG, self.tag);
        T::from_bits(self.load_bits(i))
    }

    /// Typed store.
    #[inline]
    pub fn set<T: PropValue>(&self, i: usize, v: T) {
        debug_assert_eq!(T::TAG, self.tag);
        self.store_bits(i, v.to_bits());
    }

    /// Atomically reduces `bits` into cell `i` with `op` — the copier path
    /// for remote writes and the merge path for ghost privatization.
    #[inline]
    pub fn reduce_bits_atomic(&self, i: usize, op: ReduceOp, bits: u64) {
        if op == ReduceOp::Assign {
            self.cells[i].store(bits, Ordering::Relaxed);
            return;
        }
        let cell = &self.cells[i];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let next = reduce_bits(self.tag, op, cur, bits);
            if next == cur {
                // Idempotent under the current value (e.g. Min with a larger
                // candidate): nothing to write.
                return;
            }
            match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Fills every cell (local + ghost) with `bits`.
    pub fn fill(&self, bits: u64) {
        for c in self.cells.iter() {
            c.store(bits, Ordering::Relaxed);
        }
    }

    /// Fills only the ghost region with `bits` (bottom-initialization).
    pub fn fill_ghosts(&self, bits: u64) {
        for c in self.cells[self.len_local..].iter() {
            c.store(bits, Ordering::Relaxed);
        }
    }
}

/// Metadata + column for one registered property.
#[derive(Debug)]
pub struct PropEntry {
    /// Human-readable name (diagnostics only).
    pub name: String,
    /// Default value bits used when (re)filling.
    pub default_bits: u64,
    /// The storage column.
    pub column: Arc<Column>,
}

/// All properties of one machine. Registration happens on the driver
/// thread between parallel regions; worker/copier threads only read the
/// registry (and cache `Arc<Column>` handles), so a `RwLock` suffices.
#[derive(Debug)]
pub struct PropertyStore {
    len_local: usize,
    len_ghost: usize,
    entries: RwLock<Vec<Option<Arc<PropEntry>>>>,
}

impl PropertyStore {
    /// Creates an empty store for a machine owning `len_local` nodes with
    /// `len_ghost` ghost slots.
    pub fn new(len_local: usize, len_ghost: usize) -> Self {
        PropertyStore {
            len_local,
            len_ghost,
            entries: RwLock::new(Vec::new()),
        }
    }

    /// Owned node count.
    pub fn len_local(&self) -> usize {
        self.len_local
    }

    /// Ghost slot count.
    pub fn len_ghost(&self) -> usize {
        self.len_ghost
    }

    /// Registers a property at an explicit id (the cluster driver assigns
    /// the same id on every machine). Panics if the id is already taken.
    pub fn register_at(&self, id: PropId, name: &str, tag: TypeTag, default_bits: u64) {
        let mut entries = self.entries.write();
        let idx = id.0 as usize;
        if entries.len() <= idx {
            entries.resize_with(idx + 1, || None);
        }
        assert!(entries[idx].is_none(), "property id {id:?} already in use");
        entries[idx] = Some(Arc::new(PropEntry {
            name: name.to_string(),
            default_bits,
            column: Arc::new(Column::new(
                tag,
                self.len_local,
                self.len_ghost,
                default_bits,
            )),
        }));
    }

    /// Drops a property ("it is trivial to create or delete temporary
    /// properties"). The id is never reused.
    pub fn drop_prop(&self, id: PropId) {
        let mut entries = self.entries.write();
        let idx = id.0 as usize;
        if idx < entries.len() {
            entries[idx] = None;
        }
    }

    /// Looks up a property's column.
    pub fn column(&self, id: PropId) -> Arc<Column> {
        self.entry(id).column.clone()
    }

    /// Looks up a property's column, returning `None` when the id was
    /// never registered or the property has been dropped. Copiers use this
    /// so a stale or duplicated request surfaces as a structured error
    /// instead of a panic.
    pub fn try_column(&self, id: PropId) -> Option<Arc<Column>> {
        self.entries
            .read()
            .get(id.0 as usize)?
            .as_ref()
            .map(|e| e.column.clone())
    }

    /// Looks up a property's full entry.
    pub fn entry(&self, id: PropId) -> Arc<PropEntry> {
        self.entries.read()[id.0 as usize]
            .as_ref()
            .expect("property not registered")
            .clone()
    }

    /// Every live property with its id, in id order — the checkpoint
    /// module's enumeration of what must be snapshotted.
    pub fn live(&self) -> Vec<(PropId, Arc<PropEntry>)> {
        self.entries
            .read()
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|e| (PropId(i as u16), e.clone())))
            .collect()
    }

    /// True if the id maps to a live property.
    pub fn exists(&self, id: PropId) -> bool {
        let entries = self.entries.read();
        (id.0 as usize) < entries.len() && entries[id.0 as usize].is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_op_wire_roundtrip() {
        for v in 0..6u8 {
            assert_eq!(ReduceOp::from_u8(v).unwrap().to_u8(), v);
        }
        assert!(ReduceOp::from_u8(42).is_none());
    }

    #[test]
    fn reduce_bits_f64() {
        let s = reduce_bits(
            TypeTag::F64,
            ReduceOp::Sum,
            1.5f64.to_bits(),
            2.25f64.to_bits(),
        );
        assert_eq!(f64::from_bits(s), 3.75);
        let m = reduce_bits(
            TypeTag::F64,
            ReduceOp::Min,
            5.0f64.to_bits(),
            3.0f64.to_bits(),
        );
        assert_eq!(f64::from_bits(m), 3.0);
    }

    #[test]
    fn reduce_bits_i64_negative() {
        let s = reduce_bits(TypeTag::I64, ReduceOp::Sum, (-5i64) as u64, 3u64);
        assert_eq!(s as i64, -2);
        let m = reduce_bits(TypeTag::I64, ReduceOp::Min, (-5i64) as u64, 3u64);
        assert_eq!(m as i64, -5);
        let x = reduce_bits(TypeTag::I64, ReduceOp::Max, (-5i64) as u64, 3u64);
        assert_eq!(x as i64, 3);
    }

    #[test]
    fn reduce_bits_bool() {
        assert_eq!(reduce_bits(TypeTag::Bool, ReduceOp::Or, 0, 1), 1);
        assert_eq!(reduce_bits(TypeTag::Bool, ReduceOp::And, 1, 0), 0);
        assert_eq!(reduce_bits(TypeTag::Bool, ReduceOp::Assign, 1, 0), 0);
    }

    #[test]
    fn bottom_values() {
        assert_eq!(
            f64::from_bits(bottom_bits(TypeTag::F64, ReduceOp::Sum)),
            0.0
        );
        assert_eq!(
            f64::from_bits(bottom_bits(TypeTag::F64, ReduceOp::Min)),
            f64::INFINITY
        );
        assert_eq!(bottom_bits(TypeTag::I64, ReduceOp::Min) as i64, i64::MAX);
        assert_eq!(bottom_bits(TypeTag::Bool, ReduceOp::And), 1);
        // bottom is the identity: reduce(bottom, x) == x
        for op in [ReduceOp::Sum, ReduceOp::Min, ReduceOp::Max] {
            let b = bottom_bits(TypeTag::F64, op);
            let x = 12.5f64.to_bits();
            assert_eq!(reduce_bits(TypeTag::F64, op, b, x), x, "{op:?}");
        }
    }

    #[test]
    fn prop_value_roundtrip() {
        assert_eq!(f64::from_bits(PropValue::to_bits(-1.25f64)), -1.25);
        assert_eq!(i64::from_bits((-7i64).to_bits()), -7);
        assert_eq!(u32::from_bits(9u32.to_bits()), 9);
        assert!(bool::from_bits(true.to_bits()));
        assert!(!bool::from_bits(false.to_bits()));
    }

    #[test]
    fn column_basic() {
        let c = Column::new(TypeTag::F64, 4, 2, 1.0f64.to_bits());
        assert_eq!(c.len_local(), 4);
        assert_eq!(c.len_total(), 6);
        assert_eq!(c.get::<f64>(0), 1.0);
        c.set(1, 2.5f64);
        assert_eq!(c.get::<f64>(1), 2.5);
    }

    #[test]
    fn column_atomic_reduce() {
        let c = Column::new(TypeTag::I64, 1, 0, 0);
        c.reduce_bits_atomic(0, ReduceOp::Sum, 5u64);
        c.reduce_bits_atomic(0, ReduceOp::Sum, 7u64);
        assert_eq!(c.get::<i64>(0), 12);
        c.reduce_bits_atomic(0, ReduceOp::Min, 3u64);
        assert_eq!(c.get::<i64>(0), 3);
        // No-op reduction (Min with larger value) leaves cell untouched.
        c.reduce_bits_atomic(0, ReduceOp::Min, 100u64);
        assert_eq!(c.get::<i64>(0), 3);
    }

    #[test]
    fn column_concurrent_sum() {
        let c = Arc::new(Column::new(TypeTag::I64, 1, 0, 0));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.reduce_bits_atomic(0, ReduceOp::Sum, 1u64);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get::<i64>(0), 4000);
    }

    #[test]
    fn fill_ghosts_only_touches_ghost_region() {
        let c = Column::new(TypeTag::U64, 2, 2, 7);
        c.fill_ghosts(0);
        assert_eq!(c.load_bits(0), 7);
        assert_eq!(c.load_bits(1), 7);
        assert_eq!(c.load_bits(2), 0);
        assert_eq!(c.load_bits(3), 0);
    }

    #[test]
    fn store_register_and_drop() {
        let s = PropertyStore::new(10, 3);
        s.register_at(PropId(0), "pr", TypeTag::F64, 0.5f64.to_bits());
        s.register_at(PropId(1), "dist", TypeTag::I64, 0);
        assert!(s.exists(PropId(0)));
        let c = s.column(PropId(0));
        assert_eq!(c.len_total(), 13);
        assert_eq!(c.get::<f64>(5), 0.5);
        s.drop_prop(PropId(0));
        assert!(!s.exists(PropId(0)));
        assert!(s.exists(PropId(1)));
    }

    #[test]
    #[should_panic(expected = "already in use")]
    fn double_register_panics() {
        let s = PropertyStore::new(1, 0);
        s.register_at(PropId(0), "a", TypeTag::U64, 0);
        s.register_at(PropId(0), "b", TypeTag::U64, 0);
    }
}
