//! Barrier-consistent checkpoint/restore of distributed job state.
//!
//! The RTC execution model keeps *all* mutable job state in vertex-property
//! columns that are synchronized at phase barriers (§3.1): between two
//! `try_run_*` calls the cluster is quiescent — the pending-entry counter
//! has drained to zero and no worker holds an in-flight read or write. A
//! snapshot taken at that point can therefore never observe a torn update;
//! this is the whole consistency argument, and it is why checkpointing
//! needs no stop-the-world machinery of its own.
//!
//! Layout mirrors what a real deployment would persist per node: each
//! machine owns a [`CheckpointStore`] holding its latest
//! [`MachineCheckpoint`] — one [`PropShard`] (owned cells + ghost replicas,
//! FNV-1a checksummed) per live property. The driver additionally keeps the
//! assembled cluster-wide [`Checkpoint`], which bundles every machine's
//! shards with the [`JobProgress`] (iteration index + algorithm scalars)
//! needed to resume. Because partitions are contiguous vertex ranges, a
//! checkpoint taken on `P` machines can be *re-scattered* onto a degraded
//! `P−1`-machine cluster: [`Checkpoint::global_bits`] reassembles the
//! global column from the per-machine shards, and
//! [`Cluster::restore_checkpoint`](crate::cluster::Cluster::restore_checkpoint)
//! redistributes it under the survivors' new partitioning.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::health::JobError;
use crate::ids::MachineId;
use crate::props::{PropId, TypeTag};
use pgxd_graph::NodeId;

/// FNV-1a over a word stream; cheap, dependency-free, and sensitive to
/// both value and position — exactly what shard integrity needs.
pub fn fnv1a_words<I: IntoIterator<Item = u64>>(words: I) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for shift in [0u32, 8, 16, 24, 32, 40, 48, 56] {
            h ^= (w >> shift) & 0xff;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Identity of one property at snapshot time, used on restore to re-bind
/// shards to the (re-registered) columns of a fresh cluster and to reject
/// mismatched layouts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PropMeta {
    pub id: PropId,
    pub name: String,
    pub tag: TypeTag,
    pub default_bits: u64,
}

/// One property's cells on one machine: the owned (partition-local) region
/// followed by the ghost-replica region, checksummed together.
#[derive(Clone, Debug)]
pub struct PropShard {
    pub id: PropId,
    /// Raw bits of the machine's owned cells, in partition order.
    pub owned: Vec<u64>,
    /// Raw bits of the machine's ghost replicas, in ghost-ordinal order.
    pub ghost: Vec<u64>,
    /// FNV-1a over `owned` then `ghost`.
    pub checksum: u64,
}

impl PropShard {
    pub fn new(id: PropId, owned: Vec<u64>, ghost: Vec<u64>) -> Self {
        let checksum = Self::compute(&owned, &ghost);
        PropShard {
            id,
            owned,
            ghost,
            checksum,
        }
    }

    fn compute(owned: &[u64], ghost: &[u64]) -> u64 {
        fnv1a_words(owned.iter().chain(ghost.iter()).copied())
    }

    /// Recomputes the checksum against the stored one.
    pub fn verify(&self) -> bool {
        Self::compute(&self.owned, &self.ghost) == self.checksum
    }

    /// Payload size of this shard.
    pub fn bytes(&self) -> usize {
        (self.owned.len() + self.ghost.len()) * 8
    }
}

/// Everything one machine contributes to a checkpoint.
#[derive(Clone, Debug)]
pub struct MachineCheckpoint {
    pub machine: MachineId,
    /// Global id of this machine's first owned vertex at snapshot time
    /// (partitions are contiguous ranges, so `start` + shard length fully
    /// describe the owned range).
    pub start: NodeId,
    pub shards: Vec<PropShard>,
}

impl MachineCheckpoint {
    /// Total payload bytes across shards.
    pub fn bytes(&self) -> usize {
        self.shards.iter().map(|s| s.bytes()).sum()
    }

    /// Owned-cell count (uniform across shards).
    pub fn owned_len(&self) -> usize {
        self.shards.first().map_or(0, |s| s.owned.len())
    }
}

/// Where the job was when the snapshot was taken.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JobProgress {
    /// Completed algorithm iterations.
    pub iteration: u64,
    /// Cluster phase counter at snapshot time (diagnostics).
    pub phase_epoch: u64,
    /// Opaque algorithm scalars (RNG states, accumulated deltas, ...),
    /// round-tripped verbatim by the recovery driver.
    pub scalars: Vec<u64>,
}

/// A complete, driver-assembled cluster checkpoint.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// Monotone sequence number within the cluster's lifetime.
    pub seq: u64,
    /// Global vertex count the shards tile.
    pub num_nodes: usize,
    pub progress: JobProgress,
    pub props: Vec<PropMeta>,
    pub machines: Vec<Arc<MachineCheckpoint>>,
}

impl Checkpoint {
    /// Total payload bytes.
    pub fn bytes(&self) -> usize {
        self.machines.iter().map(|m| m.bytes()).sum()
    }

    /// Verifies every shard checksum and that the owned regions exactly
    /// tile `[0, num_nodes)`.
    pub fn verify(&self) -> Result<(), JobError> {
        let mut covered = 0usize;
        for mc in &self.machines {
            if mc.start as usize != covered {
                return Err(JobError::CheckpointCorrupt(format!(
                    "machine {} shard starts at {} but {} nodes are covered",
                    mc.machine, mc.start, covered
                )));
            }
            if mc.shards.len() != self.props.len() {
                return Err(JobError::CheckpointCorrupt(format!(
                    "machine {} has {} shards for {} properties",
                    mc.machine,
                    mc.shards.len(),
                    self.props.len()
                )));
            }
            let owned_len = mc.owned_len();
            for (shard, meta) in mc.shards.iter().zip(&self.props) {
                if shard.id != meta.id {
                    return Err(JobError::CheckpointCorrupt(format!(
                        "machine {} shard id {:?} does not match meta {:?}",
                        mc.machine, shard.id, meta.id
                    )));
                }
                if shard.owned.len() != owned_len {
                    return Err(JobError::CheckpointCorrupt(format!(
                        "machine {} shard {:?} owned length mismatch",
                        mc.machine, shard.id
                    )));
                }
                if !shard.verify() {
                    return Err(JobError::CheckpointCorrupt(format!(
                        "machine {} shard {:?} failed its checksum",
                        mc.machine, shard.id
                    )));
                }
            }
            covered += owned_len;
        }
        if covered != self.num_nodes {
            return Err(JobError::CheckpointCorrupt(format!(
                "shards cover {} of {} nodes",
                covered, self.num_nodes
            )));
        }
        Ok(())
    }

    /// Reassembles one property's global column (owned cells only) from the
    /// per-machine shards — the input to degraded-mode re-scattering.
    pub fn global_bits(&self, id: PropId) -> Result<Vec<u64>, JobError> {
        let mut out = Vec::with_capacity(self.num_nodes);
        for mc in &self.machines {
            let shard = mc.shards.iter().find(|s| s.id == id).ok_or_else(|| {
                JobError::CheckpointCorrupt(format!(
                    "machine {} is missing a shard for {:?}",
                    mc.machine, id
                ))
            })?;
            out.extend_from_slice(&shard.owned);
        }
        if out.len() != self.num_nodes {
            return Err(JobError::CheckpointCorrupt(format!(
                "property {:?} shards cover {} of {} nodes",
                id,
                out.len(),
                self.num_nodes
            )));
        }
        Ok(out)
    }
}

/// One machine's durable checkpoint slot (the stand-in for a per-node
/// local store in a real deployment). Holds only the latest complete
/// snapshot — checkpointing is for resume, not time travel.
#[derive(Debug, Default)]
pub struct CheckpointStore {
    latest: Mutex<Option<(u64, Arc<MachineCheckpoint>)>>,
    saved: AtomicU64,
    bytes: AtomicU64,
}

impl CheckpointStore {
    pub fn new() -> Self {
        CheckpointStore::default()
    }

    /// Replaces the stored snapshot with `mc` (sequence `seq`).
    pub fn save(&self, seq: u64, mc: Arc<MachineCheckpoint>) {
        self.bytes.fetch_add(mc.bytes() as u64, Ordering::Relaxed);
        self.saved.fetch_add(1, Ordering::Relaxed);
        *self.latest.lock().unwrap_or_else(|e| e.into_inner()) = Some((seq, mc));
    }

    /// The latest snapshot, if any, with its sequence number.
    pub fn latest(&self) -> Option<(u64, Arc<MachineCheckpoint>)> {
        self.latest
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Snapshots saved over the store's lifetime.
    pub fn saved(&self) -> u64 {
        self.saved.load(Ordering::Relaxed)
    }

    /// Cumulative payload bytes saved.
    pub fn bytes_saved(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    pub fn clear(&self) {
        *self.latest.lock().unwrap_or_else(|e| e.into_inner()) = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(id: u16, owned: Vec<u64>, ghost: Vec<u64>) -> PropShard {
        PropShard::new(PropId(id), owned, ghost)
    }

    fn meta(id: u16) -> PropMeta {
        PropMeta {
            id: PropId(id),
            name: format!("p{id}"),
            tag: TypeTag::U64,
            default_bits: 0,
        }
    }

    fn two_machine_ckpt() -> Checkpoint {
        Checkpoint {
            seq: 1,
            num_nodes: 5,
            progress: JobProgress {
                iteration: 3,
                phase_epoch: 9,
                scalars: vec![7, 8],
            },
            props: vec![meta(0)],
            machines: vec![
                Arc::new(MachineCheckpoint {
                    machine: 0,
                    start: 0,
                    shards: vec![shard(0, vec![10, 11, 12], vec![99])],
                }),
                Arc::new(MachineCheckpoint {
                    machine: 1,
                    start: 3,
                    shards: vec![shard(0, vec![13, 14], vec![98])],
                }),
            ],
        }
    }

    #[test]
    fn checksum_detects_corruption() {
        let mut s = shard(0, vec![1, 2, 3], vec![4]);
        assert!(s.verify());
        s.owned[1] ^= 1;
        assert!(!s.verify());
        // Position sensitivity: swapping equal-sum words changes the hash.
        let a = shard(0, vec![1, 2], vec![]);
        let b = shard(0, vec![2, 1], vec![]);
        assert_ne!(a.checksum, b.checksum);
    }

    #[test]
    fn verify_accepts_well_formed() {
        let c = two_machine_ckpt();
        assert!(c.verify().is_ok());
        assert_eq!(c.bytes(), 7 * 8);
    }

    #[test]
    fn verify_rejects_tampered_shard() {
        let mut c = two_machine_ckpt();
        let mut mc = (*c.machines[0]).clone();
        mc.shards[0].owned[0] = 999;
        c.machines[0] = Arc::new(mc);
        let err = c.verify().unwrap_err();
        assert!(matches!(err, JobError::CheckpointCorrupt(_)), "{err}");
    }

    #[test]
    fn verify_rejects_gap_in_tiling() {
        let mut c = two_machine_ckpt();
        let mut mc = (*c.machines[1]).clone();
        mc.start = 4;
        c.machines[1] = Arc::new(mc);
        assert!(c.verify().is_err());
    }

    #[test]
    fn global_bits_reassembles_in_order() {
        let c = two_machine_ckpt();
        assert_eq!(c.global_bits(PropId(0)).unwrap(), vec![10, 11, 12, 13, 14]);
        assert!(c.global_bits(PropId(5)).is_err());
    }

    #[test]
    fn store_keeps_latest_and_counts() {
        let store = CheckpointStore::new();
        assert!(store.latest().is_none());
        let mc = Arc::new(MachineCheckpoint {
            machine: 0,
            start: 0,
            shards: vec![shard(0, vec![1, 2], vec![])],
        });
        store.save(1, mc.clone());
        store.save(2, mc);
        let (seq, got) = store.latest().unwrap();
        assert_eq!(seq, 2);
        assert_eq!(got.machine, 0);
        assert_eq!(store.saved(), 2);
        assert_eq!(store.bytes_saved(), 2 * 16);
        store.clear();
        assert!(store.latest().is_none());
    }
}
