//! Barrier-consistent checkpoint/restore of distributed job state.
//!
//! The RTC execution model keeps *all* mutable job state in vertex-property
//! columns that are synchronized at phase barriers (§3.1): between two
//! `try_run_*` calls the cluster is quiescent — the pending-entry counter
//! has drained to zero and no worker holds an in-flight read or write. A
//! snapshot taken at that point can therefore never observe a torn update;
//! this is the whole consistency argument, and it is why checkpointing
//! needs no stop-the-world machinery of its own.
//!
//! Layout mirrors what a real deployment would persist per node: each
//! machine owns a [`CheckpointStore`] holding a small *retention ring* of
//! recent [`MachineCheckpoint`]s — one [`PropShard`] (owned cells + ghost
//! replicas, FNV-1a checksummed) per live property. The store is also where
//! storage faults live: a seeded [`StorageFaultPlan`] can lose, corrupt, or
//! delay individual shard writes, and the driver finds out the same way a
//! real deployment would — by reading back what the store durably holds and
//! verifying checksums at restore time. The driver additionally keeps the
//! assembled cluster-wide [`Checkpoint`], which bundles every machine's
//! shards with the [`JobProgress`] (iteration index + algorithm scalars)
//! needed to resume. Because partitions are contiguous vertex ranges, a
//! checkpoint taken on `P` machines can be *re-scattered* onto a degraded
//! `P−1`-machine cluster: [`Checkpoint::global_bits`] reassembles the
//! global column from the per-machine shards, and
//! [`Cluster::restore_checkpoint`](crate::cluster::Cluster::restore_checkpoint)
//! redistributes it under the survivors' new partitioning.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::config::{StorageFaultKind, StorageFaultPlan};
use crate::fault::mix;
use crate::health::JobError;
use crate::ids::MachineId;
use crate::props::{PropId, TypeTag};
use pgxd_graph::NodeId;

/// FNV-1a over a word stream; cheap, dependency-free, and sensitive to
/// both value and position — exactly what shard integrity needs.
pub fn fnv1a_words<I: IntoIterator<Item = u64>>(words: I) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for shift in [0u32, 8, 16, 24, 32, 40, 48, 56] {
            h ^= (w >> shift) & 0xff;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Identity of one property at snapshot time, used on restore to re-bind
/// shards to the (re-registered) columns of a fresh cluster and to reject
/// mismatched layouts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PropMeta {
    pub id: PropId,
    pub name: String,
    pub tag: TypeTag,
    pub default_bits: u64,
}

/// One property's cells on one machine: the owned (partition-local) region
/// followed by the ghost-replica region, checksummed together.
#[derive(Clone, Debug)]
pub struct PropShard {
    pub id: PropId,
    /// Raw bits of the machine's owned cells, in partition order.
    pub owned: Vec<u64>,
    /// Raw bits of the machine's ghost replicas, in ghost-ordinal order.
    pub ghost: Vec<u64>,
    /// FNV-1a over `owned` then `ghost`.
    pub checksum: u64,
}

impl PropShard {
    pub fn new(id: PropId, owned: Vec<u64>, ghost: Vec<u64>) -> Self {
        let checksum = Self::compute(&owned, &ghost);
        PropShard {
            id,
            owned,
            ghost,
            checksum,
        }
    }

    fn compute(owned: &[u64], ghost: &[u64]) -> u64 {
        fnv1a_words(owned.iter().chain(ghost.iter()).copied())
    }

    /// Recomputes the checksum against the stored one.
    pub fn verify(&self) -> bool {
        Self::compute(&self.owned, &self.ghost) == self.checksum
    }

    /// Payload size of this shard.
    pub fn bytes(&self) -> usize {
        (self.owned.len() + self.ghost.len()) * 8
    }
}

/// Everything one machine contributes to a checkpoint.
#[derive(Clone, Debug)]
pub struct MachineCheckpoint {
    pub machine: MachineId,
    /// Global id of this machine's first owned vertex at snapshot time
    /// (partitions are contiguous ranges, so `start` + shard length fully
    /// describe the owned range).
    pub start: NodeId,
    pub shards: Vec<PropShard>,
}

impl MachineCheckpoint {
    /// Total payload bytes across shards.
    pub fn bytes(&self) -> usize {
        self.shards.iter().map(|s| s.bytes()).sum()
    }

    /// Owned-cell count (uniform across shards).
    pub fn owned_len(&self) -> usize {
        self.shards.first().map_or(0, |s| s.owned.len())
    }
}

/// Where the job was when the snapshot was taken.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JobProgress {
    /// Completed algorithm iterations.
    pub iteration: u64,
    /// Cluster phase counter at snapshot time (diagnostics).
    pub phase_epoch: u64,
    /// Opaque algorithm scalars (RNG states, accumulated deltas, ...),
    /// round-tripped verbatim by the recovery driver.
    pub scalars: Vec<u64>,
}

/// A complete, driver-assembled cluster checkpoint.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// Monotone sequence number within the cluster's lifetime.
    pub seq: u64,
    /// Global vertex count the shards tile.
    pub num_nodes: usize,
    pub progress: JobProgress,
    pub props: Vec<PropMeta>,
    pub machines: Vec<Arc<MachineCheckpoint>>,
}

impl Checkpoint {
    /// Total payload bytes.
    pub fn bytes(&self) -> usize {
        self.machines.iter().map(|m| m.bytes()).sum()
    }

    /// Verifies every shard checksum and that the owned regions exactly
    /// tile `[0, num_nodes)`.
    pub fn verify(&self) -> Result<(), JobError> {
        let mut covered = 0usize;
        for mc in &self.machines {
            if mc.start as usize != covered {
                return Err(JobError::CheckpointCorrupt(format!(
                    "machine {} shard starts at {} but {} nodes are covered",
                    mc.machine, mc.start, covered
                )));
            }
            if mc.shards.len() != self.props.len() {
                return Err(JobError::CheckpointCorrupt(format!(
                    "machine {} has {} shards for {} properties",
                    mc.machine,
                    mc.shards.len(),
                    self.props.len()
                )));
            }
            let owned_len = mc.owned_len();
            for (shard, meta) in mc.shards.iter().zip(&self.props) {
                if shard.id != meta.id {
                    return Err(JobError::CheckpointCorrupt(format!(
                        "machine {} shard id {:?} does not match meta {:?}",
                        mc.machine, shard.id, meta.id
                    )));
                }
                if shard.owned.len() != owned_len {
                    return Err(JobError::CheckpointCorrupt(format!(
                        "machine {} shard {:?} owned length mismatch",
                        mc.machine, shard.id
                    )));
                }
                if !shard.verify() {
                    return Err(JobError::CheckpointCorrupt(format!(
                        "machine {} shard {:?} failed its checksum",
                        mc.machine, shard.id
                    )));
                }
            }
            covered += owned_len;
        }
        if covered != self.num_nodes {
            return Err(JobError::CheckpointCorrupt(format!(
                "shards cover {} of {} nodes",
                covered, self.num_nodes
            )));
        }
        Ok(())
    }

    /// Reassembles one property's global column (owned cells only) from the
    /// per-machine shards — the input to degraded-mode re-scattering.
    pub fn global_bits(&self, id: PropId) -> Result<Vec<u64>, JobError> {
        let mut out = Vec::with_capacity(self.num_nodes);
        for mc in &self.machines {
            let shard = mc.shards.iter().find(|s| s.id == id).ok_or_else(|| {
                JobError::CheckpointCorrupt(format!(
                    "machine {} is missing a shard for {:?}",
                    mc.machine, id
                ))
            })?;
            out.extend_from_slice(&shard.owned);
        }
        if out.len() != self.num_nodes {
            return Err(JobError::CheckpointCorrupt(format!(
                "property {:?} shards cover {} of {} nodes",
                id,
                out.len(),
                self.num_nodes
            )));
        }
        Ok(out)
    }
}

/// What happened to one [`CheckpointStore::save`] call once the storage
/// fault dice were rolled. The caller (the cluster's checkpoint path) turns
/// these into telemetry counters; the store itself stays a dumb device.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SaveOutcome {
    /// Durably written into the retention ring.
    Stored,
    /// Silently dropped — the write never reached the ring.
    Lost,
    /// Written, but with one bit flipped and the *stale* checksum kept, so
    /// restore-time verification fails the shard.
    Corrupted,
    /// Parked in a one-deep write-behind slot; it commits to the ring when
    /// the *next* save arrives (or never, if none does).
    Delayed,
}

/// One machine's durable checkpoint device (the stand-in for a per-node
/// local store in a real deployment). Keeps a small retention ring of the
/// most recent snapshots — newest first, bounded by `retain` — so the
/// recovery driver can fall back to an older sequence when the newest one
/// turns out to be corrupt or incomplete.
///
/// A seeded [`StorageFaultPlan`] injects faults *inside* the store, at the
/// point a real disk or object store would fail: saves can be lost,
/// bit-flipped (keeping the stale checksum), or delayed into a write-behind
/// slot. Fault decisions are a pure function of `(plan.seed, save counter)`,
/// so a given configuration misbehaves identically on every run.
#[derive(Debug)]
pub struct CheckpointStore {
    retain: usize,
    plan: StorageFaultPlan,
    state: Mutex<StoreState>,
    saved: AtomicU64,
    bytes: AtomicU64,
}

#[derive(Debug, Default)]
struct StoreState {
    /// Retained snapshots, newest at the front.
    ring: VecDeque<(u64, Arc<MachineCheckpoint>)>,
    /// Write-behind slot for a delayed save; commits at the next save.
    pending: Option<(u64, Arc<MachineCheckpoint>)>,
    /// Monotone save counter indexing the fault dice.
    counter: u64,
}

impl Default for CheckpointStore {
    fn default() -> Self {
        CheckpointStore::new()
    }
}

impl CheckpointStore {
    /// A fault-free store retaining the two most recent snapshots.
    pub fn new() -> Self {
        CheckpointStore::with_plan(2, StorageFaultPlan::none())
    }

    /// A store retaining `retain` snapshots under the given fault plan.
    pub fn with_plan(retain: usize, plan: StorageFaultPlan) -> Self {
        CheckpointStore {
            retain: retain.max(1),
            plan,
            state: Mutex::new(StoreState::default()),
            saved: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Writes `mc` (sequence `seq`) through the fault plan and reports what
    /// the storage layer actually did with it. Any delayed predecessor
    /// commits to the ring first, so delayed data is stale-but-valid, never
    /// torn.
    pub fn save(&self, seq: u64, mc: Arc<MachineCheckpoint>) -> SaveOutcome {
        self.bytes.fetch_add(mc.bytes() as u64, Ordering::Relaxed);
        self.saved.fetch_add(1, Ordering::Relaxed);
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        // A delayed write-behind commits as soon as the next save arrives.
        if let Some((pseq, pmc)) = st.pending.take() {
            Self::commit(&mut st.ring, self.retain, pseq, pmc);
        }
        let n = st.counter;
        st.counter += 1;
        match self.plan.draw(n) {
            StorageFaultKind::Lose => SaveOutcome::Lost,
            StorageFaultKind::Corrupt => {
                let tampered = Self::tamper(&mc, mix(self.plan.seed, n));
                Self::commit(&mut st.ring, self.retain, seq, tampered);
                SaveOutcome::Corrupted
            }
            StorageFaultKind::Delay => {
                st.pending = Some((seq, mc));
                SaveOutcome::Delayed
            }
            StorageFaultKind::Store => {
                Self::commit(&mut st.ring, self.retain, seq, mc);
                SaveOutcome::Stored
            }
        }
    }

    fn commit(
        ring: &mut VecDeque<(u64, Arc<MachineCheckpoint>)>,
        retain: usize,
        seq: u64,
        mc: Arc<MachineCheckpoint>,
    ) {
        ring.push_front((seq, mc));
        ring.truncate(retain);
    }

    /// Flips one bit in the first non-empty owned region while keeping the
    /// now-stale checksum, so the damage is invisible until a restore-time
    /// [`PropShard::verify`].
    fn tamper(mc: &Arc<MachineCheckpoint>, h: u64) -> Arc<MachineCheckpoint> {
        let mut copy = (**mc).clone();
        if let Some(shard) = copy.shards.iter_mut().find(|s| !s.owned.is_empty()) {
            let word = ((h >> 30) as usize) % shard.owned.len();
            let bit = (h >> 40) % 64;
            shard.owned[word] ^= 1u64 << bit;
        }
        Arc::new(copy)
    }

    /// What the store durably holds for sequence `seq`. Lost and
    /// still-delayed saves return `None`; a corrupted save returns the
    /// tampered shards (detection is the reader's job, via checksums).
    pub fn get(&self, seq: u64) -> Option<Arc<MachineCheckpoint>> {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .ring
            .iter()
            .find(|(s, _)| *s == seq)
            .map(|(_, mc)| mc.clone())
    }

    /// The newest retained snapshot, if any, with its sequence number.
    pub fn latest(&self) -> Option<(u64, Arc<MachineCheckpoint>)> {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .ring
            .front()
            .cloned()
    }

    /// Snapshots currently held in the retention ring.
    pub fn retained(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .ring
            .len()
    }

    /// Save attempts over the store's lifetime (including lost/delayed).
    pub fn saved(&self) -> u64 {
        self.saved.load(Ordering::Relaxed)
    }

    /// Cumulative payload bytes offered to the store.
    pub fn bytes_saved(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    pub fn clear(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.ring.clear();
        st.pending = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(id: u16, owned: Vec<u64>, ghost: Vec<u64>) -> PropShard {
        PropShard::new(PropId(id), owned, ghost)
    }

    fn meta(id: u16) -> PropMeta {
        PropMeta {
            id: PropId(id),
            name: format!("p{id}"),
            tag: TypeTag::U64,
            default_bits: 0,
        }
    }

    fn two_machine_ckpt() -> Checkpoint {
        Checkpoint {
            seq: 1,
            num_nodes: 5,
            progress: JobProgress {
                iteration: 3,
                phase_epoch: 9,
                scalars: vec![7, 8],
            },
            props: vec![meta(0)],
            machines: vec![
                Arc::new(MachineCheckpoint {
                    machine: 0,
                    start: 0,
                    shards: vec![shard(0, vec![10, 11, 12], vec![99])],
                }),
                Arc::new(MachineCheckpoint {
                    machine: 1,
                    start: 3,
                    shards: vec![shard(0, vec![13, 14], vec![98])],
                }),
            ],
        }
    }

    #[test]
    fn checksum_detects_corruption() {
        let mut s = shard(0, vec![1, 2, 3], vec![4]);
        assert!(s.verify());
        s.owned[1] ^= 1;
        assert!(!s.verify());
        // Position sensitivity: swapping equal-sum words changes the hash.
        let a = shard(0, vec![1, 2], vec![]);
        let b = shard(0, vec![2, 1], vec![]);
        assert_ne!(a.checksum, b.checksum);
    }

    #[test]
    fn verify_accepts_well_formed() {
        let c = two_machine_ckpt();
        assert!(c.verify().is_ok());
        assert_eq!(c.bytes(), 7 * 8);
    }

    #[test]
    fn verify_rejects_tampered_shard() {
        let mut c = two_machine_ckpt();
        let mut mc = (*c.machines[0]).clone();
        mc.shards[0].owned[0] = 999;
        c.machines[0] = Arc::new(mc);
        let err = c.verify().unwrap_err();
        assert!(matches!(err, JobError::CheckpointCorrupt(_)), "{err}");
    }

    #[test]
    fn verify_rejects_gap_in_tiling() {
        let mut c = two_machine_ckpt();
        let mut mc = (*c.machines[1]).clone();
        mc.start = 4;
        c.machines[1] = Arc::new(mc);
        assert!(c.verify().is_err());
    }

    #[test]
    fn global_bits_reassembles_in_order() {
        let c = two_machine_ckpt();
        assert_eq!(c.global_bits(PropId(0)).unwrap(), vec![10, 11, 12, 13, 14]);
        assert!(c.global_bits(PropId(5)).is_err());
    }

    fn small_mc() -> Arc<MachineCheckpoint> {
        Arc::new(MachineCheckpoint {
            machine: 0,
            start: 0,
            shards: vec![shard(0, vec![1, 2], vec![])],
        })
    }

    #[test]
    fn store_keeps_latest_and_counts() {
        let store = CheckpointStore::new();
        assert!(store.latest().is_none());
        let mc = small_mc();
        assert_eq!(store.save(1, mc.clone()), SaveOutcome::Stored);
        assert_eq!(store.save(2, mc), SaveOutcome::Stored);
        let (seq, got) = store.latest().unwrap();
        assert_eq!(seq, 2);
        assert_eq!(got.machine, 0);
        assert_eq!(store.saved(), 2);
        assert_eq!(store.bytes_saved(), 2 * 16);
        store.clear();
        assert!(store.latest().is_none());
    }

    #[test]
    fn ring_retains_bounded_history() {
        let store = CheckpointStore::with_plan(2, StorageFaultPlan::none());
        let mc = small_mc();
        for seq in 1..=3 {
            store.save(seq, mc.clone());
        }
        assert_eq!(store.retained(), 2);
        assert_eq!(store.latest().unwrap().0, 3);
        assert!(store.get(3).is_some());
        assert!(store.get(2).is_some());
        assert!(store.get(1).is_none(), "evicted by the retention bound");
    }

    #[test]
    fn lost_save_never_lands() {
        // lose rate 1000‰ ⇒ every save is lost regardless of seed.
        let store = CheckpointStore::with_plan(2, StorageFaultPlan::faulty(7, 1000, 0, 0));
        assert_eq!(store.save(1, small_mc()), SaveOutcome::Lost);
        assert!(store.get(1).is_none());
        assert!(store.latest().is_none());
        assert_eq!(store.saved(), 1, "the attempt itself still counts");
    }

    #[test]
    fn corrupted_save_lands_but_fails_verify() {
        let store = CheckpointStore::with_plan(2, StorageFaultPlan::faulty(7, 0, 1000, 0));
        assert_eq!(store.save(1, small_mc()), SaveOutcome::Corrupted);
        let got = store.get(1).expect("corrupt data is still readable");
        assert!(
            !got.shards[0].verify(),
            "tampered shard must keep its stale checksum"
        );
    }

    #[test]
    fn delayed_save_commits_on_next_write() {
        let store = CheckpointStore::with_plan(3, StorageFaultPlan::faulty(7, 0, 0, 1000));
        assert_eq!(store.save(1, small_mc()), SaveOutcome::Delayed);
        assert!(store.get(1).is_none(), "still parked in the pending slot");
        assert_eq!(store.save(2, small_mc()), SaveOutcome::Delayed);
        let got = store.get(1).expect("committed by the following save");
        assert!(got.shards[0].verify());
        assert!(store.get(2).is_none());
    }

    #[test]
    fn fault_dice_are_deterministic() {
        let roll = |seed| {
            let store =
                CheckpointStore::with_plan(4, StorageFaultPlan::faulty(seed, 200, 200, 200));
            (0..16)
                .map(|s| store.save(s, small_mc()))
                .collect::<Vec<_>>()
        };
        assert_eq!(roll(42), roll(42));
        assert_ne!(roll(42), roll(43), "different seeds, different weather");
        assert!(
            roll(42).iter().any(|o| *o != SaveOutcome::Stored),
            "200\u{2030} per fault should trip at least once in 16 rolls"
        );
    }
}
