//! Selective ghost nodes (§3.3).
//!
//! "Selective ghost node creation is a technique to choose a set of
//! high-degree vertices and to duplicate *ghost copies* of them on each
//! machine. Consequently, each ghost node only keeps local edges that do
//! not cross machine boundaries. [...] PGX.D computes the in-degree and
//! out-degree of each node and creates a ghost if either degree is larger
//! than the specified threshold value."
//!
//! The ghost table is identical on every machine: the sorted list of
//! ghosted vertices (in the global `0..N` numbering) and their full
//! degrees. Machine-local ghost *slots* are indexed by the vertex's
//! ordinal in this list; property columns allocate `len_ghost` extra cells
//! after the owned region, so slot `k` of property `p` lives at column
//! index `len_local + k`.

use pgxd_graph::{Graph, NodeId};
use std::sync::Arc;

/// The cluster-wide ghost-node table.
#[derive(Clone, Debug, Default)]
pub struct GhostTable {
    /// Ghosted vertices, sorted ascending (global numbering).
    nodes: Arc<Vec<NodeId>>,
    /// `(in_degree, out_degree)` of each ghosted vertex, by ordinal.
    degrees: Arc<Vec<(u32, u32)>>,
}

impl GhostTable {
    /// Selects ghosts: every vertex whose in- or out-degree exceeds
    /// `threshold`. `None` produces an empty table (ghosting disabled).
    pub fn build(graph: &Graph, threshold: Option<usize>) -> Self {
        match threshold {
            None => GhostTable::default(),
            Some(t) => {
                let nodes: Vec<NodeId> = pgxd_graph::stats::high_degree_nodes(graph, t);
                let degrees = nodes
                    .iter()
                    .map(|&v| (graph.in_degree(v) as u32, graph.out_degree(v) as u32))
                    .collect();
                GhostTable {
                    nodes: Arc::new(nodes),
                    degrees: Arc::new(degrees),
                }
            }
        }
    }

    /// Builds a table from an explicit vertex list (used by tests and by
    /// the Figure 6a sweep, which controls the exact ghost count).
    pub fn from_nodes(graph: &Graph, mut nodes: Vec<NodeId>) -> Self {
        nodes.sort_unstable();
        nodes.dedup();
        let degrees = nodes
            .iter()
            .map(|&v| (graph.in_degree(v) as u32, graph.out_degree(v) as u32))
            .collect();
        GhostTable {
            nodes: Arc::new(nodes),
            degrees: Arc::new(degrees),
        }
    }

    /// Number of ghosted vertices (== ghost slots per machine).
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if ghosting is disabled or selected nothing.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The sorted ghosted vertices.
    #[inline]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Ordinal of vertex `v` in the ghost list, if ghosted.
    #[inline]
    pub fn ordinal(&self, v: NodeId) -> Option<u32> {
        self.nodes.binary_search(&v).ok().map(|i| i as u32)
    }

    /// Global vertex at ordinal `ord`.
    #[inline]
    pub fn node_at(&self, ord: u32) -> NodeId {
        self.nodes[ord as usize]
    }

    /// Full `(in, out)` degree of the ghosted vertex at `ord` — available
    /// locally on every machine so algorithms can use `t.degree()` on hubs
    /// without communication.
    #[inline]
    pub fn degree_at(&self, ord: u32) -> (u32, u32) {
        self.degrees[ord as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgxd_graph::generate;

    #[test]
    fn disabled_table_empty() {
        let g = generate::star(10);
        let t = GhostTable::build(&g, None);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn threshold_selects_hub() {
        let g = generate::star(50);
        let t = GhostTable::build(&g, Some(10));
        assert_eq!(t.nodes(), &[0]);
        assert_eq!(t.ordinal(0), Some(0));
        assert_eq!(t.ordinal(3), None);
        assert_eq!(t.degree_at(0), (50, 50));
    }

    #[test]
    fn zero_threshold_selects_everything_with_degree() {
        let g = generate::ring(5);
        let t = GhostTable::build(&g, Some(0));
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn from_nodes_sorts_and_dedups() {
        let g = generate::ring(8);
        let t = GhostTable::from_nodes(&g, vec![5, 2, 5, 0]);
        assert_eq!(t.nodes(), &[0, 2, 5]);
        assert_eq!(t.ordinal(5), Some(2));
        assert_eq!(t.node_at(1), 2);
        assert_eq!(t.degree_at(0), (1, 1));
    }
}
