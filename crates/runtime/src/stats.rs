//! Counters and timings: traffic accounting (Figure 6a, Figure 8) and
//! per-worker busy/idle breakdowns (Figure 6c).
//!
//! [`MachineStats`] is owned by the machine's
//! [`Telemetry`](crate::telemetry::Telemetry) registry; the direct fields
//! on `MachineState`/`WorkerComm` are clones of that same `Arc`. Unlike the
//! registry's histograms and tracers, these counters are always live.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Traffic and work counters for one machine. All counters are cumulative
/// over the machine's lifetime; the harness snapshots before/after a run
/// and subtracts.
#[derive(Debug, Default)]
pub struct MachineStats {
    /// Envelopes sent by this machine (all kinds).
    pub msgs_sent: AtomicU64,
    /// Payload bytes sent by this machine.
    pub bytes_sent: AtomicU64,
    /// Header bytes sent (fixed per envelope; kept separate so "utilized"
    /// vs "effective" bandwidth can be reported as in Figure 8a).
    pub header_bytes_sent: AtomicU64,
    /// Remote read request entries put on the wire. Reads deduplicated by
    /// in-flight combining count under `combined_read_hits` instead, so
    /// logical reads = `read_entries + combined_read_hits`.
    pub read_entries: AtomicU64,
    /// Remote write (reduction) entries issued.
    pub write_entries: AtomicU64,
    /// Ghost synchronization entries (pre-copy + post-reduce).
    pub ghost_entries: AtomicU64,
    /// RMI invocations issued.
    pub rmi_entries: AtomicU64,
    /// Envelopes processed by this machine's copiers.
    pub msgs_processed: AtomicU64,
    /// Times a sender found the buffer pool empty (back-pressure events).
    pub pool_exhausted: AtomicU64,
    /// Reads satisfied locally (same machine or ghost copy) without any
    /// message.
    pub local_reads: AtomicU64,
    /// Writes applied locally without any message.
    pub local_writes: AtomicU64,
    /// Envelopes retransmitted after an acknowledgement timeout
    /// (reliability protocol).
    pub retransmits: AtomicU64,
    /// Duplicate envelopes suppressed by receive-side sequence windows.
    pub dup_suppressed: AtomicU64,
    /// Acknowledgement envelopes sent.
    pub acks_sent: AtomicU64,
    /// Buffered/in-flight entries failed by an abort sweep instead of being
    /// completed (their `read_done` continuations never ran).
    pub failed_entries: AtomicU64,
    /// Remote reads satisfied by piggybacking on an identical in-flight
    /// request entry instead of a new wire entry (read combining).
    pub combined_read_hits: AtomicU64,
    /// Barrier-consistent snapshots this machine contributed a shard to.
    pub checkpoints_taken: AtomicU64,
    /// Payload bytes this machine snapshotted into its checkpoint store.
    pub checkpoint_bytes: AtomicU64,
    /// Checkpoint restores applied to this machine's property columns.
    pub restores_applied: AtomicU64,
    /// Jobs the serving layer admitted and dispatched onto the cluster.
    pub jobs_admitted: AtomicU64,
    /// Jobs the serving layer rejected (full queue or admission denial).
    pub jobs_rejected: AtomicU64,
    /// Jobs cancelled (explicit cancel or session close).
    pub jobs_cancelled: AtomicU64,
    /// Jobs that missed their deadline (queued or mid-run).
    pub jobs_deadline_missed: AtomicU64,
    /// Checkpoint shard saves lost by injected storage faults.
    pub ckpt_shards_lost: AtomicU64,
    /// Checkpoint shard saves corrupted by injected storage faults.
    pub ckpt_shards_corrupted: AtomicU64,
    /// Checkpoint shard saves delayed into the store's write-behind slot.
    pub ckpt_shards_delayed: AtomicU64,
    /// Restores that fell back past a corrupt/incomplete checkpoint to an
    /// older retained ring entry.
    pub checkpoint_fallbacks: AtomicU64,
    /// Recoveries that found no restorable checkpoint and restarted the job
    /// from iteration zero.
    pub cold_restarts: AtomicU64,
    /// Machines quarantined by the flap detector after repeated watchdog
    /// trips.
    pub machines_quarantined: AtomicU64,
    /// Retries refused because the server-wide retry budget was dry.
    pub retry_budget_exhausted: AtomicU64,
    /// Times the brownout gate closed the batch lane under overload.
    pub brownout_sheds: AtomicU64,
    /// Times the brownout gate re-opened the batch lane after occupancy
    /// fell below the hysteresis threshold.
    pub brownout_reopens: AtomicU64,
}

/// A point-in-time copy of [`MachineStats`], subtractable.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub msgs_sent: u64,
    pub bytes_sent: u64,
    pub header_bytes_sent: u64,
    pub read_entries: u64,
    pub write_entries: u64,
    pub ghost_entries: u64,
    pub rmi_entries: u64,
    pub msgs_processed: u64,
    pub pool_exhausted: u64,
    pub local_reads: u64,
    pub local_writes: u64,
    pub retransmits: u64,
    pub dup_suppressed: u64,
    pub acks_sent: u64,
    pub failed_entries: u64,
    pub combined_read_hits: u64,
    pub checkpoints_taken: u64,
    pub checkpoint_bytes: u64,
    pub restores_applied: u64,
    pub jobs_admitted: u64,
    pub jobs_rejected: u64,
    pub jobs_cancelled: u64,
    pub jobs_deadline_missed: u64,
    pub ckpt_shards_lost: u64,
    pub ckpt_shards_corrupted: u64,
    pub ckpt_shards_delayed: u64,
    pub checkpoint_fallbacks: u64,
    pub cold_restarts: u64,
    pub machines_quarantined: u64,
    pub retry_budget_exhausted: u64,
    pub brownout_sheds: u64,
    pub brownout_reopens: u64,
}

impl MachineStats {
    /// Takes a snapshot of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            msgs_sent: self.msgs_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            header_bytes_sent: self.header_bytes_sent.load(Ordering::Relaxed),
            read_entries: self.read_entries.load(Ordering::Relaxed),
            write_entries: self.write_entries.load(Ordering::Relaxed),
            ghost_entries: self.ghost_entries.load(Ordering::Relaxed),
            rmi_entries: self.rmi_entries.load(Ordering::Relaxed),
            msgs_processed: self.msgs_processed.load(Ordering::Relaxed),
            pool_exhausted: self.pool_exhausted.load(Ordering::Relaxed),
            local_reads: self.local_reads.load(Ordering::Relaxed),
            local_writes: self.local_writes.load(Ordering::Relaxed),
            retransmits: self.retransmits.load(Ordering::Relaxed),
            dup_suppressed: self.dup_suppressed.load(Ordering::Relaxed),
            acks_sent: self.acks_sent.load(Ordering::Relaxed),
            failed_entries: self.failed_entries.load(Ordering::Relaxed),
            combined_read_hits: self.combined_read_hits.load(Ordering::Relaxed),
            checkpoints_taken: self.checkpoints_taken.load(Ordering::Relaxed),
            checkpoint_bytes: self.checkpoint_bytes.load(Ordering::Relaxed),
            restores_applied: self.restores_applied.load(Ordering::Relaxed),
            jobs_admitted: self.jobs_admitted.load(Ordering::Relaxed),
            jobs_rejected: self.jobs_rejected.load(Ordering::Relaxed),
            jobs_cancelled: self.jobs_cancelled.load(Ordering::Relaxed),
            jobs_deadline_missed: self.jobs_deadline_missed.load(Ordering::Relaxed),
            ckpt_shards_lost: self.ckpt_shards_lost.load(Ordering::Relaxed),
            ckpt_shards_corrupted: self.ckpt_shards_corrupted.load(Ordering::Relaxed),
            ckpt_shards_delayed: self.ckpt_shards_delayed.load(Ordering::Relaxed),
            checkpoint_fallbacks: self.checkpoint_fallbacks.load(Ordering::Relaxed),
            cold_restarts: self.cold_restarts.load(Ordering::Relaxed),
            machines_quarantined: self.machines_quarantined.load(Ordering::Relaxed),
            retry_budget_exhausted: self.retry_budget_exhausted.load(Ordering::Relaxed),
            brownout_sheds: self.brownout_sheds.load(Ordering::Relaxed),
            brownout_reopens: self.brownout_reopens.load(Ordering::Relaxed),
        }
    }
}

impl std::ops::Sub for StatsSnapshot {
    type Output = StatsSnapshot;
    fn sub(self, rhs: StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            msgs_sent: self.msgs_sent - rhs.msgs_sent,
            bytes_sent: self.bytes_sent - rhs.bytes_sent,
            header_bytes_sent: self.header_bytes_sent - rhs.header_bytes_sent,
            read_entries: self.read_entries - rhs.read_entries,
            write_entries: self.write_entries - rhs.write_entries,
            ghost_entries: self.ghost_entries - rhs.ghost_entries,
            rmi_entries: self.rmi_entries - rhs.rmi_entries,
            msgs_processed: self.msgs_processed - rhs.msgs_processed,
            pool_exhausted: self.pool_exhausted - rhs.pool_exhausted,
            local_reads: self.local_reads - rhs.local_reads,
            local_writes: self.local_writes - rhs.local_writes,
            retransmits: self.retransmits - rhs.retransmits,
            dup_suppressed: self.dup_suppressed - rhs.dup_suppressed,
            acks_sent: self.acks_sent - rhs.acks_sent,
            failed_entries: self.failed_entries - rhs.failed_entries,
            combined_read_hits: self.combined_read_hits - rhs.combined_read_hits,
            checkpoints_taken: self.checkpoints_taken - rhs.checkpoints_taken,
            checkpoint_bytes: self.checkpoint_bytes - rhs.checkpoint_bytes,
            restores_applied: self.restores_applied - rhs.restores_applied,
            jobs_admitted: self.jobs_admitted - rhs.jobs_admitted,
            jobs_rejected: self.jobs_rejected - rhs.jobs_rejected,
            jobs_cancelled: self.jobs_cancelled - rhs.jobs_cancelled,
            jobs_deadline_missed: self.jobs_deadline_missed - rhs.jobs_deadline_missed,
            ckpt_shards_lost: self.ckpt_shards_lost - rhs.ckpt_shards_lost,
            ckpt_shards_corrupted: self.ckpt_shards_corrupted - rhs.ckpt_shards_corrupted,
            ckpt_shards_delayed: self.ckpt_shards_delayed - rhs.ckpt_shards_delayed,
            checkpoint_fallbacks: self.checkpoint_fallbacks - rhs.checkpoint_fallbacks,
            cold_restarts: self.cold_restarts - rhs.cold_restarts,
            machines_quarantined: self.machines_quarantined - rhs.machines_quarantined,
            retry_budget_exhausted: self.retry_budget_exhausted - rhs.retry_budget_exhausted,
            brownout_sheds: self.brownout_sheds - rhs.brownout_sheds,
            brownout_reopens: self.brownout_reopens - rhs.brownout_reopens,
        }
    }
}

impl std::ops::Add for StatsSnapshot {
    type Output = StatsSnapshot;
    fn add(self, rhs: StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            msgs_sent: self.msgs_sent + rhs.msgs_sent,
            bytes_sent: self.bytes_sent + rhs.bytes_sent,
            header_bytes_sent: self.header_bytes_sent + rhs.header_bytes_sent,
            read_entries: self.read_entries + rhs.read_entries,
            write_entries: self.write_entries + rhs.write_entries,
            ghost_entries: self.ghost_entries + rhs.ghost_entries,
            rmi_entries: self.rmi_entries + rhs.rmi_entries,
            msgs_processed: self.msgs_processed + rhs.msgs_processed,
            pool_exhausted: self.pool_exhausted + rhs.pool_exhausted,
            local_reads: self.local_reads + rhs.local_reads,
            local_writes: self.local_writes + rhs.local_writes,
            retransmits: self.retransmits + rhs.retransmits,
            dup_suppressed: self.dup_suppressed + rhs.dup_suppressed,
            acks_sent: self.acks_sent + rhs.acks_sent,
            failed_entries: self.failed_entries + rhs.failed_entries,
            combined_read_hits: self.combined_read_hits + rhs.combined_read_hits,
            checkpoints_taken: self.checkpoints_taken + rhs.checkpoints_taken,
            checkpoint_bytes: self.checkpoint_bytes + rhs.checkpoint_bytes,
            restores_applied: self.restores_applied + rhs.restores_applied,
            jobs_admitted: self.jobs_admitted + rhs.jobs_admitted,
            jobs_rejected: self.jobs_rejected + rhs.jobs_rejected,
            jobs_cancelled: self.jobs_cancelled + rhs.jobs_cancelled,
            jobs_deadline_missed: self.jobs_deadline_missed + rhs.jobs_deadline_missed,
            ckpt_shards_lost: self.ckpt_shards_lost + rhs.ckpt_shards_lost,
            ckpt_shards_corrupted: self.ckpt_shards_corrupted + rhs.ckpt_shards_corrupted,
            ckpt_shards_delayed: self.ckpt_shards_delayed + rhs.ckpt_shards_delayed,
            checkpoint_fallbacks: self.checkpoint_fallbacks + rhs.checkpoint_fallbacks,
            cold_restarts: self.cold_restarts + rhs.cold_restarts,
            machines_quarantined: self.machines_quarantined + rhs.machines_quarantined,
            retry_budget_exhausted: self.retry_budget_exhausted + rhs.retry_budget_exhausted,
            brownout_sheds: self.brownout_sheds + rhs.brownout_sheds,
            brownout_reopens: self.brownout_reopens + rhs.brownout_reopens,
        }
    }
}

/// Per-worker phase timing, in nanoseconds since the phase started, used
/// to reproduce the Figure 6c breakdown:
///
/// * *fully parallel* time = min over workers of `tasks_done_ns`,
/// * *intra-machine imbalance* = machine's last worker minus this machine's
///   first idle worker,
/// * *inter-machine imbalance* = global finish minus machine finish.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkerTiming {
    /// When this worker exhausted its chunk queue (local tasks done).
    pub tasks_done_ns: u64,
    /// When this worker observed global completion and left the drain loop.
    pub drained_ns: u64,
}

/// Aggregated Figure-6c breakdown for one phase.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Breakdown {
    /// Seconds during which every worker on every machine was busy.
    pub fully_parallel: f64,
    /// Seconds attributable to waiting on workers of the *same* machine.
    pub intra_machine: f64,
    /// Seconds attributable to waiting on *other* machines.
    pub inter_machine: f64,
    /// Seconds spent draining in-flight responses *after* the last worker
    /// finished its tasks — termination-detection tail not attributable to
    /// load imbalance (buffered entries still crossing the fabric).
    pub drain: f64,
}

impl Breakdown {
    /// Derives the breakdown from per-machine, per-worker timings.
    ///
    /// `timings[m][w]` is machine `m`'s worker `w`. Every worker's wall
    /// time runs to the global finish; the portion after its own tasks
    /// finished but before its machine finished counts as intra-machine
    /// idle, and the remainder up to the global finish as inter-machine
    /// idle. Time a worker spends in the drain loop *past* the global task
    /// finish (waiting for in-flight entries to land, `drained_ns` beyond
    /// the last `tasks_done_ns`) is the fourth component. We report the
    /// mean over workers, so the four components sum to the phase wall
    /// time.
    pub fn from_timings(timings: &[Vec<WorkerTiming>]) -> Breakdown {
        let global_end_ns = timings
            .iter()
            .flat_map(|m| m.iter().map(|t| t.tasks_done_ns))
            .max()
            .unwrap_or(0);
        let mut busy = 0.0f64;
        let mut intra = 0.0f64;
        let mut inter = 0.0f64;
        let mut drain = 0.0f64;
        let mut count = 0usize;
        for m in timings {
            let machine_end = m.iter().map(|t| t.tasks_done_ns).max().unwrap_or(0);
            for t in m {
                busy += t.tasks_done_ns as f64;
                intra += machine_end.saturating_sub(t.tasks_done_ns) as f64;
                inter += global_end_ns.saturating_sub(machine_end) as f64;
                drain += t.drained_ns.saturating_sub(global_end_ns) as f64;
                count += 1;
            }
        }
        let norm = 1e-9 / count.max(1) as f64;
        Breakdown {
            fully_parallel: busy * norm,
            intra_machine: intra * norm,
            inter_machine: inter * norm,
            drain: drain * norm,
        }
    }

    /// Total accounted wall time.
    pub fn total(&self) -> f64 {
        self.fully_parallel + self.intra_machine + self.inter_machine + self.drain
    }
}

/// Formats a `Duration` as seconds with millisecond precision.
pub fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_subtraction() {
        let s = MachineStats::default();
        s.bytes_sent.store(100, Ordering::Relaxed);
        let a = s.snapshot();
        s.bytes_sent.store(150, Ordering::Relaxed);
        s.msgs_sent.store(3, Ordering::Relaxed);
        let b = s.snapshot();
        let d = b - a;
        assert_eq!(d.bytes_sent, 50);
        assert_eq!(d.msgs_sent, 3);
    }

    #[test]
    fn snapshot_addition() {
        let a = StatsSnapshot {
            bytes_sent: 10,
            ..Default::default()
        };
        let b = StatsSnapshot {
            bytes_sent: 5,
            msgs_sent: 2,
            ..Default::default()
        };
        let c = a + b;
        assert_eq!(c.bytes_sent, 15);
        assert_eq!(c.msgs_sent, 2);
    }

    #[test]
    fn breakdown_all_even() {
        // Two machines, two workers each, all finishing at 100ns: no
        // imbalance at all.
        let t = WorkerTiming {
            tasks_done_ns: 100,
            drained_ns: 100,
        };
        let timings = vec![vec![t, t], vec![t, t]];
        let b = Breakdown::from_timings(&timings);
        assert!((b.fully_parallel - 100e-9).abs() < 1e-12);
        assert_eq!(b.intra_machine, 0.0);
        assert_eq!(b.inter_machine, 0.0);
    }

    #[test]
    fn breakdown_intra_machine() {
        // One machine; one worker finishes at 100, the other at 50.
        let timings = vec![vec![
            WorkerTiming {
                tasks_done_ns: 100,
                drained_ns: 100,
            },
            WorkerTiming {
                tasks_done_ns: 50,
                drained_ns: 100,
            },
        ]];
        let b = Breakdown::from_timings(&timings);
        assert!(b.intra_machine > 0.0);
        assert_eq!(b.inter_machine, 0.0);
        assert!((b.total() - 100e-9).abs() < 1e-12);
    }

    #[test]
    fn breakdown_inter_machine() {
        // Machine 0 finishes at 40, machine 1 at 100.
        let timings = vec![
            vec![WorkerTiming {
                tasks_done_ns: 40,
                drained_ns: 100,
            }],
            vec![WorkerTiming {
                tasks_done_ns: 100,
                drained_ns: 100,
            }],
        ];
        let b = Breakdown::from_timings(&timings);
        assert!(b.inter_machine > 0.0);
        assert_eq!(b.intra_machine, 0.0);
        assert!((b.total() - 100e-9).abs() < 1e-12);
    }

    #[test]
    fn breakdown_drain_tail() {
        // Both workers finish tasks at 100 but keep draining until 130:
        // the 30ns tail is drain time, not imbalance.
        let t = WorkerTiming {
            tasks_done_ns: 100,
            drained_ns: 130,
        };
        let timings = vec![vec![t], vec![t]];
        let b = Breakdown::from_timings(&timings);
        assert!((b.fully_parallel - 100e-9).abs() < 1e-12);
        assert_eq!(b.intra_machine, 0.0);
        assert_eq!(b.inter_machine, 0.0);
        assert!((b.drain - 30e-9).abs() < 1e-12);
        assert!((b.total() - 130e-9).abs() < 1e-12);
    }

    #[test]
    fn breakdown_empty() {
        let b = Breakdown::from_timings(&[]);
        assert_eq!(b.total(), 0.0);
    }
}
