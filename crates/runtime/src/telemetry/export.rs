//! Structured export of a run: JSON metrics report and Chrome
//! `trace_event` output (load `trace.json` in Perfetto / `chrome://tracing`).
//!
//! The build environment is offline, so this module carries its own small
//! JSON value type, writer, and parser instead of depending on serde. The
//! parser exists so tests (and downstream tooling) can round-trip what the
//! exporters emit.

use std::sync::Arc;

use super::histogram::HistogramSnapshot;
use super::tracer::EventKind;
use super::Telemetry;
use crate::jobctx::JobExec;
use crate::stats::StatsSnapshot;

pub mod json {
    //! A minimal JSON document model: enough to build, print, and re-parse
    //! the reports this engine emits.

    use std::fmt::Write as _;

    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<Value>),
        Obj(Vec<(String, Value)>),
    }

    impl From<bool> for Value {
        fn from(v: bool) -> Value {
            Value::Bool(v)
        }
    }
    impl From<f64> for Value {
        fn from(v: f64) -> Value {
            Value::Num(v)
        }
    }
    impl From<u64> for Value {
        fn from(v: u64) -> Value {
            Value::Num(v as f64)
        }
    }
    impl From<usize> for Value {
        fn from(v: usize) -> Value {
            Value::Num(v as f64)
        }
    }
    impl From<u32> for Value {
        fn from(v: u32) -> Value {
            Value::Num(v as f64)
        }
    }
    impl From<&str> for Value {
        fn from(v: &str) -> Value {
            Value::Str(v.to_string())
        }
    }
    impl From<String> for Value {
        fn from(v: String) -> Value {
            Value::Str(v)
        }
    }
    impl From<Vec<Value>> for Value {
        fn from(v: Vec<Value>) -> Value {
            Value::Arr(v)
        }
    }

    impl Value {
        pub fn obj(fields: Vec<(&str, Value)>) -> Value {
            Value::Obj(
                fields
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            )
        }

        /// Object field lookup (None for non-objects / missing keys).
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        pub fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(items) => Some(items),
                _ => None,
            }
        }

        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }

        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
                _ => None,
            }
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }

        /// Compact single-line rendering.
        pub fn to_compact(&self) -> String {
            let mut out = String::new();
            self.write(&mut out, None, 0);
            out
        }

        /// Pretty rendering with two-space indentation.
        pub fn to_pretty(&self) -> String {
            let mut out = String::new();
            self.write(&mut out, Some(2), 0);
            out
        }

        fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
            match self {
                Value::Null => out.push_str("null"),
                Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                Value::Num(n) => write_num(out, *n),
                Value::Str(s) => write_str(out, s),
                Value::Arr(items) => {
                    write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                        items[i].write(out, indent, d)
                    })
                }
                Value::Obj(fields) => {
                    write_seq(out, indent, depth, '{', '}', fields.len(), |out, i, d| {
                        let (k, v) = &fields[i];
                        write_str(out, k);
                        out.push(':');
                        if indent.is_some() {
                            out.push(' ');
                        }
                        v.write(out, indent, d)
                    })
                }
            }
        }

        /// Parses a JSON document. Errors carry a byte offset.
        pub fn parse(text: &str) -> Result<Value, String> {
            let mut p = Parser {
                bytes: text.as_bytes(),
                pos: 0,
            };
            p.skip_ws();
            let v = p.value()?;
            p.skip_ws();
            if p.pos != p.bytes.len() {
                return Err(format!("trailing input at byte {}", p.pos));
            }
            Ok(v)
        }
    }

    fn write_num(out: &mut String, n: f64) {
        if !n.is_finite() {
            out.push_str("null");
        } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
            let _ = write!(out, "{}", n as i64);
        } else {
            let _ = write!(out, "{n}");
        }
    }

    fn write_str(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    fn write_seq(
        out: &mut String,
        indent: Option<usize>,
        depth: usize,
        open: char,
        close: char,
        len: usize,
        mut item: impl FnMut(&mut String, usize, usize),
    ) {
        out.push(open);
        if len == 0 {
            out.push(close);
            return;
        }
        for i in 0..len {
            if i > 0 {
                out.push(',');
            }
            if let Some(w) = indent {
                out.push('\n');
                out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
            }
            item(out, i, depth + 1);
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * depth));
        }
        out.push(close);
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected '{}' at byte {}", b as char, self.pos))
            }
        }

        fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(v)
            } else {
                Err(format!("invalid literal at byte {}", self.pos))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek() {
                Some(b'n') => self.literal("null", Value::Null),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'"') => self.string().map(Value::Str),
                Some(b'[') => self.array(),
                Some(b'{') => self.object(),
                Some(b'-' | b'0'..=b'9') => self.number(),
                _ => Err(format!("unexpected input at byte {}", self.pos)),
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                }
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut fields = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                fields.push((key, self.value()?));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut s = String::new();
            loop {
                match self.peek() {
                    None => return Err("unterminated string".to_string()),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(s);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'b') => s.push('\u{8}'),
                            Some(b'f') => s.push('\u{c}'),
                            Some(b'n') => s.push('\n'),
                            Some(b'r') => s.push('\r'),
                            Some(b't') => s.push('\t'),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .ok_or_else(|| "bad \\u escape".to_string())?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| "bad \\u escape".to_string())?;
                                s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                                self.pos += 4;
                            }
                            _ => return Err(format!("bad escape at byte {}", self.pos)),
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar (input was a &str, so
                        // boundaries are valid).
                        let rest = &self.bytes[self.pos..];
                        let text = unsafe { std::str::from_utf8_unchecked(rest) };
                        let c = text.chars().next().unwrap();
                        s.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            while matches!(
                self.peek(),
                Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            ) {
                self.pos += 1;
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
            text.parse::<f64>()
                .map(Value::Num)
                .map_err(|_| format!("bad number at byte {start}"))
        }
    }
}

use json::Value;

/// JSON form of one histogram snapshot.
pub fn histogram_json(s: &HistogramSnapshot) -> Value {
    Value::obj(vec![
        ("count", s.count().into()),
        ("mean", s.mean().into()),
        ("p50", s.quantile_lower_bound(0.50).into()),
        ("p90", s.quantile_lower_bound(0.90).into()),
        ("p99", s.quantile_lower_bound(0.99).into()),
        (
            "buckets",
            Value::Arr(
                s.nonzero_buckets()
                    .into_iter()
                    .map(|(lo, c)| Value::Arr(vec![lo.into(), c.into()]))
                    .collect(),
            ),
        ),
    ])
}

/// JSON form of a [`StatsSnapshot`].
pub fn stats_json(s: &StatsSnapshot) -> Value {
    Value::obj(vec![
        ("msgs_sent", s.msgs_sent.into()),
        ("bytes_sent", s.bytes_sent.into()),
        ("header_bytes_sent", s.header_bytes_sent.into()),
        ("read_entries", s.read_entries.into()),
        ("write_entries", s.write_entries.into()),
        ("ghost_entries", s.ghost_entries.into()),
        ("rmi_entries", s.rmi_entries.into()),
        ("msgs_processed", s.msgs_processed.into()),
        ("pool_exhausted", s.pool_exhausted.into()),
        ("local_reads", s.local_reads.into()),
        ("local_writes", s.local_writes.into()),
        ("retransmits", s.retransmits.into()),
        ("dup_suppressed", s.dup_suppressed.into()),
        ("acks_sent", s.acks_sent.into()),
        ("failed_entries", s.failed_entries.into()),
        ("combined_read_hits", s.combined_read_hits.into()),
        ("checkpoints_taken", s.checkpoints_taken.into()),
        ("checkpoint_bytes", s.checkpoint_bytes.into()),
        ("restores_applied", s.restores_applied.into()),
        ("jobs_admitted", s.jobs_admitted.into()),
        ("jobs_rejected", s.jobs_rejected.into()),
        ("jobs_cancelled", s.jobs_cancelled.into()),
        ("jobs_deadline_missed", s.jobs_deadline_missed.into()),
        ("ckpt_shards_lost", s.ckpt_shards_lost.into()),
        ("ckpt_shards_corrupted", s.ckpt_shards_corrupted.into()),
        ("ckpt_shards_delayed", s.ckpt_shards_delayed.into()),
        ("checkpoint_fallbacks", s.checkpoint_fallbacks.into()),
        ("cold_restarts", s.cold_restarts.into()),
        ("machines_quarantined", s.machines_quarantined.into()),
        ("retry_budget_exhausted", s.retry_budget_exhausted.into()),
        ("brownout_sheds", s.brownout_sheds.into()),
        ("brownout_reopens", s.brownout_reopens.into()),
    ])
}

fn histograms_json(t: &Telemetry) -> Value {
    Value::obj(vec![
        ("read_rtt_ns", histogram_json(&t.read_rtt_snapshot())),
        (
            "copier_service_ns",
            histogram_json(&t.copier_service_snapshot()),
        ),
        ("flush_fill_pct", histogram_json(&t.flush_fill_snapshot())),
        (
            "side_occupancy",
            histogram_json(&t.side_occupancy_snapshot()),
        ),
        ("chunk_claims", histogram_json(&t.chunk_claims_snapshot())),
        (
            "checkpoint_bytes",
            histogram_json(&t.checkpoint_bytes_snapshot()),
        ),
        ("checkpoint_ns", histogram_json(&t.checkpoint_ns_snapshot())),
        ("queue_wait_ns", histogram_json(&t.queue_wait_snapshot())),
    ])
}

/// Per-phase wall time on one machine, from its trace: earliest
/// `PhaseStart` to latest `PhaseEnd` across workers. `null` where the ring
/// evicted the phase's events (or tracing was off).
fn phase_walls(t: &Telemetry, num_phases: usize) -> Value {
    let mut start: Vec<Option<u64>> = vec![None; num_phases];
    let mut end: Vec<Option<u64>> = vec![None; num_phases];
    for w in 0..t.workers() {
        for e in t.worker_events(w) {
            let idx = (e.arg as usize).wrapping_sub(1);
            if idx >= num_phases {
                continue;
            }
            match e.kind {
                EventKind::PhaseStart => {
                    start[idx] = Some(start[idx].map_or(e.ts_ns, |s| s.min(e.ts_ns)));
                }
                EventKind::PhaseEnd => {
                    end[idx] = Some(end[idx].map_or(e.ts_ns, |s| s.max(e.ts_ns)));
                }
                _ => {}
            }
        }
    }
    Value::Arr(
        (0..num_phases)
            .map(|i| match (start[i], end[i]) {
                (Some(s), Some(e)) if e >= s => Value::Num((e - s) as f64 * 1e-9),
                _ => Value::Null,
            })
            .collect(),
    )
}

/// Builds the metrics report for a cluster: per-machine stats, histograms,
/// per-destination traffic, and cluster-wide merged histograms. `extra`
/// fields (e.g. a phase breakdown supplied by the driver) are appended at
/// the top level.
pub fn metrics_report(
    telemetry: &[Arc<Telemetry>],
    phase_labels: &[String],
    extra: Vec<(String, Value)>,
) -> Value {
    let machines: Vec<Value> = telemetry
        .iter()
        .map(|t| {
            let (recorded, dropped) = t.trace_volume();
            Value::obj(vec![
                ("machine", u64::from(t.machine()).into()),
                ("stats", stats_json(&t.stats().snapshot())),
                ("histograms", histograms_json(t)),
                ("phase_wall_s", phase_walls(t, phase_labels.len())),
                (
                    "dest_bytes",
                    Value::Arr(
                        t.dest_bytes_snapshot()
                            .into_iter()
                            .map(Value::from)
                            .collect(),
                    ),
                ),
                (
                    "trace",
                    Value::obj(vec![
                        ("recorded", recorded.into()),
                        ("dropped", dropped.into()),
                        // Ring-buffer overflow per worker: nonzero means
                        // that worker's timeline is incomplete.
                        (
                            "trace_events_dropped",
                            Value::Arr(t.worker_dropped().into_iter().map(Value::from).collect()),
                        ),
                    ]),
                ),
            ])
        })
        .collect();

    let merged = |pick: fn(&Telemetry) -> HistogramSnapshot| -> HistogramSnapshot {
        telemetry.iter().map(|t| pick(t)).sum()
    };
    let cluster = Value::obj(vec![
        (
            "read_rtt_ns",
            histogram_json(&merged(|t| t.read_rtt_snapshot())),
        ),
        (
            "copier_service_ns",
            histogram_json(&merged(|t| t.copier_service_snapshot())),
        ),
        (
            "flush_fill_pct",
            histogram_json(&merged(|t| t.flush_fill_snapshot())),
        ),
        (
            "side_occupancy",
            histogram_json(&merged(|t| t.side_occupancy_snapshot())),
        ),
        (
            "chunk_claims",
            histogram_json(&merged(|t| t.chunk_claims_snapshot())),
        ),
    ]);

    let mut fields = vec![
        (
            "phases".to_string(),
            Value::Arr(
                phase_labels
                    .iter()
                    .map(|l| Value::from(l.clone()))
                    .collect(),
            ),
        ),
        ("machines".to_string(), Value::Arr(machines)),
        ("cluster_histograms".to_string(), cluster),
    ];
    fields.extend(extra);
    Value::Obj(fields)
}

fn phase_name(phase_labels: &[String], epoch: u64) -> String {
    phase_labels
        .get((epoch as usize).wrapping_sub(1))
        .cloned()
        .unwrap_or_else(|| format!("phase-{epoch}"))
}

/// Builds a Chrome `trace_event` document (the `{"traceEvents": [...]}`
/// object format). pid = machine, tid = worker, timestamps in microseconds
/// since the cluster epoch. Open the file in Perfetto or chrome://tracing.
pub fn chrome_trace(telemetry: &[Arc<Telemetry>], phase_labels: &[String]) -> Value {
    chrome_trace_with_jobs(telemetry, phase_labels, &[])
}

/// [`chrome_trace`] plus one synthetic "jobs" process holding a colored
/// lane per served job: a `queued` span (enqueue → dispatch), a run span
/// (dispatch → done) carrying the attribution summary in its args, nested
/// phase/barrier spans, and retry instants.
pub fn chrome_trace_with_jobs(
    telemetry: &[Arc<Telemetry>],
    phase_labels: &[String],
    jobs: &[JobExec],
) -> Value {
    let mut events: Vec<Value> = Vec::new();
    for t in telemetry {
        let pid = u64::from(t.machine());
        events.push(Value::obj(vec![
            ("name", "process_name".into()),
            ("ph", "M".into()),
            ("pid", pid.into()),
            (
                "args",
                Value::obj(vec![("name", format!("machine{pid}").into())]),
            ),
        ]));
        for w in 0..t.workers() {
            events.push(Value::obj(vec![
                ("name", "thread_name".into()),
                ("ph", "M".into()),
                ("pid", pid.into()),
                ("tid", w.into()),
                (
                    "args",
                    Value::obj(vec![("name", format!("worker{w}").into())]),
                ),
            ]));
            for e in t.worker_events(w) {
                let ts = e.ts_ns as f64 / 1000.0;
                let mut fields: Vec<(&str, Value)> = Vec::new();
                match e.kind {
                    EventKind::PhaseStart | EventKind::PhaseEnd => {
                        fields.push(("name", phase_name(phase_labels, e.arg).into()));
                        fields.push(("cat", "phase".into()));
                        fields.push((
                            "ph",
                            if e.kind == EventKind::PhaseStart {
                                "B"
                            } else {
                                "E"
                            }
                            .into(),
                        ));
                    }
                    EventKind::BarrierEnter | EventKind::BarrierExit => {
                        fields.push(("name", "barrier".into()));
                        fields.push(("cat", "barrier".into()));
                        fields.push((
                            "ph",
                            if e.kind == EventKind::BarrierEnter {
                                "B"
                            } else {
                                "E"
                            }
                            .into(),
                        ));
                    }
                    EventKind::BufferFlush => {
                        fields.push(("name", "flush".into()));
                        fields.push(("cat", "comm".into()));
                        fields.push(("ph", "i".into()));
                        fields.push(("s", "t".into()));
                    }
                    EventKind::PoolStall | EventKind::FlushRetune => {
                        fields.push(("name", e.kind.name().into()));
                        fields.push(("cat", "comm".into()));
                        fields.push(("ph", "i".into()));
                        fields.push(("s", "t".into()));
                    }
                    EventKind::GhostPush | EventKind::GhostReduce => {
                        fields.push(("name", e.kind.name().into()));
                        fields.push(("cat", "ghost".into()));
                        fields.push(("ph", "i".into()));
                        fields.push(("s", "t".into()));
                    }
                    EventKind::Retransmit | EventKind::DupDrop | EventKind::AbortSweep => {
                        fields.push(("name", e.kind.name().into()));
                        fields.push(("cat", "reliability".into()));
                        fields.push(("ph", "i".into()));
                        fields.push(("s", "t".into()));
                    }
                    EventKind::CheckpointTaken
                    | EventKind::RecoveryStart
                    | EventKind::RecoveryDone
                    | EventKind::CheckpointFallback
                    | EventKind::ColdRestart
                    | EventKind::Quarantine => {
                        fields.push(("name", e.kind.name().into()));
                        fields.push(("cat", "recovery".into()));
                        fields.push(("ph", "i".into()));
                        fields.push(("s", "t".into()));
                    }
                    EventKind::JobEnqueue
                    | EventKind::JobDispatch
                    | EventKind::JobCancel
                    | EventKind::JobDone
                    | EventKind::BrownoutShed
                    | EventKind::BrownoutReopen => {
                        fields.push(("name", e.kind.name().into()));
                        fields.push(("cat", "serve".into()));
                        fields.push(("ph", "i".into()));
                        fields.push(("s", "t".into()));
                    }
                }
                fields.push(("pid", pid.into()));
                fields.push(("tid", w.into()));
                fields.push(("ts", ts.into()));
                let arg_key = match e.kind {
                    EventKind::BufferFlush | EventKind::FlushRetune => Some("bytes"),
                    EventKind::PoolStall => Some("events"),
                    EventKind::GhostPush | EventKind::GhostReduce => Some("nodes"),
                    EventKind::Retransmit | EventKind::AbortSweep => Some("count"),
                    EventKind::DupDrop => Some("seq"),
                    EventKind::CheckpointTaken => Some("bytes"),
                    EventKind::RecoveryStart => Some("attempt"),
                    EventKind::RecoveryDone => Some("iteration"),
                    EventKind::CheckpointFallback => Some("seq"),
                    EventKind::ColdRestart => Some("tried"),
                    EventKind::Quarantine => Some("machine"),
                    EventKind::BrownoutShed | EventKind::BrownoutReopen => Some("occupancy"),
                    EventKind::JobEnqueue
                    | EventKind::JobDispatch
                    | EventKind::JobCancel
                    | EventKind::JobDone => Some("job"),
                    _ => Some("epoch"),
                };
                if let Some(k) = arg_key {
                    fields.push(("args", Value::obj(vec![(k, e.arg.into())])));
                }
                events.push(Value::obj(fields));
            }
        }
    }

    // Per-job causal lanes: one synthetic process after the machines,
    // tid = job id, Perfetto reserved-color names cycled per job.
    if !jobs.is_empty() {
        let jobs_pid = telemetry.len() as u64;
        const PALETTE: [&str; 6] = [
            "thread_state_running",
            "rail_response",
            "rail_animation",
            "thread_state_iowait",
            "rail_load",
            "rail_idle",
        ];
        events.push(Value::obj(vec![
            ("name", "process_name".into()),
            ("ph", "M".into()),
            ("pid", jobs_pid.into()),
            ("args", Value::obj(vec![("name", "jobs".into())])),
        ]));
        let us = |ns: u64| ns as f64 / 1000.0;
        for (i, j) in jobs.iter().enumerate() {
            let tid = j.ctx.job;
            let cname = PALETTE[i % PALETTE.len()];
            events.push(Value::obj(vec![
                ("name", "thread_name".into()),
                ("ph", "M".into()),
                ("pid", jobs_pid.into()),
                ("tid", tid.into()),
                (
                    "args",
                    Value::obj(vec![(
                        "name",
                        format!(
                            "job{} (session {}, {})",
                            j.ctx.job,
                            j.ctx.session,
                            j.ctx.lane_name()
                        )
                        .into(),
                    )]),
                ),
            ]));
            let span = |name: &str, ph: &str, ts_ns: u64, args: Option<Value>| {
                let mut f: Vec<(&str, Value)> = vec![
                    ("name", name.into()),
                    ("cat", "job".into()),
                    ("ph", ph.into()),
                    ("pid", jobs_pid.into()),
                    ("tid", tid.into()),
                    ("ts", us(ts_ns).into()),
                    ("cname", cname.into()),
                ];
                if let Some(a) = args {
                    f.push(("args", a));
                }
                Value::obj(f)
            };
            if j.dispatch_ns > j.enqueue_ns {
                events.push(span("queued", "B", j.enqueue_ns, None));
                events.push(span("queued", "E", j.dispatch_ns, None));
            }
            let run_args = Value::obj(vec![
                ("job", j.ctx.job.into()),
                ("session", j.ctx.session.into()),
                ("lane", j.ctx.lane_name().into()),
                ("outcome", j.outcome.name().into()),
                ("wire_msgs", j.wire.msgs_sent.into()),
                ("wire_bytes", j.wire.bytes_sent.into()),
                ("compute_s", j.compute_s.into()),
                ("comm_s", j.comm_s.into()),
                ("drain_s", j.drain_s.into()),
                ("checkpoint_s", j.checkpoint_s.into()),
                ("retries", j.retries.into()),
            ]);
            events.push(span(
                &format!("run job{}", j.ctx.job),
                "B",
                j.dispatch_ns,
                Some(run_args),
            ));
            for p in &j.phases {
                let phase_args = Value::obj(vec![("epoch", p.epoch.into())]);
                events.push(span(&p.label, "B", p.start_ns, Some(phase_args)));
                events.push(span(&p.label, "E", p.end_ns, None));
                if p.barrier_ns > 0 {
                    events.push(span("barrier", "B", p.end_ns, None));
                    events.push(span("barrier", "E", p.end_ns + p.barrier_ns, None));
                }
            }
            for &r in &j.retry_ns {
                let mut f = vec![
                    ("name", Value::from("retry")),
                    ("cat", "job".into()),
                    ("ph", "i".into()),
                    ("s", "t".into()),
                    ("pid", jobs_pid.into()),
                    ("tid", tid.into()),
                    ("ts", us(r).into()),
                ];
                f.push(("args", Value::obj(vec![("job", j.ctx.job.into())])));
                events.push(Value::obj(f));
            }
            events.push(span(&format!("run job{}", j.ctx.job), "E", j.done_ns, None));
        }
    }

    // Ring-overflow metadata: [machine][worker] dropped-event counts, so
    // a clean-looking timeline can be cross-checked for silent loss.
    let dropped_meta = Value::Arr(
        telemetry
            .iter()
            .map(|t| Value::Arr(t.worker_dropped().into_iter().map(Value::from).collect()))
            .collect(),
    );
    Value::obj(vec![
        ("displayTimeUnit", "ms".into()),
        ("traceEvents", Value::Arr(events)),
        (
            "metadata",
            Value::obj(vec![("trace_events_dropped", dropped_meta)]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::json::Value;

    #[test]
    fn json_roundtrip() {
        let v = Value::obj(vec![
            ("null", Value::Null),
            ("t", true.into()),
            ("n", 42u64.into()),
            ("f", 1.5f64.into()),
            ("neg", Value::Num(-7.0)),
            ("s", "he said \"hi\"\n\\".into()),
            ("arr", Value::Arr(vec![1u64.into(), Value::Null])),
            ("empty_arr", Value::Arr(vec![])),
            ("empty_obj", Value::obj(vec![])),
        ]);
        for text in [v.to_compact(), v.to_pretty()] {
            assert_eq!(Value::parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn pretty_format_shape() {
        let v = Value::obj(vec![("title", "J".into())]);
        assert_eq!(v.to_pretty(), "{\n  \"title\": \"J\"\n}");
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Value::Num(3.0).to_compact(), "3");
        assert_eq!(Value::Num(3.25).to_compact(), "3.25");
        assert_eq!(Value::Num(f64::NAN).to_compact(), "null");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("nope").is_err());
        assert!(Value::parse("{}extra").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v = Value::parse("\"a\\u00e9b\"").unwrap();
        assert_eq!(v.as_str(), Some("aéb"));
    }

    #[test]
    fn accessors() {
        let v = Value::parse("{\"a\": [1, 2.5], \"b\": true}").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_u64(), None);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert!(v.get("c").is_none());
    }
}
