//! Engine-wide telemetry: metrics registry, per-worker event tracing, and
//! structured run reports.
//!
//! One [`Telemetry`] instance exists per machine. It owns that machine's
//! [`MachineStats`] counters (always live — they are plain relaxed atomics
//! the engine has always paid for) plus the optional instruments gated by
//! [`TelemetryConfig::enabled`](crate::config::TelemetryConfig):
//!
//! - log-scale [`Histogram`]s: remote-read round-trip latency, copier
//!   service time, message-buffer fill ratio at flush, side-structure
//!   occupancy, and per-worker chunk-claim counts;
//! - per-destination byte counters (traffic matrix);
//! - one ring-buffer [`Tracer`] per worker recording timestamped phase,
//!   barrier, flush, stall, and ghost events.
//!
//! Every recording entry point starts with a single `enabled` branch, so a
//! run with telemetry off pays one predictable-not-taken branch per hook.
//! Compiling the crate without the `telemetry` feature replaces the
//! instruments with no-op stubs (the stats counters remain).
//!
//! Timestamps are nanoseconds since a cluster-wide epoch `Instant` that
//! [`Cluster::assemble`](crate::cluster::Cluster) hands to every machine,
//! so events from different machines land on one comparable timeline.
//! [`export`] turns a finished run into a JSON metrics report and a Chrome
//! `trace_event` file viewable in Perfetto.

pub mod export;
pub mod histogram;
pub mod tracer;

pub use histogram::{Histogram, HistogramSnapshot, NUM_BUCKETS};
pub use tracer::{EventKind, TraceEvent, Tracer};

#[cfg(feature = "telemetry")]
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::config::Config;
use crate::jobctx::JobCtx;
use crate::jobctx::JobWire;
use crate::stats::MachineStats;

/// Per-machine telemetry registry. See the module docs.
#[cfg(feature = "telemetry")]
pub struct Telemetry {
    enabled: bool,
    machine: u16,
    epoch: Instant,
    stats: Arc<MachineStats>,
    read_rtt_ns: Histogram,
    copier_service_ns: Histogram,
    flush_fill_pct: Histogram,
    side_occupancy: Histogram,
    chunk_claims: Histogram,
    checkpoint_bytes: Histogram,
    checkpoint_ns: Histogram,
    queue_wait_ns: Histogram,
    dest_bytes: Vec<AtomicU64>,
    tracers: Vec<Tracer>,
    /// Active [`JobCtx`], packed `+ 1` so zero means "no job running".
    /// Set machine-wide by [`Cluster::begin_job`](crate::cluster::Cluster)
    /// on the dispatcher thread; jobs serialize, so one cell suffices.
    job_active: AtomicU64,
    job_msgs_sent: AtomicU64,
    job_bytes_sent: AtomicU64,
    job_msgs_processed: AtomicU64,
}

#[cfg(feature = "telemetry")]
impl Telemetry {
    pub fn new(machine: u16, config: &Config, epoch: Instant) -> Arc<Telemetry> {
        let enabled = config.telemetry.enabled;
        Arc::new(Telemetry {
            enabled,
            machine,
            epoch,
            stats: Arc::new(MachineStats::default()),
            read_rtt_ns: Histogram::new(),
            copier_service_ns: Histogram::new(),
            flush_fill_pct: Histogram::new(),
            side_occupancy: Histogram::new(),
            chunk_claims: Histogram::new(),
            checkpoint_bytes: Histogram::new(),
            checkpoint_ns: Histogram::new(),
            queue_wait_ns: Histogram::new(),
            dest_bytes: if enabled {
                (0..config.machines).map(|_| AtomicU64::new(0)).collect()
            } else {
                Vec::new()
            },
            tracers: (0..config.workers)
                .map(|_| Tracer::new(config.telemetry.ring_capacity, enabled))
                .collect(),
            job_active: AtomicU64::new(0),
            job_msgs_sent: AtomicU64::new(0),
            job_bytes_sent: AtomicU64::new(0),
            job_msgs_processed: AtomicU64::new(0),
        })
    }

    /// A standalone registry for unit tests and benches that build
    /// communication pieces without a full cluster.
    pub fn detached(machines: usize, enabled: bool) -> Arc<Telemetry> {
        let mut config = Config::test(machines);
        config.telemetry.enabled = enabled;
        Telemetry::new(0, &config, Instant::now())
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    pub fn machine(&self) -> u16 {
        self.machine
    }

    /// The machine's always-on counters; [`MachineStats`] lives here.
    pub fn stats(&self) -> &Arc<MachineStats> {
        &self.stats
    }

    /// Nanoseconds since the cluster-wide epoch.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Records a trace event on `worker`'s ring. One branch when disabled.
    #[inline]
    pub fn trace(&self, worker: usize, kind: EventKind, arg: u64) {
        if !self.enabled {
            return;
        }
        let ts = self.now_ns();
        if let Some(t) = self.tracers.get(worker) {
            t.record(ts, kind, arg);
        }
    }

    #[inline]
    pub fn record_read_rtt(&self, ns: u64) {
        if self.enabled {
            self.read_rtt_ns.record(ns);
        }
    }

    #[inline]
    pub fn record_copier_service(&self, ns: u64) {
        if self.enabled {
            self.copier_service_ns.record(ns);
        }
    }

    /// `pct` is payload bytes × 100 / buffer capacity at seal time.
    #[inline]
    pub fn record_flush_fill(&self, pct: u64) {
        if self.enabled {
            self.flush_fill_pct.record(pct);
        }
    }

    /// Side-structure entries in flight when a read buffer seals.
    #[inline]
    pub fn record_side_occupancy(&self, entries: u64) {
        if self.enabled {
            self.side_occupancy.record(entries);
        }
    }

    /// Chunks one worker claimed from the shared queue during a phase.
    #[inline]
    pub fn record_chunk_claims(&self, chunks: u64) {
        if self.enabled {
            self.chunk_claims.record(chunks);
        }
    }

    /// Payload bytes this machine snapshotted in one checkpoint.
    #[inline]
    pub fn record_checkpoint_bytes(&self, bytes: u64) {
        if self.enabled {
            self.checkpoint_bytes.record(bytes);
        }
    }

    /// Wall time of one cluster-wide checkpoint, nanoseconds.
    #[inline]
    pub fn record_checkpoint_ns(&self, ns: u64) {
        if self.enabled {
            self.checkpoint_ns.record(ns);
        }
    }

    /// Time one job spent queued in the server before dispatch, nanoseconds.
    #[inline]
    pub fn record_queue_wait(&self, ns: u64) {
        if self.enabled {
            self.queue_wait_ns.record(ns);
        }
    }

    /// Payload bytes sent from this machine to `dest`.
    #[inline]
    pub fn record_dest_bytes(&self, dest: usize, bytes: u64) {
        if !self.enabled {
            return;
        }
        if let Some(d) = self.dest_bytes.get(dest) {
            d.fetch_add(bytes, Ordering::Relaxed);
        }
    }

    /// Marks `ctx` as this machine's active job and zeroes its wire
    /// charge counters. Called on the dispatcher thread; jobs serialize.
    pub fn begin_job(&self, ctx: JobCtx) {
        if !self.enabled {
            return;
        }
        self.job_msgs_sent.store(0, Ordering::Relaxed);
        self.job_bytes_sent.store(0, Ordering::Relaxed);
        self.job_msgs_processed.store(0, Ordering::Relaxed);
        self.job_active.store(ctx.pack() + 1, Ordering::Release);
    }

    /// Clears the active job and returns the wire traffic charged to it
    /// on this machine since [`Telemetry::begin_job`].
    pub fn end_job(&self) -> JobWire {
        if !self.enabled {
            return JobWire::default();
        }
        self.job_active.store(0, Ordering::Release);
        JobWire {
            msgs_sent: self.job_msgs_sent.load(Ordering::Relaxed),
            bytes_sent: self.job_bytes_sent.load(Ordering::Relaxed),
            msgs_processed: self.job_msgs_processed.load(Ordering::Relaxed),
        }
    }

    /// The job currently charged for this machine's traffic, if any.
    pub fn current_job(&self) -> Option<JobCtx> {
        match self.job_active.load(Ordering::Acquire) {
            0 => None,
            v => Some(JobCtx::unpack(v - 1)),
        }
    }

    /// Charges one sealed send buffer of `bytes` payload to the active
    /// job. Called by workers at buffer-seal time; a no-op when idle.
    #[inline]
    pub fn record_job_send(&self, bytes: u64) {
        if !self.enabled || self.job_active.load(Ordering::Relaxed) == 0 {
            return;
        }
        self.job_msgs_sent.fetch_add(1, Ordering::Relaxed);
        self.job_bytes_sent.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Charges one processed inbound buffer to the active job. Called by
    /// copiers; a no-op when idle.
    #[inline]
    pub fn record_job_recv(&self) {
        if !self.enabled || self.job_active.load(Ordering::Relaxed) == 0 {
            return;
        }
        self.job_msgs_processed.fetch_add(1, Ordering::Relaxed);
    }

    pub fn workers(&self) -> usize {
        self.tracers.len()
    }

    /// Decoded events for one worker, oldest first.
    pub fn worker_events(&self, worker: usize) -> Vec<TraceEvent> {
        self.tracers
            .get(worker)
            .map(|t| t.events())
            .unwrap_or_default()
    }

    /// `(recorded, dropped)` event totals across this machine's workers.
    pub fn trace_volume(&self) -> (u64, u64) {
        let recorded: usize = self.tracers.iter().map(|t| t.recorded()).sum();
        let dropped: usize = self.tracers.iter().map(|t| t.dropped()).sum();
        (recorded as u64, dropped as u64)
    }

    /// Ring-buffer overflow per worker tracer: events lost to eviction,
    /// oldest-first ordering. A nonzero entry means that worker's
    /// timeline in the trace export is incomplete.
    pub fn worker_dropped(&self) -> Vec<u64> {
        self.tracers.iter().map(|t| t.dropped() as u64).collect()
    }

    pub fn read_rtt_snapshot(&self) -> HistogramSnapshot {
        self.read_rtt_ns.snapshot()
    }

    pub fn copier_service_snapshot(&self) -> HistogramSnapshot {
        self.copier_service_ns.snapshot()
    }

    pub fn flush_fill_snapshot(&self) -> HistogramSnapshot {
        self.flush_fill_pct.snapshot()
    }

    pub fn side_occupancy_snapshot(&self) -> HistogramSnapshot {
        self.side_occupancy.snapshot()
    }

    pub fn chunk_claims_snapshot(&self) -> HistogramSnapshot {
        self.chunk_claims.snapshot()
    }

    pub fn checkpoint_bytes_snapshot(&self) -> HistogramSnapshot {
        self.checkpoint_bytes.snapshot()
    }

    pub fn checkpoint_ns_snapshot(&self) -> HistogramSnapshot {
        self.checkpoint_ns.snapshot()
    }

    pub fn queue_wait_snapshot(&self) -> HistogramSnapshot {
        self.queue_wait_ns.snapshot()
    }

    pub fn dest_bytes_snapshot(&self) -> Vec<u64> {
        self.dest_bytes
            .iter()
            .map(|d| d.load(Ordering::Relaxed))
            .collect()
    }
}

/// No-op telemetry: the crate was built without the `telemetry` feature.
/// The API matches the instrumented version so call sites compile
/// unchanged; only the always-on [`MachineStats`] counters remain live.
#[cfg(not(feature = "telemetry"))]
pub struct Telemetry {
    machine: u16,
    stats: Arc<MachineStats>,
}

#[cfg(not(feature = "telemetry"))]
impl Telemetry {
    pub fn new(machine: u16, _config: &Config, _epoch: Instant) -> Arc<Telemetry> {
        Arc::new(Telemetry {
            machine,
            stats: Arc::new(MachineStats::default()),
        })
    }

    pub fn detached(_machines: usize, _enabled: bool) -> Arc<Telemetry> {
        Arc::new(Telemetry {
            machine: 0,
            stats: Arc::new(MachineStats::default()),
        })
    }

    #[inline(always)]
    pub fn enabled(&self) -> bool {
        false
    }

    pub fn machine(&self) -> u16 {
        self.machine
    }

    pub fn stats(&self) -> &Arc<MachineStats> {
        &self.stats
    }

    #[inline(always)]
    pub fn now_ns(&self) -> u64 {
        0
    }

    #[inline(always)]
    pub fn trace(&self, _worker: usize, _kind: EventKind, _arg: u64) {}
    #[inline(always)]
    pub fn record_read_rtt(&self, _ns: u64) {}
    #[inline(always)]
    pub fn record_copier_service(&self, _ns: u64) {}
    #[inline(always)]
    pub fn record_flush_fill(&self, _pct: u64) {}
    #[inline(always)]
    pub fn record_side_occupancy(&self, _entries: u64) {}
    #[inline(always)]
    pub fn record_chunk_claims(&self, _chunks: u64) {}
    #[inline(always)]
    pub fn record_checkpoint_bytes(&self, _bytes: u64) {}
    #[inline(always)]
    pub fn record_checkpoint_ns(&self, _ns: u64) {}
    #[inline(always)]
    pub fn record_queue_wait(&self, _ns: u64) {}
    #[inline(always)]
    pub fn record_dest_bytes(&self, _dest: usize, _bytes: u64) {}

    #[inline(always)]
    pub fn begin_job(&self, _ctx: JobCtx) {}

    #[inline(always)]
    pub fn end_job(&self) -> JobWire {
        JobWire::default()
    }

    #[inline(always)]
    pub fn current_job(&self) -> Option<JobCtx> {
        None
    }

    #[inline(always)]
    pub fn record_job_send(&self, _bytes: u64) {}

    #[inline(always)]
    pub fn record_job_recv(&self) {}

    pub fn worker_dropped(&self) -> Vec<u64> {
        Vec::new()
    }

    pub fn workers(&self) -> usize {
        0
    }

    pub fn worker_events(&self, _worker: usize) -> Vec<TraceEvent> {
        Vec::new()
    }

    pub fn trace_volume(&self) -> (u64, u64) {
        (0, 0)
    }

    pub fn read_rtt_snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot::default()
    }
    pub fn copier_service_snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot::default()
    }
    pub fn flush_fill_snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot::default()
    }
    pub fn side_occupancy_snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot::default()
    }
    pub fn chunk_claims_snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot::default()
    }
    pub fn checkpoint_bytes_snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot::default()
    }
    pub fn checkpoint_ns_snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot::default()
    }
    pub fn queue_wait_snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot::default()
    }
    pub fn dest_bytes_snapshot(&self) -> Vec<u64> {
        Vec::new()
    }
}

#[cfg(all(test, feature = "telemetry"))]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let t = Telemetry::detached(2, false);
        t.record_read_rtt(100);
        t.record_dest_bytes(1, 64);
        t.trace(0, EventKind::PhaseStart, 1);
        assert_eq!(t.read_rtt_snapshot().count(), 0);
        assert!(t.dest_bytes_snapshot().is_empty());
        assert_eq!(t.trace_volume(), (0, 0));
    }

    #[test]
    fn enabled_registry_records() {
        let t = Telemetry::detached(2, true);
        t.record_read_rtt(100);
        t.record_flush_fill(85);
        t.record_dest_bytes(1, 64);
        t.trace(0, EventKind::BufferFlush, 512);
        assert_eq!(t.read_rtt_snapshot().count(), 1);
        assert_eq!(t.flush_fill_snapshot().count(), 1);
        assert_eq!(t.dest_bytes_snapshot(), vec![0, 64]);
        let ev = t.worker_events(0);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].kind, EventKind::BufferFlush);
        assert_eq!(ev[0].arg, 512);
    }

    #[test]
    fn job_charges_only_while_active() {
        let t = Telemetry::detached(2, true);
        t.record_job_send(100); // idle: not charged
        t.record_job_recv();
        let ctx = JobCtx {
            job: 7,
            session: 3,
            lane: 0,
        };
        t.begin_job(ctx);
        assert_eq!(t.current_job(), Some(ctx));
        t.record_job_send(64);
        t.record_job_send(32);
        t.record_job_recv();
        let wire = t.end_job();
        assert_eq!(t.current_job(), None);
        assert_eq!(wire.msgs_sent, 2);
        assert_eq!(wire.bytes_sent, 96);
        assert_eq!(wire.msgs_processed, 1);
        t.record_job_send(8); // after end: not charged
        t.begin_job(ctx);
        assert_eq!(t.end_job(), JobWire::default());
    }
}
