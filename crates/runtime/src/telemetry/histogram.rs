//! Log-scale atomic histograms.
//!
//! Power-of-two buckets: bucket 0 counts zeros, bucket `i` (1..=64) counts
//! values `v` with `2^(i-1) <= v < 2^i`. Recording is a single relaxed
//! `fetch_add` on the bucket plus one on the running sum, so histograms can
//! be shared across threads without locks and merged associatively —
//! per-machine histograms fold into cluster-wide ones in any order.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for zero plus one per bit position.
pub const NUM_BUCKETS: usize = 65;

/// A lock-free histogram with power-of-two bucket boundaries.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; NUM_BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    /// The bucket index holding `value`.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Smallest value belonging to bucket `i`.
    #[inline]
    pub fn bucket_lower_bound(i: usize) -> u64 {
        match i {
            0 => 0,
            _ => 1u64 << (i - 1),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.counts[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Point-in-time copy of the histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: std::array::from_fn(|i| self.counts[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    /// Total observations recorded so far.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }
}

/// A mergeable point-in-time histogram copy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub counts: [u64; NUM_BUCKETS],
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            counts: [0; NUM_BUCKETS],
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean of the recorded values (exact: the sum is tracked separately).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Lower bound of the bucket containing the `q`-quantile
    /// (`0.0 <= q <= 1.0`); 0 for an empty histogram.
    pub fn quantile_lower_bound(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Histogram::bucket_lower_bound(i);
            }
        }
        Histogram::bucket_lower_bound(NUM_BUCKETS - 1)
    }

    /// Occupied buckets as `(lower_bound, count)` pairs, low to high.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Histogram::bucket_lower_bound(i), c))
            .collect()
    }
}

impl std::ops::Add for HistogramSnapshot {
    type Output = HistogramSnapshot;
    fn add(self, rhs: HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: std::array::from_fn(|i| self.counts[i].wrapping_add(rhs.counts[i])),
            // Wrapping, matching the atomic `fetch_add` in `record`: a
            // merge of shard snapshots then equals one histogram fed the
            // union of the samples, bit for bit.
            sum: self.sum.wrapping_add(rhs.sum),
        }
    }
}

impl std::ops::Sub for HistogramSnapshot {
    type Output = HistogramSnapshot;
    /// Windowed delta: `after - before` of two snapshots of the same
    /// histogram yields the observations recorded in between. Counts are
    /// monotonically non-decreasing, so wrapping subtraction is exact for
    /// ordered snapshots and mirrors the wrapping `Add`.
    fn sub(self, rhs: HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: std::array::from_fn(|i| self.counts[i].wrapping_sub(rhs.counts[i])),
            sum: self.sum.wrapping_sub(rhs.sum),
        }
    }
}

impl std::iter::Sum for HistogramSnapshot {
    fn sum<I: Iterator<Item = HistogramSnapshot>>(iter: I) -> HistogramSnapshot {
        iter.fold(HistogramSnapshot::default(), |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        for i in 1..NUM_BUCKETS {
            let lo = Histogram::bucket_lower_bound(i);
            assert_eq!(Histogram::bucket_index(lo), i);
            assert_eq!(
                Histogram::bucket_index(lo - 1).min(i),
                Histogram::bucket_index(lo - 1)
            );
        }
    }

    #[test]
    fn record_and_mean() {
        let h = Histogram::new();
        h.record(0);
        h.record(7);
        h.record(9);
        let s = h.snapshot();
        assert_eq!(s.count(), 3);
        assert_eq!(s.sum, 16);
        assert!((s.mean() - 16.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.counts[0], 1);
        assert_eq!(s.counts[3], 1); // 7 ∈ [4, 8)
        assert_eq!(s.counts[4], 1); // 9 ∈ [8, 16)
    }

    #[test]
    fn quantiles() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(10);
        }
        h.record(1_000_000);
        let s = h.snapshot();
        assert_eq!(s.quantile_lower_bound(0.5), 8);
        assert_eq!(s.quantile_lower_bound(1.0), 524_288); // 2^19 <= 1e6 < 2^20
        assert_eq!(HistogramSnapshot::default().quantile_lower_bound(0.5), 0);
    }

    #[test]
    fn merge_matches_combined_recording() {
        let a = Histogram::new();
        let b = Histogram::new();
        let both = Histogram::new();
        for v in [0u64, 1, 5, 1023, 1024, u64::MAX] {
            a.record(v);
            both.record(v);
        }
        for v in [3u64, 3, 70_000] {
            b.record(v);
            both.record(v);
        }
        assert_eq!(a.snapshot() + b.snapshot(), both.snapshot());
    }

    #[test]
    fn windowed_delta_recovers_interval() {
        let h = Histogram::new();
        h.record(10);
        h.record(100);
        let before = h.snapshot();
        h.record(7);
        h.record(3_000);
        let delta = h.snapshot() - before;
        let expect = Histogram::new();
        expect.record(7);
        expect.record(3_000);
        assert_eq!(delta, expect.snapshot());
        assert_eq!(before - before, HistogramSnapshot::default());
    }
}
