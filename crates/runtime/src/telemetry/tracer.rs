//! Per-worker event tracing.
//!
//! Each worker thread owns one `Tracer`: a fixed-size power-of-two ring of
//! `(timestamp, packed kind|arg)` slots written with `Relaxed` atomic
//! stores. Recording when tracing is enabled is two stores and one
//! `fetch_add`; when disabled it is a single predictable branch. The ring
//! overwrites oldest entries on wraparound — the tail of a run is what
//! matters for post-mortem inspection, and a bounded ring means the hot
//! path never allocates.
//!
//! A tracer is single-writer (its worker) / quiescent-reader (export runs
//! after the phases finish), so relaxed ordering cannot tear an event pair
//! that anyone observes.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// What happened. Packed into the low 8 bits of a slot; the remaining 56
/// bits carry an event-specific argument.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A worker started executing a phase. `arg` = phase epoch.
    PhaseStart = 0,
    /// A worker finished executing a phase. `arg` = phase epoch.
    PhaseEnd = 1,
    /// A worker reached the end-of-phase barrier. `arg` = phase epoch.
    BarrierEnter = 2,
    /// A worker was released from the barrier. `arg` = phase epoch.
    BarrierExit = 3,
    /// A message buffer was sealed and handed to the fabric. `arg` = payload bytes.
    BufferFlush = 4,
    /// The send-buffer pool ran dry and fresh allocations were forced.
    /// `arg` = number of exhaustion events since the last one traced.
    PoolStall = 5,
    /// A worker began pushing ghost-node values. `arg` = nodes in its share.
    GhostPush = 6,
    /// A worker began pushing ghost reduction partials. `arg` = nodes in its share.
    GhostReduce = 7,
    /// The poller retransmitted unacknowledged envelopes. `arg` = count.
    Retransmit = 8,
    /// A duplicate envelope was suppressed. `arg` = its sequence number.
    DupDrop = 9,
    /// A worker failed its in-flight continuations after a cluster abort.
    /// `arg` = entries failed.
    AbortSweep = 10,
    /// The adaptive flush controller moved the effective threshold between
    /// phase barriers. `arg` = the new threshold in bytes.
    FlushRetune = 11,
    /// A barrier-consistent checkpoint was taken. `arg` = payload bytes
    /// snapshotted cluster-wide.
    CheckpointTaken = 12,
    /// The recovery driver began a retry attempt (degraded rebuild +
    /// restore). `arg` = the attempt number (1 = first retry).
    RecoveryStart = 13,
    /// A retry attempt finished restoring state and resumed the job.
    /// `arg` = the iteration resumed from.
    RecoveryDone = 14,
    /// The job server accepted a submission into a scheduler lane.
    /// `arg` = the job id.
    JobEnqueue = 15,
    /// The job server dispatched a queued job onto the cluster.
    /// `arg` = the job id.
    JobDispatch = 16,
    /// A job was cancelled (explicitly, by deadline, or at session close).
    /// `arg` = the job id.
    JobCancel = 17,
    /// A dispatched job finished and released the cluster (successfully
    /// or with an error). `arg` = the job id.
    JobDone = 18,
    /// A restore skipped a corrupt or incomplete checkpoint and fell back
    /// to an older retained ring entry. `arg` = the sequence skipped.
    CheckpointFallback = 19,
    /// No retained checkpoint was restorable; the job restarted from
    /// iteration zero. `arg` = checkpoints tried before giving up.
    ColdRestart = 20,
    /// The flap detector quarantined a repeatedly-tripping machine and the
    /// driver degraded proactively. `arg` = the machine id.
    Quarantine = 21,
    /// The brownout gate closed the batch lane under overload.
    /// `arg` = queue occupancy at the shed decision.
    BrownoutShed = 22,
    /// The brownout gate re-opened the batch lane after occupancy fell
    /// below the hysteresis threshold. `arg` = occupancy at re-open.
    BrownoutReopen = 23,
}

impl EventKind {
    pub fn name(self) -> &'static str {
        match self {
            EventKind::PhaseStart => "phase_start",
            EventKind::PhaseEnd => "phase_end",
            EventKind::BarrierEnter => "barrier_enter",
            EventKind::BarrierExit => "barrier_exit",
            EventKind::BufferFlush => "flush",
            EventKind::PoolStall => "pool_stall",
            EventKind::GhostPush => "ghost_push",
            EventKind::GhostReduce => "ghost_reduce",
            EventKind::Retransmit => "retransmit",
            EventKind::DupDrop => "dup_drop",
            EventKind::AbortSweep => "abort_sweep",
            EventKind::FlushRetune => "flush_retune",
            EventKind::CheckpointTaken => "checkpoint_taken",
            EventKind::RecoveryStart => "recovery_start",
            EventKind::RecoveryDone => "recovery_done",
            EventKind::JobEnqueue => "job_enqueue",
            EventKind::JobDispatch => "job_dispatch",
            EventKind::JobCancel => "job_cancel",
            EventKind::JobDone => "job_done",
            EventKind::CheckpointFallback => "checkpoint_fallback",
            EventKind::ColdRestart => "cold_restart",
            EventKind::Quarantine => "quarantine",
            EventKind::BrownoutShed => "brownout_shed",
            EventKind::BrownoutReopen => "brownout_reopen",
        }
    }

    pub fn from_u8(v: u8) -> Option<EventKind> {
        Some(match v {
            0 => EventKind::PhaseStart,
            1 => EventKind::PhaseEnd,
            2 => EventKind::BarrierEnter,
            3 => EventKind::BarrierExit,
            4 => EventKind::BufferFlush,
            5 => EventKind::PoolStall,
            6 => EventKind::GhostPush,
            7 => EventKind::GhostReduce,
            8 => EventKind::Retransmit,
            9 => EventKind::DupDrop,
            10 => EventKind::AbortSweep,
            11 => EventKind::FlushRetune,
            12 => EventKind::CheckpointTaken,
            13 => EventKind::RecoveryStart,
            14 => EventKind::RecoveryDone,
            15 => EventKind::JobEnqueue,
            16 => EventKind::JobDispatch,
            17 => EventKind::JobCancel,
            18 => EventKind::JobDone,
            19 => EventKind::CheckpointFallback,
            20 => EventKind::ColdRestart,
            21 => EventKind::Quarantine,
            22 => EventKind::BrownoutShed,
            23 => EventKind::BrownoutReopen,
            _ => return None,
        })
    }
}

/// A decoded trace record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the cluster-wide epoch.
    pub ts_ns: u64,
    pub kind: EventKind,
    pub arg: u64,
}

struct Slot {
    ts: AtomicU64,
    /// `kind as u64 | (arg << 8)`.
    code: AtomicU64,
}

/// A fixed-capacity ring buffer of trace events.
pub struct Tracer {
    enabled: bool,
    mask: usize,
    slots: Vec<Slot>,
    /// Total events ever recorded; `head & mask` is the next write slot.
    head: AtomicUsize,
}

impl Tracer {
    /// `capacity` is rounded up to a power of two (min 16). A disabled
    /// tracer allocates no slots.
    pub fn new(capacity: usize, enabled: bool) -> Tracer {
        let cap = capacity.max(16).next_power_of_two();
        let slots = if enabled {
            (0..cap)
                .map(|_| Slot {
                    ts: AtomicU64::new(0),
                    code: AtomicU64::new(0),
                })
                .collect()
        } else {
            Vec::new()
        };
        Tracer {
            enabled,
            mask: cap - 1,
            slots,
            head: AtomicUsize::new(0),
        }
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records one event. One branch when disabled.
    #[inline]
    pub fn record(&self, ts_ns: u64, kind: EventKind, arg: u64) {
        if !self.enabled {
            return;
        }
        let i = self.head.fetch_add(1, Ordering::Relaxed) & self.mask;
        let slot = &self.slots[i];
        slot.ts.store(ts_ns, Ordering::Relaxed);
        slot.code.store(kind as u64 | (arg << 8), Ordering::Relaxed);
    }

    /// Events recorded over the tracer's lifetime (including overwritten ones).
    pub fn recorded(&self) -> usize {
        self.head.load(Ordering::Relaxed)
    }

    /// Events lost to ring wraparound.
    pub fn dropped(&self) -> usize {
        self.recorded().saturating_sub(self.slots.len())
    }

    /// Decodes the retained events, oldest first. Call only when the owning
    /// worker is quiescent (between phases or after shutdown).
    pub fn events(&self) -> Vec<TraceEvent> {
        let head = self.head.load(Ordering::Relaxed);
        let retained = head.min(self.slots.len());
        let mut out = Vec::with_capacity(retained);
        for seq in (head - retained)..head {
            let slot = &self.slots[seq & self.mask];
            let code = slot.code.load(Ordering::Relaxed);
            if let Some(kind) = EventKind::from_u8((code & 0xff) as u8) {
                out.push(TraceEvent {
                    ts_ns: slot.ts.load(Ordering::Relaxed),
                    kind,
                    arg: code >> 8,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let t = Tracer::new(64, false);
        t.record(1, EventKind::PhaseStart, 0);
        assert_eq!(t.recorded(), 0);
        assert!(t.events().is_empty());
        assert_eq!(t.capacity(), 0);
    }

    #[test]
    fn roundtrip_in_order() {
        let t = Tracer::new(16, true);
        t.record(10, EventKind::PhaseStart, 1);
        t.record(20, EventKind::BufferFlush, 4096);
        t.record(30, EventKind::PhaseEnd, 1);
        let ev = t.events();
        assert_eq!(
            ev,
            vec![
                TraceEvent {
                    ts_ns: 10,
                    kind: EventKind::PhaseStart,
                    arg: 1
                },
                TraceEvent {
                    ts_ns: 20,
                    kind: EventKind::BufferFlush,
                    arg: 4096
                },
                TraceEvent {
                    ts_ns: 30,
                    kind: EventKind::PhaseEnd,
                    arg: 1
                },
            ]
        );
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn wraparound_keeps_newest() {
        let t = Tracer::new(16, true);
        for i in 0..40u64 {
            t.record(i, EventKind::BufferFlush, i * 2);
        }
        assert_eq!(t.recorded(), 40);
        assert_eq!(t.dropped(), 24);
        let ev = t.events();
        assert_eq!(ev.len(), 16);
        // Oldest retained event is #24, newest is #39, in order.
        for (off, e) in ev.iter().enumerate() {
            let seq = 24 + off as u64;
            assert_eq!(e.ts_ns, seq);
            assert_eq!(e.arg, seq * 2);
        }
    }

    #[test]
    fn capacity_rounds_up() {
        let t = Tracer::new(17, true);
        assert_eq!(t.capacity(), 32);
        let t = Tracer::new(0, true);
        assert_eq!(t.capacity(), 16);
    }
}
