//! Property tests of the telemetry histogram: bucket placement must be
//! consistent with the power-of-two bucket bounds for arbitrary values,
//! and snapshot merging must be associative and equal to recording the
//! union of the samples.

use pgxd_runtime::telemetry::{Histogram, NUM_BUCKETS};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every value lands in exactly one bucket whose `[lower, 2×lower)`
    /// range contains it (bucket 0 holds only zeros).
    #[test]
    fn bucket_bounds_contain_value(v in any::<u64>()) {
        let h = Histogram::new();
        h.record(v);
        let s = h.snapshot();
        prop_assert_eq!(s.count(), 1);
        prop_assert_eq!(s.sum, v);
        let populated: Vec<usize> = (0..NUM_BUCKETS).filter(|&i| s.counts[i] > 0).collect();
        prop_assert_eq!(populated.len(), 1);
        let i = populated[0];
        let lo = Histogram::bucket_lower_bound(i);
        prop_assert!(v >= lo, "value {} below bucket {} lower bound {}", v, i, lo);
        if i + 1 < NUM_BUCKETS {
            let next = Histogram::bucket_lower_bound(i + 1);
            prop_assert!(v < next, "value {} not below bucket {} bound {}", v, i + 1, next);
        }
    }

    /// Merging per-shard snapshots equals recording everything into one
    /// histogram, regardless of how the samples are split.
    #[test]
    fn merge_equals_union(samples in prop::collection::vec(any::<u64>(), 0..200),
                          split in any::<usize>()) {
        let cut = if samples.is_empty() { 0 } else { split % samples.len() };
        let (left, right) = samples.split_at(cut);
        let (ha, hb, hall) = (Histogram::new(), Histogram::new(), Histogram::new());
        for &v in left {
            ha.record(v);
            hall.record(v);
        }
        for &v in right {
            hb.record(v);
            hall.record(v);
        }
        let merged = ha.snapshot() + hb.snapshot();
        prop_assert_eq!(merged, hall.snapshot());
    }

    /// Merge associativity: (a + b) + c == a + (b + c).
    #[test]
    fn merge_associative(a in prop::collection::vec(any::<u64>(), 0..50),
                         b in prop::collection::vec(any::<u64>(), 0..50),
                         c in prop::collection::vec(any::<u64>(), 0..50)) {
        let snap = |vals: &[u64]| {
            let h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h.snapshot()
        };
        let (sa, sb, sc) = (snap(&a), snap(&b), snap(&c));
        prop_assert_eq!((sa + sb) + sc, sa + (sb + sc));
    }

    /// Merge commutativity: a + b == b + a (shard drain order must not
    /// matter when the exporter folds per-worker snapshots).
    #[test]
    fn merge_commutative(a in prop::collection::vec(any::<u64>(), 0..80),
                         b in prop::collection::vec(any::<u64>(), 0..80)) {
        let snap = |vals: &[u64]| {
            let h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h.snapshot()
        };
        let (sa, sb) = (snap(&a), snap(&b));
        prop_assert_eq!(sa + sb, sb + sa);
    }

    /// The p50/p99 estimates land in the same power-of-two bucket as the
    /// exact sample quantiles (both sides use the ceil-rank convention),
    /// i.e. the estimate is never more than one bucket boundary off.
    #[test]
    fn quantile_estimate_within_one_bucket(
        samples in prop::collection::vec(any::<u64>(), 1..200),
    ) {
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let s = h.snapshot();
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.99] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
            let exact = sorted[rank - 1];
            let est = s.quantile_lower_bound(q);
            let (be, bx) = (Histogram::bucket_index(est), Histogram::bucket_index(exact));
            prop_assert!(
                be.abs_diff(bx) <= 1,
                "q={} estimate {} (bucket {}) vs exact {} (bucket {})",
                q, est, be, exact, bx
            );
            // The estimate is a *lower bound*: it never overshoots the
            // exact quantile value.
            prop_assert!(est <= exact, "estimate {} above exact {}", est, exact);
        }
    }

    /// Quantile lower bounds are monotone in `q` and never exceed the
    /// largest recorded value.
    #[test]
    fn quantiles_monotone(samples in prop::collection::vec(1u64..u64::MAX, 1..100)) {
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let s = h.snapshot();
        let max = *samples.iter().max().unwrap();
        let mut prev = 0u64;
        for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
            let lb = s.quantile_lower_bound(q);
            prop_assert!(lb >= prev, "quantiles must be monotone");
            prop_assert!(lb <= max, "lower bound {} beyond max {}", lb, max);
            prev = lb;
        }
    }
}
