//! Property tests of the reliability layer's dedup and ack windows under
//! the worst schedule the fabric can produce: every sequence number
//! delivered multiple times (max-rate duplication) in an arbitrary order
//! (max-rate reordering), with acknowledgements replayed and reordered
//! just as badly.
//!
//! The fabric-level counterpart (a real cluster job under
//! `FaultPlan::lossy(seed, 0, 1000, 1000)`) lives in
//! `tests/tests/chaos_e2e.rs`; these tests pin the window/store invariants
//! the end-to-end bit-identical result rests on.

use pgxd_runtime::config::ReliabilityConfig;
use pgxd_runtime::message::{Envelope, MsgKind};
use pgxd_runtime::reliable::{lane_of, DedupWindow, Reliability, REQUEST_LANE};
use pgxd_runtime::stats::MachineStats;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn reliability(machines: usize, workers: usize) -> Reliability {
    Reliability::new(
        machines,
        workers,
        ReliabilityConfig::on(),
        Arc::new(MachineStats::default()),
    )
}

fn request(dst: u16) -> Envelope {
    Envelope {
        src: 0,
        dst,
        kind: MsgKind::Write,
        worker: 0,
        side_id: 0,
        seq: 0,
        payload: Vec::new(),
    }
}

/// splitmix64 — drives the seeded schedule permutations.
fn mix(seed: u64, n: u64) -> u64 {
    let mut z = seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A delivery schedule where every sequence number `1..=n` appears 1–3
/// times (at max dup rate the fabric clones each envelope, and
/// retransmits add more), shuffled into a seed-determined arbitrary
/// arrival order (Fisher–Yates on splitmix64 draws).
fn schedule(n: usize, seed: u64) -> Vec<u64> {
    let mut deliveries = Vec::new();
    for s in 1..=n as u64 {
        let copies = 1 + mix(seed, s) % 3;
        for _ in 0..copies {
            deliveries.push(s);
        }
    }
    for i in (1..deliveries.len()).rev() {
        let j = (mix(seed ^ 0x00C0_FFEE, i as u64) % (i as u64 + 1)) as usize;
        deliveries.swap(i, j);
    }
    deliveries
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The dedup window accepts every sequence number exactly once, no
    /// matter how duplicated and reordered the arrival schedule is, and
    /// its floor advances so replays stay rejected forever after.
    #[test]
    fn dedup_window_is_exactly_once_under_max_dup_reorder(
        n in 1usize..120,
        seed in any::<u64>(),
    ) {
        let deliveries = schedule(n, seed);
        let mut w = DedupWindow::default();
        let mut accepted = vec![0usize; n + 1];
        for &seq in &deliveries {
            if w.accept(seq) {
                accepted[seq as usize] += 1;
            }
        }
        for (seq, &count) in accepted.iter().enumerate().skip(1) {
            prop_assert_eq!(count, 1, "seq {} accepted {} times", seq, count);
        }
        // Everything was delivered, so the cumulative floor covers the
        // whole stream: replays of any old seq are rejected and the next
        // fresh seq is still accepted.
        for &seq in &deliveries {
            prop_assert!(!w.accept(seq), "replay of {} accepted late", seq);
        }
        prop_assert!(w.accept(n as u64 + 1));
    }

    /// Same property through the shared request-lane window, with a
    /// second source interleaved to prove windows never cross streams.
    #[test]
    fn request_lane_dedup_is_per_source(
        n in 1usize..80,
        seed in any::<u64>(),
    ) {
        let deliveries = schedule(n, seed);
        let r = reliability(3, 1);
        let mut accepted_1 = 0usize;
        let mut accepted_2 = 0usize;
        for &seq in &deliveries {
            if r.accept_request(1, seq) {
                accepted_1 += 1;
            }
            // Source 2 replays the same schedule: independent window.
            if r.accept_request(2, seq) {
                accepted_2 += 1;
            }
        }
        prop_assert_eq!(accepted_1, n);
        prop_assert_eq!(accepted_2, n);
    }

    /// The ack/retransmit store drains to empty when every ack arrives —
    /// duplicated, reordered acks included — and replayed acks for
    /// already-cleared envelopes are harmless no-ops.
    #[test]
    fn ack_store_drains_under_max_dup_reorder(
        n in 1usize..80,
        seed in any::<u64>(),
    ) {
        let acks = schedule(n, seed);
        let r = reliability(2, 1);
        let now = Instant::now();
        for _ in 0..n {
            let mut e = request(1);
            r.register(&mut e, now);
            prop_assert_eq!(lane_of(&e), REQUEST_LANE);
        }
        prop_assert_eq!(r.in_flight_count(), n);
        for &seq in &acks {
            r.on_ack(1, REQUEST_LANE, seq);
        }
        prop_assert_eq!(r.in_flight_count(), 0, "acked store must drain");
        // Nothing left to retransmit: a poller sweep far in the future
        // finds no due envelopes and condemns no machine.
        let later = now + std::time::Duration::from_secs(3600);
        let due = r.due_retransmits(later);
        prop_assert!(due.is_ok());
        prop_assert!(due.unwrap().is_empty());
    }

    /// Sequence numbers survive a retransmit round-trip: a retransmitted
    /// envelope carries the original seq, so the receiver's window maps
    /// the copy onto the first delivery instead of double-applying it.
    #[test]
    fn retransmits_replay_the_original_sequence(n in 1usize..40) {
        let r = reliability(2, 1);
        let t0 = Instant::now();
        let mut seqs = Vec::new();
        for _ in 0..n {
            let mut e = request(1);
            r.register(&mut e, t0);
            seqs.push(e.seq);
        }
        let t1 = t0 + std::time::Duration::from_millis(
            r.config().rto_base_ms + 1,
        );
        let due = r.due_retransmits(t1).unwrap();
        let mut due_seqs: Vec<u64> = due.iter().map(|e| e.seq).collect();
        due_seqs.sort_unstable();
        prop_assert_eq!(due_seqs, seqs.clone());
        // A window that already accepted the originals rejects every copy.
        let mut w = DedupWindow::default();
        for &s in &seqs {
            prop_assert!(w.accept(s));
        }
        for e in &due {
            prop_assert!(!w.accept(e.seq), "retransmit double-applied");
        }
    }
}
