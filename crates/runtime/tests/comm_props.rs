//! Property tests of the worker-communication accounting: for arbitrary
//! interleavings of reads, writes, flushes, and simulated copier
//! responses, the pending-entry counter must return to exactly zero and
//! every continuation record must be delivered exactly once.

use crossbeam::channel::unbounded;
use pgxd_runtime::buffer::BufferPool;
use pgxd_runtime::health::ClusterHealth;
use pgxd_runtime::message::{self, Envelope, MsgKind};
use pgxd_runtime::props::{PropId, ReduceOp};
use pgxd_runtime::telemetry::Telemetry;
use pgxd_runtime::worker::{CommTuning, SideRec, WorkerComm};
use proptest::prelude::*;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

#[derive(Clone, Debug)]
enum Op {
    Read { dst: u8, offset: u32, aux: u64 },
    Write { dst: u8, offset: u32, bits: u64 },
    Flush,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..3, any::<u32>(), any::<u64>()).prop_map(|(dst, offset, aux)| Op::Read {
            dst,
            offset,
            aux
        }),
        (0u8..3, any::<u32>(), any::<u64>()).prop_map(|(dst, offset, bits)| Op::Write {
            dst,
            offset,
            bits
        }),
        Just(Op::Flush),
    ]
}

/// Simulates the remote copiers: answers every sealed request envelope.
/// Returns the number of write entries applied.
fn answer_all(
    out_rx: &crossbeam::channel::Receiver<Envelope>,
    resp_tx: &crossbeam::channel::Sender<Envelope>,
    pending: &AtomicI64,
) -> usize {
    let mut writes = 0usize;
    while let Ok(env) = out_rx.try_recv() {
        match env.kind {
            MsgKind::ReadReq => {
                let n = message::read_entry_count(&env.payload);
                let mut payload = Vec::new();
                for i in 0..n {
                    let (_prop, offset) = message::read_entry(&env.payload, i);
                    message::push_resp_entry(&mut payload, offset as u64 + 1);
                }
                resp_tx
                    .send(Envelope {
                        src: env.dst,
                        dst: env.src,
                        kind: MsgKind::ReadResp,
                        worker: env.worker,
                        side_id: env.side_id,
                        seq: 0,
                        payload,
                    })
                    .unwrap();
            }
            MsgKind::Write => {
                let n = message::mut_entry_count(&env.payload);
                writes += n;
                pending.fetch_sub(n as i64, Ordering::AcqRel);
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }
    writes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pending_returns_to_zero(ops in prop::collection::vec(arb_op(), 0..200),
                               buffer_bytes in 64usize..512) {
        let (out_tx, out_rx) = unbounded();
        let (resp_tx, resp_rx) = unbounded();
        let pending = Arc::new(AtomicI64::new(0));
        let mut comm = WorkerComm::new(
            0,
            0,
            3,
            CommTuning::fixed(buffer_bytes),
            resp_rx,
            out_tx,
            Arc::new(BufferPool::new(4, buffer_bytes)),
            pending.clone(),
            Telemetry::detached(3, true),
            Arc::new(ClusterHealth::new(3)),
            false,
        );

        let mut issued_reads = 0usize;
        let mut issued_writes = 0usize;
        for op in &ops {
            match *op {
                Op::Read { dst, offset, aux } => {
                    comm.push_read(dst as u16, PropId(1), offset, SideRec { node: 7, aux });
                    issued_reads += 1;
                }
                Op::Write { dst, offset, bits } => {
                    comm.push_mut(dst as u16, PropId(2), ReduceOp::Sum, offset, bits);
                    issued_writes += 1;
                }
                Op::Flush => comm.flush(),
            }
        }
        comm.flush();
        prop_assert!(comm.is_flushed());

        // Drain the "network": copiers answer, worker consumes responses.
        let mut applied_writes = 0usize;
        let mut delivered = 0usize;
        loop {
            applied_writes += answer_all(&out_rx, &resp_tx, &pending);
            let mut progressed = false;
            while let Some(resp) = comm.try_pop_response() {
                progressed = true;
                for i in 0..resp.recs.len() {
                    let bits = resp.read_value(i);
                    // The simulated copier echoes offset + 1; records must
                    // pair with their own request's answer.
                    prop_assert!(bits >= 1);
                    prop_assert_eq!(resp.recs[i].node, 7);
                    delivered += 1;
                }
                comm.finish_response(resp);
            }
            if !progressed && out_rx.is_empty() {
                break;
            }
        }

        prop_assert_eq!(delivered, issued_reads, "every read continues exactly once");
        prop_assert_eq!(applied_writes, issued_writes, "every write applies exactly once");
        prop_assert_eq!(pending.load(Ordering::SeqCst), 0, "no leaked pending entries");
        prop_assert_eq!(comm.in_flight_sides(), 0, "no leaked side structures");
    }

    /// Request order within one destination must be preserved end to end:
    /// responses pair values with records positionally.
    #[test]
    fn read_order_preserved(offsets in prop::collection::vec(any::<u32>(), 1..100),
                            buffer_bytes in 64usize..256) {
        let (out_tx, out_rx) = unbounded();
        let (resp_tx, resp_rx) = unbounded();
        let pending = Arc::new(AtomicI64::new(0));
        let mut comm = WorkerComm::new(
            0, 0, 2, CommTuning::fixed(buffer_bytes), resp_rx, out_tx,
            Arc::new(BufferPool::new(4, buffer_bytes)),
            pending.clone(),
            Telemetry::detached(2, false),
            Arc::new(ClusterHealth::new(2)),
            false,
        );
        for (i, &off) in offsets.iter().enumerate() {
            comm.push_read(1, PropId(0), off, SideRec { node: 0, aux: i as u64 });
        }
        comm.flush();
        answer_all(&out_rx, &resp_tx, &pending);
        let mut seen: Vec<(u64, u64)> = Vec::new(); // (aux, value)
        while let Some(resp) = comm.try_pop_response() {
            for i in 0..resp.recs.len() {
                seen.push((resp.recs[i].aux, resp.read_value(i)));
            }
            comm.finish_response(resp);
        }
        prop_assert_eq!(seen.len(), offsets.len());
        // Each aux's value must be its own offset + 1 (the echo), proving
        // the side record lined up with the right payload slot.
        for (aux, value) in seen {
            prop_assert_eq!(value, offsets[aux as usize] as u64 + 1);
        }
    }

    /// Read combining must be invisible to continuations: for any read
    /// sequence (duplicates included, a small offset domain forces many),
    /// the delivered `(aux → value)` mapping is bit-identical with
    /// combining on and off, while the combined run never puts *more*
    /// entries on the wire.
    #[test]
    fn combining_is_bit_identical(offsets in prop::collection::vec(0u32..16, 1..120),
                                  buffer_bytes in 64usize..256) {
        // Per run: delivered (aux, value) pairs, wire entries, combined hits.
        type RunOutcome = (Vec<(u64, u64)>, usize, u64);
        let mut runs: Vec<RunOutcome> = Vec::new();
        for combining in [true, false] {
            let (out_tx, out_rx) = unbounded();
            let (resp_tx, resp_rx) = unbounded();
            let pending = Arc::new(AtomicI64::new(0));
            let mut tuning = CommTuning::fixed(buffer_bytes);
            tuning.read_combining = combining;
            let mut comm = WorkerComm::new(
                0, 0, 2, tuning, resp_rx, out_tx,
                Arc::new(BufferPool::new(4, buffer_bytes)),
                pending.clone(),
                Telemetry::detached(2, false),
                Arc::new(ClusterHealth::new(2)),
                false,
            );
            for (i, &off) in offsets.iter().enumerate() {
                comm.push_read(1, PropId(3), off, SideRec { node: 0, aux: i as u64 });
            }
            comm.flush();
            let mut wire_entries = 0usize;
            let envs: Vec<Envelope> = out_rx.try_iter().collect();
            for env in envs {
                wire_entries += message::read_entry_count(&env.payload);
                let n = message::read_entry_count(&env.payload);
                let mut payload = Vec::new();
                for i in 0..n {
                    let (_prop, offset) = message::read_entry(&env.payload, i);
                    message::push_resp_entry(&mut payload, offset as u64 + 1);
                }
                resp_tx.send(Envelope {
                    src: env.dst,
                    dst: env.src,
                    kind: MsgKind::ReadResp,
                    worker: env.worker,
                    side_id: env.side_id,
                    seq: 0,
                    payload,
                }).unwrap();
            }
            let mut seen: Vec<(u64, u64)> = Vec::new();
            while let Some(resp) = comm.try_pop_response() {
                for i in 0..resp.recs.len() {
                    seen.push((resp.recs[i].aux, resp.read_value(i)));
                }
                comm.finish_response(resp);
            }
            seen.sort_unstable();
            prop_assert_eq!(pending.load(Ordering::SeqCst), 0);
            let hits = comm.stats().combined_read_hits.load(Ordering::SeqCst);
            runs.push((seen, wire_entries, hits));
        }
        let (combined, plain) = (&runs[0], &runs[1]);
        prop_assert_eq!(&combined.0, &plain.0, "continuation values identical");
        prop_assert!(combined.1 <= plain.1, "combining never adds wire entries");
        prop_assert_eq!(plain.1 - combined.1, combined.2 as usize,
                        "every saved wire entry is an accounted hit");
        prop_assert_eq!(plain.2, 0, "combining off never reports hits");
    }
}
