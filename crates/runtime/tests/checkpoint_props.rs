//! Property tests of checkpoint/restore: for arbitrary property contents
//! (owned *and* ghost-replica slots), a same-shape snapshot/restore
//! round-trip is bit-identical, a degraded restore re-scatters the exact
//! owned bits under the survivors' partitioning, and any bit of tampering
//! is caught by the shard checksums.

use pgxd_graph::generate;
use pgxd_runtime::checkpoint::MachineCheckpoint;
use pgxd_runtime::cluster::Cluster;
use pgxd_runtime::config::{Config, StorageFaultKind, StorageFaultPlan};
use pgxd_runtime::props::PropId;
use proptest::prelude::*;
use std::sync::Arc;

fn config(machines: usize) -> Config {
    Config::builder()
        .machines(machines)
        .workers(1)
        .copiers(1)
        .ghost_threshold(Some(2))
        .build()
        .expect("config")
}

/// Loads the shared test graph (high-degree rmat hubs → nonempty ghost
/// table at threshold 2) and registers two live properties.
fn cluster_with_props(machines: usize) -> (Cluster, PropId, PropId) {
    let g = generate::rmat(6, 8, generate::RmatParams::skewed(), 91);
    let mut c = Cluster::load(&g, config(machines)).expect("cluster");
    let a = c.add_prop("a", 0i64);
    let b = c.add_prop("b", 0.0f64);
    (c, a, b)
}

/// Writes `seed`-derived bits into every slot of both columns — owned and
/// ghost replicas alike — bypassing the engine so the ghost region holds
/// arbitrary values, not owner-consistent ones.
fn scribble(c: &Cluster, props: &[PropId], seed: u64) {
    for m in c.machines() {
        for &p in props {
            let col = m.props.column(p);
            for i in 0..col.len_total() {
                let x = seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add((m.id as u64) << 32 | (p.0 as u64) << 16 | i as u64);
                col.store_bits(i, x ^ (x >> 29));
            }
        }
    }
}

/// All column bits of `p`, per machine, owned+ghost concatenated.
fn all_bits(c: &Cluster, p: PropId) -> Vec<Vec<u64>> {
    c.machines()
        .iter()
        .map(|m| {
            let col = m.props.column(p);
            (0..col.len_total()).map(|i| col.load_bits(i)).collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Same-shape restore is bit-exact for owned AND ghost regions.
    #[test]
    fn round_trip_is_bit_identical(seed in any::<u64>(), junk in any::<u64>()) {
        let (mut c, a, b) = cluster_with_props(3);
        prop_assert!(!c.ghosts().is_empty(), "test needs ghost replicas");
        scribble(&c, &[a, b], seed);
        let before_a = all_bits(&c, a);
        let before_b = all_bits(&c, b);

        let ckpt = c.take_checkpoint(7, vec![seed]).unwrap();
        prop_assert_eq!(ckpt.progress.iteration, 7);
        prop_assert_eq!(&ckpt.progress.scalars, &vec![seed]);

        scribble(&c, &[a, b], junk); // clobber everything
        c.restore_checkpoint(&ckpt).unwrap();

        prop_assert_eq!(all_bits(&c, a), before_a);
        prop_assert_eq!(all_bits(&c, b), before_b);
    }

    /// A checkpoint from P machines restores onto P−1 survivors: owned
    /// values land exactly where the new partitioning says, and every
    /// ghost replica is primed with its owner's value.
    #[test]
    fn degraded_restore_preserves_global_columns(seed in any::<u64>()) {
        let (mut big, a, b) = cluster_with_props(3);
        scribble(&big, &[a, b], seed);
        let global_a = big.gather::<i64>(a);
        let ckpt = big.take_checkpoint(3, vec![]).unwrap();
        drop(big);

        let (mut small, a2, b2) = cluster_with_props(2);
        prop_assert_eq!(a2, a);
        prop_assert_eq!(b2, b);
        small.restore_checkpoint(&ckpt).unwrap();

        prop_assert_eq!(small.gather::<i64>(a2), global_a);
        // Ghost replicas must mirror their owner's restored value.
        let part = small.partition().clone();
        for m in small.machines() {
            let col = m.props.column(a2);
            let base = col.len_local();
            for ord in 0..small.ghosts().len() {
                let v = small.ghosts().node_at(ord as u32);
                let owner_bits = small
                    .machine(part.owner(v) as usize)
                    .props
                    .column(a2)
                    .load_bits(part.local_offset(v) as usize);
                prop_assert_eq!(col.load_bits(base + ord), owner_bits);
            }
        }
    }

    /// Any single-bit corruption of any shard word is rejected.
    #[test]
    fn tampered_shard_is_rejected(
        seed in any::<u64>(),
        machine in 0usize..3,
        bit in 0u32..64,
    ) {
        let (mut c, a, _b) = cluster_with_props(3);
        scribble(&c, &[a], seed);
        let ckpt = c.take_checkpoint(1, vec![]).unwrap();

        let mut forged = (*ckpt).clone();
        let mc = Arc::make_mut(&mut forged.machines[machine]);
        let shard = &mut mc.shards[0];
        let word = seed as usize % shard.owned.len();
        shard.owned[word] ^= 1u64 << bit;

        prop_assert!(forged.verify().is_err());
        prop_assert!(c.restore_checkpoint(&forged).is_err());
        // The pristine checkpoint still restores fine afterwards.
        c.restore_checkpoint(&ckpt).unwrap();
    }

    /// The storage-fault fallback contract, for arbitrary corruption
    /// schedules: a checkpoint whose shards were tampered by the seeded
    /// `StorageFaultPlan` is never restorable — `verify()` rejects it and
    /// `restore_checkpoint` leaves the cluster on an error — and the
    /// recovery driver's newest→oldest ring walk therefore lands on
    /// exactly the newest *clean* retained checkpoint, whose contents
    /// come back bit-identical.
    #[test]
    fn tampered_ring_entries_are_never_restored(
        seed in any::<u64>(),
        corrupt_pm in 100u16..900,
    ) {
        const TAKEN: u64 = 5;
        const RETAIN: usize = 3;
        let plan = StorageFaultPlan::faulty(seed, 0, corrupt_pm, 0);
        let g = generate::rmat(6, 8, generate::RmatParams::skewed(), 91);
        let cfg = Config::builder()
            .machines(3)
            .workers(1)
            .copiers(1)
            .ghost_threshold(Some(2))
            .storage_fault(plan)
            .checkpoint_retain(RETAIN)
            .build()
            .expect("config");
        let mut c = Cluster::load(&g, cfg).expect("cluster");
        let a = c.add_prop("a", 0i64);

        // Take TAKEN checkpoints with distinct contents, remembering each
        // sequence's owned global column. Every store shares the plan and
        // advances its counter once per save, so checkpoint seq `s` is
        // corrupt on every machine or none — decided by `draw(s - 1)`.
        let mut globals = vec![Vec::new()];
        for s in 1..=TAKEN {
            scribble(&c, &[a], seed ^ s);
            globals.push(c.gather::<i64>(a));
            c.take_checkpoint(s, vec![]).unwrap();
        }
        let ring = c.checkpoint_ring(); // newest → oldest
        prop_assert_eq!(ring.len(), RETAIN);

        scribble(&c, &[a], !seed); // clobber live state
        let mut restored_seq = None;
        for ckpt in &ring {
            let corrupt =
                plan.draw(ckpt.seq - 1) == StorageFaultKind::Corrupt;
            prop_assert_eq!(ckpt.verify().is_err(), corrupt);
            if corrupt {
                // Tampered: the driver must skip it, and even a direct
                // restore attempt fails instead of loading garbage.
                prop_assert!(c.restore_checkpoint(ckpt).is_err());
            } else if restored_seq.is_none() {
                c.restore_checkpoint(ckpt).unwrap();
                restored_seq = Some(ckpt.seq);
            }
        }
        if let Some(seq) = restored_seq {
            prop_assert_eq!(
                c.gather::<i64>(a),
                globals[seq as usize].clone(),
                "fallback landed on seq {} but contents differ", seq
            );
        } else {
            // Every retained entry tampered: the cold-restart path. The
            // cluster must still be usable for a fresh attempt.
            scribble(&c, &[a], seed ^ 1);
            prop_assert_eq!(c.gather::<i64>(a), globals[1].clone());
        }
        if (0..TAKEN).any(|n| plan.draw(n) == StorageFaultKind::Corrupt) {
            prop_assert!(c.total_stats().ckpt_shards_corrupted > 0);
        }
    }
}

/// Restoring onto a cluster whose property registry is missing a
/// checkpointed column must fail loudly, not write wild.
#[test]
fn missing_property_is_rejected() {
    let (mut c, a, b) = cluster_with_props(2);
    scribble(&c, &[a, b], 42);
    let ckpt = c.take_checkpoint(1, vec![]).unwrap();
    c.drop_prop(b);
    let err = c.restore_checkpoint(&ckpt).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("not registered"), "got: {msg}");
}

/// The per-machine stores hold exactly the latest shard, and counters ride
/// along.
#[test]
fn stores_track_latest_sequence() {
    let (mut c, a, _b) = cluster_with_props(2);
    scribble(&c, &[a], 1);
    c.take_checkpoint(1, vec![]).unwrap();
    scribble(&c, &[a], 2);
    c.take_checkpoint(2, vec![]).unwrap();
    for m in 0..2 {
        let store = c.checkpoint_store(m);
        let (seq, mc): (u64, Arc<MachineCheckpoint>) = store.latest().unwrap();
        assert_eq!(seq, 2);
        assert_eq!(mc.machine as usize, m);
        assert_eq!(store.saved(), 2);
        assert!(store.bytes_saved() > 0);
    }
    let stats = c.total_stats();
    assert_eq!(stats.checkpoints_taken, 4);
    assert!(stats.checkpoint_bytes > 0);
}
