//! Criterion benches backing Figure 6: ghost nodes, partitioning modes,
//! and chunking modes — the ablations DESIGN.md calls out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgxd::{ChunkingMode, Engine, PartitioningMode};
use pgxd_bench::experiments::fig6::top_degree_nodes;
use pgxd_bench::systems::{run_pgx, Algo};
use pgxd_graph::generate::{rmat, RmatParams};
use pgxd_graph::Graph;

fn engine_with(g: &Graph, ghosts: usize, part: PartitioningMode, chunk: ChunkingMode) -> Engine {
    Engine::builder()
        .machines(2)
        .workers(2)
        .copiers(1)
        .chunk_edges(4 * 1024)
        .partitioning(part)
        .chunking(chunk)
        .build_with_ghosts(g, top_degree_nodes(g, ghosts))
        .unwrap()
}

fn bench_ghosts(c: &mut Criterion) {
    let g = rmat(11, 12, RmatParams::skewed(), 0xF166A);
    let mut group = c.benchmark_group("fig6a_ghosts");
    group.sample_size(10);
    for ghosts in [0usize, 64, 512] {
        group.bench_with_input(BenchmarkId::new("pr_pull", ghosts), &ghosts, |b, &k| {
            let mut engine = engine_with(&g, k, PartitioningMode::Edge, ChunkingMode::Edge);
            b.iter(|| std::hint::black_box(run_pgx(&mut engine, Algo::PrPull).checksum))
        });
    }
    group.finish();
}

fn bench_partitioning_and_chunking(c: &mut Criterion) {
    let g = rmat(11, 12, RmatParams::skewed(), 0xF166B);
    let mut group = c.benchmark_group("fig6bc_balance");
    group.sample_size(10);
    let configs: [(&str, PartitioningMode, ChunkingMode); 3] = [
        ("vertex_node", PartitioningMode::Vertex, ChunkingMode::Node),
        ("edge_node", PartitioningMode::Edge, ChunkingMode::Node),
        ("edge_edge", PartitioningMode::Edge, ChunkingMode::Edge),
    ];
    for (name, part, chunk) in configs {
        group.bench_function(name, |b| {
            let mut engine = engine_with(&g, 256, part, chunk);
            b.iter(|| std::hint::black_box(run_pgx(&mut engine, Algo::PrPull).checksum))
        });
    }
    group.finish();
}

/// Ablation: ghost privatization on/off (the §3.3 "Ghost Privatization"
/// design choice — private copies trade memory for atomic-free reduction).
fn bench_privatization(c: &mut Criterion) {
    let g = rmat(11, 12, RmatParams::skewed(), 0xF166C);
    let mut group = c.benchmark_group("ablation_ghost_privatization");
    group.sample_size(10);
    for privatize in [false, true] {
        let name = if privatize {
            "private_copies"
        } else {
            "shared_atomics"
        };
        group.bench_function(name, |b| {
            let mut engine = Engine::builder()
                .machines(2)
                .workers(2)
                .copiers(1)
                .ghost_threshold(Some(64))
                .ghost_privatization(privatize)
                .build(&g)
                .unwrap();
            b.iter(|| std::hint::black_box(run_pgx(&mut engine, Algo::PrPush).checksum))
        });
    }
    group.finish();
}

/// Ablation: the pull-vs-push headline (Table 3's PR(pull) vs PR(push)
/// columns, isolated).
fn bench_pull_vs_push(c: &mut Criterion) {
    let g = rmat(11, 12, RmatParams::skewed(), 0xF166D);
    let mut group = c.benchmark_group("ablation_pull_vs_push");
    group.sample_size(10);
    for (name, algo) in [("pull", Algo::PrPull), ("push", Algo::PrPush)] {
        group.bench_function(name, |b| {
            let mut engine = engine_with(&g, 256, PartitioningMode::Edge, ChunkingMode::Edge);
            b.iter(|| std::hint::black_box(run_pgx(&mut engine, algo).checksum))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ghosts,
    bench_partitioning_and_chunking,
    bench_privatization,
    bench_pull_vs_push
);
criterion_main!(benches);
