//! Criterion benches backing Figure 8: remote random-read bandwidth and
//! the buffer-size sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pgxd_bench::experiments::fig8;

fn bench_remote_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8a_remote_reads");
    group.sample_size(10);
    const READS: usize = 50_000;
    group.throughput(Throughput::Bytes(8 * READS as u64));
    for copiers in [1usize, 2] {
        group.bench_with_input(
            BenchmarkId::new("random_read", copiers),
            &copiers,
            |b, &cop| {
                b.iter(|| {
                    std::hint::black_box(fig8::remote_read_bandwidth(cop, READS, 1).effective_gbps)
                })
            },
        );
    }
    group.finish();
}

fn bench_buffer_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8b_buffer_size");
    group.sample_size(10);
    const TOTAL: usize = 4 << 20;
    group.throughput(Throughput::Bytes(2 * TOTAL as u64));
    for buf in [4usize << 10, 64 << 10, 256 << 10] {
        group.bench_with_input(BenchmarkId::new("flood_2machines", buf), &buf, |b, &bs| {
            b.iter(|| std::hint::black_box(fig8::flood_bandwidth_gbps(2, bs, TOTAL)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_remote_reads, bench_buffer_sizes);
criterion_main!(benches);
