//! Criterion benches backing Table 3: per-iteration algorithm kernels on
//! each system, on a small TWT-like instance.
//!
//! The `repro` binary runs the full sweep; these benches give
//! statistically sound point measurements of the head-to-head kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgxd_bench::systems::{run, weighted, Algo, System};
use pgxd_graph::generate::{rmat, RmatParams};

fn bench_table3(c: &mut Criterion) {
    let g = rmat(11, 12, RmatParams::skewed(), 0x7AB1E3);
    let wg = weighted(&g);
    let machines = 2usize;

    let mut group = c.benchmark_group("table3");
    group.sample_size(10);

    for algo in [
        Algo::PrPull,
        Algo::PrPush,
        Algo::Wcc,
        Algo::Sssp,
        Algo::HopDist,
    ] {
        for sys in System::all() {
            // Skip unsupported combinations (pull on push-only systems).
            let input = if algo.needs_weights() { &wg } else { &g };
            if run(sys, algo, input, machines).is_none() {
                continue;
            }
            group.bench_with_input(
                BenchmarkId::new(algo.name(), sys.name()),
                &(sys, algo),
                |b, &(sys, algo)| {
                    b.iter(|| {
                        let r = run(sys, algo, input, machines).unwrap();
                        std::hint::black_box(r.checksum)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
