//! Criterion benches backing Figure 5: framework overhead (edge-iteration
//! speed) and barrier latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pgxd::Engine;
use pgxd_bench::experiments::fig5;
use pgxd_graph::generate::{rmat, RmatParams};

fn bench_edge_iteration(c: &mut Criterion) {
    let g = rmat(12, 16, RmatParams::skewed(), 0xF165A);
    let edges = g.num_edges() as u64;

    let mut group = c.benchmark_group("fig5a_edge_iteration");
    group.sample_size(10);
    group.throughput(Throughput::Elements(edges));

    group.bench_function("sa_2threads", |b| {
        b.iter(|| std::hint::black_box(pgxd_baselines::sa::edge_iteration(&g, 2)))
    });
    group.bench_function("gas_2threads", |b| {
        b.iter(|| std::hint::black_box(pgxd_baselines::gas::edge_iteration(&g, 2)))
    });
    group.bench_function("pgx_2workers", |b| {
        b.iter(|| std::hint::black_box(fig5::pgx_edge_iteration_meps(&g, 2)))
    });
    group.finish();
}

fn bench_barrier(c: &mut Criterion) {
    let g = pgxd_graph::generate::ring(64);
    let mut group = c.benchmark_group("fig5b_barrier");
    group.sample_size(20);
    for machines in [2usize, 4] {
        let mut engine = Engine::builder()
            .machines(machines)
            .workers(1)
            .copiers(1)
            .ghost_threshold(None)
            .build(&g)
            .unwrap();
        group.bench_with_input(BenchmarkId::new("shared", machines), &machines, |b, _| {
            b.iter(|| engine.barrier_roundtrip())
        });
        group.bench_with_input(
            BenchmarkId::new("message_based", machines),
            &machines,
            |b, _| b.iter(|| engine.dist_barrier_roundtrip()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_edge_iteration, bench_barrier);
criterion_main!(benches);
